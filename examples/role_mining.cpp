// Structural-role mining: find ALL pairs of vertices that play the same
// role — i.e., whose neighborhoods are nearly identical — directly from
// the streaming sketches, via an LSH-banded all-pairs similarity join.
//
// Classic uses: account-duplicate detection (two handles following the
// same people), device aliasing in network telemetry, mirror pages in web
// graphs. The join never enumerates the quadratic pair space: banding
// routes only near-duplicates into shared buckets.
//
// Run:  ./examples/role_mining [--threshold 0.8] [--scale 0.2]

#include <cstdio>

#include "core/similarity_join.h"
#include "gen/sbm.h"
#include "gen/workloads.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SL_CHECK_OK(flags.CheckUnknown({"threshold", "scale"}));
  const double threshold = flags.GetDouble("threshold", 0.8);
  const double scale = flags.GetDouble("scale", 0.2);

  // A community graph, plus a handful of planted "duplicate accounts":
  // clones wired to exactly the same neighbors as an original vertex.
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"sbm", scale, 23});
  MinHashPredictor predictor(MinHashPredictorOptions{128, 4});
  for (const Edge& e : g.edges) predictor.OnEdge(e);

  const int clones = 6;
  VertexId clone_base = g.num_vertices;
  std::printf("planting %d duplicate accounts...\n", clones);
  for (int c = 0; c < clones; ++c) {
    VertexId original = static_cast<VertexId>(100 + 37 * c);
    VertexId clone = clone_base + c;
    // Mirror the original's edges onto the clone (reading the original's
    // neighbors from the generated edge list).
    for (const Edge& e : g.edges) {
      if (e.u == original) predictor.OnEdge(Edge(clone, e.v));
      if (e.v == original) predictor.OnEdge(Edge(clone, e.u));
    }
  }

  Stopwatch sw;
  auto pairs = AllPairsSimilarVertices(
      predictor, SimilarityJoinOptions{.threshold = threshold});
  std::printf(
      "similarity join over %u vertices at threshold %.2f: %zu pairs in "
      "%s\n\n",
      predictor.num_vertices(), threshold, pairs.size(),
      FormatDuration(sw.ElapsedSeconds()).c_str());

  std::printf("top matches (clones are vertices >= %u):\n", clone_base);
  int shown = 0;
  int clones_found = 0;
  for (const ScoredPair& p : pairs) {
    bool involves_clone = p.pair.u >= clone_base || p.pair.v >= clone_base;
    clones_found += involves_clone;
    if (shown < 10) {
      std::printf("  (%5u, %5u)  est. jaccard %.3f%s\n", p.pair.u, p.pair.v,
                  p.score, involves_clone ? "   <- planted duplicate" : "");
      ++shown;
    }
  }
  std::printf(
      "\n%d of the %d planted duplicates surfaced in the join — found from\n"
      "sketches alone, without ever materializing the graph or scanning\n"
      "the quadratic pair space.\n",
      clones_found > clones ? clones : clones_found, clones);
  return 0;
}

// Parallel ingestion with IngestEngineBuilder.
//
// MinHash sketches form a commutative idempotent monoid under slot-wise
// minimum, and degree counters add — so a stream can be vertex-sharded
// across worker threads (shard t owns vertices with u % threads == t) and
// the result stays bit-identical to a single-pass sequential build. The
// engine routes each edge's two half-edges to the endpoint owners through
// bounded SPSC rings carrying large pre-hashed batches; the returned
// ShardedPredictor answers queries by routing to the owning shards, so
// there is no merge step at all.
//
// With --ingest-mode relaxed, each worker instead ingests an arbitrary
// partition of whole edges into its own full replica, and the replicas
// are merged once at end-of-stream — higher throughput, but only
// oracle-bounded (not bit-identical) estimates are promised.
//
// Run:  ./examples/parallel_ingest [--threads 4] [--scale 2.0]
//                                  [--ingest-mode ordered|relaxed]

#include <cstdio>
#include <thread>

#include "core/predictor_factory.h"
#include "gen/workloads.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  std::vector<std::string> known = {"threads", "scale"};
  for (const std::string& name : IngestEngineBuilder::FlagNames()) {
    known.push_back(name);
  }
  SL_CHECK_OK(flags.CheckUnknown(known));
  const int num_threads = static_cast<int>(flags.GetInt("threads", 4));
  const double scale = flags.GetDouble("scale", 2.0);
  SL_CHECK(num_threads >= 1) << "--threads must be >= 1";

  GeneratedGraph g = MakeWorkload(WorkloadSpec{"rmat", scale, 7});
  std::printf("stream: %zu edges\n\n", g.edges.size());

  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 256;
  config.seed = 99;

  // Sequential reference.
  Stopwatch sequential_timer;
  config.threads = 1;
  VectorEdgeStream sequential_stream(g.edges);
  auto sequential = IngestEngineBuilder(config).Ingest(sequential_stream);
  SL_CHECK_OK(sequential.status());
  double sequential_seconds = sequential_timer.ElapsedSeconds();
  std::printf("sequential build: %s\n",
              FormatDuration(sequential_seconds).c_str());

  // Parallel build through the builder: --ingest-mode / --batch-edges /
  // --ring-batches map straight onto it. In ordered mode the calling
  // thread routes pre-hashed half-edge batches to per-shard rings; one
  // worker per shard applies them. Every vertex's sketch lives in exactly
  // one shard, so total memory matches the sequential build.
  IngestEngineBuilder builder(config);
  SL_CHECK_OK(builder.ApplyFlags(flags));
  builder.Threads(static_cast<uint32_t>(num_threads));
  const bool ordered =
      builder.options().ordering == IngestOrdering::kOrdered;
  Stopwatch parallel_timer;
  VectorEdgeStream parallel_stream(g.edges);
  uint64_t edges_ingested = 0;
  auto parallel = builder.Ingest(parallel_stream, &edges_ingested);
  SL_CHECK_OK(parallel.status());
  double parallel_seconds = parallel_timer.ElapsedSeconds();
  unsigned hardware = std::thread::hardware_concurrency();
  std::printf("%d-thread %s build:  %s  (%.2fx on %u hardware thread%s)\n",
              num_threads,
              IngestOrderingName(builder.options().ordering).c_str(),
              FormatDuration(parallel_seconds).c_str(),
              sequential_seconds / parallel_seconds, hardware,
              hardware == 1 ? "" : "s");
  if (hardware < static_cast<unsigned>(num_threads)) {
    std::printf(
        "  (speedup requires >= %d cores; this machine has %u — the run\n"
        "   still demonstrates the engine's equivalence contract)\n",
        num_threads, hardware);
  }
  std::printf("ingested %llu edges; %s processed %llu\n\n",
              static_cast<unsigned long long>(edges_ingested),
              (*parallel)->name().c_str(),
              static_cast<unsigned long long>((*parallel)->edges_processed()));

  // Verify estimates on random pairs against the sequential build. Ordered
  // mode must match bit-for-bit; relaxed mode's disjoint-partition merge
  // is lossless for minhash in practice, but its contract only promises
  // oracle-bounded estimates, so the example reports without asserting.
  Rng rng(1);
  int checked = 0, identical = 0;
  for (int i = 0; i < 1000; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate a = (*sequential)->EstimateOverlap(u, v);
    OverlapEstimate b = (*parallel)->EstimateOverlap(u, v);
    ++checked;
    identical += (a.jaccard == b.jaccard && a.intersection == b.intersection &&
                  a.adamic_adar == b.adamic_adar);
  }
  std::printf("parallel == sequential on %d/%d sampled queries\n", identical,
              checked);
  if (ordered) {
    SL_CHECK(identical == checked) << "ordered build diverged from sequential";
  }
  return 0;
}

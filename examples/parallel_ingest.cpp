// Parallel ingestion through sketch mergeability.
//
// MinHash sketches form a commutative idempotent monoid under slot-wise
// minimum, and degree counters add — so predictors built over disjoint
// stream partitions can be MERGED into one that is bit-identical to a
// single-pass build. This example shards a stream across worker threads,
// merges the shards, verifies equivalence against a sequential build, and
// reports the speedup. The same property is what makes the sketches
// shippable between machines in a distributed pipeline.
//
// Run:  ./examples/parallel_ingest [--threads 4] [--scale 2.0]

#include <cstdio>
#include <thread>
#include <vector>

#include "core/minhash_predictor.h"
#include "gen/workloads.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SL_CHECK_OK(flags.CheckUnknown({"threads", "scale"}));
  const int num_threads = static_cast<int>(flags.GetInt("threads", 4));
  const double scale = flags.GetDouble("scale", 2.0);
  SL_CHECK(num_threads >= 1) << "--threads must be >= 1";

  GeneratedGraph g = MakeWorkload(WorkloadSpec{"rmat", scale, 7});
  std::printf("stream: %zu edges\n\n", g.edges.size());
  MinHashPredictorOptions options{256, 99};

  // Sequential reference.
  Stopwatch sequential_timer;
  MinHashPredictor sequential(options);
  for (const Edge& e : g.edges) sequential.OnEdge(e);
  double sequential_seconds = sequential_timer.ElapsedSeconds();
  std::printf("sequential build: %s\n",
              FormatDuration(sequential_seconds).c_str());

  // Sharded build: VERTEX partitioning. Shard t owns vertices with
  // u % num_threads == t, and applies only the half-edges of its vertices
  // (ObserveNeighbor). Every vertex's sketch lives in exactly one shard,
  // so total memory matches the sequential build and the final merge is a
  // disjoint union.
  Stopwatch parallel_timer;
  std::vector<MinHashPredictor> shards;
  shards.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) shards.emplace_back(options);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        const uint32_t mod = static_cast<uint32_t>(num_threads);
        for (const Edge& e : g.edges) {
          if (e.IsSelfLoop()) continue;
          if (e.u % mod == static_cast<uint32_t>(t)) {
            shards[t].ObserveNeighbor(e.u, e.v);
          }
          if (e.v % mod == static_cast<uint32_t>(t)) {
            shards[t].ObserveNeighbor(e.v, e.u);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  for (int t = 1; t < num_threads; ++t) shards[0].MergeFrom(shards[t]);
  double parallel_seconds = parallel_timer.ElapsedSeconds();
  unsigned hardware = std::thread::hardware_concurrency();
  std::printf("%d-thread build:  %s  (%.2fx on %u hardware thread%s)\n",
              num_threads, FormatDuration(parallel_seconds).c_str(),
              sequential_seconds / parallel_seconds, hardware,
              hardware == 1 ? "" : "s");
  if (hardware < static_cast<unsigned>(num_threads)) {
    std::printf(
        "  (speedup requires >= %d cores; this machine has %u — the run\n"
        "   still demonstrates that sharded ingestion merges losslessly)\n",
        num_threads, hardware);
  }
  std::printf("\n");

  // Verify bit-equality of estimates on random pairs.
  Rng rng(1);
  int checked = 0, identical = 0;
  for (int i = 0; i < 1000; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate a = sequential.EstimateOverlap(u, v);
    OverlapEstimate b = shards[0].EstimateOverlap(u, v);
    ++checked;
    identical += (a.jaccard == b.jaccard && a.intersection == b.intersection &&
                  a.adamic_adar == b.adamic_adar);
  }
  std::printf("merged == sequential on %d/%d sampled queries\n", identical,
              checked);
  SL_CHECK(identical == checked) << "merge diverged from sequential build";
  return 0;
}

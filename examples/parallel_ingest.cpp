// Parallel sharded ingestion with ParallelIngestEngine.
//
// MinHash sketches form a commutative idempotent monoid under slot-wise
// minimum, and degree counters add — so a stream can be vertex-sharded
// across worker threads (shard t owns vertices with u % threads == t) and
// the result stays bit-identical to a single-pass sequential build. The
// engine routes each edge's two half-edges to the endpoint owners through
// bounded queues; the returned ShardedPredictor answers queries by routing
// to the owning shards, so there is no merge step at all.
//
// Run:  ./examples/parallel_ingest [--threads 4] [--scale 2.0]

#include <cstdio>
#include <thread>

#include "core/predictor_factory.h"
#include "gen/workloads.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SL_CHECK_OK(flags.CheckUnknown({"threads", "scale"}));
  const int num_threads = static_cast<int>(flags.GetInt("threads", 4));
  const double scale = flags.GetDouble("scale", 2.0);
  SL_CHECK(num_threads >= 1) << "--threads must be >= 1";

  GeneratedGraph g = MakeWorkload(WorkloadSpec{"rmat", scale, 7});
  std::printf("stream: %zu edges\n\n", g.edges.size());

  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 256;
  config.seed = 99;

  // Sequential reference.
  Stopwatch sequential_timer;
  config.threads = 1;
  ParallelIngestEngine sequential_engine(config);
  VectorEdgeStream sequential_stream(g.edges);
  auto sequential = sequential_engine.Build(sequential_stream);
  SL_CHECK_OK(sequential.status());
  double sequential_seconds = sequential_timer.ElapsedSeconds();
  std::printf("sequential build: %s\n",
              FormatDuration(sequential_seconds).c_str());

  // Sharded build through the engine: the calling thread routes half-edges
  // to per-shard queues; one worker per shard applies them. Every vertex's
  // sketch lives in exactly one shard, so total memory matches the
  // sequential build.
  Stopwatch parallel_timer;
  config.threads = static_cast<uint32_t>(num_threads);
  ParallelIngestEngine parallel_engine(config);
  VectorEdgeStream parallel_stream(g.edges);
  auto sharded = parallel_engine.Build(parallel_stream);
  SL_CHECK_OK(sharded.status());
  double parallel_seconds = parallel_timer.ElapsedSeconds();
  unsigned hardware = std::thread::hardware_concurrency();
  std::printf("%d-thread build:  %s  (%.2fx on %u hardware thread%s)\n",
              num_threads, FormatDuration(parallel_seconds).c_str(),
              sequential_seconds / parallel_seconds, hardware,
              hardware == 1 ? "" : "s");
  if (hardware < static_cast<unsigned>(num_threads)) {
    std::printf(
        "  (speedup requires >= %d cores; this machine has %u — the run\n"
        "   still demonstrates that sharded ingestion is lossless)\n",
        num_threads, hardware);
  }
  std::printf("ingested %llu edges; %s processed %llu\n\n",
              static_cast<unsigned long long>(parallel_engine.edges_ingested()),
              (*sharded)->name().c_str(),
              static_cast<unsigned long long>((*sharded)->edges_processed()));

  // Verify bit-equality of estimates on random pairs — queries route to
  // the two owning shards and must match the sequential build exactly.
  Rng rng(1);
  int checked = 0, identical = 0;
  for (int i = 0; i < 1000; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    OverlapEstimate a = (*sequential)->EstimateOverlap(u, v);
    OverlapEstimate b = (*sharded)->EstimateOverlap(u, v);
    ++checked;
    identical += (a.jaccard == b.jaccard && a.intersection == b.intersection &&
                  a.adamic_adar == b.adamic_adar);
  }
  std::printf("sharded == sequential on %d/%d sampled queries\n", identical,
              checked);
  SL_CHECK(identical == checked) << "sharded build diverged from sequential";
  return 0;
}

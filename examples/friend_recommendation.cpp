// Friend recommendation over a community-structured network.
//
// The canonical link-prediction application: given the stream of
// friendships observed so far, recommend "people you may know" — the
// non-friends with the strongest neighborhood overlap. Communities (from
// a stochastic block model) give the recommendations a ground truth to be
// judged against: good recommendations stay inside the user's community.
//
// The streaming predictor scores candidates online from per-vertex
// sketches; an exact snapshot is used only to *enumerate* the 2-hop
// candidates (candidate generation is the application's job — the
// predictor only scores).
//
// Run:  ./examples/friend_recommendation [--user 7] [--top 5]

#include <cstdio>

#include "core/top_k_engine.h"
#include "core/vertex_biased_predictor.h"
#include "gen/sbm.h"
#include "graph/csr_graph.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SL_CHECK_OK(flags.CheckUnknown({"user", "top"}));
  const VertexId user = static_cast<VertexId>(flags.GetInt("user", 7));
  const uint32_t top = static_cast<uint32_t>(flags.GetInt("top", 5));

  // A 6-community friendship network.
  Rng rng(7);
  SbmParams params;
  params.num_vertices = 3000;
  params.num_blocks = 6;
  params.p_intra = 0.03;
  params.p_inter = 0.0008;
  SbmGraph network = GenerateSbm(params, rng);
  SL_CHECK(user < params.num_vertices) << "--user out of range";

  // Stream the friendships into the vertex-biased predictor (best
  // Adamic-Adar accuracy — the measure of choice for recommendations).
  VertexBiasedPredictor predictor;
  for (const Edge& e : network.graph.edges) predictor.OnEdge(e);

  // Candidate generation from a snapshot; scoring from the sketches.
  CsrGraph snapshot =
      CsrGraph::FromEdges(network.graph.edges, network.graph.num_vertices);
  auto candidates = TwoHopCandidates(snapshot, user);
  std::printf("user %u: community %u, %u friends, %zu 2-hop candidates\n\n",
              user, network.block_of[user], snapshot.Degree(user),
              candidates.size());

  TopKEngine engine(predictor, LinkMeasure::kAdamicAdar);
  auto recommendations = engine.TopK(candidates, top);

  std::printf("top-%u recommendations by streaming Adamic-Adar:\n", top);
  std::printf("%-10s %-10s %-12s %-10s\n", "candidate", "aa_score",
              "community", "same?");
  uint32_t same_community = 0;
  for (const ScoredPair& r : recommendations) {
    VertexId candidate = r.pair.u == user ? r.pair.v : r.pair.u;
    bool same = network.block_of[candidate] == network.block_of[user];
    same_community += same;
    std::printf("%-10u %-10.3f %-12u %-10s\n", candidate, r.score,
                network.block_of[candidate], same ? "yes" : "no");
  }
  std::printf(
      "\n%u/%zu recommendations fall in the user's own community —\n"
      "the sketches recovered the community structure without ever\n"
      "materializing the graph.\n",
      same_community, recommendations.size());
  return 0;
}

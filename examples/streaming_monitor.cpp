// Live monitoring of an evolving interaction stream.
//
// Models an ops-style deployment: an unbounded stream of interactions
// (e.g. network flows, co-purchases, message edges) flows through the
// system; at periodic checkpoints the monitor reports
//   * ingest throughput (edges/sec) and sketch memory,
//   * the current hottest vertices (space-saving heavy hitters),
//   * link-strength estimates for a fixed watchlist of pairs,
//   * the distribution of each edge's "prior similarity" — the Jaccard of
//     its endpoints estimated just BEFORE insertion (tracked by a
//     Greenwald-Khanna quantile sketch): edges between already-similar
//     endpoints are expected; links between dissimilar busy endpoints are
//     the surprising ones an anomaly pipeline would flag.
// Everything is computed online; nothing about the graph is stored beyond
// the sketches, the heavy-hitter counters, and the degree table.
//
// Run:  ./examples/streaming_monitor [--edges 400000] [--checkpoints 8]

#include <cstdio>
#include <vector>

#include "core/minhash_predictor.h"
#include "core/triangle_counter.h"
#include "gen/rmat.h"
#include "sketch/quantile.h"
#include "sketch/space_saving.h"
#include "stream/edge_stream.h"
#include "stream/rate_meter.h"
#include "stream/stream_driver.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

namespace {

/// Routes each edge's endpoints into the heavy-hitter sketch.
class HotVertexTracker : public EdgeConsumer {
 public:
  explicit HotVertexTracker(uint32_t capacity) : sketch_(capacity) {}

  void OnEdge(const Edge& edge) override {
    sketch_.Offer(edge.u);
    sketch_.Offer(edge.v);
  }

  const SpaceSaving& sketch() const { return sketch_; }

 private:
  SpaceSaving sketch_;
};

/// Scores each edge's endpoint similarity just before the predictor
/// absorbs it, folding the scores into a streaming quantile sketch.
/// Register BEFORE the predictor so the estimate excludes the edge itself.
class PriorSimilarityTracker : public EdgeConsumer {
 public:
  explicit PriorSimilarityTracker(const MinHashPredictor& predictor)
      : predictor_(predictor), quantiles_(0.01) {}

  void OnEdge(const Edge& edge) override {
    quantiles_.Insert(predictor_.EstimateOverlap(edge.u, edge.v).jaccard);
  }

  const QuantileSketch& quantiles() const { return quantiles_; }

 private:
  const MinHashPredictor& predictor_;
  QuantileSketch quantiles_;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SL_CHECK_OK(flags.CheckUnknown({"edges", "checkpoints"}));
  const uint64_t num_edges =
      static_cast<uint64_t>(flags.GetInt("edges", 400000));
  const int num_checkpoints =
      static_cast<int>(flags.GetInt("checkpoints", 8));

  // A skewed interaction stream (R-MAT): a few "servers" see most flows.
  Rng rng(99);
  RmatParams params;
  params.scale = 16;
  params.num_edges = num_edges;
  GeneratedGraph traffic = GenerateRmat(params, rng);
  std::printf("monitoring %zu interactions over up to %u endpoints\n\n",
              traffic.edges.size(), traffic.num_vertices);

  MinHashPredictor predictor(MinHashPredictorOptions{64, 5});
  HotVertexTracker hot(256);

  // Watchlist: pairs of likely hubs (low R-MAT ids) we want link-strength
  // estimates for at every checkpoint.
  const std::vector<std::pair<VertexId, VertexId>> watchlist = {
      {0, 1}, {0, 2}, {1, 3}};

  PriorSimilarityTracker similarity(predictor);
  StreamingTriangleCounter triangles(TriangleCounterOptions{64, 6});

  StreamDriver driver;
  driver.AddConsumer(&similarity);  // must observe the pre-insert state
  driver.AddConsumer(&predictor);
  driver.AddConsumer(&hot);
  driver.AddConsumer(&triangles);

  Stopwatch stopwatch;
  std::vector<double> fractions;
  for (int i = 1; i <= num_checkpoints; ++i) {
    fractions.push_back(static_cast<double>(i) / num_checkpoints);
  }
  driver.SetCheckpoints(fractions, [&](uint64_t consumed, double fraction) {
    std::printf("[%5.1f%%] %9lu edges  %8.0f edges/s  %6.2f MB sketch\n",
                fraction * 100, static_cast<unsigned long>(consumed),
                stopwatch.Rate(consumed), predictor.MemoryBytes() / 1e6);
    if (fraction >= 0.999) return;  // full report printed below
  });

  VectorEdgeStream stream(traffic.edges);
  driver.Run(stream);

  std::printf("\nhottest endpoints (space-saving, capacity 256):\n");
  for (const auto& counter : hot.sketch().TopK(5)) {
    std::printf("  vertex %-8lu ~%lu touches (error <= %lu)\n",
                static_cast<unsigned long>(counter.item),
                static_cast<unsigned long>(counter.count),
                static_cast<unsigned long>(counter.error));
  }

  const QuantileSketch& q = similarity.quantiles();
  std::printf(
      "\nper-edge prior similarity (GK quantile sketch over %lu edges, "
      "%zu tuples kept):\n",
      static_cast<unsigned long>(q.count()), q.NumTuples());
  std::printf("  p50=%.4f  p90=%.4f  p99=%.4f  max=%.4f\n", q.Median(),
              q.Quantile(0.9), q.Quantile(0.99), q.Max());
  std::printf(
      "  (edges arriving between already-similar endpoints score high; an\n"
      "   anomaly pipeline would flag busy pairs scoring near zero)\n");

  std::printf("\nestimated triangles closed so far: %.0f\n",
              triangles.Estimate());

  std::printf("\nwatchlist link strengths (streaming estimates):\n");
  std::printf("  %-12s %-9s %-9s %-9s\n", "pair", "jaccard", "common",
              "adamic");
  for (auto [u, v] : watchlist) {
    OverlapEstimate est = predictor.EstimateOverlap(u, v);
    std::printf("  (%4u,%4u)  %-9.3f %-9.1f %-9.2f\n", u, v, est.jaccard,
                est.intersection, est.adamic_adar);
  }
  return 0;
}

// Weighted link prediction over an interaction-strength stream.
//
// Co-purchase / messaging / collaboration graphs carry *strengths*, and
// binarizing them throws the signal away: two users who exchanged 500
// messages with the same friend are more alike than two who exchanged
// one. This example streams weighted edges (a clustered topology with
// heavy-tailed strengths) into the ICWS-based WeightedJaccardPredictor
// and contrasts, for a few pairs, the weighted generalized-Jaccard
// estimate against (a) exact weighted truth and (b) the unweighted
// Jaccard, showing where binarization reorders pairs.
//
// Run:  ./examples/weighted_interactions [--scale 0.2]

#include <cmath>
#include <cstdio>

#include "core/minhash_predictor.h"
#include "core/weighted_predictor.h"
#include "gen/workloads.h"
#include "graph/weighted_graph.h"
#include "util/flags.h"
#include "util/hashing.h"
#include "util/logging.h"
#include "util/random.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

namespace {

double StrengthOf(const Edge& e, uint64_t seed) {
  Edge c = e.Canonical();
  uint64_t key = (static_cast<uint64_t>(c.u) << 32) | c.v;
  return std::exp(3.0 * HashToUnit(HashU64(key, seed)));  // heavy-tailed
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SL_CHECK_OK(flags.CheckUnknown({"scale"}));
  const double scale = flags.GetDouble("scale", 0.2);

  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ws", scale, 17});
  std::printf("streaming %zu weighted interactions...\n\n", g.edges.size());

  WeightedPredictorOptions options;
  options.num_slots = 256;
  WeightedJaccardPredictor weighted(options);
  MinHashPredictor unweighted(MinHashPredictorOptions{256, 17});
  WeightedAdjacencyGraph exact;
  for (const Edge& e : g.edges) {
    double w = StrengthOf(e, 99);
    weighted.OnWeightedEdge(e.u, e.v, w);
    unweighted.OnEdge(e);
    exact.AddEdge(e.u, e.v, w);
  }

  std::printf("%-14s %-12s %-12s %-12s %-12s\n", "pair", "weighted_est",
              "weighted_true", "unweighted", "strength_sum");
  Rng rng(3);
  for (int shown = 0; shown < 8;) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(g.num_vertices));
    VertexId v = u + 1 + static_cast<VertexId>(rng.NextBounded(4));
    if (v >= g.num_vertices) continue;
    WeightedOverlap truth = exact.ComputeOverlap(u, v);
    if (truth.min_sum <= 0) continue;  // show overlapping pairs only
    auto est = weighted.Estimate(u, v);
    std::printf("(%5u,%5u)  %-12.4f %-12.4f %-12.4f %-12.1f\n", u, v,
                est.generalized_jaccard, truth.GeneralizedJaccard(),
                unweighted.EstimateOverlap(u, v).jaccard,
                est.strength_u + est.strength_v);
    ++shown;
  }

  std::printf(
      "\nThe weighted estimate tracks weighted truth from %u ICWS slots per\n"
      "vertex; the unweighted column shows what binarization would report.\n",
      options.num_slots);
  return 0;
}

// Quickstart: the 60-second tour of streamlink.
//
// Builds a small social-network-like graph stream, feeds it to the
// MinHash streaming link predictor, and asks the three questions the
// library answers online, comparing each against exact ground truth:
//   1. How similar are two users' neighborhoods (Jaccard)?
//   2. How many friends do they share (common neighbors)?
//   3. How strongly do their *rare* shared friends connect them
//      (Adamic-Adar)?
//
// Run:  ./examples/quickstart

#include <cstdio>

#include "core/exact_predictor.h"
#include "core/minhash_predictor.h"
#include "gen/barabasi_albert.h"
#include "util/random.h"

using streamlink::BarabasiAlbertParams;
using streamlink::Edge;
using streamlink::ExactPredictor;
using streamlink::GenerateBarabasiAlbert;
using streamlink::GeneratedGraph;
using streamlink::MinHashPredictor;
using streamlink::MinHashPredictorOptions;
using streamlink::OverlapEstimate;
using streamlink::Rng;
using streamlink::VertexId;

int main() {
  // 1. A synthetic "social network" stream: preferential attachment, so a
  //    few users become hubs, like real follower graphs.
  Rng rng(2026);
  BarabasiAlbertParams params;
  params.num_vertices = 5000;
  params.edges_per_vertex = 6;
  GeneratedGraph network = GenerateBarabasiAlbert(params, rng);
  std::printf("stream: %zu edges over %u vertices\n\n",
              network.edges.size(), network.num_vertices);

  // 2. The streaming predictor: 128 hash slots per vertex, constant space
  //    and constant time per edge. The exact predictor keeps the whole
  //    graph and is our ground truth.
  MinHashPredictor sketch(MinHashPredictorOptions{/*num_hashes=*/128,
                                                  /*seed=*/1});
  ExactPredictor exact;
  for (const Edge& e : network.edges) {
    sketch.OnEdge(e);
    exact.OnEdge(e);
  }

  std::printf("sketch memory:  %6.2f MB (%u slots/vertex)\n",
              sketch.MemoryBytes() / 1e6, sketch.options().num_hashes);
  std::printf("exact memory:   %6.2f MB (full adjacency)\n\n",
              exact.MemoryBytes() / 1e6);

  // 3. Query a few pairs, online. Hubs (low ids in BA) share many
  //    neighbors; late arrivals share few.
  std::printf("%-14s %22s %22s\n", "pair", "sketch (J / CN / AA)",
              "exact (J / CN / AA)");
  for (auto [u, v] : {std::pair<VertexId, VertexId>{0, 1},
                      {0, 5},
                      {10, 11},
                      {100, 101},
                      {2000, 2001}}) {
    OverlapEstimate est = sketch.EstimateOverlap(u, v);
    OverlapEstimate truth = exact.EstimateOverlap(u, v);
    std::printf("(%4u, %4u)   %6.3f %6.1f %7.2f   %6.3f %6.1f %7.2f\n", u, v,
                est.jaccard, est.intersection, est.adamic_adar, truth.jaccard,
                truth.intersection, truth.adamic_adar);
  }

  std::printf(
      "\nThe sketch answered every query from %u slots per vertex —\n"
      "it never stored a single adjacency list.\n",
      sketch.options().num_hashes);
  return 0;
}

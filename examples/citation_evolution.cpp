// Predicting future collaborations in an evolving co-authorship network.
//
// The temporal-evaluation workflow end to end: observe the first 80% of a
// growing collaboration network, predict which new collaborations form in
// the final 20%, and score the predictions (AUC, precision@k) for every
// predictor kind at several sketch sizes — a miniature of experiment F6
// written against the public API.
//
// Run:  ./examples/citation_evolution [--scale 0.4]

#include <cstdio>

#include "core/predictor_factory.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/temporal_split.h"
#include "gen/stream_order.h"
#include "gen/workloads.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"

using namespace streamlink;  // example code only; library code never does this  // NOLINT

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SL_CHECK_OK(flags.CheckUnknown({"scale"}));
  const double scale = flags.GetDouble("scale", 0.4);

  // A clustered small-world graph is the classic stand-in for
  // co-authorship networks (high clustering, short paths).
  GeneratedGraph network = MakeWorkload(WorkloadSpec{"ws", scale, 11});
  Rng rng(12);
  ApplyStreamOrder(StreamOrder::kRandom, network.edges, rng);

  TrainTestSplit split = MakeTemporalSplit(network.edges, 0.8);
  LabeledPairs labeled = MakeLabeledPairs(split, 1.0, rng);
  std::printf(
      "observed %zu collaborations; predicting %zu future ones against %zu "
      "non-collaborations\n\n",
      split.train.size(), split.test_positives.size(),
      labeled.pairs.size() - split.test_positives.size());

  std::printf("%-15s %-6s %-8s %-8s %-14s\n", "predictor", "k", "auc",
              "p@50", "memory (MB)");
  struct Variant {
    const char* kind;
    uint32_t k;
  };
  for (const Variant& v :
       {Variant{"exact", 0}, Variant{"minhash", 32}, Variant{"minhash", 128},
        Variant{"bottomk", 128}, Variant{"vertex_biased", 128}}) {
    PredictorConfig config;
    config.kind = v.kind;
    config.sketch_size = v.k == 0 ? 64 : v.k;
    auto predictor = MakePredictor(config);
    SL_CHECK_OK(predictor.status());
    FeedStream(**predictor, split.train);

    std::vector<LabeledScore> scored;
    scored.reserve(labeled.pairs.size());
    for (size_t i = 0; i < labeled.pairs.size(); ++i) {
      scored.push_back(LabeledScore{
          (*predictor)->Score(LinkMeasure::kAdamicAdar, labeled.pairs[i].u,
                              labeled.pairs[i].v),
          labeled.labels[i]});
    }
    std::printf("%-15s %-6u %-8.4f %-8.2f %-14.2f\n", v.kind,
                v.k, ComputeAuc(scored), PrecisionAtK(scored, 50),
                (*predictor)->MemoryBytes() / 1e6);
  }

  std::printf(
      "\nSketch predictors reach near-exact AUC at a fraction of the\n"
      "memory — and they never needed the graph to fit anywhere.\n");
  return 0;
}

// libFuzzer driver for the network request-frame decoder. Build with
// -DSTREAMLINK_FUZZ=ON (clang), then:
//   ./build/fuzz/fuzz_net_frame fuzz/corpus/net_frame

#include <cstddef>
#include <cstdint>

#include "verify/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return streamlink::FuzzNetFrame(data, size);
}

// libFuzzer driver for the predictor-snapshot loader. Build with
// -DSTREAMLINK_FUZZ=ON (clang), then:
//   ./build/fuzz/fuzz_snapshot_loader fuzz/corpus/snapshot_loader

#include <cstddef>
#include <cstdint>

#include "verify/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return streamlink::FuzzSnapshotLoader(data, size);
}

// libFuzzer driver for the edge-list text parser. Build with
// -DSTREAMLINK_FUZZ=ON (clang), then:
//   ./build/fuzz/fuzz_edge_parser fuzz/corpus/edge_parser

#include <cstddef>
#include <cstdint>

#include "verify/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return streamlink::FuzzEdgeListParser(data, size);
}

#include "obs/exemplar.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {
namespace obs {

namespace {

constexpr const char* kStageNames[kNumServeStages] = {
    "decode", "admission", "queue_wait", "snapshot_lookup",
    "topk",   "encode",    "write",
};

bool SlowerThan(const RequestTimeline& a, const RequestTimeline& b) {
  return a.total_ns > b.total_ns;  // min-heap: fastest resident on top
}

}  // namespace

const char* ServeStageName(ServeStage stage) {
  const auto i = static_cast<size_t>(stage);
  SL_CHECK(i < kNumServeStages) << "bad ServeStage " << i;
  return kStageNames[i];
}

ExemplarRing::ExemplarRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  heap_.reserve(capacity_);
}

void ExemplarRing::Offer(const RequestTimeline& timeline) {
  std::lock_guard<std::mutex> lock(mu_);
  ++offered_;
  if (heap_.size() < capacity_) {
    heap_.push_back(timeline);
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
    return;
  }
  if (timeline.total_ns <= heap_.front().total_ns) return;
  std::pop_heap(heap_.begin(), heap_.end(), SlowerThan);
  heap_.back() = timeline;
  std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
}

std::vector<RequestTimeline> ExemplarRing::SlowestFirst() const {
  std::vector<RequestTimeline> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(), SlowerThan);
  return out;
}

uint64_t ExemplarRing::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

void ExemplarRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  heap_.clear();
  offered_ = 0;
}

}  // namespace obs
}  // namespace streamlink

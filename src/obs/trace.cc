#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace streamlink {
namespace obs {

namespace {

/// Per-thread nesting depth of live ScopedSpans.
thread_local uint32_t t_span_depth = 0;

std::string EscapeJson(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    switch (*p) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(*p) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", *p);
          out += buf;
        } else {
          out += *p;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t Tracer::NowNs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t ring_capacity) {
  SL_CHECK(ring_capacity >= 1) << "ring capacity must be >= 1";
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    ring_capacity_ = ring_capacity;
  }
  NowNs();  // pin the epoch no later than the first enabled span
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::ThreadRing* Tracer::RingForThisThread() {
  // Shared ownership between this thread and the tracer keeps a ring's
  // spans drainable after the thread exits. All ScopedSpans go through the
  // Tracer::Get() singleton, so one TLS slot suffices.
  thread_local std::shared_ptr<ThreadRing> ring_tls;
  if (ring_tls == nullptr) {
    auto ring = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> lock(rings_mu_);
    ring->tid = next_tid_++;
    ring->capacity = ring_capacity_;
    rings_.push_back(ring);
    ring_tls = std::move(ring);
  }
  return ring_tls.get();
}

void Tracer::Record(const TraceSpan& span) {
  ThreadRing* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring->mu);
  TraceSpan stamped = span;
  stamped.tid = ring->tid;
  if (ring->spans.size() < ring->capacity) {
    ring->spans.push_back(stamped);
  } else {
    ring->spans[ring->next] = stamped;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring->next = (ring->next + 1) % ring->capacity;
  ++ring->written;
}

std::vector<TraceSpan> Tracer::Drain() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::vector<TraceSpan> spans;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    spans.insert(spans.end(), ring->spans.begin(), ring->spans.end());
    ring->spans.clear();
    ring->next = 0;
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.start_ns < b.start_ns;
            });
  return spans;
}

std::string Tracer::ToChromeJson(const std::vector<TraceSpan>& spans) {
  std::string out = "[\n";
  bool first = true;
  char buf[256];
  for (const TraceSpan& span : spans) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u}}",
                  EscapeJson(span.name).c_str(), span.start_ns / 1e3,
                  span.dur_ns / 1e3, span.tid, span.depth);
    out += buf;
  }
  out += "\n]\n";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) {
  std::vector<TraceSpan> spans = Drain();
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open trace file " + path);
  file << ToChromeJson(spans);
  file.flush();
  if (!file) return Status::IoError("failed writing trace file " + path);
  return Status::Ok();
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!Tracer::Get().enabled()) return;
  active_ = true;
  ++t_span_depth;
  start_ns_ = Tracer::NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const uint64_t end_ns = Tracer::NowNs();
  --t_span_depth;
  TraceSpan span;
  span.name = name_;
  span.start_ns = start_ns_;
  span.dur_ns = end_ns - start_ns_;
  span.depth = t_span_depth;
  Tracer::Get().Record(span);
}

void BindTracerMetrics(MetricsRegistry& registry) {
  registry.RegisterGaugeFn("trace.dropped_spans", [] {
    return static_cast<double>(Tracer::Get().dropped());
  });
}

}  // namespace obs
}  // namespace streamlink

#ifndef STREAMLINK_OBS_STATS_REPORTER_H_
#define STREAMLINK_OBS_STATS_REPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace streamlink {
namespace obs {

/// Output shape of a StatsReporter file. kAuto picks by extension:
/// `.csv` -> kCsv, `.prom`/`.txt` -> kText, anything else -> kJson.
enum class StatsFormat { kAuto, kJson, kText, kCsv };

struct StatsReporterOptions {
  /// Output file. JSON/text snapshots atomically replace the file each
  /// period (a scrape endpoint on disk); CSV appends long-format rows
  /// (elapsed_seconds, metric, value) so a whole run becomes one plottable
  /// trajectory.
  std::string path;
  /// Snapshot cadence for Start(); WriteOnce ignores it.
  double period_seconds = 1.0;
  StatsFormat format = StatsFormat::kAuto;
};

/// Periodically snapshots a MetricsRegistry to a file during long runs —
/// the flight recorder behind the CLI's `--metrics-every` flag. The
/// registry must outlive the reporter; Start/Stop from one thread.
class StatsReporter {
 public:
  StatsReporter(const MetricsRegistry& registry, StatsReporterOptions options);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Spawns the reporting thread. InvalidArgument on a bad period/path;
  /// FailedPrecondition when already started.
  Status Start();

  /// Stops and joins the reporting thread (idempotent). Does not write a
  /// final snapshot — call WriteOnce for that.
  void Stop();

  /// Writes one snapshot now, from the calling thread.
  Status WriteOnce();

  uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }

  /// The format kAuto resolves to for this reporter's path.
  StatsFormat resolved_format() const { return format_; }

 private:
  Status WriteSnapshot(const MetricsSnapshot& snapshot);

  const MetricsRegistry& registry_;
  StatsReporterOptions options_;
  StatsFormat format_;
  double start_seconds_ = 0.0;
  std::mutex io_mu_;  // serializes WriteOnce from caller + reporter thread
  bool csv_header_written_ = false;  // guarded by io_mu_

  std::mutex mu_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::atomic<uint64_t> snapshots_written_{0};
};

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_STATS_REPORTER_H_

#ifndef STREAMLINK_OBS_ADMIN_H_
#define STREAMLINK_OBS_ADMIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/exemplar.h"

namespace streamlink {
namespace obs {

/// Formatting layer of the admin plane: minimal HTTP/1.0 plumbing plus the
/// /healthz, /statusz, and /tracez page renderers. Everything here is pure
/// string-in/string-out over plain view structs so the obs library stays a
/// leaf — the NetServer (src/net/) owns the sockets and fills the views
/// from live serving state.

/// True once `buffer` holds a complete HTTP request head (terminating
/// blank line seen). Admin requests carry no body, so this is the whole
/// request.
bool HttpRequestComplete(std::string_view buffer);

/// Extracts the path from an HTTP request line ("GET /healthz HTTP/1.0").
/// Any query string is stripped. nullopt on a malformed line or a
/// non-GET method.
std::optional<std::string> ParseHttpRequestPath(std::string_view request);

/// Formats a complete HTTP/1.0 response (status line, Content-Type,
/// Content-Length, Connection: close, body).
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body);

/// Inputs to /healthz: current snapshot state plus the configured
/// readiness bounds (0 = unbounded).
struct HealthzView {
  bool has_snapshot = false;
  uint64_t staleness_edges = 0;
  double age_seconds = 0.0;
  uint64_t max_staleness_edges = 0;
  double max_age_seconds = 0.0;
};

struct HealthzResult {
  bool ready = false;
  std::string body;
};

/// Liveness is implied by responding at all; `ready` reflects snapshot
/// presence and the staleness/age bounds. The body says which bound
/// tripped.
HealthzResult RenderHealthz(const HealthzView& view);

/// Inputs to /statusz — a flat copy of the numbers a human wants first
/// when a serving process misbehaves.
struct StatuszView {
  double uptime_seconds = 0.0;
  std::string predictor_kind;
  uint64_t snapshot_version = 0;
  uint64_t snapshot_edges = 0;
  uint64_t live_edges = 0;
  uint64_t staleness_edges = 0;
  double snapshot_age_seconds = 0.0;
  uint64_t active_connections = 0;
  uint64_t queue_depth = 0;
  uint64_t requests_admitted = 0;
  uint64_t requests_shed = 0;
  uint64_t open_fds = 0;
  uint64_t threads = 0;
  uint64_t rss_kb = 0;
  /// (key, estimated count) of the hottest query keys, count-descending.
  std::vector<std::pair<uint64_t, uint64_t>> hot_keys;
};

std::string RenderStatusz(const StatuszView& view);

/// Renders the slowest-request table: one row per retained timeline,
/// per-stage microseconds in pipeline order.
std::string RenderTracez(const std::vector<RequestTimeline>& slowest,
                         uint64_t offered, size_t capacity);

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_ADMIN_H_

#ifndef STREAMLINK_OBS_EXEMPLAR_H_
#define STREAMLINK_OBS_EXEMPLAR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace streamlink {
namespace obs {

/// The fixed stage vocabulary of the serve path, in pipeline order. The
/// server stamps decode/admission/queue-wait/encode/write; the query
/// service stamps snapshot-lookup and top-k. Aggregates land in the
/// `serve.stage.<name>_ns` histograms; per-request timelines ride the
/// exemplar ring below and the codec's trace echo.
enum class ServeStage : uint32_t {
  kDecode = 0,
  kAdmission,
  kQueueWait,
  kSnapshotLookup,
  kTopK,
  kEncode,
  kWrite,
};

inline constexpr size_t kNumServeStages = 7;

/// Short stable name ("decode", "queue_wait", ...) for metric suffixes and
/// /tracez column headers. Fatal on out-of-range input.
const char* ServeStageName(ServeStage stage);

/// One request's per-stage wall time, nanoseconds per stage. total_ns is
/// admission to last write — the rank key for the exemplar ring.
struct RequestTimeline {
  uint64_t request_id = 0;
  uint64_t total_ns = 0;
  std::array<uint64_t, kNumServeStages> stage_ns{};
};

/// Bounded keep-the-slowest sample of request timelines: a min-heap on
/// total_ns behind a mutex. Offer is called once per completed request
/// from the event-loop thread, so a short critical section (heap
/// replace, O(log capacity)) is cheap; readers copy the sample out.
class ExemplarRing {
 public:
  explicit ExemplarRing(size_t capacity = 32);

  /// Considers one finished request. Kept iff the ring has a free slot or
  /// `timeline.total_ns` beats the current fastest resident.
  void Offer(const RequestTimeline& timeline);

  /// The retained timelines, slowest first.
  std::vector<RequestTimeline> SlowestFirst() const;

  /// Total timelines ever offered (kept or not).
  uint64_t offered() const;

  size_t capacity() const { return capacity_; }

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t offered_ = 0;
  std::vector<RequestTimeline> heap_;  // min-heap by total_ns
};

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_EXEMPLAR_H_

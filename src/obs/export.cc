#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace streamlink {
namespace obs {

namespace {

/// Shortest round-trippable formatting for gauge/derived values; plain
/// decimal for integral magnitudes so the common case stays readable.
std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "streamlink_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string ExportText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name);
    out << "# TYPE " << name << " counter\n";
    out << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << FormatNumber(g.value) << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    out << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [le, in_bucket] : h.buckets) {
      cumulative += in_bucket;
      out << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string ExportText(const MetricsRegistry& registry) {
  return ExportText(registry.Snapshot());
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": [";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    {\"name\": \"" << c.name
        << "\", \"value\": " << c.value << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n  \"gauges\": [";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    {\"name\": \"" << g.name
        << "\", \"value\": " << FormatNumber(g.value) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n  \"histograms\": [";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    {\"name\": \"" << h.name
        << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"mean\": " << FormatNumber(h.mean)
        << ", \"p50\": " << FormatNumber(h.p50)
        << ", \"p90\": " << FormatNumber(h.p90)
        << ", \"p99\": " << FormatNumber(h.p99)
        << ", \"max\": " << FormatNumber(h.max) << ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [le, in_bucket] : h.buckets) {
      out << (first_bucket ? "" : ", ") << "{\"le\": " << le
          << ", \"count\": " << in_bucket << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::string ExportJson(const MetricsRegistry& registry) {
  return ExportJson(registry.Snapshot());
}

namespace {

/// Minimal recursive-descent parser for the subset of JSON ExportJson
/// emits (objects, arrays, strings without escapes beyond \" and \\,
/// numbers). Not a general-purpose JSON library — just enough to read our
/// own dumps back, with clean errors on anything else.
class DumpParser {
 public:
  explicit DumpParser(const std::string& text) : text_(text) {}

  Result<MetricsSnapshot> Parse() {
    MetricsSnapshot snapshot;
    SkipSpace();
    if (!Consume('{')) return Err("expected top-level object");
    bool first = true;
    while (true) {
      SkipSpace();
      if (Consume('}')) break;
      if (!first && !Consume(',')) return Err("expected ',' or '}'");
      first = false;
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return Err("expected section name");
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'");
      Status st;
      if (key == "counters") {
        st = ParseSection([&](DumpParser& p) { return p.ParseCounter(&snapshot); });
      } else if (key == "gauges") {
        st = ParseSection([&](DumpParser& p) { return p.ParseGauge(&snapshot); });
      } else if (key == "histograms") {
        st = ParseSection(
            [&](DumpParser& p) { return p.ParseHistogram(&snapshot); });
      } else {
        return Err("unknown section '" + key + "'");
      }
      if (!st.ok()) return st;
    }
    SkipSpace();
    if (pos_ != text_.size()) return Err("trailing garbage");
    return snapshot;
  }

 private:
  template <typename EntryFn>
  Status ParseSection(EntryFn entry) {
    SkipSpace();
    if (!Consume('[')) return Err("expected array").status();
    while (true) {
      SkipSpace();
      if (Consume(']')) return Status::Ok();
      if (Status st = entry(*this); !st.ok()) return st;
      SkipSpace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Err("expected ',' or ']'").status();
    }
  }

  Status ParseCounter(MetricsSnapshot* snapshot) {
    CounterSample sample;
    double value = 0;
    Status st = ParseFlatObject([&](const std::string& key, DumpParser& p) {
      if (key == "name") return p.ParseStringInto(&sample.name);
      if (key == "value") return p.ParseNumberInto(&value);
      return Err("unknown counter field '" + key + "'").status();
    });
    if (!st.ok()) return st;
    sample.value = static_cast<uint64_t>(value);
    snapshot->counters.push_back(std::move(sample));
    return Status::Ok();
  }

  Status ParseGauge(MetricsSnapshot* snapshot) {
    GaugeSample sample;
    Status st = ParseFlatObject([&](const std::string& key, DumpParser& p) {
      if (key == "name") return p.ParseStringInto(&sample.name);
      if (key == "value") return p.ParseNumberInto(&sample.value);
      return Err("unknown gauge field '" + key + "'").status();
    });
    if (!st.ok()) return st;
    snapshot->gauges.push_back(std::move(sample));
    return Status::Ok();
  }

  Status ParseHistogram(MetricsSnapshot* snapshot) {
    HistogramSample sample;
    double count = 0, sum = 0;
    Status st = ParseFlatObject([&](const std::string& key, DumpParser& p) {
      if (key == "name") return p.ParseStringInto(&sample.name);
      if (key == "count") return p.ParseNumberInto(&count);
      if (key == "sum") return p.ParseNumberInto(&sum);
      if (key == "mean") return p.ParseNumberInto(&sample.mean);
      if (key == "p50") return p.ParseNumberInto(&sample.p50);
      if (key == "p90") return p.ParseNumberInto(&sample.p90);
      if (key == "p99") return p.ParseNumberInto(&sample.p99);
      if (key == "max") return p.ParseNumberInto(&sample.max);
      if (key == "buckets") return p.ParseBuckets(&sample);
      return Err("unknown histogram field '" + key + "'").status();
    });
    if (!st.ok()) return st;
    sample.count = static_cast<uint64_t>(count);
    sample.sum = static_cast<uint64_t>(sum);
    snapshot->histograms.push_back(std::move(sample));
    return Status::Ok();
  }

  Status ParseBuckets(HistogramSample* sample) {
    return ParseSection([sample](DumpParser& p) {
      double le = 0, in_bucket = 0;
      Status st = p.ParseFlatObject([&](const std::string& key, DumpParser& q) {
        if (key == "le") return q.ParseNumberInto(&le);
        if (key == "count") return q.ParseNumberInto(&in_bucket);
        return q.Err("unknown bucket field '" + key + "'").status();
      });
      if (!st.ok()) return st;
      sample->buckets.emplace_back(static_cast<uint64_t>(le),
                                   static_cast<uint64_t>(in_bucket));
      return Status::Ok();
    });
  }

  /// Parses `{"key": <scalar-or-array>, ...}` dispatching each field.
  template <typename FieldFn>
  Status ParseFlatObject(FieldFn field) {
    SkipSpace();
    if (!Consume('{')) return Err("expected object").status();
    bool first = true;
    while (true) {
      SkipSpace();
      if (Consume('}')) return Status::Ok();
      if (!first && !Consume(',')) return Err("expected ',' or '}'").status();
      first = false;
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return Err("expected field name").status();
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'").status();
      if (Status st = field(key, *this); !st.ok()) return st;
    }
  }

  Status ParseStringInto(std::string* out) {
    SkipSpace();
    if (!ParseString(out)) return Err("expected string").status();
    return Status::Ok();
  }

  Status ParseNumberInto(double* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected number").status();
    *out = std::strtod(text_.c_str() + start, nullptr);
    return Status::Ok();
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < text_.size()) {
        c = text_[pos_++];
        if (c == 'u') return false;  // never emitted by ExportJson
      }
      *out += c;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<MetricsSnapshot> Err(const std::string& message) const {
    return Status::InvalidArgument("metrics dump parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<MetricsSnapshot> ParseJsonDump(const std::string& json) {
  return DumpParser(json).Parse();
}

Result<MetricsSnapshot> ReadJsonDumpFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open metrics dump " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseJsonDump(buffer.str());
}

}  // namespace obs
}  // namespace streamlink

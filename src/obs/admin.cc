#include "obs/admin.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace streamlink {
namespace obs {

namespace {

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

std::string FormatMicros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

bool HttpRequestComplete(std::string_view buffer) {
  return buffer.find("\r\n\r\n") != std::string_view::npos ||
         buffer.find("\n\n") != std::string_view::npos;
}

std::optional<std::string> ParseHttpRequestPath(std::string_view request) {
  const size_t eol = request.find_first_of("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);
  if (line.substr(0, 4) != "GET ") return std::nullopt;
  line.remove_prefix(4);
  const size_t space = line.find(' ');
  if (space == std::string_view::npos || space == 0) return std::nullopt;
  std::string_view path = line.substr(0, space);
  const size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);
  if (path.empty() || path[0] != '/') return std::nullopt;
  return std::string(path);
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << status << " " << StatusReason(status) << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

HealthzResult RenderHealthz(const HealthzView& view) {
  HealthzResult result;
  if (!view.has_snapshot) {
    result.ready = false;
    result.body = "unready: no snapshot published\n";
    return result;
  }
  if (view.max_staleness_edges > 0 &&
      view.staleness_edges > view.max_staleness_edges) {
    result.ready = false;
    std::ostringstream body;
    body << "unready: snapshot staleness " << view.staleness_edges
         << " edges exceeds bound " << view.max_staleness_edges << "\n";
    result.body = body.str();
    return result;
  }
  if (view.max_age_seconds > 0.0 &&
      view.age_seconds > view.max_age_seconds) {
    result.ready = false;
    std::ostringstream body;
    body << "unready: snapshot age " << view.age_seconds
         << "s exceeds bound " << view.max_age_seconds << "s\n";
    result.body = body.str();
    return result;
  }
  result.ready = true;
  result.body = "ok\n";
  return result;
}

std::string RenderStatusz(const StatuszView& view) {
  std::ostringstream out;
  out << "streamlink net-serve status\n"
      << "uptime_seconds: " << view.uptime_seconds << "\n"
      << "predictor_kind: " << view.predictor_kind << "\n"
      << "snapshot_version: " << view.snapshot_version << "\n"
      << "snapshot_edges: " << view.snapshot_edges << "\n"
      << "live_edges: " << view.live_edges << "\n"
      << "staleness_edges: " << view.staleness_edges << "\n"
      << "snapshot_age_seconds: " << view.snapshot_age_seconds << "\n"
      << "active_connections: " << view.active_connections << "\n"
      << "queue_depth: " << view.queue_depth << "\n"
      << "requests_admitted: " << view.requests_admitted << "\n"
      << "requests_shed: " << view.requests_shed << "\n"
      << "open_fds: " << view.open_fds << "\n"
      << "threads: " << view.threads << "\n"
      << "rss_kb: " << view.rss_kb << "\n";
  if (!view.hot_keys.empty()) {
    out << "hot_keys (key: estimated count):\n";
    for (const auto& [key, count] : view.hot_keys) {
      out << "  " << key << ": " << count << "\n";
    }
  }
  return out.str();
}

std::string RenderTracez(const std::vector<RequestTimeline>& slowest,
                         uint64_t offered, size_t capacity) {
  std::ostringstream out;
  out << "slowest requests (" << slowest.size() << " of " << offered
      << " seen, ring capacity " << capacity << "), stage times in us\n";
  out << "request_id total";
  for (size_t i = 0; i < kNumServeStages; ++i) {
    out << " " << ServeStageName(static_cast<ServeStage>(i));
  }
  out << "\n";
  for (const RequestTimeline& t : slowest) {
    out << t.request_id << " " << FormatMicros(t.total_ns);
    for (size_t i = 0; i < kNumServeStages; ++i) {
      out << " " << FormatMicros(t.stage_ns[i]);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace streamlink

#include "obs/proc_stats.h"

#include <cstdlib>
#include <fstream>
#include <string>

namespace streamlink {
namespace obs {

namespace {

/// Reads a "<Key>:   <value> kB" line from /proc/self/status.
uint64_t StatusLineKb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  const std::string prefix = std::string(key) + ":";
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    return std::strtoull(line.c_str() + prefix.size(), nullptr, 10);
  }
  return 0;
}

}  // namespace

uint64_t PeakRssKb() { return StatusLineKb("VmHWM"); }

uint64_t CurrentRssKb() { return StatusLineKb("VmRSS"); }

}  // namespace obs
}  // namespace streamlink

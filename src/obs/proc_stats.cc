#include "obs/proc_stats.h"

#include <dirent.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace streamlink {
namespace obs {

namespace {

/// Reads a "<Key>:   <value>" line from /proc/self/status.
uint64_t StatusLineValue(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::stringstream buffer;
  buffer << status.rdbuf();
  return StatusValueFromText(buffer.str(), key);
}

}  // namespace

uint64_t StatusValueFromText(std::string_view status_text,
                             std::string_view key) {
  size_t pos = 0;
  while (pos < status_text.size()) {
    size_t eol = status_text.find('\n', pos);
    if (eol == std::string_view::npos) eol = status_text.size();
    const std::string_view line = status_text.substr(pos, eol - pos);
    if (line.size() > key.size() &&
        line.compare(0, key.size(), key) == 0 && line[key.size()] == ':') {
      // strtoull skips leading whitespace and stops at " kB" (or EOL).
      const std::string value(line.substr(key.size() + 1));
      return std::strtoull(value.c_str(), nullptr, 10);
    }
    pos = eol + 1;
  }
  return 0;
}

uint64_t PeakRssKb() {
  // Some container kernels omit VmHWM from /proc/self/status; the
  // current RSS is then the best available floor on the peak.
  const uint64_t peak = StatusLineValue("VmHWM");
  return peak > 0 ? peak : StatusLineValue("VmRSS");
}

uint64_t CurrentRssKb() { return StatusLineValue("VmRSS"); }

uint64_t ThreadCount() { return StatusLineValue("Threads"); }

uint64_t OpenFdCount() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  uint64_t count = 0;
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;  // "." and ".."
    ++count;
  }
  closedir(dir);
  // The scan itself holds one descriptor for the directory.
  return count > 0 ? count - 1 : 0;
}

void BindProcessMetrics(MetricsRegistry& registry) {
  registry.RegisterGaugeFn("proc.rss_kb", [] {
    return static_cast<double>(CurrentRssKb());
  });
  registry.RegisterGaugeFn("proc.peak_rss_kb", [] {
    return static_cast<double>(PeakRssKb());
  });
  registry.RegisterGaugeFn("proc.open_fds", [] {
    return static_cast<double>(OpenFdCount());
  });
  registry.RegisterGaugeFn("proc.threads", [] {
    return static_cast<double>(ThreadCount());
  });
}

}  // namespace obs
}  // namespace streamlink

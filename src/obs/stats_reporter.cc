#include "obs/stats_reporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/export.h"
#include "util/timer.h"

namespace streamlink {
namespace obs {

namespace {

StatsFormat ResolveFormat(const StatsReporterOptions& options) {
  if (options.format != StatsFormat::kAuto) return options.format;
  const std::string& path = options.path;
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".csv")) return StatsFormat::kCsv;
  if (ends_with(".prom") || ends_with(".txt")) return StatsFormat::kText;
  return StatsFormat::kJson;
}

}  // namespace

StatsReporter::StatsReporter(const MetricsRegistry& registry,
                             StatsReporterOptions options)
    : registry_(registry),
      options_(std::move(options)),
      format_(ResolveFormat(options_)),
      start_seconds_(MonotonicSeconds()) {}

StatsReporter::~StatsReporter() { Stop(); }

Status StatsReporter::Start() {
  if (options_.path.empty()) {
    return Status::InvalidArgument("stats reporter needs an output path");
  }
  if (options_.period_seconds <= 0.0) {
    return Status::InvalidArgument("stats reporter period must be > 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("stats reporter already started");
  }
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_requested_) {
      const auto period = std::chrono::duration<double>(
          options_.period_seconds);
      if (wake_.wait_for(lock, period, [this] { return stop_requested_; })) {
        break;
      }
      // Snapshot outside the lock so Stop never waits on file I/O.
      lock.unlock();
      WriteOnce();
      lock.lock();
    }
  });
  return Status::Ok();
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

Status StatsReporter::WriteOnce() {
  return WriteSnapshot(registry_.Snapshot());
}

Status StatsReporter::WriteSnapshot(const MetricsSnapshot& snapshot) {
  if (options_.path.empty()) {
    return Status::InvalidArgument("stats reporter needs an output path");
  }
  std::lock_guard<std::mutex> io_lock(io_mu_);
  if (format_ == StatsFormat::kCsv) {
    std::ofstream file(options_.path, std::ios::app);
    if (!file) return Status::IoError("cannot open " + options_.path);
    if (!csv_header_written_ && file.tellp() == 0) {
      file << "elapsed_seconds,metric,value\n";
    }
    csv_header_written_ = true;
    const double t = MonotonicSeconds() - start_seconds_;
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.3f", t);
    for (const CounterSample& c : snapshot.counters) {
      file << ts << ',' << c.name << ',' << c.value << '\n';
    }
    for (const GaugeSample& g : snapshot.gauges) {
      file << ts << ',' << g.name << ',' << g.value << '\n';
    }
    for (const HistogramSample& h : snapshot.histograms) {
      file << ts << ',' << h.name << ".count," << h.count << '\n';
      file << ts << ',' << h.name << ".mean," << h.mean << '\n';
      file << ts << ',' << h.name << ".p50," << h.p50 << '\n';
      file << ts << ',' << h.name << ".p99," << h.p99 << '\n';
    }
    file.flush();
    if (!file) return Status::IoError("failed writing " + options_.path);
  } else {
    std::ofstream file(options_.path, std::ios::trunc);
    if (!file) return Status::IoError("cannot open " + options_.path);
    file << (format_ == StatsFormat::kText ? ExportText(snapshot)
                                           : ExportJson(snapshot));
    file.flush();
    if (!file) return Status::IoError("failed writing " + options_.path);
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace obs
}  // namespace streamlink

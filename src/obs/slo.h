#ifndef STREAMLINK_OBS_SLO_H_
#define STREAMLINK_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sketch/space_saving.h"

namespace streamlink {
namespace obs {

class MetricsRegistry;

struct SloOptions {
  /// Latency objective per request. Requests at or under the objective
  /// count as within-SLO.
  uint64_t objective_latency_ns = 5'000'000;  // 5 ms
  /// Target fraction of requests within the objective (e.g. 0.999 = "three
  /// nines"). 1 - target is the error budget.
  double target = 0.999;
};

/// Tracks a single latency objective: within/violated counts and the
/// error-budget burn rate (observed violation fraction over the allowed
/// fraction; burn > 1 means the budget is being spent faster than the
/// target permits). Record is two relaxed atomic increments — safe from
/// any number of serving threads.
class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {});

  void Record(uint64_t latency_ns);

  uint64_t within() const { return within_.load(std::memory_order_relaxed); }
  uint64_t violated() const {
    return violated_.load(std::memory_order_relaxed);
  }

  /// (violated / total) / (1 - target); 0 with no traffic. A burn of 1.0
  /// means violations are arriving exactly at the budgeted rate.
  double BudgetBurn() const;

  const SloOptions& options() const { return options_; }

  /// Registers `slo.requests_within_total`, `slo.requests_violated_total`,
  /// `slo.error_budget_burn`, and `slo.objective_latency_ns` on `registry`.
  /// This object must outlive every scrape.
  void BindMetrics(MetricsRegistry& registry);

 private:
  const SloOptions options_;
  std::atomic<uint64_t> within_{0};
  std::atomic<uint64_t> violated_{0};
};

/// Mutex-guarded Space-Saving sketch over query keys (vertex ids), fed by
/// the serve path and scraped for skew-aware partitioning decisions. One
/// lock per query (not per key): callers batch a request's keys into a
/// single OfferBatch call.
class KeyFrequencyTopK {
 public:
  explicit KeyFrequencyTopK(uint32_t capacity = 64);

  /// Counts one occurrence of each key in `keys[0..n)`.
  void OfferBatch(const uint64_t* keys, size_t n);

  /// The k highest-frequency keys, count-descending.
  std::vector<SpaceSaving::Counter> TopK(uint32_t k) const;

  /// Total key occurrences offered.
  uint64_t total() const;

  uint32_t capacity() const { return capacity_; }

  /// Registers `slo.query_keys_total`, `slo.hot_keys_tracked`, and
  /// `slo.hot_key_top1_share` (top key's estimated share of all key
  /// occurrences) on `registry`. This object must outlive every scrape.
  void BindMetrics(MetricsRegistry& registry);

 private:
  const uint32_t capacity_;
  mutable std::mutex mu_;
  SpaceSaving sketch_;
};

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_SLO_H_

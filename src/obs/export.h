#ifndef STREAMLINK_OBS_EXPORT_H_
#define STREAMLINK_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace streamlink {
namespace obs {

/// Formats a scrape in the Prometheus text exposition format (version
/// 0.0.4): `# TYPE` comment per metric, names prefixed `streamlink_` with
/// dots mapped to underscores, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`.
std::string ExportText(const MetricsSnapshot& snapshot);
std::string ExportText(const MetricsRegistry& registry);

/// Formats a scrape as a self-describing JSON document:
///   {"counters":[{"name":...,"value":...}],
///    "gauges":[...],
///    "histograms":[{"name":...,"count":...,"sum":...,"mean":...,
///                   "p50":...,"p90":...,"p99":...,"max":...,
///                   "buckets":[{"le":...,"count":...}]}]}
/// ParseJsonDump reads this format back (the CLI `stats --metrics` path).
std::string ExportJson(const MetricsSnapshot& snapshot);
std::string ExportJson(const MetricsRegistry& registry);

/// Parses an ExportJson document back into a snapshot. Rejects anything
/// that is not a metrics dump with InvalidArgument.
Result<MetricsSnapshot> ParseJsonDump(const std::string& json);

/// Reads `path` and parses it with ParseJsonDump.
Result<MetricsSnapshot> ReadJsonDumpFile(const std::string& path);

/// Maps a metric name onto the Prometheus charset: `ingest.edges_total`
/// -> `streamlink_ingest_edges_total`.
std::string PrometheusName(const std::string& name);

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_EXPORT_H_

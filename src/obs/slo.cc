#include "obs/slo.h"

#include "obs/metrics.h"

namespace streamlink {
namespace obs {

SloTracker::SloTracker(SloOptions options) : options_(options) {}

void SloTracker::Record(uint64_t latency_ns) {
  if (latency_ns <= options_.objective_latency_ns) {
    within_.fetch_add(1, std::memory_order_relaxed);
  } else {
    violated_.fetch_add(1, std::memory_order_relaxed);
  }
}

double SloTracker::BudgetBurn() const {
  const uint64_t bad = violated();
  const uint64_t total = within() + bad;
  if (total == 0) return 0.0;
  const double allowed = 1.0 - options_.target;
  if (allowed <= 0.0) return bad == 0 ? 0.0 : static_cast<double>(total);
  const double observed =
      static_cast<double>(bad) / static_cast<double>(total);
  return observed / allowed;
}

void SloTracker::BindMetrics(MetricsRegistry& registry) {
  registry.RegisterGaugeFn("slo.requests_within_total", [this] {
    return static_cast<double>(within());
  });
  registry.RegisterGaugeFn("slo.requests_violated_total", [this] {
    return static_cast<double>(violated());
  });
  registry.RegisterGaugeFn("slo.error_budget_burn",
                           [this] { return BudgetBurn(); });
  registry.GetGauge("slo.objective_latency_ns")
      .Set(static_cast<double>(options_.objective_latency_ns));
}

KeyFrequencyTopK::KeyFrequencyTopK(uint32_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), sketch_(capacity_) {}

void KeyFrequencyTopK::OfferBatch(const uint64_t* keys, size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < n; ++i) sketch_.Offer(keys[i]);
}

std::vector<SpaceSaving::Counter> KeyFrequencyTopK::TopK(uint32_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.TopK(k);
}

uint64_t KeyFrequencyTopK::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.total_count();
}

void KeyFrequencyTopK::BindMetrics(MetricsRegistry& registry) {
  registry.RegisterGaugeFn("slo.query_keys_total", [this] {
    return static_cast<double>(total());
  });
  registry.RegisterGaugeFn("slo.hot_keys_tracked", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(sketch_.num_tracked());
  });
  registry.RegisterGaugeFn("slo.hot_key_top1_share", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t total = sketch_.total_count();
    if (total == 0) return 0.0;
    const auto top = sketch_.TopK(1);
    if (top.empty()) return 0.0;
    return static_cast<double>(top[0].count) / static_cast<double>(total);
  });
}

}  // namespace obs
}  // namespace streamlink

#ifndef STREAMLINK_OBS_PROC_STATS_H_
#define STREAMLINK_OBS_PROC_STATS_H_

#include <cstdint>
#include <string_view>

namespace streamlink {
namespace obs {

class MetricsRegistry;

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// /proc/self/status). Returns 0 where procfs is unavailable.
uint64_t PeakRssKb();

/// Current resident set size in kilobytes (`VmRSS`). 0 when unavailable.
uint64_t CurrentRssKb();

/// Number of threads in this process (`Threads` from /proc/self/status).
/// 0 when unavailable.
uint64_t ThreadCount();

/// Number of open file descriptors (entries under /proc/self/fd, not
/// counting the directory scan's own descriptor). 0 when unavailable.
uint64_t OpenFdCount();

/// Parses the integer after "<Key>:" from /proc/self/status-format text.
/// Works for both "VmHWM:  123 kB" and unit-less lines like "Threads: 7".
/// Returns 0 when the key is absent. Exposed for tests; the accessors
/// above are thin wrappers over this against the live procfs file.
uint64_t StatusValueFromText(std::string_view status_text,
                             std::string_view key);

/// Registers scrape-time process gauges on `registry`: `proc.rss_kb`,
/// `proc.peak_rss_kb`, `proc.open_fds`, and `proc.threads` — the numbers
/// /statusz and dashboards want without any caller-side plumbing.
void BindProcessMetrics(MetricsRegistry& registry);

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_PROC_STATS_H_

#ifndef STREAMLINK_OBS_PROC_STATS_H_
#define STREAMLINK_OBS_PROC_STATS_H_

#include <cstdint>

namespace streamlink {
namespace obs {

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// /proc/self/status). Returns 0 where procfs is unavailable.
uint64_t PeakRssKb();

/// Current resident set size in kilobytes (`VmRSS`). 0 when unavailable.
uint64_t CurrentRssKb();

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_PROC_STATS_H_

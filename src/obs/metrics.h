#ifndef STREAMLINK_OBS_METRICS_H_
#define STREAMLINK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace streamlink {
namespace obs {

/// Monotonically increasing event count, safe for any number of concurrent
/// writers. Writes land on one of a small set of cache-line-padded shards
/// (each thread sticks to one shard for its lifetime), so hot-path
/// increments never contend on a shared line; readers fold the shards on
/// scrape. A fold concurrent with writers is a consistent *lower bound* —
/// exactly the semantics a monitoring scrape needs.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n` events. Lock-free; one relaxed fetch_add on this thread's
  /// shard.
  void Add(uint64_t n = 1);

  /// Folds the shards. May run concurrently with Add.
  uint64_t Value() const;

  /// Clears all shards (not intended to race with Add).
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (staleness, queue depth, rates).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed fixed-bucket histogram over non-negative integer values
/// (nanoseconds, bytes, batch sizes, ...), safe for any number of
/// concurrent recorders with no locking — each sample is a few relaxed
/// atomic increments. Bucket i counts samples in [2^i, 2^(i+1)); quantile
/// reads log-linearly interpolate within the bucket holding the requested
/// rank, so estimates never leave that bucket (within 2x of truth in the
/// worst case, exact for log-uniform data) — the right fidelity for a
/// monitoring dashboard at per-sample cost independent of history length.
///
/// This is the *single* histogram implementation in the tree; the serving
/// layer's LatencyHistogram (serve/latency_histogram.h) is a thin
/// seconds-to-nanoseconds adapter over it.
class Histogram {
 public:
  /// 2^63 covers the whole uint64 value range.
  static constexpr size_t kNumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  virtual ~Histogram() = default;

  /// Records one sample.
  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Approximate p-quantile in raw value units, p in (0, 1]. Returns 0
  /// when no samples were recorded. Concurrent Record calls may be
  /// partially visible; the estimate is still within one bucket of a
  /// consistent cut.
  double Percentile(double p) const;

  /// Upper bound of the highest non-empty bucket (0 when empty) — a cheap
  /// stand-in for the true maximum.
  double MaxUpperBound() const;

  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of bucket `i`: 2^(i+1), saturating at the top bucket.
  static double BucketUpperBound(size_t i);

  /// Clears all counters (not intended to race with Record).
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One scraped counter/gauge/histogram — the consistent read the exporters
/// and the StatsReporter format from.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  /// Non-empty buckets as (upper bound, count in bucket), ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// A point-in-time scrape of a whole registry, ordered by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Owns named metrics and hands out stable references. Registration takes
/// a lock; the returned metric objects are wait-free on the hot path and
/// valid for the registry's lifetime. Names are dot-separated lowercase
/// (`ingest.edges_total`); the Prometheus exporter maps dots to
/// underscores (docs/observability.md has the full catalog).
///
/// Thread safety: every method may be called from any thread, concurrently
/// with metric updates and scrapes.
class MetricsRegistry {
 public:
  /// A gauge computed at scrape time (snapshot age, RSS). The callback
  /// must be safe to invoke from the scraping thread for as long as the
  /// registry can be scraped.
  using GaugeFn = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Registers an externally owned histogram (e.g. a QueryService's
  /// latency histogram) under `name`. The object must outlive every scrape
  /// of this registry. Re-registering the same pointer is a no-op;
  /// registering a different object under a taken name is a fatal error.
  void RegisterHistogram(const std::string& name, Histogram* histogram);

  /// Registers a scrape-time gauge. Replaces any previous callback of the
  /// same name (re-binding after a service restart is legal).
  void RegisterGaugeFn(const std::string& name, GaugeFn fn);

  /// Consistent point-in-time read of every metric. Safe concurrently
  /// with updates (relaxed reads; counters fold their shards).
  MetricsSnapshot Snapshot() const;

  /// The process-wide default registry the CLI and benches wire through.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, GaugeFn> gauge_fns_;
  std::map<std::string, Histogram*> histograms_;
  std::vector<std::unique_ptr<Histogram>> owned_histograms_;
};

/// Seconds-based adapter over Histogram for wall-time latencies: records
/// in nanoseconds, reads back in microseconds. Kept API-compatible with
/// the pre-obs serve/latency_histogram.h class.
class LatencyHistogram : public Histogram {
 public:
  /// Records one sample of `seconds` wall time.
  void Record(double seconds);

  uint64_t count() const { return Count(); }
  double MeanMicros() const { return Mean() / 1e3; }

  /// Approximate p-quantile in microseconds, p in (0, 1].
  double PercentileMicros(double p) const { return Percentile(p) / 1e3; }
};

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_METRICS_H_

#ifndef STREAMLINK_OBS_TRACE_H_
#define STREAMLINK_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {
namespace obs {

class MetricsRegistry;

/// One completed span: a named interval on one thread. Timestamps are
/// nanoseconds since the process-wide monotonic epoch (first tracer use).
struct TraceSpan {
  const char* name = nullptr;  ///< must be a static string
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;    ///< small sequential per-thread id
  uint32_t depth = 0;  ///< nesting level within the thread (0 = outermost)
};

/// Process-wide scoped-span tracer. Disabled it costs one relaxed atomic
/// load per ScopedSpan; enabled, each completed span is appended to a
/// bounded thread-local ring buffer (newest spans win when a thread
/// overflows its ring) under a per-thread mutex that only the draining
/// thread ever contends on. Drained spans serialize to the Chrome
/// `trace_event` JSON array format — load the file at chrome://tracing or
/// https://ui.perfetto.dev.
class Tracer {
 public:
  /// Starts capturing. `ring_capacity` bounds the retained spans per
  /// thread; older spans are overwritten once a thread's ring wraps.
  void Enable(size_t ring_capacity = 8192);

  /// Stops capturing. Already-recorded spans stay drainable.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Removes and returns every retained span, ordered by start time.
  std::vector<TraceSpan> Drain();

  /// Total spans dropped to ring wrap-around since Enable.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Drains and writes Chrome trace_event JSON ("X" complete events, one
  /// per span) to `path`.
  Status WriteChromeTrace(const std::string& path);

  /// Formats spans as a Chrome trace_event JSON array.
  static std::string ToChromeJson(const std::vector<TraceSpan>& spans);

  /// The process-wide tracer every ScopedSpan records into.
  static Tracer& Get();

  /// Nanoseconds since the process-wide monotonic epoch.
  static uint64_t NowNs();

 private:
  friend class ScopedSpan;

  /// Per-thread bounded span ring. Owned jointly by the writing thread
  /// (via thread_local shared_ptr) and the tracer (so spans survive thread
  /// exit until drained).
  struct ThreadRing {
    std::mutex mu;
    std::vector<TraceSpan> spans;  // ring once size reaches capacity
    size_t next = 0;               // ring write position
    uint64_t written = 0;          // total spans ever recorded
    uint32_t tid = 0;
    size_t capacity = 0;
  };

  void Record(const TraceSpan& span);
  ThreadRing* RingForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::mutex rings_mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  size_t ring_capacity_ = 8192;
  uint32_t next_tid_ = 0;
};

/// Registers a scrape-time `trace.dropped_spans` gauge on `registry`
/// reporting Tracer::Get().dropped(), so ring wrap-around loss shows up in
/// scrapes instead of silently truncating traces.
void BindTracerMetrics(MetricsRegistry& registry);

/// RAII span: records the interval from construction to destruction into
/// Tracer::Get() when tracing is enabled. `name` must be a static string
/// (spans store the pointer). Nesting is tracked per thread.
///
///   { obs::ScopedSpan span("ingest/publish"); Publish(); }
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace streamlink

#endif  // STREAMLINK_OBS_TRACE_H_

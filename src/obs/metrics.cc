#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.h"

namespace streamlink {
namespace obs {

namespace {

/// Each thread picks a counter shard once, round-robin, and keeps it for
/// life — worker pools spread evenly, and a shard index never changes
/// under a running increment.
size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return shard;
}

}  // namespace

void Counter::Add(uint64_t n) {
  shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::Record(uint64_t value) {
  const size_t bucket =
      value == 0 ? 0 : static_cast<size_t>(std::bit_width(value)) - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  if (n == 0) return 0.0;
  return static_cast<double>(Sum()) / static_cast<double>(n);
}

double Histogram::BucketUpperBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) + 1);
}

double Histogram::Percentile(double p) const {
  const uint64_t n = Count();
  if (n == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Log-linear interpolation within [2^i, 2^(i+1)): spread the bucket's
      // mass geometrically across the bucket, which is exact for
      // log-uniform data and never leaves the bucket holding the rank.
      // frac is in (0, 1], so p == 1 of a single-bucket histogram still
      // reports the bucket's upper bound.
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(in_bucket);
      if (i == 0) return frac * BucketUpperBound(0);  // [0, 2): linear
      return std::ldexp(1.0, static_cast<int>(i)) * std::exp2(frac);
    }
    seen += in_bucket;
  }
  return BucketUpperBound(kNumBuckets - 1);
}

double Histogram::MaxUpperBound() const {
  for (size_t i = kNumBuckets; i-- > 0;) {
    if (buckets_[i].load(std::memory_order_relaxed) > 0) {
      return BucketUpperBound(i);
    }
  }
  return 0.0;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::Record(double seconds) {
  Histogram::Record(
      seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  owned_histograms_.push_back(std::make_unique<Histogram>());
  Histogram* histogram = owned_histograms_.back().get();
  histograms_.emplace(name, histogram);
  return *histogram;
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        Histogram* histogram) {
  SL_CHECK(histogram != nullptr) << "null histogram for " << name;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.emplace(name, histogram);
  SL_CHECK(inserted || it->second == histogram)
      << "histogram name '" << name << "' already bound to another object";
}

void MetricsRegistry::RegisterGaugeFn(const std::string& name, GaugeFn fn) {
  SL_CHECK(fn != nullptr) << "null gauge callback for " << name;
  std::lock_guard<std::mutex> lock(mu_);
  gauge_fns_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back(CounterSample{name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size() + gauge_fns_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back(GaugeSample{name, gauge->Value()});
  }
  for (const auto& [name, fn] : gauge_fns_) {
    snapshot.gauges.push_back(GaugeSample{name, fn()});
  }
  // gauges_ and gauge_fns_ are each sorted; a callback shadowing a settable
  // gauge is a registration bug, not worth detecting here. Keep the merged
  // list name-ordered for stable export output.
  std::inplace_merge(
      snapshot.gauges.begin(), snapshot.gauges.end() - gauge_fns_.size(),
      snapshot.gauges.end(),
      [](const GaugeSample& a, const GaugeSample& b) { return a.name < b.name; });
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.count = histogram->Count();
    sample.sum = histogram->Sum();
    sample.mean = histogram->Mean();
    sample.p50 = histogram->Percentile(0.5);
    sample.p90 = histogram->Percentile(0.9);
    sample.p99 = histogram->Percentile(0.99);
    sample.max = histogram->MaxUpperBound();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t in_bucket = histogram->BucketCount(i);
      if (in_bucket > 0) {
        // The top bucket's true bound is 2^64; saturate instead of
        // overflowing the integer representation.
        const uint64_t bound =
            i + 1 >= 64 ? UINT64_MAX : (uint64_t{1} << (i + 1));
        sample.buckets.emplace_back(bound, in_bucket);
      }
    }
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace streamlink

#include "util/timer.h"

#include <cstdio>

namespace streamlink {

void WallTimer::Start() {
  lap_start_ = Clock::now();
  running_ = true;
}

void WallTimer::Stop() {
  if (!running_) return;
  accumulated_ns_ +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           lap_start_)
          .count();
  running_ = false;
}

void WallTimer::Reset() {
  accumulated_ns_ = 0;
  running_ = false;
}

int64_t WallTimer::Nanos() const {
  int64_t ns = accumulated_ns_;
  if (running_) {
    ns += std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               lap_start_)
              .count();
  }
  return ns;
}

double WallTimer::Seconds() const { return static_cast<double>(Nanos()) * 1e-9; }

double MonotonicSeconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace streamlink

#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace streamlink {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel SetLogThreshold(LogLevel level) {
  return g_threshold.exchange(level);
}

LogLevel GetLogThreshold() { return g_threshold.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_threshold.load() || level_ == LogLevel::kFatal) {
    std::string msg = stream_.str();
    std::fprintf(stderr, "%s\n", msg.c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace streamlink

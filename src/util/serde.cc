#include "util/serde.h"

#include <bit>
#include <cstring>

namespace streamlink {

static_assert(std::endian::native == std::endian::little,
              "streamlink snapshots assume a little-endian host");

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary) {
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out_) status_ = Status::IoError("write failed");
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteDouble(double v) { WriteBytes(&v, sizeof(v)); }

Status BinaryWriter::Finish() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_ && status_.ok()) status_ = Status::IoError("flush failed");
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open for reading: " + path);
  }
}

void BinaryReader::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::IoError(message);
}

bool BinaryReader::ReadBytes(void* data, size_t size) {
  if (!status_.ok()) {
    std::memset(data, 0, size);
    return false;
  }
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in_) {
    std::memset(data, 0, size);
    Fail("unexpected end of snapshot");
    return false;
  }
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadDouble() {
  double v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

}  // namespace streamlink

#include "util/serde.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <iterator>

namespace streamlink {

static_assert(std::endian::native == std::endian::little,
              "streamlink snapshots assume a little-endian host");

BinaryWriter::BinaryWriter(const std::string& path)
    : file_(path, std::ios::binary), out_(&file_) {
  if (!file_.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

BinaryWriter::BinaryWriter(std::ostream& out) : out_(&out) {}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (!status_.ok()) return;
  out_->write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  if (!*out_) {
    status_ = Status::IoError("write failed");
    return;
  }
  checksum_ = Fnv1aUpdate(checksum_, data, size);
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteDouble(double v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!s.empty()) WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteChecksumFooter() {
  const uint64_t digest = checksum_;  // capture before the footer write
  WriteU64(digest);
}

Status BinaryWriter::Finish() {
  out_->flush();
  if (!*out_ && status_.ok()) status_ = Status::IoError("flush failed");
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_) {
  if (!file_.is_open()) {
    status_ = Status::IoError("cannot open for reading: " + path);
  }
}

BinaryReader::BinaryReader(std::istream& in) : in_(&in) {}

void BinaryReader::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::IoError(message);
}

bool BinaryReader::ReadBytes(void* data, size_t size) {
  if (!status_.ok()) {
    std::memset(data, 0, size);
    return false;
  }
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!*in_) {
    std::memset(data, 0, size);
    Fail("unexpected end of snapshot");
    return false;
  }
  checksum_ = Fnv1aUpdate(checksum_, data, size);
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadDouble() {
  double v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint64_t size = ReadU64();
  if (!ok()) return {};
  if (size > (1ULL << 20)) {
    Fail("string size implausible: " + std::to_string(size));
    return {};
  }
  std::string s(size, '\0');
  if (size > 0 && !ReadBytes(s.data(), size)) return {};
  return s;
}

bool BinaryReader::AtEnd() {
  if (!status_.ok()) return true;
  return in_->peek() == std::istream::traits_type::eof();
}

Status BinaryReader::VerifyChecksumFooter() {
  if (!status_.ok()) return status_;
  const uint64_t expected = checksum_;  // digest of everything before footer
  const uint64_t stored = ReadU64();
  if (!status_.ok()) return status_;
  if (stored != expected) {
    Fail("snapshot checksum mismatch (corrupt or torn file)");
    return status_;
  }
  if (!AtEnd()) {
    Fail("trailing bytes after snapshot checksum");
    return status_;
  }
  return Status::Ok();
}

void WriteSnapshotHeader(BinaryWriter& writer, const std::string& kind,
                         uint32_t payload_version) {
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotEnvelopeVersion);
  writer.WriteString(kind);
  writer.WriteU32(payload_version);
}

Result<SnapshotHeader> ReadSnapshotHeader(BinaryReader& reader) {
  if (!reader.ok()) return reader.status();
  uint32_t magic = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a streamlink snapshot (bad magic)");
  }
  uint32_t envelope = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  if (envelope != kSnapshotEnvelopeVersion) {
    return Status::InvalidArgument("unsupported snapshot envelope version " +
                                   std::to_string(envelope));
  }
  SnapshotHeader header;
  header.kind = reader.ReadString();
  header.payload_version = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  if (header.kind.empty()) {
    return Status::InvalidArgument("snapshot has an empty kind tag");
  }
  return header;
}

Status PreflightSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("not a streamlink snapshot (too short): " +
                                   path);
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a streamlink snapshot (bad magic): " +
                                   path);
  }
  if (bytes.size() < sizeof(uint32_t) + sizeof(uint64_t)) {
    return Status::IoError("snapshot truncated before checksum footer: " +
                           path);
  }
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
              sizeof(stored));
  const uint64_t digest =
      Fnv1aUpdate(kFnv1aOffset, bytes.data(), bytes.size() - sizeof(stored));
  if (digest != stored) {
    return Status::IoError(
        "snapshot checksum mismatch (corrupt or torn file): " + path);
  }
  return Status::Ok();
}

namespace {

/// fsync(2) on a path; used for the temp file's data and the parent
/// directory entry after rename. Directory fsync failures are tolerated
/// (some filesystems refuse), data fsync failures are not.
Status FsyncPath(const std::string& path, bool required) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return required ? Status::IoError("cannot reopen for fsync: " + path)
                    : Status::Ok();
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && required) {
    return Status::IoError("fsync failed: " + path);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(BinaryWriter&)>& fill) {
  const std::string tmp = path + ".tmp";
  {
    BinaryWriter writer(tmp);
    if (!writer.status().ok()) return writer.status();
    if (Status st = fill(writer); !st.ok()) {
      std::remove(tmp.c_str());
      return st;
    }
    writer.WriteChecksumFooter();
    if (Status st = writer.Finish(); !st.ok()) {
      std::remove(tmp.c_str());
      return st;
    }
  }  // stream closed here; bytes are in the page cache
  if (Status st = FsyncPath(tmp, /*required=*/true); !st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  // Persist the directory entry so the rename itself survives a crash.
  size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  return FsyncPath(dir, /*required=*/false);
}

}  // namespace streamlink

#ifndef STREAMLINK_UTIL_TABLE_PRINTER_H_
#define STREAMLINK_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace streamlink {

/// Renders aligned, human-readable result tables on the console — the bench
/// binaries print the paper's tables/figures as rows through this.
///
///   TablePrinter t({"k", "jaccard err", "cn err"});
///   t.AddRow({"16", "0.081", "0.122"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Adds one row; short rows are padded with empty cells, long rows extend
  /// the column set.
  void AddRow(std::vector<std::string> cells);

  /// Numeric convenience with %.4g formatting.
  void AddNumericRow(const std::vector<double>& cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with a header rule and column padding.
  void Print(std::ostream& os) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

  /// Formats a double with %.4g (the table-wide numeric format).
  static std::string FormatCell(double v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_TABLE_PRINTER_H_

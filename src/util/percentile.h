#ifndef STREAMLINK_UTIL_PERCENTILE_H_
#define STREAMLINK_UTIL_PERCENTILE_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace streamlink {

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element whose 1-based rank r satisfies r >= q * N, i.e.
/// sorted[ceil(q * N) - 1] for q in (0, 1], clamped to the sample at both
/// ends (q <= 0 reads the minimum, q >= 1 the maximum). Note the ceil:
/// truncating instead reads one rank high whenever q * N lands on an
/// integer — the median of [1, 2] is 1 here, not 2.
inline double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_PERCENTILE_H_

#ifndef STREAMLINK_UTIL_FLAGS_H_
#define STREAMLINK_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {

/// Minimal command-line flag parser for the bench and example binaries.
/// Accepts `--name=value` and `--name value`; bare `--flag` means "true".
/// Positional arguments are collected separately.
///
///   FlagParser flags(argc, argv);
///   int k = flags.GetInt("k", 64);
///   std::string out = flags.GetString("out", "results.csv");
///   SL_CHECK_OK(flags.CheckUnknown({"k", "out"}));
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  /// Constructs from pre-split tokens (testing convenience).
  explicit FlagParser(const std::vector<std::string>& args);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Returns InvalidArgument if any parsed flag is not in `known` — catches
  /// typos like `--sketchsize`.
  Status CheckUnknown(const std::vector<std::string>& known) const;

 private:
  void Parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_FLAGS_H_

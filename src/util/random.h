#ifndef STREAMLINK_UTIL_RANDOM_H_
#define STREAMLINK_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamlink {

/// xoshiro256++ pseudo-random generator (Blackman & Vigna). Deterministic
/// from a 64-bit seed; every source of randomness in the library flows
/// through an explicitly seeded Rng so experiments reproduce bit-for-bit.
///
/// Seeding contract: a 64-bit seed fully determines the output stream —
/// the same seed yields the identical sequence on every platform,
/// compiler, and build mode, for Next() and for every derived draw
/// (NextBounded consumes via Lemire rejection, doubles via the 53-bit
/// conversion, Fork() via one Next()). Nothing here depends on
/// std::hash, <random> distributions, or any other
/// implementation-defined source, so recorded experiment seeds replay
/// bit-for-bit anywhere. Golden values in tests/random_test.cc pin this
/// contract; changing the seeding expansion or the generator breaks
/// every recorded seed and must be treated as a format break.
///
/// Satisfies the UniformRandomBitGenerator concept, so it also plugs into
/// <random> distributions when needed — but doing so leaves the contract:
/// std:: distribution output is implementation-defined and may differ
/// across standard libraries.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the state via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in (0, 1] — safe for log().
  double NextDoublePositive();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal variate (Box-Muller, cached spare).
  double NextGaussian();

  /// Exponential(1) variate.
  double NextExp();

  /// Geometric: number of failures before first success, p in (0, 1].
  uint64_t NextGeometric(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (Floyd's algorithm when
  /// count << n, shuffle-prefix otherwise). Result is in no defined order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t count);

  /// Forks an independent generator; deterministic given this Rng's state.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_RANDOM_H_

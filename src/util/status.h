#ifndef STREAMLINK_UTIL_STATUS_H_
#define STREAMLINK_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace streamlink {

/// Error categories used across the library. The set is deliberately small:
/// streamlink is a computational library, so most failures are either bad
/// caller input or I/O problems.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
///
/// The library does not throw exceptions; every fallible operation returns
/// `Status` (or `Result<T>`). `Status` is cheap to copy in the OK case
/// (message string is empty).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, modeled after absl::StatusOr.
///
/// Invariant: exactly one of {value, error status} is held. Accessing
/// `value()` on an error Result aborts (see logging.h SL_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `Result<int> r = 42;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing from an OK
  /// status is a programming error and yields an Internal error instead.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status; OK if a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Returns the held value. Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_STATUS_H_

#ifndef STREAMLINK_UTIL_LOGGING_H_
#define STREAMLINK_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace streamlink {

enum class LogLevel { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

namespace internal_logging {

/// Stream-style log sink. Collects the message and emits it (to stderr) on
/// destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum level that is actually printed (kFatal always prints
/// and aborts). Returns the previous threshold. Thread-compatible.
LogLevel SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace streamlink

/// Stream-style logging: SL_LOG(kWarning) << "degree " << d << " too big";
#define SL_LOG(severity)                                         \
  ::streamlink::internal_logging::LogMessage(                    \
      ::streamlink::LogLevel::severity, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Enabled in all build modes;
/// use for checking invariants whose violation would corrupt results.
#define SL_CHECK(cond)                                             \
  if (!(cond))                                                     \
  SL_LOG(kFatal) << "Check failed: " #cond " "

#define SL_CHECK_OK(status_expr)                                  \
  if (auto _sl_st = (status_expr); !_sl_st.ok())                  \
  SL_LOG(kFatal) << "Status not OK: " << _sl_st.ToString() << " "

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SL_DCHECK(cond) \
  if (false && !(cond)) SL_LOG(kFatal)
#else
#define SL_DCHECK(cond) SL_CHECK(cond)
#endif

#endif  // STREAMLINK_UTIL_LOGGING_H_

#include "util/hashing.h"

#include <cmath>

#include "util/logging.h"

namespace streamlink {

double HashToExp(uint64_t h) {
  // -ln(U) with U in (0, 1] is Exp(1). HashToUnit never yields 0.
  return -std::log(HashToUnit(h));
}

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  uint64_t h = Mix64(seed ^ 0xcbf29ce484222325ULL);
  for (unsigned char c : bytes) {
    h = Mix64(h ^ c);
  }
  // Fold in the length so "a\0" and "a" differ.
  return Mix64(h ^ bytes.size());
}

HashFamily::HashFamily(uint64_t master_seed, uint32_t size)
    : master_seed_(master_seed) {
  SL_CHECK(size > 0) << "HashFamily needs at least one function";
  seeds_.reserve(size);
  mixed_seeds_.reserve(size);
  uint64_t s = master_seed;
  for (uint32_t i = 0; i < size; ++i) {
    s = Mix64(s + 0x9e3779b97f4a7c15ULL);
    seeds_.push_back(s);
    mixed_seeds_.push_back(MixSeed(s));
  }
}

TabulationFamily::TabulationFamily(uint64_t master_seed, uint32_t size)
    : master_seed_(master_seed) {
  SL_CHECK(size > 0) << "TabulationFamily needs at least one function";
  functions_.reserve(size);
  uint64_t s = master_seed;
  for (uint32_t i = 0; i < size; ++i) {
    s = Mix64(s + 0x9e3779b97f4a7c15ULL);
    functions_.emplace_back(s);
  }
}

TabulationHash::TabulationHash(uint64_t seed) {
  uint64_t s = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) {
      s = Mix64(s + 0x9e3779b97f4a7c15ULL);
      entry = s;
    }
  }
}

}  // namespace streamlink

#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace streamlink {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  while (cells.size() > columns_.size()) columns_.emplace_back("");
  while (cells.size() < columns_.size()) cells.emplace_back("");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatCell(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(FormatCell(v));
  AddRow(std::move(text));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  " << cell;
      for (size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace streamlink

#include "util/random.h"

#include <cmath>
#include <unordered_set>

#include "util/hashing.h"
#include "util/logging.h"

namespace streamlink {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion, the recommended seeding procedure for xoshiro.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
  // All-zero state is invalid for xoshiro; Mix64 of distinct inputs cannot
  // produce four zeros, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SL_DCHECK(bound > 0) << "NextBounded requires bound > 0";
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SL_DCHECK(lo <= hi) << "NextInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextDoublePositive() {
  return (static_cast<double>(Next() >> 11) + 1.0) *
         (1.0 / 9007199254740992.0);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = NextDoublePositive();
  double v = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u));
  double theta = 2.0 * M_PI * v;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExp() { return -std::log(NextDoublePositive()); }

uint64_t Rng::NextGeometric(double p) {
  SL_DCHECK(p > 0.0 && p <= 1.0) << "NextGeometric requires p in (0,1]";
  if (p >= 1.0) return 0;
  double u = NextDoublePositive();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n,
                                                    uint64_t count) {
  SL_CHECK(count <= n) << "cannot sample " << count << " distinct from " << n;
  std::vector<uint64_t> out;
  out.reserve(count);
  if (count == 0) return out;
  if (count * 3 >= n) {
    // Dense case: partial Fisher-Yates over an explicit index vector.
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t j = i + NextBounded(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(count * 2);
  for (uint64_t j = n - count; j < n; ++j) {
    uint64_t t = NextBounded(j + 1);
    if (!chosen.insert(t).second) {
      chosen.insert(j);
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace streamlink

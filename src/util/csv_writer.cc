#include "util/csv_writer.h"

#include <cstdio>

#include "util/logging.h"

namespace streamlink {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

CsvWriter::~CsvWriter() { Flush(); }

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  SL_CHECK(!header_written_) << "CSV header written twice";
  SL_CHECK(rows_written_ == 0) << "CSV header after data rows";
  header_written_ = true;
  AppendRow(columns);
  rows_written_ = 0;  // header does not count as a data row
}

void CsvWriter::AppendRow(const std::vector<std::string>& cells) {
  if (!status_.ok()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeField(cells[i]);
  }
  out_ << '\n';
  ++rows_written_;
}

void CsvWriter::AppendNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  char buf[40];
  for (double v : cells) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    text.emplace_back(buf);
  }
  AppendRow(text);
}

void CsvWriter::Flush() {
  if (out_.is_open()) out_.flush();
}

}  // namespace streamlink

#include "util/flags.h"

#include <cstdlib>

namespace streamlink {

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? argc - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  Parse(args);
}

FlagParser::FlagParser(const std::vector<std::string>& args) { Parse(args); }

void FlagParser::Parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[body] = args[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

Status FlagParser::CheckUnknown(
    const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    bool found = false;
    for (const auto& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
  }
  return Status::Ok();
}

}  // namespace streamlink

#ifndef STREAMLINK_UTIL_HASHING_H_
#define STREAMLINK_UTIL_HASHING_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace streamlink {

/// 64-bit finalizer from SplitMix64 / MurmurHash3 lineage. Bijective on
/// uint64_t, passes avalanche tests; the workhorse mixer of the library.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The seed-decorrelation constant of HashU64; exposed so callers that
/// evaluate many keys under one seed (HashFamily, batched sketch kernels)
/// can hoist the seed's mixing round out of their loop.
inline constexpr uint64_t kHashSeedTweak = 0x8e2f9d4b6a3c5e71ULL;

/// Pre-mixes a seed for HashU64WithMixedSeed: hash one seed once, then
/// hash many keys at half the mixing cost. HashU64WithMixedSeed(key,
/// MixSeed(seed)) == HashU64(key, seed), bit for bit.
inline uint64_t MixSeed(uint64_t seed) { return Mix64(seed ^ kHashSeedTweak); }

/// The per-key half of HashU64, taking a MixSeed-prepared seed.
inline uint64_t HashU64WithMixedSeed(uint64_t key, uint64_t mixed_seed) {
  return Mix64(key ^ mixed_seed);
}

/// Seeded 64-bit hash of a 64-bit key. Distinct seeds give (empirically)
/// independent hash functions; used to build the k-permutation MinHash
/// family. Two mixing rounds decorrelate seed and key.
inline uint64_t HashU64(uint64_t key, uint64_t seed) {
  return HashU64WithMixedSeed(key, MixSeed(seed));
}

/// Maps a 64-bit hash to the open-closed unit interval (0, 1].
/// Never returns 0, so -log(x) and 1/x are always finite.
inline double HashToUnit(uint64_t h) {
  // 2^-64 * (h + 1): h = 2^64-1 maps to 1.0, h = 0 maps to 2^-64 > 0.
  return (static_cast<double>(h >> 11) + 1.0) * (1.0 / 9007199254740992.0);
}

/// Converts a 64-bit hash into an Exp(1) variate via inversion. Used for
/// exponential-rank (bottom-k / PPSWOR) weighted sampling.
double HashToExp(uint64_t h);

/// Seeded hash of a byte string (FNV-1a style with 64-bit mixing rounds).
uint64_t HashBytes(std::string_view bytes, uint64_t seed);

/// A family of k seeded hash functions over uint64_t keys, derived from a
/// single master seed. `Hash(i, key)` is the i-th function. The family is
/// what MinHash-style sketches consume.
class HashFamily {
 public:
  /// Creates `size` hash functions derived from `master_seed`.
  HashFamily(uint64_t master_seed, uint32_t size);

  uint32_t size() const { return static_cast<uint32_t>(seeds_.size()); }
  uint64_t master_seed() const { return master_seed_; }

  /// The i-th hash of `key`. Precondition: i < size(). Equals
  /// HashU64(key, seed(i)); the seed's mixing round is pre-computed at
  /// construction, so each call is a single Mix64 — which halves the work
  /// of k-permutation sketch updates without changing any output bit.
  uint64_t Hash(uint32_t i, uint64_t key) const {
    return HashU64WithMixedSeed(key, mixed_seeds_[i]);
  }

  /// Seed of the i-th function (stable across runs for the same master).
  uint64_t seed(uint32_t i) const { return seeds_[i]; }

 private:
  uint64_t master_seed_;
  std::vector<uint64_t> seeds_;
  std::vector<uint64_t> mixed_seeds_;  // MixSeed(seeds_[i]), cached
};

/// Simple tabulation hashing over 64-bit keys (8 tables of 256 entries).
/// 3-independent, and known to give Chernoff-style concentration for
/// min-wise estimation; offered as the theoretically safer alternative to
/// the mixer-based family.
class TabulationHash {
 public:
  explicit TabulationHash(uint64_t seed);

  uint64_t operator()(uint64_t key) const {
    uint64_t h = 0;
    for (int b = 0; b < 8; ++b) {
      h ^= tables_[b][static_cast<uint8_t>(key >> (8 * b))];
    }
    return h;
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

/// A family of k independent *tabulation* hash functions — the
/// theoretically safer drop-in for HashFamily (simple tabulation is
/// 3-independent and gives Chernoff-style concentration for min-wise
/// estimation; Pătraşcu & Thorup). Costs 16 KiB of tables per function,
/// paid once per predictor. The A14 ablation bench measures whether the
/// mixer family leaves accuracy on the table.
class TabulationFamily {
 public:
  TabulationFamily(uint64_t master_seed, uint32_t size);

  uint32_t size() const { return static_cast<uint32_t>(functions_.size()); }
  uint64_t master_seed() const { return master_seed_; }

  uint64_t Hash(uint32_t i, uint64_t key) const { return functions_[i](key); }

 private:
  uint64_t master_seed_;
  std::vector<TabulationHash> functions_;
};

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_HASHING_H_

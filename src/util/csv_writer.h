#ifndef STREAMLINK_UTIL_CSV_WRITER_H_
#define STREAMLINK_UTIL_CSV_WRITER_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {

/// Writes rows of experiment results as RFC-4180-ish CSV. Used by the bench
/// harness so every table/figure also lands on disk for plotting.
///
/// Values containing commas, quotes, or newlines are quoted and escaped.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check `status()` before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  Status status() const { return status_; }

  /// Writes the header row. Call at most once, before any AppendRow.
  void WriteHeader(const std::vector<std::string>& columns);

  /// Appends one data row. Row width should match the header's.
  void AppendRow(const std::vector<std::string>& cells);

  /// Convenience: builds string cells from doubles with %.6g formatting.
  void AppendNumericRow(const std::vector<double>& cells);

  /// Flushes buffered output to disk.
  void Flush();

  uint64_t rows_written() const { return rows_written_; }

  /// Escapes a single CSV field (exposed for testing).
  static std::string EscapeField(const std::string& field);

 private:
  std::ofstream out_;
  Status status_;
  uint64_t rows_written_ = 0;
  bool header_written_ = false;
};

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_CSV_WRITER_H_

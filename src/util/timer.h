#ifndef STREAMLINK_UTIL_TIMER_H_
#define STREAMLINK_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace streamlink {

/// Monotonic wall-clock stopwatch with start/stop/resume semantics.
class WallTimer {
 public:
  /// Constructs a stopped timer with zero accumulated time.
  WallTimer() = default;

  /// Starts (or restarts after Stop) the timer. Calling Start on a running
  /// timer resets the current lap's origin but keeps accumulated time.
  void Start();

  /// Stops the timer, folding the current lap into the accumulated total.
  void Stop();

  /// Clears accumulated time and stops the timer.
  void Reset();

  bool running() const { return running_; }

  /// Accumulated time; includes the in-flight lap if running.
  double Seconds() const;
  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }
  int64_t Nanos() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point lap_start_{};
  int64_t accumulated_ns_ = 0;
  bool running_ = false;
};

/// Measures throughput: events per second over a timed region.
///
///   Stopwatch sw;
///   ... process n items ...
///   double eps = sw.Rate(n);
class Stopwatch {
 public:
  /// Starts timing immediately.
  Stopwatch() { timer_.Start(); }

  /// Restarts from zero.
  void Restart() {
    timer_.Reset();
    timer_.Start();
  }

  double ElapsedSeconds() const { return timer_.Seconds(); }

  /// Events per second for `count` events in the elapsed window.
  /// Returns 0 when no time has elapsed.
  double Rate(uint64_t count) const {
    double s = timer_.Seconds();
    return s > 0 ? static_cast<double>(count) / s : 0.0;
  }

 private:
  WallTimer timer_;
};

/// Formats a duration in seconds with an adaptive unit ("1.23 ms").
std::string FormatDuration(double seconds);

/// Seconds on the monotonic clock since a process-wide epoch (first call).
/// The time base RateMeter::RecordNow and the obs subsystem share.
double MonotonicSeconds();

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_TIMER_H_

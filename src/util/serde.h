#ifndef STREAMLINK_UTIL_SERDE_H_
#define STREAMLINK_UTIL_SERDE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {

/// Little-endian binary writer for predictor snapshots. All writes go
/// through fixed-width primitives so snapshots are portable across
/// platforms (of the same endianness class; explicitly little-endian on
/// disk).
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  Status status() const { return status_; }

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);
  void WriteBytes(const void* data, size_t size);

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    if (!v.empty()) WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Flushes and reports the final status.
  Status Finish();

 private:
  std::ofstream out_;
  Status status_;
};

/// Reader counterpart of BinaryWriter. All reads report corruption
/// (truncation) through status(); values read after an error are zero.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  Status status() const { return status_; }
  bool ok() const { return status_.ok(); }

  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadDouble();
  bool ReadBytes(void* data, size_t size);

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = ReadU64();
    std::vector<T> v;
    if (!ok()) return v;
    // Guard against corrupted huge sizes: cap at 1 GiB of payload.
    if (size * sizeof(T) > (1ULL << 30)) {
      Fail("vector size implausible: " + std::to_string(size));
      return v;
    }
    v.resize(size);
    if (size > 0 && !ReadBytes(v.data(), size * sizeof(T))) v.clear();
    return v;
  }

 private:
  void Fail(const std::string& message);

  std::ifstream in_;
  Status status_;
};

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_SERDE_H_

#ifndef STREAMLINK_UTIL_SERDE_H_
#define STREAMLINK_UTIL_SERDE_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {

/// FNV-1a running checksum over a byte stream — the whole-file integrity
/// check of predictor snapshots. Cheap enough to fold into every write and
/// read; any single flipped bit changes the digest.
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

inline uint64_t Fnv1aUpdate(uint64_t state, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state = (state ^ bytes[i]) * kFnv1aPrime;
  }
  return state;
}

/// Little-endian binary writer for predictor snapshots and wire messages.
/// All writes go through fixed-width primitives so encodings are portable
/// across platforms (of the same endianness class; explicitly
/// little-endian on disk and on the wire). Every byte written folds into a
/// running FNV-1a checksum; see WriteChecksumFooter.
///
/// Two sinks: the path constructor owns an ofstream (snapshot files), the
/// ostream constructor writes into any externally owned stream — e.g. an
/// ostringstream, which is how the in-memory query codec
/// (serve/query_codec.h) reuses the exact same primitives and checksum
/// discipline as the snapshot format.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  /// Writes into an externally owned stream (must outlive this writer).
  explicit BinaryWriter(std::ostream& out);

  Status status() const { return status_; }

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);
  void WriteBytes(const void* data, size_t size);

  /// Length-prefixed UTF-8/raw string (u64 length + bytes).
  void WriteString(const std::string& s);

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    if (!v.empty()) WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// FNV-1a digest of everything written so far.
  uint64_t checksum() const { return checksum_; }

  /// Appends the running checksum as a trailing u64. Readers verify with
  /// BinaryReader::VerifyChecksumFooter; after the footer, any byte flip
  /// anywhere in the file is detected (no silent corruption). Must be the
  /// last write.
  void WriteChecksumFooter();

  /// Flushes and reports the final status.
  Status Finish();

 private:
  std::ofstream file_;             // engaged only by the path constructor
  std::ostream* out_ = nullptr;    // the active sink (may alias file_)
  Status status_;
  uint64_t checksum_ = kFnv1aOffset;
};

/// Reader counterpart of BinaryWriter. All reads report corruption
/// (truncation) through status(); values read after an error are zero.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  /// Reads from an externally owned stream (must outlive this reader).
  explicit BinaryReader(std::istream& in);

  Status status() const { return status_; }
  bool ok() const { return status_.ok(); }

  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadDouble();
  bool ReadBytes(void* data, size_t size);

  /// Counterpart of WriteString; rejects implausible (> 1 MiB) lengths.
  std::string ReadString();

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = ReadU64();
    std::vector<T> v;
    if (!ok()) return v;
    // Guard against corrupted huge sizes: cap at 1 GiB of payload. The
    // division form cannot overflow (size * sizeof(T) wraps for corrupted
    // counts near 2^64 and would slip past a product-form guard).
    if (size > (1ULL << 30) / sizeof(T)) {
      Fail("vector size implausible: " + std::to_string(size));
      return v;
    }
    v.resize(size);
    if (size > 0 && !ReadBytes(v.data(), size * sizeof(T))) v.clear();
    return v;
  }

  /// FNV-1a digest of everything read so far.
  uint64_t checksum() const { return checksum_; }

  /// True when the underlying file has no bytes left.
  bool AtEnd();

  /// Reads the trailing checksum footer and compares it against the
  /// running digest of everything read before it, then requires the file
  /// to end. IoError on mismatch, truncation, or trailing garbage.
  Status VerifyChecksumFooter();

 private:
  void Fail(const std::string& message);

  std::ifstream file_;            // engaged only by the path constructor
  std::istream* in_ = nullptr;    // the active source (may alias file_)
  Status status_;
  uint64_t checksum_ = kFnv1aOffset;
};

// --- Snapshot envelope ---
//
// Every predictor snapshot starts with one universal header:
//
//   u32 magic "SLSN"  |  u32 envelope version  |  string kind  |  u32
//   payload version
//
// followed by the kind-specific payload and (for whole files) the
// checksum footer. The kind string is what LoadPredictorFrom dispatches
// on; container kinds (ShardedPredictor) nest complete envelopes per
// shard inside their payload.

inline constexpr uint32_t kSnapshotMagic = 0x534c534e;  // "SLSN"
inline constexpr uint32_t kSnapshotEnvelopeVersion = 1;

struct SnapshotHeader {
  std::string kind;
  uint32_t payload_version = 0;
};

/// Writes the universal envelope header.
void WriteSnapshotHeader(BinaryWriter& writer, const std::string& kind,
                         uint32_t payload_version);

/// Reads and validates the envelope header. InvalidArgument for wrong
/// magic or unsupported envelope version; IoError for truncation.
Result<SnapshotHeader> ReadSnapshotHeader(BinaryReader& reader);

/// Whole-file integrity preflight for snapshot loads: checks the magic
/// prefix and the trailing checksum footer in one pass WITHOUT parsing —
/// so a corrupt length field can never trigger a huge allocation before
/// the corruption is noticed. InvalidArgument when the file does not
/// start with the snapshot magic; IoError when it is truncated or the
/// footer does not match. Loaders call this before parsing.
Status PreflightSnapshotFile(const std::string& path);

/// Crash-safe whole-file write: `fill` streams the content into a writer
/// positioned at a temporary sibling of `path`; on success a checksum
/// footer is appended, the temporary is flushed and fsynced, atomically
/// renamed over `path`, and the directory entry is fsynced. A crash at
/// any point leaves either the old file or the new file at `path`, never
/// a torn mix; on any error the temporary is removed and `path` is
/// untouched.
Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(BinaryWriter&)>& fill);

}  // namespace streamlink

#endif  // STREAMLINK_UTIL_SERDE_H_

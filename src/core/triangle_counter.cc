#include "core/triangle_counter.h"

namespace streamlink {

StreamingTriangleCounter::StreamingTriangleCounter(
    const TriangleCounterOptions& options)
    : predictor_(MinHashPredictorOptions{options.num_hashes, options.seed}) {}

void StreamingTriangleCounter::OnEdge(const Edge& edge) {
  if (edge.IsSelfLoop()) return;
  // Common neighbors *before* this edge joins the graph: each one closes
  // a triangle whose last edge is `edge`.
  triangle_estimate_ += predictor_.EstimateOverlap(edge.u, edge.v).intersection;
  predictor_.OnEdge(edge);
}

}  // namespace streamlink

#include "core/tcm_predictor.h"

#include <algorithm>

#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

TcmPredictor::TcmPredictor(const TcmPredictorOptions& options)
    : options_(options),
      family_(options.seed, options.depth),
      store_([d = options.depth, w = options.width] {
        return TcmSketch(d, w);
      }) {
  SL_CHECK(options.depth >= 1) << "tcm depth must be >= 1";
  SL_CHECK(options.width >= 2) << "tcm width must be >= 2";
}

void TcmPredictor::GrowDegrees(VertexId u) {
  const size_t needed = static_cast<size_t>(u) + 1;
  if (needed > degrees_.capacity()) {
    degrees_.reserve(std::max(needed, degrees_.capacity() * 2));
  }
  degrees_.resize(needed, 0);
}

OverlapEstimate TcmPredictor::EstimateOverlap(VertexId u, VertexId v) const {
  return EstimateOverlapSharded(
      u, *this, v,
      [this](VertexId w) -> double { return static_cast<double>(Degree(w)); });
}

OverlapEstimate TcmPredictor::EstimateOverlapSharded(
    VertexId u, const LinkPredictor& v_home, VertexId v,
    const DegreeFn& degree_of) const {
  const auto* peer = dynamic_cast<const TcmPredictor*>(&v_home);
  SL_CHECK(peer != nullptr) << "cross-shard query between predictor kinds: "
                            << name() << " vs " << v_home.name();
  SL_CHECK(options_.width == peer->options_.width &&
           options_.depth == peer->options_.depth &&
           options_.seed == peer->options_.seed)
      << "cross-shard query between differently-configured predictors";

  OverlapEstimate est;
  est.degree_u = degree_of(u);
  est.degree_v = degree_of(v);
  const double degree_sum = est.degree_u + est.degree_v;

  const TcmSketch* su = store_.Get(u);
  const TcmSketch* sv = peer->store_.Get(v);
  if (su == nullptr || sv == nullptr) {
    est.union_size = degree_sum;
    return est;
  }

  // One-sided raw estimate, clamped into the feasible range
  // [0, min(d(u), d(v))] — a common neighbor is a neighbor of both.
  double intersection = static_cast<double>(su->IntersectionEstimate(*sv));
  intersection = std::min(intersection, std::min(est.degree_u, est.degree_v));
  est.intersection = intersection;
  est.union_size = degree_sum - intersection;
  est.jaccard = est.union_size > 0 ? intersection / est.union_size : 0.0;
  // AA/RA need common-neighbor identities the count strips discard;
  // reported as 0 by contract (docs/turnstile.md).
  return est;
}

uint64_t TcmPredictor::MemoryBytes() const {
  return store_.MemoryBytes() + sizeof(degrees_) +
         degrees_.capacity() * sizeof(int64_t);
}

void TcmPredictor::MergeFrom(const TcmPredictor& other) {
  SL_CHECK(options_.width == other.options_.width &&
           options_.depth == other.options_.depth &&
           options_.seed == other.options_.seed)
      << "cannot merge predictors with different options";
  store_.MergeFrom(other.store_,
                   [](TcmSketch& mine, const TcmSketch& theirs) {
                     mine.MergeFrom(theirs);
                   });
  if (!other.degrees_.empty()) {
    if (other.degrees_.size() > degrees_.size()) {
      GrowDegrees(static_cast<VertexId>(other.degrees_.size() - 1));
    }
    for (size_t u = 0; u < other.degrees_.size(); ++u) {
      degrees_[u] += other.degrees_[u];
    }
  }
  AddProcessedEdges(other.edges_processed());
  AddProcessedDeletes(other.deletes_processed());
}

namespace {
constexpr uint32_t kTcmPayloadVersion = 1;
}  // namespace

Status TcmPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kTcmPayloadVersion);
  writer.WriteU32(options_.width);
  writer.WriteU32(options_.depth);
  writer.WriteU64(options_.seed);
  writer.WriteU64(edges_processed());
  writer.WriteU64(deletes_processed());
  writer.WriteVector(degrees_);
  writer.WriteU64(store_.num_vertices());
  for (VertexId u = 0; u < store_.num_vertices(); ++u) {
    writer.WriteVector(store_.Get(u)->cells());
  }
  return writer.status();
}

Result<TcmPredictor> TcmPredictor::LoadFrom(BinaryReader& reader,
                                            uint32_t payload_version) {
  if (payload_version != kTcmPayloadVersion) {
    return Status::InvalidArgument("unsupported tcm payload version " +
                                   std::to_string(payload_version));
  }
  TcmPredictorOptions options;
  options.width = reader.ReadU32();
  options.depth = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t edges = reader.ReadU64();
  uint64_t deletes = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (options.width < 2 || options.depth < 1) {
    return Status::InvalidArgument("corrupt snapshot: bad tcm geometry");
  }

  auto degrees = reader.ReadVector<int64_t>();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // Strips and degrees grow in lockstep (UpdateVertex touches both), so a
  // length mismatch can only mean corruption.
  if (degrees.size() != num_vertices) {
    return Status::InvalidArgument(
        "corrupt snapshot: degree table covers " +
        std::to_string(degrees.size()) + " vertices, sketch store " +
        std::to_string(num_vertices));
  }

  TcmPredictor predictor(options);
  predictor.degrees_ = std::move(degrees);
  const size_t cells_per_vertex =
      static_cast<size_t>(options.depth) * options.width;
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto cells = reader.ReadVector<int32_t>();
    if (!reader.ok()) break;
    if (cells.size() != cells_per_vertex) {
      return Status::InvalidArgument("corrupt snapshot: bad tcm strip size");
    }
    predictor.store_.Mutable(static_cast<VertexId>(u)) =
        TcmSketch::FromCells(options.depth, options.width, std::move(cells));
  }
  if (!reader.ok()) return reader.status();
  predictor.AddProcessedEdges(edges);
  predictor.AddProcessedDeletes(deletes);
  return predictor;
}

Result<TcmPredictor> TcmPredictor::Load(const std::string& path) {
  if (Status st = PreflightSnapshotFile(path); !st.ok()) return st;
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  Result<SnapshotHeader> header = ReadSnapshotHeader(reader);
  if (!header.ok()) return header.status();
  if (header->kind != "tcm") {
    return Status::InvalidArgument("snapshot holds a '" + header->kind +
                                   "' predictor, expected tcm: " + path);
  }
  Result<TcmPredictor> predictor = LoadFrom(reader, header->payload_version);
  if (!predictor.ok()) return predictor.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return predictor;
}

}  // namespace streamlink

#ifndef STREAMLINK_CORE_OPH_PREDICTOR_H_
#define STREAMLINK_CORE_OPH_PREDICTOR_H_

#include <string>

#include "core/link_predictor.h"
#include "core/sketch_store.h"
#include "sketch/oph.h"
#include "util/status.h"

namespace streamlink {

/// Options for OphPredictor.
struct OphPredictorOptions {
  /// Number of bins per vertex (the k of the densified MinHash vector).
  uint32_t num_bins = 64;
  uint64_t seed = 0x5eed;
};

/// One-permutation-hashing variant of the streaming link predictor: the
/// fast-update extension. Per edge it computes ONE hash per endpoint
/// (vs k for MinHashPredictor) while still producing a k-wide min-wise
/// vector per vertex; estimation mirrors MinHashPredictor (matched
/// densified bins → Jaccard; degree counters → CN; matched-bin arg-min
/// items → AA/RA samples).
///
/// Tradeoff quantified by bench F10: near-k-permutation accuracy once
/// degrees reach a few times k; elevated variance on tiny neighborhoods
/// (densified bins are correlated); ~an order of magnitude faster ingest
/// at large k.
class OphPredictor : public LinkPredictor {
 public:
  explicit OphPredictor(const OphPredictorOptions& options = {});

  std::string name() const override { return "oph"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override { return store_.num_vertices(); }
  uint64_t MemoryBytes() const override;

  const OphPredictorOptions& options() const { return options_; }
  uint32_t Degree(VertexId u) const { return degrees_.Degree(u); }
  const OphSketch* Sketch(VertexId u) const { return store_.Get(u); }

  // Vertex-sharded operation (LinkPredictor capability): bin updates and
  // densification depend only on the owning vertex's inserts, so OPH
  // decomposes across vertex shards like plain MinHash.
  bool SupportsSharding() const override { return true; }
  void ObserveNeighbor(VertexId u, VertexId neighbor) override {
    store_.Mutable(u).Update(neighbor);
    degrees_.Increment(u);
  }
  /// One virtual dispatch per ring hand-off. OPH hashes internally with
  /// its own bin scheme, so the batch's hash lane is unused.
  void ObserveNeighborBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) {
      store_.Mutable(e.u).Update(e.v);
      degrees_.Increment(e.u);
    }
  }
  double OwnedDegree(VertexId u) const override { return degrees_.Degree(u); }
  OverlapEstimate EstimateOverlapSharded(
      VertexId u, const LinkPredictor& v_home, VertexId v,
      const DegreeFn& degree_of) const override;

  /// Snapshot primitive: deep copy via the copy constructor.
  std::unique_ptr<LinkPredictor> Clone() const override {
    return std::make_unique<OphPredictor>(*this);
  }

  /// Universal snapshot envelope, kind "oph"; whole-file writes go through
  /// the inherited crash-safe Save(path).
  Status SaveTo(BinaryWriter& writer) const override;

  /// Payload decoder for an already-consumed envelope header.
  static Result<OphPredictor> LoadFrom(BinaryReader& reader,
                                       uint32_t payload_version);

 protected:
  void ProcessEdge(const Edge& edge) override;

 private:
  OphPredictorOptions options_;
  SketchStore<OphSketch> store_;
  DegreeTable degrees_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_OPH_PREDICTOR_H_

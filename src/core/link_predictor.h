#ifndef STREAMLINK_CORE_LINK_PREDICTOR_H_
#define STREAMLINK_CORE_LINK_PREDICTOR_H_

#include <cstdint>
#include <string>

#include "graph/exact_measures.h"
#include "graph/types.h"
#include "stream/stream_driver.h"

namespace streamlink {

/// The estimated overlap structure of a vertex pair — the approximate
/// counterpart of PairOverlap. All fields are real-valued estimates; the
/// exact predictor fills them with exact values.
struct OverlapEstimate {
  double degree_u = 0.0;
  double degree_v = 0.0;
  double intersection = 0.0;        // ≈ |N(u) ∩ N(v)|  (common neighbors)
  double union_size = 0.0;          // ≈ |N(u) ∪ N(v)|
  double jaccard = 0.0;             // ≈ |∩| / |∪|
  double adamic_adar = 0.0;         // ≈ Σ_{w∈∩} 1/ln d(w)
  double resource_allocation = 0.0; // ≈ Σ_{w∈∩} 1/d(w)
};

/// Derives any LinkMeasure score from an overlap estimate (the approximate
/// analogue of MeasureFromOverlap).
double MeasureFromEstimate(LinkMeasure measure, const OverlapEstimate& e);

/// A streaming link predictor: ingests a graph stream edge by edge and
/// answers pairwise neighborhood-overlap queries at any point, online.
///
/// Contract (mirrors the paper's abstract):
///  * per-edge update cost is O(sketch size) — constant, independent of
///    the graph;
///  * per-vertex state is O(sketch size) — constant;
///  * queries read only the two vertices' state.
///
/// Streams are expected to be *simple* (each undirected edge appears
/// once). The sketches themselves are duplicate-idempotent, but exact
/// degree counters are not; wrap multigraph sources in DedupEdgeStream.
class LinkPredictor : public EdgeConsumer {
 public:
  ~LinkPredictor() override = default;

  /// Short identifier, e.g. "minhash", "bottomk", "exact".
  virtual std::string name() const = 0;

  /// Estimates the full overlap structure of (u, v) on the stream so far.
  /// Vertices never seen in the stream are treated as isolated.
  virtual OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const = 0;

  /// Convenience: a single measure's estimated score.
  double Score(LinkMeasure measure, VertexId u, VertexId v) const {
    return MeasureFromEstimate(measure, EstimateOverlap(u, v));
  }

  /// Number of vertices with any state (max endpoint seen + 1).
  virtual VertexId num_vertices() const = 0;

  /// Edges ingested so far.
  uint64_t edges_processed() const { return edges_processed_; }

  /// Total heap footprint of the predictor's state in bytes.
  virtual uint64_t MemoryBytes() const = 0;

  void OnEdge(const Edge& edge) final {
    if (edge.IsSelfLoop()) return;
    ++edges_processed_;
    ProcessEdge(edge);
  }

 protected:
  /// Implementations ingest one non-self-loop edge here.
  virtual void ProcessEdge(const Edge& edge) = 0;

  /// For mergeable predictors: folds a merged-in peer's edge count into
  /// this predictor's.
  void AddProcessedEdges(uint64_t count) { edges_processed_ += count; }

 private:
  uint64_t edges_processed_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_LINK_PREDICTOR_H_

#ifndef STREAMLINK_CORE_LINK_PREDICTOR_H_
#define STREAMLINK_CORE_LINK_PREDICTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/exact_measures.h"
#include "graph/types.h"
#include "stream/stream_driver.h"
#include "util/status.h"

namespace streamlink {

class BinaryReader;
class BinaryWriter;

/// The estimated overlap structure of a vertex pair — the approximate
/// counterpart of PairOverlap. All fields are real-valued estimates; the
/// exact predictor fills them with exact values.
struct OverlapEstimate {
  double degree_u = 0.0;
  double degree_v = 0.0;
  double intersection = 0.0;        // ≈ |N(u) ∩ N(v)|  (common neighbors)
  double union_size = 0.0;          // ≈ |N(u) ∪ N(v)|
  double jaccard = 0.0;             // ≈ |∩| / |∪|
  double adamic_adar = 0.0;         // ≈ Σ_{w∈∩} 1/ln d(w)
  double resource_allocation = 0.0; // ≈ Σ_{w∈∩} 1/d(w)
};

/// Derives any LinkMeasure score from an overlap estimate (the approximate
/// analogue of MeasureFromOverlap).
double MeasureFromEstimate(LinkMeasure measure, const OverlapEstimate& e);

/// Routes a degree read to whatever owns the vertex's state. In a
/// single predictor this is its own degree table; in a vertex-sharded
/// build (ShardedPredictor) it dispatches to the owning shard. Exact
/// counters return integral doubles; KMV-backed degrees are fractional.
using DegreeFn = std::function<double(VertexId)>;

/// A streaming link predictor: ingests a graph stream edge by edge and
/// answers pairwise neighborhood-overlap queries at any point, online.
///
/// Contract (mirrors the paper's abstract):
///  * per-edge update cost is O(sketch size) — constant, independent of
///    the graph;
///  * per-vertex state is O(sketch size) — constant;
///  * queries read only the two vertices' state.
///
/// Streams are expected to be *simple* (each undirected edge appears
/// once). The sketches themselves are duplicate-idempotent, but exact
/// degree counters are not; wrap multigraph sources in DedupEdgeStream.
class LinkPredictor : public EdgeConsumer {
 public:
  ~LinkPredictor() override = default;

  /// Short identifier, e.g. "minhash", "bottomk", "exact".
  virtual std::string name() const = 0;

  /// Estimates the full overlap structure of (u, v) on the stream so far.
  /// Vertices never seen in the stream are treated as isolated.
  virtual OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const = 0;

  /// Convenience: a single measure's estimated score.
  double Score(LinkMeasure measure, VertexId u, VertexId v) const {
    return MeasureFromEstimate(measure, EstimateOverlap(u, v));
  }

  /// Many measures of one pair from a single overlap estimate. Score(m)
  /// recomputes the full EstimateOverlap per call; batch callers (the
  /// serving layer, multi-measure top-k) use this to pay for the estimate
  /// once. The result is parallel to `measures`.
  std::vector<double> Scores(std::span<const LinkMeasure> measures,
                             VertexId u, VertexId v) const;

  /// Deep-copies the predictor's full state into an independent instance —
  /// the snapshot primitive the serving layer (QueryService) publishes
  /// through. Clones answer queries bit-identically to the source at clone
  /// time and never observe later ingestion. In-tree predictors override
  /// this with their copy constructor (all state is value-semantic); the
  /// base default returns nullptr, meaning "not snapshottable" — callers
  /// must check. ShardedPredictor's override folds mergeable kinds into a
  /// single compact predictor first (see its docs).
  virtual std::unique_ptr<LinkPredictor> Clone() const { return nullptr; }

  /// Serializes the predictor's full state into `writer` as a tagged
  /// snapshot envelope (kind string + payload version, see util/serde.h)
  /// followed by the kind-specific payload. Container kinds
  /// (ShardedPredictor) nest one complete envelope per shard. The base
  /// default returns FailedPrecondition, meaning "not snapshottable" —
  /// every in-tree kind overrides it. Restore through
  /// LoadPredictorSnapshot / LoadPredictorFrom (core/predictor_factory.h).
  virtual Status SaveTo(BinaryWriter& writer) const;

  /// Writes a crash-safe snapshot file: SaveTo routed through
  /// WriteFileAtomic (temp file + fsync + atomic rename) with a
  /// whole-file checksum footer, so a crash mid-write can never leave a
  /// torn snapshot at `path`. The default covers every kind with SaveTo;
  /// virtual so out-of-tree predictors can substitute their own storage.
  virtual Status Save(const std::string& path) const;

  /// Number of vertices with any state (max endpoint seen + 1).
  virtual VertexId num_vertices() const = 0;

  /// Edges ingested so far (inserts only; see deletes_processed()).
  uint64_t edges_processed() const { return edges_processed_; }

  /// Edge deletions applied so far (turnstile kinds only).
  uint64_t deletes_processed() const { return deletes_processed_; }

  /// Total heap footprint of the predictor's state in bytes.
  virtual uint64_t MemoryBytes() const = 0;

  void OnEdge(const Edge& edge) final {
    if (edge.IsSelfLoop()) return;
    ++edges_processed_;
    ProcessEdge(edge);
  }

  /// Retracts one previously inserted edge — the turnstile counterpart of
  /// OnEdge. Filters self-loops, accounts the delete, and hands the edge to
  /// ProcessDelete. Only kinds with SupportsDeletions() implement the
  /// kernel; calling this on any other kind is fatal.
  void DeleteEdge(const Edge& edge) {
    if (edge.IsSelfLoop()) return;
    ++deletes_processed_;
    ProcessDelete(edge);
  }

  /// Primary delivery path (StreamDriver and ParallelIngestEngine arrive
  /// here): filters self-loops, accounts edges, and hands maximal
  /// self-loop-free same-op runs — hash lanes still aligned — to
  /// ProcessBatch / ProcessDeleteBatch in one virtual dispatch per run.
  /// Batches without an op lane take the historical all-insert path.
  void OnEdgeBatch(const EdgeBatch& batch) final {
    if (!batch.has_ops()) {
      size_t run_start = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].IsSelfLoop()) {
          if (i > run_start) {
            ProcessBatch(batch.Slice(run_start, i - run_start));
          }
          run_start = i + 1;
        }
      }
      if (batch.size() > run_start) {
        ProcessBatch(batch.Slice(run_start, batch.size() - run_start));
      }
      return;
    }
    size_t run_start = 0;
    EdgeOp run_op = EdgeOp::kInsert;
    auto flush = [&](size_t end) {
      if (end <= run_start) return;
      EdgeBatch run = batch.Slice(run_start, end - run_start);
      if (run_op == EdgeOp::kInsert) {
        ProcessBatch(run);
      } else {
        ProcessDeleteBatch(run);
      }
    };
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].IsSelfLoop()) {
        flush(i);
        run_start = i + 1;
        continue;
      }
      if (batch.op(i) != run_op) {
        flush(i);
        run_start = i;
        run_op = batch.op(i);
      }
    }
    flush(batch.size());
  }

  /// Legacy raw signature: routed through the EdgeBatch path so both
  /// spellings stay byte-equivalent.
  void OnEdgeBatch(const Edge* edges, size_t count) final {
    OnEdgeBatch(EdgeBatch(edges, count));
  }

  /// Folds `count` externally-accounted edges into edges_processed().
  /// Used by disjoint-partition merges (MergeFrom) and by sharded builds,
  /// whose half-edge updates (ObserveNeighbor) deliberately do not count
  /// edges — two half-edges are one edge.
  void AddProcessedEdges(uint64_t count) { edges_processed_ += count; }

  /// The deletes_processed() analogue of AddProcessedEdges: folds `count`
  /// externally-accounted deletions (merged replicas, sharded half-edge
  /// retractions) into the counter.
  void AddProcessedDeletes(uint64_t count) { deletes_processed_ += count; }

  /// True if the kind can retract edges natively (turnstile model):
  /// DeleteEdge / delete-tagged batches / RetractNeighbor are implemented
  /// and insert∘delete of the same edge restores the prior state exactly.
  /// Insert-only kinds return false; wrap them in TombstoneWindowPredictor
  /// (core/tombstone_predictor.h) for bounded-lag delete support.
  virtual bool SupportsDeletions() const { return false; }

  // --- Vertex-sharded operation (see docs/parallel_ingest.md) ---
  //
  // A shardable predictor decomposes per *vertex*: every vertex's state
  // (sketch + degree) is written only by half-edge updates of that vertex,
  // and a pairwise estimate reads only the two endpoints' state plus
  // routed degree lookups. ParallelIngestEngine partitions vertices across
  // N same-configured predictors (shard t owns u with u % N == t) and
  // ShardedPredictor routes queries to the two owning shards; results are
  // bit-identical to a sequential build.

  /// True if the predictor implements the half-edge / cross-shard hooks
  /// below. Kinds whose updates depend on global stream state (windowed
  /// bucket rotation, neighbor-degree-dependent sampling) return false.
  virtual bool SupportsSharding() const { return false; }

  /// Half-edge update for vertex-partitioned ingestion: records that
  /// `neighbor` joined N(u), touching ONLY u's state. A full edge (u, v)
  /// is two half-edges, routed to (possibly) different shards that each
  /// own a disjoint slice of the vertex space, so total state equals a
  /// single-predictor build. Does not advance edges_processed()
  /// (half-edges are not edges). Fatal on unshardable kinds.
  virtual void ObserveNeighbor(VertexId u, VertexId neighbor);

  /// Batched half-edge updates: every element (u, v) of `batch` means "u
  /// gained neighbor v" and every u must be owned by this predictor — the
  /// unit a parallel-ingest shard worker applies per ring hand-off. When
  /// the batch carries a hash_v lane it holds HashU64(v, NeighborHashSeed)
  /// for each element, and kinds that announce a seed may consume it
  /// instead of re-hashing. Default loops ObserveNeighbor; shardable kinds
  /// override to hoist per-call overhead out of the loop. Fatal on
  /// unshardable kinds.
  virtual void ObserveNeighborBatch(const EdgeBatch& batch) {
    for (const Edge& e : batch) ObserveNeighbor(e.u, e.v);
  }

  /// Half-edge retraction: records that `neighbor` left N(u), touching
  /// ONLY u's state — the delete-side mirror of ObserveNeighbor. Does not
  /// advance deletes_processed(). Fatal on kinds without both sharding and
  /// deletion support.
  virtual void RetractNeighbor(VertexId u, VertexId neighbor);

  /// Batched half-edge retractions; same contract as ObserveNeighborBatch
  /// with delete semantics. Default loops RetractNeighbor.
  virtual void RetractNeighborBatch(const EdgeBatch& batch) {
    for (const Edge& e : batch) RetractNeighbor(e.u, e.v);
  }

  /// Applies a half-edge batch, dispatching each maximal same-op run to
  /// ObserveNeighborBatch or RetractNeighborBatch. Batches without an op
  /// lane go straight to ObserveNeighborBatch (zero turnstile overhead on
  /// the insert-only hot path). Half-edge batches never contain self-loops,
  /// so runs split on op alone.
  void ApplyHalfEdges(const EdgeBatch& batch) {
    if (!batch.has_ops()) {
      ObserveNeighborBatch(batch);
      return;
    }
    size_t run_start = 0;
    EdgeOp run_op = batch.op(0);
    auto flush = [&](size_t end) {
      if (end <= run_start) return;
      EdgeBatch run = batch.Slice(run_start, end - run_start);
      if (run_op == EdgeOp::kInsert) {
        ObserveNeighborBatch(run);
      } else {
        RetractNeighborBatch(run);
      }
    };
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.op(i) != run_op) {
        flush(i);
        run_start = i;
        run_op = batch.op(i);
      }
    }
    flush(batch.size());
  }

  /// When the predictor's half-edge kernel consumes a single seeded
  /// neighbor hash HashU64(neighbor, seed), returns true and writes that
  /// seed — the producer then pre-computes the hash once per half-edge
  /// into the batch's hash_v lane (the "pre-hashed EdgeBatch" contract).
  /// Kinds that hash k times (minhash) or not at all return false.
  virtual bool NeighborHashSeed(uint64_t* /*seed*/) const { return false; }

  /// Current degree of a vertex this predictor owns — the per-shard leg of
  /// a routed DegreeFn. Fatal on unshardable kinds.
  virtual double OwnedDegree(VertexId u) const;

  /// Pairwise estimate across shards: `this` owns u's state, `v_home`
  /// (same kind, same options; may be `*this`) owns v's, and `degree_of`
  /// routes any vertex's degree to its owner. Single-predictor
  /// EstimateOverlap delegates here with itself as v_home, so sequential
  /// and sharded queries run the same code and agree bit for bit. Fatal on
  /// unshardable kinds and cross-kind or cross-option pairs.
  virtual OverlapEstimate EstimateOverlapSharded(
      VertexId u, const LinkPredictor& v_home, VertexId v,
      const DegreeFn& degree_of) const;

 protected:
  /// Implementations ingest one non-self-loop edge here.
  virtual void ProcessEdge(const Edge& edge) = 0;

  /// Batched ingest kernel: a self-loop-free run of whole edges, hash
  /// lanes (when present) aligned. The kernel owns accounting so
  /// edges_processed() keeps its OnEdge-path meaning mid-run (the windowed
  /// kind reads it per edge for bucket rotation): the default increments
  /// before each ProcessEdge exactly like OnEdge; overrides that never
  /// read edges_processed() during the run bulk-account with
  /// AddProcessedEdges(batch.size()) instead. Overriding ProcessEdge alone
  /// stays correct.
  virtual void ProcessBatch(const EdgeBatch& batch) {
    for (const Edge& e : batch) {
      ++edges_processed_;
      ProcessEdge(e);
    }
  }

  /// Deletion kernel: retracts one non-self-loop edge. Only kinds with
  /// SupportsDeletions() override; the base default is fatal.
  virtual void ProcessDelete(const Edge& edge);

  /// Batched deletion kernel: a self-loop-free run of whole-edge deletes.
  /// Owns accounting exactly like ProcessBatch — the default increments
  /// before each ProcessDelete; overrides that bulk-apply use
  /// AddProcessedDeletes(batch.size()) instead.
  virtual void ProcessDeleteBatch(const EdgeBatch& batch) {
    for (const Edge& e : batch) {
      ++deletes_processed_;
      ProcessDelete(e);
    }
  }

 private:
  uint64_t edges_processed_ = 0;
  uint64_t deletes_processed_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_LINK_PREDICTOR_H_

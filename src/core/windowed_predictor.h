#ifndef STREAMLINK_CORE_WINDOWED_PREDICTOR_H_
#define STREAMLINK_CORE_WINDOWED_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "sketch/minhash.h"
#include "util/hashing.h"
#include "util/status.h"

namespace streamlink {

/// Options for WindowedMinHashPredictor.
struct WindowedPredictorOptions {
  /// MinHash slots per bucket.
  uint32_t num_hashes = 32;
  /// Count-based window: queries reflect (approximately) the graph of the
  /// most recent `window_edges` stream edges.
  uint64_t window_edges = 100000;
  /// Window granularity: the window is kept as this many time buckets;
  /// expiry drops whole buckets, so the effective window wobbles by one
  /// bucket width (window_edges / num_buckets edges).
  uint32_t num_buckets = 8;
  uint64_t seed = 0x5eed;
};

/// Sliding-window extension of the MinHash link predictor.
///
/// Min-wise sketches cannot delete (min is irreversible), so windowing is
/// achieved by *bucketing time*: each vertex keeps `num_buckets` small
/// MinHash sketches, one per time bucket of `window_edges / num_buckets`
/// stream edges. An update goes to the current bucket (resetting it
/// lazily if it still holds an expired epoch); a query merges the live
/// buckets — O(num_buckets · k) — and estimates exactly as the insert-only
/// predictor does, against window-scoped degree counts maintained the same
/// way.
///
/// This is the standard recipe for turning an insert-only sketch into a
/// sliding-window one at a constant-factor space cost, and it is what the
/// insert-only model of the paper calls for as follow-up work. Accuracy
/// against an exact sliding window is quantified by bench F11 on a
/// community-drift stream.
class WindowedMinHashPredictor : public LinkPredictor {
 public:
  explicit WindowedMinHashPredictor(
      const WindowedPredictorOptions& options = {});

  std::string name() const override { return "windowed_minhash"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override {
    return static_cast<VertexId>(vertices_.size());
  }
  uint64_t MemoryBytes() const override;

  const WindowedPredictorOptions& options() const { return options_; }

  /// Width of one bucket in edges.
  uint64_t bucket_width() const { return bucket_width_; }

  /// Approximate degree of u within the current window.
  uint32_t WindowDegree(VertexId u) const;

  /// Snapshot primitive: deep copy via the copy constructor. The window
  /// position is part of the copied state (edges_processed), so the clone's
  /// live-bucket set is frozen at clone time.
  std::unique_ptr<LinkPredictor> Clone() const override {
    return std::make_unique<WindowedMinHashPredictor>(*this);
  }

  /// Universal snapshot envelope, kind "windowed_minhash". Bucket epochs
  /// are saved verbatim, so a restored predictor's window position (which
  /// buckets are live) matches the original exactly.
  Status SaveTo(BinaryWriter& writer) const override;

  /// Payload decoder for an already-consumed envelope header.
  static Result<WindowedMinHashPredictor> LoadFrom(BinaryReader& reader,
                                                   uint32_t payload_version);

 protected:
  void ProcessEdge(const Edge& edge) override;

 private:
  struct Bucket {
    uint64_t epoch = ~0ULL;  // ~0 = never used
    uint32_t degree = 0;
    MinHashSketch sketch;

    explicit Bucket(uint32_t k) : sketch(k) {}
  };

  struct VertexState {
    std::vector<Bucket> buckets;  // size num_buckets
  };

  uint64_t CurrentEpoch() const {
    // edges_processed() is incremented before ProcessEdge runs, so during
    // an update it is the 1-based index of the edge being applied.
    uint64_t t = edges_processed();
    return t == 0 ? 0 : (t - 1) / bucket_width_;
  }
  bool EpochIsLive(uint64_t epoch) const {
    uint64_t current = CurrentEpoch();
    return epoch != ~0ULL && epoch + options_.num_buckets > current;
  }

  void Touch(VertexId u, VertexId neighbor);
  /// Merges the live buckets of u into `out` (initialized empty) and
  /// returns the live window degree.
  uint32_t MergeLive(VertexId u, MinHashSketch& out) const;

  WindowedPredictorOptions options_;
  uint64_t bucket_width_;
  HashFamily family_;
  std::vector<VertexState> vertices_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_WINDOWED_PREDICTOR_H_

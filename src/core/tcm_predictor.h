#ifndef STREAMLINK_CORE_TCM_PREDICTOR_H_
#define STREAMLINK_CORE_TCM_PREDICTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/sketch_store.h"
#include "sketch/tcm.h"
#include "util/hashing.h"
#include "util/status.h"

namespace streamlink {

/// Options for TcmPredictor.
struct TcmPredictorOptions {
  /// Cells per sketch row (the factory maps --k / sketch_size here).
  /// Per-row collision mass for a pair (u, v) is ~ d(u)·d(v)/width.
  uint32_t width = 64;
  /// Independent rows; the excess-overlap tail shrinks as slack^(-depth).
  uint32_t depth = 3;
  /// Master seed of the shared per-row hash family.
  uint64_t seed = 0x5eed;
};

/// The turnstile predictor: per-vertex TCM/GSS-style signed count strips
/// (sketch/tcm.h) plus signed exact degree counters. The only in-tree kind
/// whose DeleteEdge is native — retracting an edge subtracts exactly what
/// inserting it added, cell-for-cell and counter-for-counter, so
/// insert∘delete annihilation is bit-identical and holds across every
/// sharded/relaxed ingest configuration (all state is order-independent
/// sums).
///
/// Estimators: common neighbors from the one-sided TCM intersection
/// estimate (clamped to min(d(u), d(v))); Jaccard via |∪| = d(u)+d(v)−|∩|.
/// Adamic-Adar / Resource-Allocation need per-common-neighbor identity the
/// count strips deliberately discard and are reported as 0 — the factory's
/// capability matrix and docs/turnstile.md document the contract, and the
/// differential oracle checks CN/Jaccard only for this kind.
class TcmPredictor : public LinkPredictor {
 public:
  explicit TcmPredictor(const TcmPredictorOptions& options = {});

  std::string name() const override { return "tcm"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override { return store_.num_vertices(); }
  uint64_t MemoryBytes() const override;

  const TcmPredictorOptions& options() const { return options_; }
  /// Net degree of `u` (inserts minus deletes), clamped at 0: a replica
  /// that saw a delete before the matching insert reads 0, not −1.
  int64_t Degree(VertexId u) const {
    if (u >= degrees_.size()) return 0;
    return degrees_[u] > 0 ? degrees_[u] : 0;
  }
  const TcmSketch* Sketch(VertexId u) const { return store_.Get(u); }

  // Turnstile capability (LinkPredictor): native deletes.
  bool SupportsDeletions() const override { return true; }

  // Vertex-sharded operation: strips and signed degrees are per-vertex
  // sums, so half-edge inserts AND retractions decompose across shards and
  // replicas exactly like minhash inserts do.
  bool SupportsSharding() const override { return true; }
  void ObserveNeighbor(VertexId u, VertexId neighbor) override {
    UpdateVertex(u, neighbor, +1);
  }
  void ObserveNeighborBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) UpdateVertex(e.u, e.v, +1);
  }
  void RetractNeighbor(VertexId u, VertexId neighbor) override {
    UpdateVertex(u, neighbor, -1);
  }
  void RetractNeighborBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) UpdateVertex(e.u, e.v, -1);
  }
  double OwnedDegree(VertexId u) const override {
    return static_cast<double>(Degree(u));
  }
  OverlapEstimate EstimateOverlapSharded(
      VertexId u, const LinkPredictor& v_home, VertexId v,
      const DegreeFn& degree_of) const override;

  /// Disjoint-partition fold: cells and degrees add, insert and delete
  /// counters both carry over. Aborts if options differ.
  void MergeFrom(const TcmPredictor& other);

  std::unique_ptr<LinkPredictor> Clone() const override {
    return std::make_unique<TcmPredictor>(*this);
  }

  /// Snapshot envelope kind "tcm"; payload carries both stream counters
  /// (edges and deletes), the signed degree table, and per-vertex cell
  /// strips.
  Status SaveTo(BinaryWriter& writer) const override;
  static Result<TcmPredictor> LoadFrom(BinaryReader& reader,
                                       uint32_t payload_version);
  static Result<TcmPredictor> Load(const std::string& path);

 protected:
  void ProcessEdge(const Edge& edge) override {
    UpdateVertex(edge.u, edge.v, +1);
    UpdateVertex(edge.v, edge.u, +1);
  }
  void ProcessBatch(const EdgeBatch& batch) override {
    AddProcessedEdges(batch.size());
    for (const Edge& e : batch) {
      UpdateVertex(e.u, e.v, +1);
      UpdateVertex(e.v, e.u, +1);
    }
  }
  void ProcessDelete(const Edge& edge) override {
    UpdateVertex(edge.u, edge.v, -1);
    UpdateVertex(edge.v, edge.u, -1);
  }
  void ProcessDeleteBatch(const EdgeBatch& batch) override {
    AddProcessedDeletes(batch.size());
    for (const Edge& e : batch) {
      UpdateVertex(e.u, e.v, -1);
      UpdateVertex(e.v, e.u, -1);
    }
  }

 private:
  void UpdateVertex(VertexId u, VertexId neighbor, int32_t delta) {
    store_.Mutable(u).Update(neighbor, family_, delta);
    if (u >= degrees_.size()) GrowDegrees(u);
    degrees_[u] += delta;
  }
  void GrowDegrees(VertexId u);

  TcmPredictorOptions options_;
  HashFamily family_;
  SketchStore<TcmSketch> store_;
  std::vector<int64_t> degrees_;  // signed net degrees, clamped at read
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_TCM_PREDICTOR_H_

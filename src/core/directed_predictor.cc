#include "core/directed_predictor.h"

#include <algorithm>

#include "graph/exact_measures.h"
#include "util/logging.h"

namespace streamlink {

DirectedMinHashPredictor::DirectedMinHashPredictor(
    const DirectedPredictorOptions& options)
    : options_(options),
      family_(options.seed, options.num_hashes),
      out_store_([k = options.num_hashes] { return MinHashSketch(k); }),
      in_store_([k = options.num_hashes] { return MinHashSketch(k); }) {
  SL_CHECK(options.num_hashes >= 1) << "num_hashes must be >= 1";
}

void DirectedMinHashPredictor::OnEdge(const Edge& edge) {
  if (edge.IsSelfLoop()) return;
  ++arcs_processed_;
  out_store_.Mutable(edge.u).Update(edge.v, family_);
  in_store_.Mutable(edge.v).Update(edge.u, family_);
  out_degrees_.Increment(edge.u);
  in_degrees_.Increment(edge.v);
}

VertexId DirectedMinHashPredictor::num_vertices() const {
  return std::max(out_store_.num_vertices(), in_store_.num_vertices());
}

DirectedMinHashPredictor::DirectedEstimate DirectedMinHashPredictor::Estimate(
    VertexId u, Direction du, VertexId v, Direction dv) const {
  DirectedEstimate est;
  est.size_u = SideDegree(u, du);
  est.size_v = SideDegree(v, dv);
  const double size_sum = est.size_u + est.size_v;

  const MinHashSketch* su = SideStore(du).Get(u);
  const MinHashSketch* sv = SideStore(dv).Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    est.union_size = size_sum;
    return est;
  }

  const uint32_t k = su->num_slots();
  uint32_t matches = 0;
  double aa_weight_sum = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    const auto& a = su->slot(i);
    const auto& b = sv->slot(i);
    if (a.hash != b.hash || a.hash == ~0ULL) continue;
    ++matches;
    VertexId w = static_cast<VertexId>(a.item);
    aa_weight_sum +=
        AdamicAdarWeight(out_degrees_.Degree(w) + in_degrees_.Degree(w));
  }
  est.jaccard = static_cast<double>(matches) / k;
  est.union_size = size_sum / (1.0 + est.jaccard);
  est.intersection = est.jaccard * est.union_size;
  if (matches > 0) {
    est.adamic_adar = est.intersection * (aa_weight_sum / matches);
  }
  return est;
}

uint64_t DirectedMinHashPredictor::MemoryBytes() const {
  return out_store_.MemoryBytes() + in_store_.MemoryBytes() +
         out_degrees_.MemoryBytes() + in_degrees_.MemoryBytes();
}

}  // namespace streamlink

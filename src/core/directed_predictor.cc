#include "core/directed_predictor.h"

#include <algorithm>

#include "graph/exact_measures.h"
#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

DirectedMinHashPredictor::DirectedMinHashPredictor(
    const DirectedPredictorOptions& options)
    : options_(options),
      family_(options.seed, options.num_hashes),
      out_store_([k = options.num_hashes] { return MinHashSketch(k); }),
      in_store_([k = options.num_hashes] { return MinHashSketch(k); }) {
  SL_CHECK(options.num_hashes >= 1) << "num_hashes must be >= 1";
}

void DirectedMinHashPredictor::OnEdge(const Edge& edge) {
  if (edge.IsSelfLoop()) return;
  ++arcs_processed_;
  out_store_.Mutable(edge.u).Update(edge.v, family_);
  in_store_.Mutable(edge.v).Update(edge.u, family_);
  out_degrees_.Increment(edge.u);
  in_degrees_.Increment(edge.v);
}

VertexId DirectedMinHashPredictor::num_vertices() const {
  return std::max(out_store_.num_vertices(), in_store_.num_vertices());
}

DirectedMinHashPredictor::DirectedEstimate DirectedMinHashPredictor::Estimate(
    VertexId u, Direction du, VertexId v, Direction dv) const {
  DirectedEstimate est;
  est.size_u = SideDegree(u, du);
  est.size_v = SideDegree(v, dv);
  const double size_sum = est.size_u + est.size_v;

  const MinHashSketch* su = SideStore(du).Get(u);
  const MinHashSketch* sv = SideStore(dv).Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    est.union_size = size_sum;
    return est;
  }

  const uint32_t k = su->num_slots();
  uint32_t matches = 0;
  double aa_weight_sum = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    const auto& a = su->slot(i);
    const auto& b = sv->slot(i);
    if (a.hash != b.hash || a.hash == ~0ULL) continue;
    ++matches;
    VertexId w = static_cast<VertexId>(a.item);
    aa_weight_sum +=
        AdamicAdarWeight(out_degrees_.Degree(w) + in_degrees_.Degree(w));
  }
  est.jaccard = static_cast<double>(matches) / k;
  est.union_size = size_sum / (1.0 + est.jaccard);
  est.intersection = est.jaccard * est.union_size;
  if (matches > 0) {
    est.adamic_adar = est.intersection * (aa_weight_sum / matches);
  }
  return est;
}

uint64_t DirectedMinHashPredictor::MemoryBytes() const {
  return out_store_.MemoryBytes() + in_store_.MemoryBytes() +
         out_degrees_.MemoryBytes() + in_degrees_.MemoryBytes();
}

namespace {
constexpr uint32_t kDirectedPayloadVersion = 1;

void WriteSide(BinaryWriter& writer, const SketchStore<MinHashSketch>& store,
               const DegreeTable& degrees) {
  writer.WriteVector(degrees.raw());
  writer.WriteU64(store.num_vertices());
  for (VertexId u = 0; u < store.num_vertices(); ++u) {
    writer.WriteVector(store.Get(u)->slots());
  }
}

Status ReadSide(BinaryReader& reader, uint32_t num_hashes,
                SketchStore<MinHashSketch>& store, DegreeTable& degrees) {
  auto raw_degrees = reader.ReadVector<uint32_t>();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // Each side's degree counter and sketch store grow in lockstep (an arc
  // u->v touches only u's out pair and v's in pair).
  if (raw_degrees.size() != num_vertices) {
    return Status::InvalidArgument(
        "corrupt snapshot: degree table covers " +
        std::to_string(raw_degrees.size()) + " vertices, sketch store " +
        std::to_string(num_vertices));
  }
  degrees.SetRaw(std::move(raw_degrees));
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto slots = reader.ReadVector<MinHashSketch::Slot>();
    if (!reader.ok()) break;
    if (slots.size() != num_hashes) {
      return Status::InvalidArgument("corrupt snapshot: bad sketch width");
    }
    store.Mutable(static_cast<VertexId>(u)) =
        MinHashSketch::FromSlots(std::move(slots));
  }
  return reader.status();
}

}  // namespace

Status DirectedMinHashPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kDirectedPayloadVersion);
  writer.WriteU32(options_.num_hashes);
  writer.WriteU64(options_.seed);
  writer.WriteU64(arcs_processed_);
  WriteSide(writer, out_store_, out_degrees_);
  WriteSide(writer, in_store_, in_degrees_);
  return writer.status();
}

Status DirectedMinHashPredictor::Save(const std::string& path) const {
  return WriteFileAtomic(
      path, [this](BinaryWriter& writer) { return SaveTo(writer); });
}

Result<DirectedMinHashPredictor> DirectedMinHashPredictor::LoadFrom(
    BinaryReader& reader, uint32_t payload_version) {
  if (payload_version != kDirectedPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported directed_minhash payload version " +
        std::to_string(payload_version));
  }
  DirectedPredictorOptions options;
  options.num_hashes = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t arcs = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (options.num_hashes < 1) {
    return Status::InvalidArgument("corrupt snapshot: zero sketch width");
  }

  DirectedMinHashPredictor predictor(options);
  if (Status st = ReadSide(reader, options.num_hashes, predictor.out_store_,
                           predictor.out_degrees_);
      !st.ok()) {
    return st;
  }
  if (Status st = ReadSide(reader, options.num_hashes, predictor.in_store_,
                           predictor.in_degrees_);
      !st.ok()) {
    return st;
  }
  predictor.arcs_processed_ = arcs;
  return predictor;
}

Result<DirectedMinHashPredictor> DirectedMinHashPredictor::Load(
    const std::string& path) {
  if (Status st = PreflightSnapshotFile(path); !st.ok()) return st;
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  Result<SnapshotHeader> header = ReadSnapshotHeader(reader);
  if (!header.ok()) return header.status();
  if (header->kind != "directed_minhash") {
    return Status::InvalidArgument(
        "snapshot holds a '" + header->kind +
        "' predictor, expected directed_minhash: " + path);
  }
  Result<DirectedMinHashPredictor> predictor =
      LoadFrom(reader, header->payload_version);
  if (!predictor.ok()) return predictor.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return predictor;
}

}  // namespace streamlink

#include "core/vertex_biased_predictor.h"

#include <algorithm>
#include <cmath>

#include "graph/exact_measures.h"
#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

VertexBiasedPredictor::VertexBiasedPredictor(
    const VertexBiasedPredictorOptions& options)
    : options_(options),
      family_(options.seed, options.num_hashes),
      exp_seed_(Mix64(options.seed ^ 0xb1a5edULL)),
      minhash_store_([k = options.num_hashes] { return MinHashSketch(k); }),
      weighted_store_([k = options.num_weighted_samples] {
        return WeightedBottomKSampler(k);
      }) {
  SL_CHECK(options.num_hashes >= 1) << "num_hashes must be >= 1";
  SL_CHECK(options.num_weighted_samples >= 1)
      << "num_weighted_samples must be >= 1";
}

double VertexBiasedPredictor::SamplingWeight(uint32_t degree) {
  return 1.0 / std::log(static_cast<double>(degree) + M_E);
}

void VertexBiasedPredictor::ProcessEdge(const Edge& edge) {
  degrees_.Increment(edge.u);
  degrees_.Increment(edge.v);

  minhash_store_.Mutable(edge.u).Update(edge.v, family_);
  minhash_store_.Mutable(edge.v).Update(edge.u, family_);

  // Coordinated Exp(1) variates: derived from the neighbor's id only, so
  // the same vertex carries the same variate in every sampler.
  double exp_u = HashToExp(HashU64(edge.u, exp_seed_));
  double exp_v = HashToExp(HashU64(edge.v, exp_seed_));
  weighted_store_.Mutable(edge.u).Offer(edge.v, exp_v,
                                        SamplingWeight(degrees_.Degree(edge.v)));
  weighted_store_.Mutable(edge.v).Offer(edge.u, exp_u,
                                        SamplingWeight(degrees_.Degree(edge.u)));
}

VertexId VertexBiasedPredictor::num_vertices() const {
  return std::max(minhash_store_.num_vertices(),
                  weighted_store_.num_vertices());
}

OverlapEstimate VertexBiasedPredictor::EstimateOverlap(VertexId u,
                                                       VertexId v) const {
  OverlapEstimate est;
  est.degree_u = degrees_.Degree(u);
  est.degree_v = degrees_.Degree(v);
  const double degree_sum = est.degree_u + est.degree_v;

  const MinHashSketch* su = minhash_store_.Get(u);
  const MinHashSketch* sv = minhash_store_.Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    est.union_size = degree_sum;
    return est;
  }

  est.jaccard = MinHashSketch::EstimateJaccard(*su, *sv);
  est.union_size = degree_sum / (1.0 + est.jaccard);
  est.intersection = est.jaccard * est.union_size;

  // Adamic-Adar via the coordinated weighted samplers: estimate
  // Σ_{w ∈ ∩} aa_weight(w) directly (no uniform-sample detour).
  const WeightedBottomKSampler* wu = weighted_store_.Get(u);
  const WeightedBottomKSampler* wv = weighted_store_.Get(v);
  if (wu != nullptr && wv != nullptr) {
    auto aa_now = [this](uint64_t item) {
      return AdamicAdarWeight(degrees_.Degree(static_cast<VertexId>(item)));
    };
    est.adamic_adar = WeightedBottomKSampler::EstimateWeightedIntersection(
        *wu, *wv, aa_now);
    auto ra_now = [this](uint64_t item) {
      uint32_t d = degrees_.Degree(static_cast<VertexId>(item));
      return d > 0 ? 1.0 / d : 0.0;
    };
    est.resource_allocation =
        WeightedBottomKSampler::EstimateWeightedIntersection(*wu, *wv,
                                                             ra_now);
  }
  return est;
}

uint64_t VertexBiasedPredictor::MemoryBytes() const {
  return minhash_store_.MemoryBytes() + weighted_store_.MemoryBytes() +
         degrees_.MemoryBytes();
}

namespace {
constexpr uint32_t kVertexBiasedPayloadVersion = 1;
}  // namespace

Status VertexBiasedPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kVertexBiasedPayloadVersion);
  writer.WriteU32(options_.num_hashes);
  writer.WriteU32(options_.num_weighted_samples);
  writer.WriteU64(options_.seed);
  writer.WriteU64(edges_processed());
  writer.WriteVector(degrees_.raw());
  writer.WriteU64(minhash_store_.num_vertices());
  for (VertexId u = 0; u < minhash_store_.num_vertices(); ++u) {
    writer.WriteVector(minhash_store_.Get(u)->slots());
    writer.WriteVector(weighted_store_.Get(u)->entries());
  }
  return writer.status();
}

Result<VertexBiasedPredictor> VertexBiasedPredictor::LoadFrom(
    BinaryReader& reader, uint32_t payload_version) {
  if (payload_version != kVertexBiasedPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported vertex_biased payload version " +
        std::to_string(payload_version));
  }
  VertexBiasedPredictorOptions options;
  options.num_hashes = reader.ReadU32();
  options.num_weighted_samples = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t edges = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (options.num_hashes < 1 || options.num_weighted_samples < 1) {
    return Status::InvalidArgument("corrupt snapshot: bad sketch sizes");
  }

  auto degrees = reader.ReadVector<uint32_t>();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // All three per-vertex structures (minhash, sampler, degrees) grow in
  // lockstep — both endpoints of every edge touch each of them.
  if (degrees.size() != num_vertices) {
    return Status::InvalidArgument(
        "corrupt snapshot: degree table covers " +
        std::to_string(degrees.size()) + " vertices, sketch store " +
        std::to_string(num_vertices));
  }

  VertexBiasedPredictor predictor(options);
  predictor.degrees_.SetRaw(std::move(degrees));
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto slots = reader.ReadVector<MinHashSketch::Slot>();
    auto entries = reader.ReadVector<WeightedBottomKSampler::Entry>();
    if (!reader.ok()) break;
    if (slots.size() != options.num_hashes) {
      return Status::InvalidArgument("corrupt snapshot: bad sketch width");
    }
    if (entries.size() > options.num_weighted_samples) {
      return Status::InvalidArgument("corrupt snapshot: oversized sampler");
    }
    for (size_t i = 1; i < entries.size(); ++i) {
      if (entries[i].rank < entries[i - 1].rank) {
        return Status::InvalidArgument(
            "corrupt snapshot: sampler ranks out of order");
      }
    }
    predictor.minhash_store_.Mutable(static_cast<VertexId>(u)) =
        MinHashSketch::FromSlots(std::move(slots));
    predictor.weighted_store_.Mutable(static_cast<VertexId>(u)) =
        WeightedBottomKSampler::FromEntries(options.num_weighted_samples,
                                            std::move(entries));
  }
  if (!reader.ok()) return reader.status();
  predictor.AddProcessedEdges(edges);
  return predictor;
}

}  // namespace streamlink

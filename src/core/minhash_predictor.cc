#include "core/minhash_predictor.h"

#include "graph/exact_measures.h"
#include "util/serde.h"
#include "util/logging.h"

namespace streamlink {

MinHashPredictor::MinHashPredictor(const MinHashPredictorOptions& options)
    : options_(options),
      family_(options.seed, options.num_hashes),
      store_([k = options.num_hashes] { return MinHashSketch(k); }) {
  SL_CHECK(options.num_hashes >= 1) << "num_hashes must be >= 1";
}

void MinHashPredictor::ProcessEdge(const Edge& edge) {
  store_.Mutable(edge.u).Update(edge.v, family_);
  store_.Mutable(edge.v).Update(edge.u, family_);
  degrees_.Increment(edge.u);
  degrees_.Increment(edge.v);
}

OverlapEstimate MinHashPredictor::EstimateOverlap(VertexId u,
                                                  VertexId v) const {
  // Same code path as a cross-shard query, with ourselves as v's home and
  // local degree lookups — sharded builds agree with this bit for bit.
  return EstimateOverlapSharded(
      u, *this, v,
      [this](VertexId w) -> double { return degrees_.Degree(w); });
}

OverlapEstimate MinHashPredictor::EstimateOverlapSharded(
    VertexId u, const LinkPredictor& v_home, VertexId v,
    const DegreeFn& degree_of) const {
  const auto* peer = dynamic_cast<const MinHashPredictor*>(&v_home);
  SL_CHECK(peer != nullptr) << "cross-shard query between predictor kinds: "
                            << name() << " vs " << v_home.name();
  SL_CHECK(options_.num_hashes == peer->options_.num_hashes &&
           options_.seed == peer->options_.seed)
      << "cross-shard query between differently-configured predictors";

  OverlapEstimate est;
  est.degree_u = degree_of(u);
  est.degree_v = degree_of(v);
  const double degree_sum = est.degree_u + est.degree_v;

  const MinHashSketch* su = store_.Get(u);
  const MinHashSketch* sv = peer->store_.Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    // At least one endpoint is isolated: every overlap quantity is zero.
    est.union_size = degree_sum;
    return est;
  }

  const uint32_t k = su->num_slots();
  uint32_t matches = 0;
  double aa_weight_sum = 0.0;
  double ra_weight_sum = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    const auto& a = su->slot(i);
    const auto& b = sv->slot(i);
    if (a.hash != b.hash || a.hash == ~0ULL) continue;
    ++matches;
    // Matching slot => the arg-min vertex is a uniform sample of the
    // intersection. Weight it by its *current* degree, wherever it lives.
    uint32_t dw =
        static_cast<uint32_t>(degree_of(static_cast<VertexId>(a.item)));
    aa_weight_sum += AdamicAdarWeight(dw);
    if (dw > 0) ra_weight_sum += 1.0 / dw;
  }

  est.jaccard = static_cast<double>(matches) / k;
  // |∩| = J·|∪| and |∪| = d(u)+d(v)−|∩| imply the closed forms below.
  est.union_size = degree_sum / (1.0 + est.jaccard);
  est.intersection = est.jaccard * est.union_size;
  if (matches > 0) {
    est.adamic_adar = est.intersection * (aa_weight_sum / matches);
    est.resource_allocation = est.intersection * (ra_weight_sum / matches);
  }
  return est;
}

uint64_t MinHashPredictor::MemoryBytes() const {
  return store_.MemoryBytes() + degrees_.MemoryBytes();
}

void MinHashPredictor::MergeFrom(const MinHashPredictor& other) {
  SL_CHECK(options_.num_hashes == other.options_.num_hashes &&
           options_.seed == other.options_.seed)
      << "cannot merge predictors with different options";
  store_.MergeFrom(other.store_,
                   [](MinHashSketch& mine, const MinHashSketch& theirs) {
                     mine.MergeUnion(theirs);
                   });
  degrees_.MergeFrom(other.degrees_);
  AddProcessedEdges(other.edges_processed());
}

namespace {
constexpr uint32_t kMinHashPayloadVersion = 1;
}  // namespace

Status MinHashPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kMinHashPayloadVersion);
  writer.WriteU32(options_.num_hashes);
  writer.WriteU64(options_.seed);
  writer.WriteU64(edges_processed());
  writer.WriteVector(degrees_.raw());
  writer.WriteU64(store_.num_vertices());
  for (VertexId u = 0; u < store_.num_vertices(); ++u) {
    writer.WriteVector(store_.Get(u)->slots());
  }
  return writer.status();
}

Result<MinHashPredictor> MinHashPredictor::LoadFrom(BinaryReader& reader,
                                                    uint32_t payload_version) {
  if (payload_version != kMinHashPayloadVersion) {
    return Status::InvalidArgument("unsupported minhash payload version " +
                                   std::to_string(payload_version));
  }
  MinHashPredictorOptions options;
  options.num_hashes = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t edges = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("corrupt snapshot: zero sketch width");
  }

  auto degrees = reader.ReadVector<uint32_t>();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // Degrees and sketches grow in lockstep (both endpoints of every edge
  // touch both tables), so a length mismatch can only mean corruption —
  // e.g. a truncated-then-padded file whose sizes are self-consistent but
  // cross-inconsistent.
  if (degrees.size() != num_vertices) {
    return Status::InvalidArgument(
        "corrupt snapshot: degree table covers " +
        std::to_string(degrees.size()) + " vertices, sketch store " +
        std::to_string(num_vertices));
  }

  MinHashPredictor predictor(options);
  predictor.degrees_.SetRaw(std::move(degrees));
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto slots = reader.ReadVector<MinHashSketch::Slot>();
    if (!reader.ok()) break;
    if (slots.size() != options.num_hashes) {
      return Status::InvalidArgument("corrupt snapshot: bad sketch width");
    }
    predictor.store_.Mutable(static_cast<VertexId>(u)) =
        MinHashSketch::FromSlots(std::move(slots));
  }
  if (!reader.ok()) return reader.status();
  predictor.AddProcessedEdges(edges);
  return predictor;
}

Result<MinHashPredictor> MinHashPredictor::Load(const std::string& path) {
  if (Status st = PreflightSnapshotFile(path); !st.ok()) return st;
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  Result<SnapshotHeader> header = ReadSnapshotHeader(reader);
  if (!header.ok()) return header.status();
  if (header->kind != "minhash") {
    return Status::InvalidArgument("snapshot holds a '" + header->kind +
                                   "' predictor, expected minhash: " + path);
  }
  Result<MinHashPredictor> predictor =
      LoadFrom(reader, header->payload_version);
  if (!predictor.ok()) return predictor.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return predictor;
}

}  // namespace streamlink

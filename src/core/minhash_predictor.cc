#include "core/minhash_predictor.h"

#include "graph/exact_measures.h"
#include "util/serde.h"
#include "util/logging.h"

namespace streamlink {

MinHashPredictor::MinHashPredictor(const MinHashPredictorOptions& options)
    : options_(options),
      family_(options.seed, options.num_hashes),
      store_([k = options.num_hashes] { return MinHashSketch(k); }) {
  SL_CHECK(options.num_hashes >= 1) << "num_hashes must be >= 1";
}

void MinHashPredictor::ProcessEdge(const Edge& edge) {
  store_.Mutable(edge.u).Update(edge.v, family_);
  store_.Mutable(edge.v).Update(edge.u, family_);
  degrees_.Increment(edge.u);
  degrees_.Increment(edge.v);
}

OverlapEstimate MinHashPredictor::EstimateOverlap(VertexId u,
                                                  VertexId v) const {
  // Same code path as a cross-shard query, with ourselves as v's home and
  // local degree lookups — sharded builds agree with this bit for bit.
  return EstimateOverlapSharded(
      u, *this, v,
      [this](VertexId w) -> double { return degrees_.Degree(w); });
}

OverlapEstimate MinHashPredictor::EstimateOverlapSharded(
    VertexId u, const LinkPredictor& v_home, VertexId v,
    const DegreeFn& degree_of) const {
  const auto* peer = dynamic_cast<const MinHashPredictor*>(&v_home);
  SL_CHECK(peer != nullptr) << "cross-shard query between predictor kinds: "
                            << name() << " vs " << v_home.name();
  SL_CHECK(options_.num_hashes == peer->options_.num_hashes &&
           options_.seed == peer->options_.seed)
      << "cross-shard query between differently-configured predictors";

  OverlapEstimate est;
  est.degree_u = degree_of(u);
  est.degree_v = degree_of(v);
  const double degree_sum = est.degree_u + est.degree_v;

  const MinHashSketch* su = store_.Get(u);
  const MinHashSketch* sv = peer->store_.Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    // At least one endpoint is isolated: every overlap quantity is zero.
    est.union_size = degree_sum;
    return est;
  }

  const uint32_t k = su->num_slots();
  uint32_t matches = 0;
  double aa_weight_sum = 0.0;
  double ra_weight_sum = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    const auto& a = su->slot(i);
    const auto& b = sv->slot(i);
    if (a.hash != b.hash || a.hash == ~0ULL) continue;
    ++matches;
    // Matching slot => the arg-min vertex is a uniform sample of the
    // intersection. Weight it by its *current* degree, wherever it lives.
    uint32_t dw =
        static_cast<uint32_t>(degree_of(static_cast<VertexId>(a.item)));
    aa_weight_sum += AdamicAdarWeight(dw);
    if (dw > 0) ra_weight_sum += 1.0 / dw;
  }

  est.jaccard = static_cast<double>(matches) / k;
  // |∩| = J·|∪| and |∪| = d(u)+d(v)−|∩| imply the closed forms below.
  est.union_size = degree_sum / (1.0 + est.jaccard);
  est.intersection = est.jaccard * est.union_size;
  if (matches > 0) {
    est.adamic_adar = est.intersection * (aa_weight_sum / matches);
    est.resource_allocation = est.intersection * (ra_weight_sum / matches);
  }
  return est;
}

uint64_t MinHashPredictor::MemoryBytes() const {
  return store_.MemoryBytes() + degrees_.MemoryBytes();
}

void MinHashPredictor::MergeFrom(const MinHashPredictor& other) {
  SL_CHECK(options_.num_hashes == other.options_.num_hashes &&
           options_.seed == other.options_.seed)
      << "cannot merge predictors with different options";
  store_.MergeFrom(other.store_,
                   [](MinHashSketch& mine, const MinHashSketch& theirs) {
                     mine.MergeUnion(theirs);
                   });
  degrees_.MergeFrom(other.degrees_);
  AddProcessedEdges(other.edges_processed());
}

namespace {
// Snapshot format magic/version for MinHashPredictor::Save.
constexpr uint32_t kMinHashSnapshotMagic = 0x534c4d48;  // "SLMH"
constexpr uint32_t kMinHashSnapshotVersion = 1;
}  // namespace

Status MinHashPredictor::Save(const std::string& path) const {
  BinaryWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteU32(kMinHashSnapshotMagic);
  writer.WriteU32(kMinHashSnapshotVersion);
  writer.WriteU32(options_.num_hashes);
  writer.WriteU64(options_.seed);
  writer.WriteU64(edges_processed());
  writer.WriteVector(degrees_.raw());
  writer.WriteU64(store_.num_vertices());
  for (VertexId u = 0; u < store_.num_vertices(); ++u) {
    writer.WriteVector(store_.Get(u)->slots());
  }
  return writer.Finish();
}

Result<MinHashPredictor> MinHashPredictor::Load(const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  if (reader.ReadU32() != kMinHashSnapshotMagic) {
    return Status::InvalidArgument("not a minhash snapshot: " + path);
  }
  uint32_t version = reader.ReadU32();
  if (version != kMinHashSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  MinHashPredictorOptions options;
  options.num_hashes = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t edges = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("corrupt snapshot: zero sketch width");
  }

  MinHashPredictor predictor(options);
  predictor.degrees_.SetRaw(reader.ReadVector<uint32_t>());
  uint64_t num_vertices = reader.ReadU64();
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto slots = reader.ReadVector<MinHashSketch::Slot>();
    if (slots.size() != options.num_hashes) {
      return Status::InvalidArgument("corrupt snapshot: bad sketch width");
    }
    predictor.store_.Mutable(static_cast<VertexId>(u)) =
        MinHashSketch::FromSlots(std::move(slots));
  }
  if (!reader.ok()) return reader.status();
  predictor.AddProcessedEdges(edges);
  return predictor;
}

}  // namespace streamlink

#ifndef STREAMLINK_CORE_EXACT_PREDICTOR_H_
#define STREAMLINK_CORE_EXACT_PREDICTOR_H_

#include <string>

#include "core/link_predictor.h"
#include "graph/adjacency_graph.h"
#include "util/status.h"

namespace streamlink {

/// The exact baseline: maintains full adjacency sets (O(d) space per
/// vertex, unbounded) and computes every measure exactly. This is what the
/// paper compares the sketches against on accuracy (ground truth), memory
/// (the cost of exactness) and speed (hash-set updates vs O(k) sketch
/// updates; O(min-degree) queries vs O(k) sketch queries).
class ExactPredictor : public LinkPredictor {
 public:
  ExactPredictor() = default;

  std::string name() const override { return "exact"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override { return graph_.num_vertices(); }
  uint64_t MemoryBytes() const override { return graph_.MemoryBytes(); }

  const AdjacencyGraph& graph() const { return graph_; }

  // Turnstile capability: adjacency sets delete natively. Retracting an
  // edge that is not present is a no-op (the graph stays simple), so the
  // exact kind is the reference oracle for delete-heavy churn streams.
  bool SupportsDeletions() const override { return true; }

  // Vertex-sharded operation (LinkPredictor capability): adjacency sets
  // are per-vertex state, so half-edges route cleanly; cross-shard queries
  // intersect the two owners' neighbor sets and fetch common-neighbor
  // degrees through the routed oracle. Still exact, still bit-identical.
  bool SupportsSharding() const override { return true; }
  void ObserveNeighbor(VertexId u, VertexId neighbor) override {
    graph_.AddArc(u, neighbor);
  }
  void ObserveNeighborBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) graph_.AddArc(e.u, e.v);
  }
  void RetractNeighbor(VertexId u, VertexId neighbor) override {
    graph_.RemoveArc(u, neighbor);
  }
  void RetractNeighborBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) graph_.RemoveArc(e.u, e.v);
  }
  double OwnedDegree(VertexId u) const override { return graph_.Degree(u); }
  OverlapEstimate EstimateOverlapSharded(
      VertexId u, const LinkPredictor& v_home, VertexId v,
      const DegreeFn& degree_of) const override;

  /// Snapshot primitive: deep copy of the adjacency sets. O(E) time and
  /// space — the cost of snapshotting the exact baseline, quantified by
  /// bench F17.
  std::unique_ptr<LinkPredictor> Clone() const override {
    return std::make_unique<ExactPredictor>(*this);
  }

  /// Universal snapshot envelope, kind "exact". Neighbor sets are written
  /// sorted (hash-set iteration order is nondeterministic), so repeated
  /// saves of equal graphs are byte-identical. O(E log d) time.
  Status SaveTo(BinaryWriter& writer) const override;

  /// Payload decoder for an already-consumed envelope header.
  static Result<ExactPredictor> LoadFrom(BinaryReader& reader,
                                         uint32_t payload_version);

 protected:
  void ProcessEdge(const Edge& edge) override { graph_.AddEdge(edge); }
  void ProcessDelete(const Edge& edge) override { graph_.RemoveEdge(edge); }

 private:
  AdjacencyGraph graph_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_EXACT_PREDICTOR_H_

#include "core/weighted_predictor.h"

#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

WeightedJaccardPredictor::WeightedJaccardPredictor(
    const WeightedPredictorOptions& options)
    : options_(options), store_([options] {
        return IcwsSketch(options.num_slots, options.seed);
      }) {
  SL_CHECK(options.num_slots >= 1) << "num_slots must be >= 1";
}

void WeightedJaccardPredictor::OnWeightedEdge(const WeightedEdge& edge) {
  if (edge.u == edge.v) return;
  SL_CHECK(edge.weight > 0.0) << "edge weights must be positive";
  ++edges_processed_;
  store_.Mutable(edge.u).Update(edge.v, edge.weight);
  store_.Mutable(edge.v).Update(edge.u, edge.weight);
  VertexId needed = std::max(edge.u, edge.v) + 1;
  if (needed > strength_.size()) strength_.resize(needed, 0.0);
  strength_[edge.u] += edge.weight;
  strength_[edge.v] += edge.weight;
}

WeightedJaccardPredictor::WeightedEstimate WeightedJaccardPredictor::Estimate(
    VertexId u, VertexId v) const {
  WeightedEstimate est;
  est.strength_u = Strength(u);
  est.strength_v = Strength(v);
  const double strength_sum = est.strength_u + est.strength_v;

  const IcwsSketch* su = store_.Get(u);
  const IcwsSketch* sv = store_.Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    est.max_sum = strength_sum;
    return est;
  }
  est.generalized_jaccard = IcwsSketch::EstimateGeneralizedJaccard(*su, *sv);
  // Σmin + Σmax = S_u + S_v and J = Σmin/Σmax.
  est.max_sum = strength_sum / (1.0 + est.generalized_jaccard);
  est.min_sum = est.generalized_jaccard * est.max_sum;
  return est;
}

uint64_t WeightedJaccardPredictor::MemoryBytes() const {
  return store_.MemoryBytes() + sizeof(*this) +
         strength_.capacity() * sizeof(double);
}

namespace {
constexpr uint32_t kWeightedPayloadVersion = 1;
}  // namespace

Status WeightedJaccardPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kWeightedPayloadVersion);
  writer.WriteU32(options_.num_slots);
  writer.WriteU64(options_.seed);
  writer.WriteU64(edges_processed_);
  writer.WriteVector(strength_);
  writer.WriteU64(store_.num_vertices());
  for (VertexId u = 0; u < store_.num_vertices(); ++u) {
    writer.WriteVector(store_.Get(u)->slots());
  }
  return writer.status();
}

Status WeightedJaccardPredictor::Save(const std::string& path) const {
  return WriteFileAtomic(
      path, [this](BinaryWriter& writer) { return SaveTo(writer); });
}

Result<WeightedJaccardPredictor> WeightedJaccardPredictor::LoadFrom(
    BinaryReader& reader, uint32_t payload_version) {
  if (payload_version != kWeightedPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported weighted_icws payload version " +
        std::to_string(payload_version));
  }
  WeightedPredictorOptions options;
  options.num_slots = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t edges = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (options.num_slots < 1) {
    return Status::InvalidArgument("corrupt snapshot: zero sketch width");
  }

  auto strength = reader.ReadVector<double>();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // Strengths and sketches grow in lockstep (both endpoints of every
  // weighted edge touch both).
  if (strength.size() != num_vertices) {
    return Status::InvalidArgument(
        "corrupt snapshot: strength table covers " +
        std::to_string(strength.size()) + " vertices, sketch store " +
        std::to_string(num_vertices));
  }

  WeightedJaccardPredictor predictor(options);
  predictor.strength_ = std::move(strength);
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto slots = reader.ReadVector<IcwsSketch::Slot>();
    if (!reader.ok()) break;
    if (slots.size() != options.num_slots) {
      return Status::InvalidArgument("corrupt snapshot: bad sketch width");
    }
    predictor.store_.Mutable(static_cast<VertexId>(u)) =
        IcwsSketch::FromSlots(options.seed, std::move(slots));
  }
  if (!reader.ok()) return reader.status();
  predictor.edges_processed_ = edges;
  return predictor;
}

Result<WeightedJaccardPredictor> WeightedJaccardPredictor::Load(
    const std::string& path) {
  if (Status st = PreflightSnapshotFile(path); !st.ok()) return st;
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  Result<SnapshotHeader> header = ReadSnapshotHeader(reader);
  if (!header.ok()) return header.status();
  if (header->kind != "weighted_icws") {
    return Status::InvalidArgument(
        "snapshot holds a '" + header->kind +
        "' predictor, expected weighted_icws: " + path);
  }
  Result<WeightedJaccardPredictor> predictor =
      LoadFrom(reader, header->payload_version);
  if (!predictor.ok()) return predictor.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return predictor;
}

}  // namespace streamlink

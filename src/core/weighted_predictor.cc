#include "core/weighted_predictor.h"

#include "util/logging.h"

namespace streamlink {

WeightedJaccardPredictor::WeightedJaccardPredictor(
    const WeightedPredictorOptions& options)
    : options_(options), store_([options] {
        return IcwsSketch(options.num_slots, options.seed);
      }) {
  SL_CHECK(options.num_slots >= 1) << "num_slots must be >= 1";
}

void WeightedJaccardPredictor::OnWeightedEdge(const WeightedEdge& edge) {
  if (edge.u == edge.v) return;
  SL_CHECK(edge.weight > 0.0) << "edge weights must be positive";
  ++edges_processed_;
  store_.Mutable(edge.u).Update(edge.v, edge.weight);
  store_.Mutable(edge.v).Update(edge.u, edge.weight);
  VertexId needed = std::max(edge.u, edge.v) + 1;
  if (needed > strength_.size()) strength_.resize(needed, 0.0);
  strength_[edge.u] += edge.weight;
  strength_[edge.v] += edge.weight;
}

WeightedJaccardPredictor::WeightedEstimate WeightedJaccardPredictor::Estimate(
    VertexId u, VertexId v) const {
  WeightedEstimate est;
  est.strength_u = Strength(u);
  est.strength_v = Strength(v);
  const double strength_sum = est.strength_u + est.strength_v;

  const IcwsSketch* su = store_.Get(u);
  const IcwsSketch* sv = store_.Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    est.max_sum = strength_sum;
    return est;
  }
  est.generalized_jaccard = IcwsSketch::EstimateGeneralizedJaccard(*su, *sv);
  // Σmin + Σmax = S_u + S_v and J = Σmin/Σmax.
  est.max_sum = strength_sum / (1.0 + est.generalized_jaccard);
  est.min_sum = est.generalized_jaccard * est.max_sum;
  return est;
}

uint64_t WeightedJaccardPredictor::MemoryBytes() const {
  return store_.MemoryBytes() + sizeof(*this) +
         strength_.capacity() * sizeof(double);
}

}  // namespace streamlink

#include "core/tombstone_predictor.h"

#include <algorithm>

#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

TombstoneWindowPredictor::TombstoneWindowPredictor(
    std::unique_ptr<LinkPredictor> inner, uint32_t window)
    : inner_(std::move(inner)), window_(window) {
  SL_CHECK(inner_ != nullptr) << "tombstone window needs an inner predictor";
  SL_CHECK(window_ >= 1) << "tombstone window must be >= 1";
  SL_CHECK(!inner_->SupportsDeletions())
      << inner_->name() << " deletes natively; no tombstone window needed";
}

void TombstoneWindowPredictor::ProcessEdge(const Edge& edge) {
  pending_.push_back(edge.Canonical());
  if (pending_.size() > window_) {
    inner_->OnEdge(pending_.front());
    pending_.pop_front();
  }
}

void TombstoneWindowPredictor::ProcessDelete(const Edge& edge) {
  const Edge canonical = edge.Canonical();
  auto it = std::find(pending_.begin(), pending_.end(), canonical);
  if (it != pending_.end()) {
    pending_.erase(it);  // insert∘delete annihilate inside the window
    return;
  }
  ++unretractable_deletes_;  // already flushed, or never inserted
}

void TombstoneWindowPredictor::Flush() {
  for (const Edge& e : pending_) inner_->OnEdge(e);
  pending_.clear();
}

uint64_t TombstoneWindowPredictor::MemoryBytes() const {
  return inner_->MemoryBytes() + sizeof(*this) +
         pending_.size() * sizeof(Edge);
}

std::unique_ptr<LinkPredictor> TombstoneWindowPredictor::Clone() const {
  std::unique_ptr<LinkPredictor> inner_clone = inner_->Clone();
  if (inner_clone == nullptr) return nullptr;
  auto clone = std::make_unique<TombstoneWindowPredictor>(
      std::move(inner_clone), window_);
  clone->pending_ = pending_;
  clone->unretractable_deletes_ = unretractable_deletes_;
  clone->AddProcessedEdges(edges_processed());
  clone->AddProcessedDeletes(deletes_processed());
  return clone;
}

namespace {
constexpr uint32_t kTombstonePayloadVersion = 1;
}  // namespace

Status TombstoneWindowPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kTombstonePayloadVersion);
  writer.WriteU32(window_);
  writer.WriteU64(unretractable_deletes_);
  writer.WriteU64(edges_processed());
  writer.WriteU64(deletes_processed());
  EdgeList pending(pending_.begin(), pending_.end());
  writer.WriteVector(pending);
  return inner_->SaveTo(writer);
}

void TombstoneWindowPredictor::RestorePending(EdgeList pending) {
  pending_.assign(pending.begin(), pending.end());
}

}  // namespace streamlink

#ifndef STREAMLINK_CORE_MINHASH_PREDICTOR_H_
#define STREAMLINK_CORE_MINHASH_PREDICTOR_H_

#include <string>

#include "core/link_predictor.h"
#include "core/sketch_store.h"
#include "sketch/minhash.h"
#include "util/hashing.h"
#include "util/status.h"

namespace streamlink {

/// Options for MinHashPredictor.
struct MinHashPredictorOptions {
  /// Sketch width k: number of independent min-hash slots per vertex.
  /// Estimation error decays as 1/sqrt(k).
  uint32_t num_hashes = 64;
  /// Master seed of the shared hash family.
  uint64_t seed = 0x5eed;
};

/// The paper's primary method: per-vertex k-permutation MinHash sketches
/// of neighborhoods, updated in O(k) per edge, O(k) space per vertex.
///
/// Estimators (see DESIGN.md §3.1):
///  * Jaccard: fraction of matching slots — unbiased, Hoeffding
///    concentration 2·exp(−2kε²).
///  * Common neighbors: Ĵ/(1+Ĵ)·(d(u)+d(v)) with exact O(1) degree
///    counters. Exact when Ĵ is exact.
///  * Adamic-Adar / Resource-Allocation: intersection estimate times the
///    sample mean of 1/ln d(w) (resp. 1/d(w)) over the arg-min vertices of
///    matching slots — each matching slot is a *uniform* sample of
///    N(u) ∩ N(v) by min-wise symmetry.
class MinHashPredictor : public LinkPredictor {
 public:
  explicit MinHashPredictor(const MinHashPredictorOptions& options = {});

  std::string name() const override { return "minhash"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override { return store_.num_vertices(); }
  uint64_t MemoryBytes() const override;

  const MinHashPredictorOptions& options() const { return options_; }
  uint32_t Degree(VertexId u) const { return degrees_.Degree(u); }

  /// The per-vertex sketch, or nullptr for never-seen vertices
  /// (exposed for tests and the space-accuracy experiments).
  const MinHashSketch* Sketch(VertexId u) const { return store_.Get(u); }

  // Vertex-sharded operation (LinkPredictor capability): MinHash slots
  // take slot-wise minima and degree counters add, both per endpoint, so
  // the predictor decomposes cleanly across vertex shards. ShardedPredictor
  // queries are bit-identical to a sequential build; MergeFrom recombines
  // shards losslessly for snapshotting/shipping.
  bool SupportsSharding() const override { return true; }
  void ObserveNeighbor(VertexId u, VertexId neighbor) override {
    store_.Mutable(u).Update(neighbor, family_);
    degrees_.Increment(u);
  }
  /// One virtual dispatch per ring hand-off instead of per half-edge; the
  /// k-permutation kernel re-hashes regardless (no single pre-hash can
  /// feed k slots), so no NeighborHashSeed — the speedup here comes from
  /// HashFamily's cached seed mixing.
  void ObserveNeighborBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) {
      store_.Mutable(e.u).Update(e.v, family_);
      degrees_.Increment(e.u);
    }
  }
  double OwnedDegree(VertexId u) const override { return degrees_.Degree(u); }
  OverlapEstimate EstimateOverlapSharded(
      VertexId u, const LinkPredictor& v_home, VertexId v,
      const DegreeFn& degree_of) const override;

  /// Folds in a peer predictor built over a *disjoint partition* of the
  /// same stream with identical options: sketches take slot-wise minima,
  /// degrees add. After merging, estimates equal those of a single
  /// predictor that saw the concatenated stream — the mergeability that
  /// makes the sketches usable in parallel and distributed ingestion.
  /// Aborts if options differ. Partitions sharing edges double-count
  /// degrees (sketches remain correct).
  void MergeFrom(const MinHashPredictor& other);

  /// Snapshot primitive: all state (options, hash family, sketch store,
  /// degrees) is value-semantic, so the copy constructor is a deep copy.
  std::unique_ptr<LinkPredictor> Clone() const override {
    return std::make_unique<MinHashPredictor>(*this);
  }

  /// Streams the full predictor state under the universal snapshot
  /// envelope (kind "minhash"). Whole-file writes go through the inherited
  /// Save(path), which wraps this in WriteFileAtomic + checksum footer.
  Status SaveTo(BinaryWriter& writer) const override;

  /// Payload decoder: reads the kind-specific payload that follows an
  /// already-consumed envelope header. Validates structural invariants
  /// (sketch widths, degree-table length vs vertex count) and returns
  /// InvalidArgument on any inconsistency instead of constructing a
  /// corrupt predictor.
  static Result<MinHashPredictor> LoadFrom(BinaryReader& reader,
                                           uint32_t payload_version);

  /// Restores a predictor from a Save(path) snapshot file, verifying the
  /// envelope and the whole-file checksum.
  static Result<MinHashPredictor> Load(const std::string& path);

 protected:
  void ProcessEdge(const Edge& edge) override;
  void ProcessBatch(const EdgeBatch& batch) override {
    AddProcessedEdges(batch.size());
    for (const Edge& e : batch) {
      store_.Mutable(e.u).Update(e.v, family_);
      store_.Mutable(e.v).Update(e.u, family_);
      degrees_.Increment(e.u);
      degrees_.Increment(e.v);
    }
  }

 private:
  MinHashPredictorOptions options_;
  HashFamily family_;
  SketchStore<MinHashSketch> store_;
  DegreeTable degrees_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_MINHASH_PREDICTOR_H_

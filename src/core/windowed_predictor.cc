#include "core/windowed_predictor.h"

#include <algorithm>

#include "graph/exact_measures.h"
#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

WindowedMinHashPredictor::WindowedMinHashPredictor(
    const WindowedPredictorOptions& options)
    : options_(options),
      bucket_width_(std::max<uint64_t>(1, options.window_edges /
                                              std::max(1u, options.num_buckets))),
      family_(options.seed, options.num_hashes) {
  SL_CHECK(options.num_hashes >= 1) << "num_hashes must be >= 1";
  SL_CHECK(options.num_buckets >= 2) << "need at least 2 buckets";
  SL_CHECK(options.window_edges >= options.num_buckets)
      << "window must be at least one edge per bucket";
}

void WindowedMinHashPredictor::Touch(VertexId u, VertexId neighbor) {
  if (u >= vertices_.size()) {
    vertices_.resize(u + 1);
  }
  VertexState& state = vertices_[u];
  if (state.buckets.empty()) {
    state.buckets.reserve(options_.num_buckets);
    for (uint32_t i = 0; i < options_.num_buckets; ++i) {
      state.buckets.emplace_back(options_.num_hashes);
    }
  }
  const uint64_t epoch = CurrentEpoch();
  Bucket& bucket = state.buckets[epoch % options_.num_buckets];
  if (bucket.epoch != epoch) {
    // Lazily reclaim a bucket whose epoch expired (or was never used).
    bucket.epoch = epoch;
    bucket.degree = 0;
    bucket.sketch = MinHashSketch(options_.num_hashes);
  }
  bucket.sketch.Update(neighbor, family_);
  ++bucket.degree;
}

void WindowedMinHashPredictor::ProcessEdge(const Edge& edge) {
  Touch(edge.u, edge.v);
  Touch(edge.v, edge.u);
}

uint32_t WindowedMinHashPredictor::MergeLive(VertexId u,
                                             MinHashSketch& out) const {
  if (u >= vertices_.size() || vertices_[u].buckets.empty()) return 0;
  uint32_t degree = 0;
  for (const Bucket& bucket : vertices_[u].buckets) {
    if (!EpochIsLive(bucket.epoch)) continue;
    out.MergeUnion(bucket.sketch);
    degree += bucket.degree;
  }
  return degree;
}

uint32_t WindowedMinHashPredictor::WindowDegree(VertexId u) const {
  if (u >= vertices_.size()) return 0;
  uint32_t degree = 0;
  for (const Bucket& bucket : vertices_[u].buckets) {
    if (EpochIsLive(bucket.epoch)) degree += bucket.degree;
  }
  return degree;
}

OverlapEstimate WindowedMinHashPredictor::EstimateOverlap(VertexId u,
                                                          VertexId v) const {
  OverlapEstimate est;
  MinHashSketch su(options_.num_hashes), sv(options_.num_hashes);
  est.degree_u = MergeLive(u, su);
  est.degree_v = MergeLive(v, sv);
  const double degree_sum = est.degree_u + est.degree_v;
  if (su.IsEmpty() || sv.IsEmpty()) {
    est.union_size = degree_sum;
    return est;
  }

  const uint32_t k = options_.num_hashes;
  uint32_t matches = 0;
  double aa_weight_sum = 0.0;
  double ra_weight_sum = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    const auto& a = su.slot(i);
    const auto& b = sv.slot(i);
    if (a.hash != b.hash || a.hash == ~0ULL) continue;
    ++matches;
    uint32_t dw = WindowDegree(static_cast<VertexId>(a.item));
    aa_weight_sum += AdamicAdarWeight(dw);
    if (dw > 0) ra_weight_sum += 1.0 / dw;
  }
  est.jaccard = static_cast<double>(matches) / k;
  est.union_size = degree_sum / (1.0 + est.jaccard);
  est.intersection = est.jaccard * est.union_size;
  if (matches > 0) {
    est.adamic_adar = est.intersection * (aa_weight_sum / matches);
    est.resource_allocation = est.intersection * (ra_weight_sum / matches);
  }
  return est;
}

uint64_t WindowedMinHashPredictor::MemoryBytes() const {
  uint64_t bytes = sizeof(*this) + vertices_.capacity() * sizeof(VertexState);
  for (const VertexState& state : vertices_) {
    bytes += state.buckets.capacity() * sizeof(Bucket);
    for (const Bucket& bucket : state.buckets) {
      bytes += bucket.sketch.MemoryBytes() - sizeof(MinHashSketch);
    }
  }
  return bytes;
}

namespace {
constexpr uint32_t kWindowedPayloadVersion = 1;
}  // namespace

Status WindowedMinHashPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kWindowedPayloadVersion);
  writer.WriteU32(options_.num_hashes);
  writer.WriteU64(options_.window_edges);
  writer.WriteU32(options_.num_buckets);
  writer.WriteU64(options_.seed);
  writer.WriteU64(edges_processed());
  writer.WriteU64(vertices_.size());
  for (const VertexState& state : vertices_) {
    // Buckets are allocated lazily on first touch: either none or all.
    writer.WriteU64(state.buckets.size());
    for (const Bucket& bucket : state.buckets) {
      writer.WriteU64(bucket.epoch);
      writer.WriteU32(bucket.degree);
      writer.WriteVector(bucket.sketch.slots());
    }
  }
  return writer.status();
}

Result<WindowedMinHashPredictor> WindowedMinHashPredictor::LoadFrom(
    BinaryReader& reader, uint32_t payload_version) {
  if (payload_version != kWindowedPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported windowed_minhash payload version " +
        std::to_string(payload_version));
  }
  WindowedPredictorOptions options;
  options.num_hashes = reader.ReadU32();
  options.window_edges = reader.ReadU64();
  options.num_buckets = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t edges = reader.ReadU64();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // The constructor treats these as programmer errors (fatal); from a file
  // they mean corruption, so validate first and return a Status.
  if (options.num_hashes < 1 || options.num_buckets < 2 ||
      options.window_edges < options.num_buckets) {
    return Status::InvalidArgument("corrupt snapshot: bad window options");
  }

  WindowedMinHashPredictor predictor(options);
  predictor.vertices_.resize(num_vertices);
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    uint64_t bucket_count = reader.ReadU64();
    if (!reader.ok()) break;
    if (bucket_count == 0) continue;  // vertex never touched
    if (bucket_count != options.num_buckets) {
      return Status::InvalidArgument("corrupt snapshot: bad bucket count " +
                                     std::to_string(bucket_count));
    }
    VertexState& state = predictor.vertices_[u];
    state.buckets.reserve(options.num_buckets);
    for (uint32_t b = 0; b < options.num_buckets && reader.ok(); ++b) {
      Bucket bucket(options.num_hashes);
      bucket.epoch = reader.ReadU64();
      bucket.degree = reader.ReadU32();
      auto slots = reader.ReadVector<MinHashSketch::Slot>();
      if (!reader.ok()) break;
      if (slots.size() != options.num_hashes) {
        return Status::InvalidArgument("corrupt snapshot: bad sketch width");
      }
      bucket.sketch = MinHashSketch::FromSlots(std::move(slots));
      state.buckets.push_back(std::move(bucket));
    }
  }
  if (!reader.ok()) return reader.status();
  predictor.AddProcessedEdges(edges);
  return predictor;
}

}  // namespace streamlink

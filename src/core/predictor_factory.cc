#include "core/predictor_factory.h"

#include "util/flags.h"

#include "core/bottomk_predictor.h"
#include "core/exact_predictor.h"
#include "core/minhash_predictor.h"
#include "core/oph_predictor.h"
#include "core/sharded_predictor.h"
#include "core/tcm_predictor.h"
#include "core/tombstone_predictor.h"
#include "core/vertex_biased_predictor.h"
#include "core/windowed_predictor.h"
#include "util/serde.h"

namespace streamlink {

namespace {

/// The per-kind leg of MakePredictor: a plain sequential predictor with no
/// sharding or tombstone wrapping (both layered on by the caller).
Result<std::unique_ptr<LinkPredictor>> MakeSequentialKind(
    const PredictorConfig& config) {
  if (config.kind != "exact" && config.sketch_size < 2) {
    return Status::InvalidArgument("sketch_size must be >= 2, got " +
                                   std::to_string(config.sketch_size));
  }
  if (config.kind == "minhash") {
    MinHashPredictorOptions options;
    options.num_hashes = config.sketch_size;
    options.seed = config.seed;
    return std::unique_ptr<LinkPredictor>(new MinHashPredictor(options));
  }
  if (config.kind == "bottomk") {
    BottomKPredictorOptions options;
    options.k = config.sketch_size;
    options.seed = config.seed;
    options.track_exact_degrees = !config.sketch_degrees;
    return std::unique_ptr<LinkPredictor>(new BottomKPredictor(options));
  }
  if (config.kind == "vertex_biased") {
    VertexBiasedPredictorOptions options;
    options.num_hashes = config.sketch_size / 2;
    options.num_weighted_samples =
        config.sketch_size - options.num_hashes;
    options.seed = config.seed;
    return std::unique_ptr<LinkPredictor>(new VertexBiasedPredictor(options));
  }
  if (config.kind == "oph") {
    OphPredictorOptions options;
    options.num_bins = config.sketch_size;
    options.seed = config.seed;
    return std::unique_ptr<LinkPredictor>(new OphPredictor(options));
  }
  if (config.kind == "windowed_minhash") {
    WindowedPredictorOptions options;
    options.num_hashes = config.sketch_size;
    options.seed = config.seed;
    options.window_edges = config.window_edges;
    options.num_buckets = config.window_buckets;
    return std::unique_ptr<LinkPredictor>(
        new WindowedMinHashPredictor(options));
  }
  if (config.kind == "tcm") {
    if (config.tcm_depth < 1) {
      return Status::InvalidArgument("tcm_depth must be >= 1, got " +
                                     std::to_string(config.tcm_depth));
    }
    TcmPredictorOptions options;
    options.width = config.sketch_size;
    options.depth = config.tcm_depth;
    options.seed = config.seed;
    return std::unique_ptr<LinkPredictor>(new TcmPredictor(options));
  }
  if (config.kind == "exact") {
    return std::unique_ptr<LinkPredictor>(new ExactPredictor());
  }
  return Status::InvalidArgument("unknown predictor kind: " + config.kind);
}

}  // namespace

Result<std::unique_ptr<LinkPredictor>> MakePredictor(
    const PredictorConfig& config) {
  if (config.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1, got 0");
  }
  if (config.tombstone_window > 0) {
    if (KindSupportsDeletions(config.kind)) {
      return Status::InvalidArgument(
          config.kind + " deletes natively; drop tombstone_window");
    }
    if (config.threads > 1) {
      return Status::InvalidArgument(
          "tombstone window is sequential-only (the FIFO spans the whole "
          "stream); use threads=1");
    }
    if (config.tombstone_window > UINT32_MAX) {
      return Status::InvalidArgument("tombstone_window too large");
    }
    auto inner = MakeSequentialKind(config);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<LinkPredictor>(new TombstoneWindowPredictor(
        std::move(*inner), static_cast<uint32_t>(config.tombstone_window)));
  }
  if (config.threads > 1) {
    auto sharded = ShardedPredictor::Make(config);
    if (!sharded.ok()) return sharded.status();
    return std::unique_ptr<LinkPredictor>(std::move(*sharded));
  }
  return MakeSequentialKind(config);
}

std::vector<std::string> PredictorKinds() {
  return {"minhash", "bottomk", "vertex_biased", "oph", "windowed_minhash",
          "tcm", "exact"};
}

bool KindSupportsSharding(const std::string& kind) {
  return kind == "minhash" || kind == "bottomk" || kind == "oph" ||
         kind == "tcm" || kind == "exact";
}

bool KindSupportsDeletions(const std::string& kind) {
  return kind == "tcm" || kind == "exact";
}

namespace {

/// Lifts a Result<ConcreteT> into a Result<unique_ptr<LinkPredictor>>.
template <typename PredictorT>
Result<std::unique_ptr<LinkPredictor>> Lift(Result<PredictorT> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<LinkPredictor>(
      new PredictorT(std::move(result).value()));
}

}  // namespace

Result<std::unique_ptr<LinkPredictor>> LoadPredictorFrom(
    BinaryReader& reader) {
  Result<SnapshotHeader> header = ReadSnapshotHeader(reader);
  if (!header.ok()) return header.status();
  const std::string& kind = header->kind;
  const uint32_t version = header->payload_version;
  if (kind == "minhash") return Lift(MinHashPredictor::LoadFrom(reader, version));
  if (kind == "bottomk") return Lift(BottomKPredictor::LoadFrom(reader, version));
  if (kind == "oph") return Lift(OphPredictor::LoadFrom(reader, version));
  if (kind == "exact") return Lift(ExactPredictor::LoadFrom(reader, version));
  if (kind == "tcm") return Lift(TcmPredictor::LoadFrom(reader, version));
  if (kind == "tombstone") {
    if (version != 1) {
      return Status::InvalidArgument("unsupported tombstone payload version " +
                                     std::to_string(version));
    }
    const uint32_t window = reader.ReadU32();
    const uint64_t unretractable = reader.ReadU64();
    const uint64_t edges = reader.ReadU64();
    const uint64_t deletes = reader.ReadU64();
    auto pending = reader.ReadVector<Edge>();
    if (!reader.ok()) return reader.status();
    if (window == 0) {
      return Status::InvalidArgument("corrupt snapshot: zero tombstone window");
    }
    if (pending.size() > window) {
      return Status::InvalidArgument(
          "corrupt snapshot: tombstone pending list exceeds its window");
    }
    auto inner = LoadPredictorFrom(reader);
    if (!inner.ok()) return inner.status();
    if ((*inner)->SupportsDeletions()) {
      return Status::InvalidArgument(
          "corrupt snapshot: tombstone window around deletable kind '" +
          (*inner)->name() + "'");
    }
    auto wrapper = std::make_unique<TombstoneWindowPredictor>(
        std::move(*inner), window);
    wrapper->RestorePending(std::move(pending));
    wrapper->SetUnretractableDeletes(unretractable);
    wrapper->AddProcessedEdges(edges);
    wrapper->AddProcessedDeletes(deletes);
    return std::unique_ptr<LinkPredictor>(std::move(wrapper));
  }
  if (kind == "vertex_biased") {
    return Lift(VertexBiasedPredictor::LoadFrom(reader, version));
  }
  if (kind == "windowed_minhash") {
    return Lift(WindowedMinHashPredictor::LoadFrom(reader, version));
  }
  if (kind == "sharded") {
    auto sharded = ShardedPredictor::LoadFrom(reader, version);
    if (!sharded.ok()) return sharded.status();
    return std::unique_ptr<LinkPredictor>(std::move(*sharded));
  }
  if (kind == "weighted_icws" || kind == "directed_minhash") {
    return Status::InvalidArgument(
        "snapshot holds a '" + kind +
        "' predictor, which is not a LinkPredictor — load it with " +
        (kind == "weighted_icws" ? "WeightedJaccardPredictor::Load"
                                 : "DirectedMinHashPredictor::Load"));
  }
  return Status::InvalidArgument("snapshot holds unknown predictor kind '" +
                                 kind + "'");
}

Result<std::unique_ptr<LinkPredictor>> LoadPredictorSnapshot(
    const std::string& path) {
  if (Status st = PreflightSnapshotFile(path); !st.ok()) return st;
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  auto predictor = LoadPredictorFrom(reader);
  if (!predictor.ok()) return predictor.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return predictor;
}

std::vector<std::string> PredictorFlagNames() {
  return {"kind",           "k",            "seed",          "threads",
          "sketch-degrees", "window-edges", "window-buckets", "tcm-depth",
          "tombstone-window"};
}

std::string PredictorFlagsHelp() {
  return
      "  --kind NAME          predictor kind (minhash|bottomk|vertex_biased|"
      "oph|windowed_minhash|tcm|exact)\n"
      "  --k N                sketch size (slots per vertex)\n"
      "  --seed N             master hash seed\n"
      "  --threads N          ingestion threads (vertex-sharded when > 1)\n"
      "  --sketch-degrees     bottomk: KMV degree estimates\n"
      "  --window-edges N     windowed_minhash: window length in edges\n"
      "  --window-buckets N   windowed_minhash: buckets per window\n"
      "  --tcm-depth N        tcm: rows per count strip\n"
      "  --tombstone-window N wrap a non-deletable kind for bounded-lag "
      "deletes\n";
}

PredictorConfig PredictorConfigFromFlags(const FlagParser& flags,
                                         const PredictorConfig& defaults) {
  PredictorConfig config = defaults;
  config.kind = flags.GetString("kind", defaults.kind);
  config.sketch_size = static_cast<uint32_t>(
      flags.GetInt("k", defaults.sketch_size));
  config.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(defaults.seed)));
  config.threads = static_cast<uint32_t>(
      flags.GetInt("threads", defaults.threads));
  config.sketch_degrees =
      flags.GetBool("sketch-degrees", defaults.sketch_degrees);
  config.window_edges = static_cast<uint64_t>(
      flags.GetInt("window-edges", static_cast<int64_t>(defaults.window_edges)));
  config.window_buckets = static_cast<uint32_t>(
      flags.GetInt("window-buckets", defaults.window_buckets));
  config.tcm_depth = static_cast<uint32_t>(
      flags.GetInt("tcm-depth", defaults.tcm_depth));
  config.tombstone_window = static_cast<uint64_t>(flags.GetInt(
      "tombstone-window", static_cast<int64_t>(defaults.tombstone_window)));
  return config;
}

}  // namespace streamlink

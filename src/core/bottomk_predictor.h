#ifndef STREAMLINK_CORE_BOTTOMK_PREDICTOR_H_
#define STREAMLINK_CORE_BOTTOMK_PREDICTOR_H_

#include <string>

#include "core/link_predictor.h"
#include "core/sketch_store.h"
#include "sketch/bottomk.h"
#include "util/status.h"

namespace streamlink {

/// Options for BottomKPredictor.
struct BottomKPredictorOptions {
  /// Sketch size k: number of minimum hash values kept per vertex.
  uint32_t k = 64;
  /// Seed of the single shared hash function.
  uint64_t seed = 0x5eed;
  /// When false, degrees come from the sketches' KMV cardinality
  /// estimators instead of exact counters — the fully self-contained
  /// variant whose state is pure sketch (mergeable, no exact side-state).
  bool track_exact_degrees = true;
};

/// Bottom-k (KMV) variant of the streaming link predictor.
///
/// One hash evaluation per edge endpoint (vs k for MinHash) and
/// cardinality estimates built in. Pairwise estimation walks the merged
/// bottom-k of the two neighborhoods: the union's k minima form a uniform
/// sample of N(u) ∪ N(v); the fraction present in both sketches estimates
/// Jaccard, the k-th smallest hash estimates |∪| (KMV), and the matched
/// items — uniform samples of the intersection — carry the Adamic-Adar /
/// Resource-Allocation weights exactly as in MinHashPredictor.
class BottomKPredictor : public LinkPredictor {
 public:
  explicit BottomKPredictor(const BottomKPredictorOptions& options = {});

  std::string name() const override { return "bottomk"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override { return store_.num_vertices(); }
  uint64_t MemoryBytes() const override;

  const BottomKPredictorOptions& options() const { return options_; }

  /// Degree estimate: exact counter or KMV estimate per options.
  double Degree(VertexId u) const;

  const BottomKSketch* Sketch(VertexId u) const { return store_.Get(u); }

  // Vertex-sharded operation (LinkPredictor capability): bottom-k sets
  // union and degree counters add per endpoint, in both degree modes —
  // with sketched degrees, a vertex's KMV estimate lives entirely in its
  // owning shard's sketch.
  bool SupportsSharding() const override { return true; }
  void ObserveNeighbor(VertexId u, VertexId neighbor) override;
  /// Consumes the batch's hash_v lane when present — the producer already
  /// computed HashU64(neighbor, seed) once, so the KMV kernel does zero
  /// hashing here.
  void ObserveNeighborBatch(const EdgeBatch& batch) override;
  /// The single-hash kernel contract: producers pre-hash neighbors under
  /// this seed into the EdgeBatch hash_v lane.
  bool NeighborHashSeed(uint64_t* seed) const override {
    *seed = options_.seed;
    return true;
  }
  double OwnedDegree(VertexId u) const override { return Degree(u); }
  OverlapEstimate EstimateOverlapSharded(
      VertexId u, const LinkPredictor& v_home, VertexId v,
      const DegreeFn& degree_of) const override;

  /// Disjoint-partition merge (see MinHashPredictor::MergeFrom): sketches
  /// take bottom-k unions, exact degree counters add. Aborts on differing
  /// options.
  void MergeFrom(const BottomKPredictor& other);

  /// Snapshot primitive: deep copy via the copy constructor (all state is
  /// value-semantic, in both degree modes).
  std::unique_ptr<LinkPredictor> Clone() const override {
    return std::make_unique<BottomKPredictor>(*this);
  }

  /// Streams the full predictor state under the universal snapshot
  /// envelope (kind "bottomk"); whole-file writes go through the inherited
  /// crash-safe Save(path).
  Status SaveTo(BinaryWriter& writer) const override;

  /// Payload decoder for an already-consumed envelope header; validates
  /// sketch sizes and the degree-table length against the vertex count.
  static Result<BottomKPredictor> LoadFrom(BinaryReader& reader,
                                           uint32_t payload_version);

  /// Restores a predictor from a Save(path) snapshot file, verifying the
  /// envelope and the whole-file checksum.
  static Result<BottomKPredictor> Load(const std::string& path);

 protected:
  void ProcessEdge(const Edge& edge) override;
  void ProcessBatch(const EdgeBatch& batch) override;

 private:
  BottomKPredictorOptions options_;
  SketchStore<BottomKSketch> store_;
  DegreeTable degrees_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_BOTTOMK_PREDICTOR_H_

#ifndef STREAMLINK_CORE_VERTEX_BIASED_PREDICTOR_H_
#define STREAMLINK_CORE_VERTEX_BIASED_PREDICTOR_H_

#include <string>

#include "core/link_predictor.h"
#include "core/sketch_store.h"
#include "sketch/minhash.h"
#include "sketch/weighted_sampler.h"
#include "util/hashing.h"
#include "util/status.h"

namespace streamlink {

/// Options for VertexBiasedPredictor.
struct VertexBiasedPredictorOptions {
  /// MinHash slots for the Jaccard / common-neighbor part.
  uint32_t num_hashes = 32;
  /// Weighted-sampler slots for the Adamic-Adar part.
  uint32_t num_weighted_samples = 32;
  uint64_t seed = 0x5eed;
};

/// The paper's "vertex-biased sampling" refinement for Adamic-Adar.
///
/// Uniform intersection sampling (MinHashPredictor's AA path) weights all
/// common neighbors equally, but AA's mass concentrates on *low-degree*
/// common neighbors (weight 1/ln d(w)). On skewed graphs a uniform sample
/// mostly hits hubs whose contribution is negligible — high variance. This
/// predictor keeps, per vertex, a coordinated bottom-k *weighted* sampler
/// (exponential ranks, rank = Exp(hash(w)) · ln(d(w)+e)) that
/// preferentially retains low-degree neighbors, and estimates
/// AA(u,v) directly as a coordinated-sample weighted-intersection sum with
/// Horvitz-Thompson correction (see sketch/weighted_sampler.h).
///
/// Degrees evolve during the stream; an entry's stored weight is the
/// weight at its last offer. Re-offers (duplicate or refreshed edges)
/// recompute ranks with fresh weights. Weight drift is logarithmic in
/// degree and its residual effect is measured by the T8 ablation.
///
/// Jaccard / CN are served by an embedded MinHash part (the paper's system
/// likewise maintains one sketch per target measure; total state is still
/// O(k) per vertex).
class VertexBiasedPredictor : public LinkPredictor {
 public:
  explicit VertexBiasedPredictor(
      const VertexBiasedPredictorOptions& options = {});

  std::string name() const override { return "vertex_biased"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override;
  uint64_t MemoryBytes() const override;

  const VertexBiasedPredictorOptions& options() const { return options_; }
  uint32_t Degree(VertexId u) const { return degrees_.Degree(u); }

  /// The sampling weight used for a vertex of degree d: 1/ln(d + e).
  /// Strictly positive and monotone-decreasing; tracks the AA weight
  /// 1/ln(d) closely for d >= 2.
  static double SamplingWeight(uint32_t degree);

  /// Snapshot primitive: deep copy via the copy constructor. Unshardable
  /// (degree-dependent sampling weights) but perfectly snapshottable — the
  /// weights are stored per entry.
  std::unique_ptr<LinkPredictor> Clone() const override {
    return std::make_unique<VertexBiasedPredictor>(*this);
  }

  /// Universal snapshot envelope, kind "vertex_biased". The exp-variate
  /// seed is derived from the options seed, so only options are stored.
  Status SaveTo(BinaryWriter& writer) const override;

  /// Payload decoder for an already-consumed envelope header; validates
  /// sampler entries (sorted ranks, size <= k) before reconstructing.
  static Result<VertexBiasedPredictor> LoadFrom(BinaryReader& reader,
                                                uint32_t payload_version);

 protected:
  void ProcessEdge(const Edge& edge) override;

 private:
  VertexBiasedPredictorOptions options_;
  HashFamily family_;             // for the MinHash part
  uint64_t exp_seed_;             // hash seed for shared Exp(1) variates
  SketchStore<MinHashSketch> minhash_store_;
  SketchStore<WeightedBottomKSampler> weighted_store_;
  DegreeTable degrees_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_VERTEX_BIASED_PREDICTOR_H_

#include "core/top_k_engine.h"

#include <algorithm>
#include <unordered_set>

#include "core/minhash_predictor.h"
#include "util/logging.h"

namespace streamlink {

namespace {

bool ScoredBetter(const ScoredPair& a, const ScoredPair& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.pair.u != b.pair.u) return a.pair.u < b.pair.u;
  return a.pair.v < b.pair.v;
}

std::vector<ScoredPair> SelectTopK(std::vector<ScoredPair>& scored,
                                   uint32_t k) {
  if (scored.size() > k) {
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      ScoredBetter);
    scored.resize(k);
  } else {
    std::sort(scored.begin(), scored.end(), ScoredBetter);
  }
  return std::move(scored);
}

}  // namespace

std::vector<ScoredPair> TopKEngine::TopK(
    const std::vector<QueryPair>& candidates, uint32_t k) const {
  std::vector<ScoredPair> scored;
  scored.reserve(candidates.size());
  for (const QueryPair& p : candidates) {
    scored.push_back(ScoredPair{p, predictor_.Score(measure_, p.u, p.v)});
  }
  return SelectTopK(scored, k);
}

std::vector<MultiScoredPair> TopKEngine::TopKScored(
    const std::vector<QueryPair>& candidates,
    std::span<const LinkMeasure> measures, uint32_t k) const {
  // Rank on the cheap ScoredPair representation first, then compute the
  // full measure vectors only for the k winners — top-k candidate sets are
  // usually much larger than k.
  std::vector<ScoredPair> ranked = TopK(candidates, k);
  std::vector<MultiScoredPair> out;
  out.reserve(ranked.size());
  for (const ScoredPair& s : ranked) {
    out.push_back(MultiScoredPair{
        s.pair, predictor_.Scores(measures, s.pair.u, s.pair.v)});
  }
  return out;
}

std::vector<ScoredPair> TopKEngine::TopKForVertex(
    VertexId u, const std::vector<VertexId>& partners, uint32_t k) const {
  std::vector<ScoredPair> scored;
  scored.reserve(partners.size());
  for (VertexId v : partners) {
    if (v == u) continue;
    scored.push_back(
        ScoredPair{QueryPair{u, v}, predictor_.Score(measure_, u, v)});
  }
  return SelectTopK(scored, k);
}

std::vector<QueryPair> TwoHopCandidates(const CsrGraph& graph, VertexId u,
                                        uint32_t max_candidates) {
  SL_CHECK(u < graph.num_vertices()) << "vertex out of range";
  std::unordered_set<VertexId> seen;
  std::vector<QueryPair> out;
  for (VertexId w : graph.Neighbors(u)) {
    for (VertexId v : graph.Neighbors(w)) {
      if (v == u) continue;
      if (graph.HasEdge(u, v)) continue;
      if (!seen.insert(v).second) continue;
      out.push_back(QueryPair{u, v});
      if (max_candidates > 0 && out.size() >= max_candidates) return out;
    }
  }
  return out;
}

std::vector<QueryPair> AllTwoHopCandidates(const CsrGraph& graph,
                                           uint32_t max_per_vertex) {
  std::vector<QueryPair> out;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    auto candidates = TwoHopCandidates(graph, u, max_per_vertex);
    for (const QueryPair& p : candidates) {
      if (p.u < p.v) out.push_back(p);  // emit each unordered pair once
    }
  }
  return out;
}

std::vector<QueryPair> SketchTwoHopCandidates(const MinHashPredictor& sketch,
                                              VertexId u,
                                              uint32_t max_candidates) {
  std::vector<QueryPair> out;
  const MinHashSketch* su = sketch.Sketch(u);
  if (su == nullptr || su->IsEmpty()) return out;

  // Distinct sampled neighbors of u.
  std::unordered_set<VertexId> neighbors;
  for (const auto& slot : su->slots()) {
    if (slot.hash == ~0ULL) continue;
    neighbors.insert(static_cast<VertexId>(slot.item));
  }

  std::unordered_set<VertexId> seen;  // candidates emitted so far
  for (VertexId w : neighbors) {
    const MinHashSketch* sw = sketch.Sketch(w);
    if (sw == nullptr || sw->IsEmpty()) continue;
    for (const auto& slot : sw->slots()) {
      if (slot.hash == ~0ULL) continue;
      VertexId v = static_cast<VertexId>(slot.item);
      if (v == u) continue;
      if (neighbors.count(v) > 0) continue;  // sampled as already linked
      if (!seen.insert(v).second) continue;
      out.push_back(QueryPair{u, v});
      if (max_candidates > 0 && out.size() >= max_candidates) return out;
    }
  }
  return out;
}

}  // namespace streamlink

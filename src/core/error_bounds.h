#ifndef STREAMLINK_CORE_ERROR_BOUNDS_H_
#define STREAMLINK_CORE_ERROR_BOUNDS_H_

#include <cstdint>

namespace streamlink {

/// Analytic accuracy guarantees for the sketch estimators — the "theoretical
/// accuracy guarantee" half of the paper's claim, packaged as a small
/// calculator API so callers can size sketches for a target error and tests
/// can verify the empirical error respects the bounds.

/// Hoeffding tail for the MinHash Jaccard estimator (k i.i.d. slot
/// indicators): P(|Ĵ − J| ≥ epsilon) ≤ 2·exp(−2·k·epsilon²).
double MinHashJaccardFailureProbability(uint32_t k, double epsilon);

/// Smallest k such that P(|Ĵ − J| ≥ epsilon) ≤ delta:
/// k = ⌈ln(2/δ) / (2ε²)⌉.
uint32_t MinHashSketchSizeFor(double epsilon, double delta);

/// Two-sided additive half-width ε with confidence 1−δ at sketch size k:
/// ε = sqrt(ln(2/δ) / (2k)).
double MinHashJaccardErrorAt(uint32_t k, double delta);

/// Relative standard error of the bottom-k (KMV) cardinality estimator:
/// ≈ 1/sqrt(k − 2).
double BottomKCardinalityRelativeStdError(uint32_t k);

/// Bernstein/Chernoff upper tail for differential testing: each of
/// `queries` independent checks violates its per-query tolerance with
/// probability at most `per_query_delta`, so the violation count V is
/// stochastically dominated by Binomial(queries, per_query_delta). Returns
/// the smallest ceiling t with P(V > t) <= overall_delta under Bernstein's
/// inequality:
///   t = ⌈Q·δ + sqrt(2·Q·δ·(1−δ)·ln(1/Δ)) + (2/3)·ln(1/Δ)⌉, capped at Q.
/// A run whose violation count exceeds this is statistically inconsistent
/// with the per-query guarantee at confidence 1−Δ — the assertion the
/// verify subsystem's differential oracle makes instead of pointwise
/// equality (src/verify/differential.h).
uint64_t AllowedToleranceViolations(uint64_t queries, double per_query_delta,
                                    double overall_delta);

/// First-order error propagation for the common-neighbor estimator
/// ĈN = Ĵ/(1+Ĵ)·(d_u+d_v) with exact degrees: an additive Jaccard error
/// of ε yields |ĈN − CN| ≤ ε·(d_u+d_v)/(1+J)² (derivative of x/(1+x) is
/// ≤ 1/(1+J)² near J). Returns that additive bound.
double CommonNeighborErrorBound(double epsilon, double jaccard,
                                double degree_sum);

}  // namespace streamlink

#endif  // STREAMLINK_CORE_ERROR_BOUNDS_H_

#include "core/sketch_store.h"

namespace streamlink {

void DegreeTable::Increment(VertexId u) {
  if (u >= degrees_.size()) degrees_.resize(u + 1, 0);
  ++degrees_[u];
}

void DegreeTable::MergeFrom(const DegreeTable& other) {
  if (other.degrees_.size() > degrees_.size()) {
    degrees_.resize(other.degrees_.size(), 0);
  }
  for (size_t u = 0; u < other.degrees_.size(); ++u) {
    degrees_[u] += other.degrees_[u];
  }
}

}  // namespace streamlink

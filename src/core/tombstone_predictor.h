#ifndef STREAMLINK_CORE_TOMBSTONE_PREDICTOR_H_
#define STREAMLINK_CORE_TOMBSTONE_PREDICTOR_H_

#include <deque>
#include <memory>
#include <string>

#include "core/link_predictor.h"
#include "util/status.h"

namespace streamlink {

/// Bounded-lag turnstile support for kinds that cannot retract natively.
///
/// MinHash-style sketches are monotone (a slot only ever decreases), so an
/// edge, once applied, is unremovable. The tombstone window defers instead
/// of retracting: inserts are buffered in a FIFO of capacity W before they
/// touch the wrapped predictor, and a delete that finds its edge still
/// buffered annihilates it — the inner sketch never sees either op. When
/// the buffer overflows, the oldest insert is flushed permanently; a
/// delete whose edge was already flushed (or never inserted) is counted in
/// unretractable_deletes() and otherwise dropped.
///
/// Error contract (docs/turnstile.md): queries reflect the inner
/// predictor, which lags the true stream by at most W buffered inserts and
/// permanently over-counts one edge per unretractable delete. Deletes that
/// arrive within W inserts of their edge are handled exactly. Call Flush()
/// at end-of-stream (the sequential ingest engine does) to drain the lag
/// before final queries.
///
/// The wrapper is a transport adapter, not a registered kind: it does not
/// shard (the window is a global FIFO), and MakePredictor builds it when
/// config.tombstone_window > 0 names a non-deletable kind.
class TombstoneWindowPredictor : public LinkPredictor {
 public:
  /// Preconditions: inner != nullptr, !inner->SupportsDeletions(),
  /// window >= 1 (enforced by the factory).
  TombstoneWindowPredictor(std::unique_ptr<LinkPredictor> inner,
                           uint32_t window);

  std::string name() const override { return "tombstone"; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override {
    return inner_->EstimateOverlap(u, v);
  }
  VertexId num_vertices() const override { return inner_->num_vertices(); }
  uint64_t MemoryBytes() const override;

  bool SupportsDeletions() const override { return true; }

  const LinkPredictor& inner() const { return *inner_; }
  uint32_t window() const { return window_; }
  size_t pending_inserts() const { return pending_.size(); }
  /// Deletes that missed the window: their edge had already been flushed
  /// into the inner predictor (or was never inserted at all).
  uint64_t unretractable_deletes() const { return unretractable_deletes_; }

  /// Drains every buffered insert into the inner predictor. Idempotent.
  void Flush();

  std::unique_ptr<LinkPredictor> Clone() const override;

  /// Envelope kind "tombstone": wrapper state followed by the inner
  /// predictor's complete nested envelope. Restored by LoadPredictorFrom.
  Status SaveTo(BinaryWriter& writer) const override;

  // Restore-path setters (snapshot load only; see predictor_factory.cc).
  void RestorePending(EdgeList pending);
  void SetUnretractableDeletes(uint64_t n) { unretractable_deletes_ = n; }

 protected:
  void ProcessEdge(const Edge& edge) override;
  void ProcessDelete(const Edge& edge) override;

 private:
  std::unique_ptr<LinkPredictor> inner_;
  uint32_t window_;
  std::deque<Edge> pending_;  // FIFO of not-yet-applied inserts
  uint64_t unretractable_deletes_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_TOMBSTONE_PREDICTOR_H_

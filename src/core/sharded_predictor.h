#ifndef STREAMLINK_CORE_SHARDED_PREDICTOR_H_
#define STREAMLINK_CORE_SHARDED_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/predictor_factory.h"
#include "util/status.h"

namespace streamlink {

/// A vertex-partitioned link predictor: N same-configured shards of one
/// underlying kind, where shard `u % N` owns all of vertex u's state.
///
/// Every edge (u, v) becomes two half-edges — (u owns v) and (v owns u) —
/// applied via ObserveNeighbor to the owning shards, so per-vertex state
/// is never split or duplicated and total memory matches a single
/// predictor. Queries route to the two owning shards and resolve
/// common-neighbor degrees through a routed DegreeFn; because each shard's
/// EstimateOverlapSharded is the same code the sequential predictor runs,
/// estimates are bit-identical to a sequential build of the same stream.
/// No merge step exists or is needed.
///
/// Ingestion through the LinkPredictor interface (OnEdge/OnEdgeBatch)
/// routes half-edges synchronously; ParallelIngestEngine ingests into the
/// shards from worker threads instead, one thread per shard.
///
/// Thread safety: distinct shards may be written concurrently (the engine
/// does); queries must not run concurrently with writes.
class ShardedPredictor : public LinkPredictor {
 public:
  /// Builds `config.threads` shards of `config.kind` via MakePredictor.
  /// InvalidArgument if the kind does not support sharding, if threads is
  /// 0, or if the per-shard config is itself invalid.
  static Result<std::unique_ptr<ShardedPredictor>> Make(
      const PredictorConfig& config);

  std::string name() const override { return "sharded:" + kind_; }
  OverlapEstimate EstimateOverlap(VertexId u, VertexId v) const override;
  VertexId num_vertices() const override;
  uint64_t MemoryBytes() const override;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// The shard owning vertex u's state.
  uint32_t OwnerOf(VertexId u) const { return u % num_shards(); }

  LinkPredictor& shard(uint32_t i) { return *shards_[i]; }
  const LinkPredictor& shard(uint32_t i) const { return *shards_[i]; }

  /// The underlying predictor kind, e.g. "minhash".
  const std::string& kind() const { return kind_; }

  /// Turnstile capability is inherited from the underlying kind: a delete
  /// becomes two half-edge retractions routed to the owning shards, the
  /// exact mirror of insertion routing.
  bool SupportsDeletions() const override;

  /// Snapshot primitive. Kinds with a lossless disjoint-partition merge
  /// (minhash, bottomk) are *folded* into one compact single predictor —
  /// vertex shards own disjoint vertex sets, so the merge is exact and the
  /// snapshot sheds the routing layer. Other kinds clone shard-wise into a
  /// new ShardedPredictor. Either way the clone answers queries
  /// bit-identically to this predictor at clone time.
  std::unique_ptr<LinkPredictor> Clone() const override;

  /// Universal snapshot envelope, kind "sharded": the underlying kind,
  /// the container's edge count, and one complete nested envelope per
  /// shard. The shard partition (vertex u -> shard u % N) is positional,
  /// so restoring the shards in order reproduces the routing exactly.
  Status SaveTo(BinaryWriter& writer) const override;

  /// Payload decoder for an already-consumed envelope header. Each nested
  /// shard envelope is decoded through LoadPredictorFrom and checked
  /// against the container's kind tag.
  static Result<std::unique_ptr<ShardedPredictor>> LoadFrom(
      BinaryReader& reader, uint32_t payload_version);

 protected:
  void ProcessEdge(const Edge& edge) override;
  void ProcessDelete(const Edge& edge) override;

 private:
  ShardedPredictor(std::string kind,
                   std::vector<std::unique_ptr<LinkPredictor>> shards)
      : kind_(std::move(kind)), shards_(std::move(shards)) {}

  std::string kind_;
  std::vector<std::unique_ptr<LinkPredictor>> shards_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_SHARDED_PREDICTOR_H_

#include "core/sharded_predictor.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

Result<std::unique_ptr<ShardedPredictor>> ShardedPredictor::Make(
    const PredictorConfig& config) {
  if (config.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1, got 0");
  }
  if (!KindSupportsSharding(config.kind)) {
    return Status::InvalidArgument(
        "predictor kind '" + config.kind +
        "' does not support sharded ingestion (threads > 1)");
  }
  PredictorConfig shard_config = config;
  shard_config.threads = 1;
  std::vector<std::unique_ptr<LinkPredictor>> shards;
  shards.reserve(config.threads);
  for (uint32_t t = 0; t < config.threads; ++t) {
    auto shard = MakePredictor(shard_config);
    if (!shard.ok()) return shard.status();
    SL_CHECK((*shard)->SupportsSharding())
        << config.kind << " disagrees with KindSupportsSharding";
    shards.push_back(std::move(*shard));
  }
  return std::unique_ptr<ShardedPredictor>(
      new ShardedPredictor(config.kind, std::move(shards)));
}

void ShardedPredictor::ProcessEdge(const Edge& edge) {
  shards_[OwnerOf(edge.u)]->ObserveNeighbor(edge.u, edge.v);
  shards_[OwnerOf(edge.v)]->ObserveNeighbor(edge.v, edge.u);
}

OverlapEstimate ShardedPredictor::EstimateOverlap(VertexId u,
                                                  VertexId v) const {
  DegreeFn degree_of = [this](VertexId w) -> double {
    return shards_[OwnerOf(w)]->OwnedDegree(w);
  };
  return shards_[OwnerOf(u)]->EstimateOverlapSharded(
      u, *shards_[OwnerOf(v)], v, degree_of);
}

VertexId ShardedPredictor::num_vertices() const {
  VertexId max_vertices = 0;
  for (const auto& shard : shards_) {
    max_vertices = std::max(max_vertices, shard->num_vertices());
  }
  return max_vertices;
}

uint64_t ShardedPredictor::MemoryBytes() const {
  uint64_t bytes = sizeof(*this) +
                   shards_.capacity() * sizeof(shards_[0]);
  for (const auto& shard : shards_) bytes += shard->MemoryBytes();
  return bytes;
}

}  // namespace streamlink

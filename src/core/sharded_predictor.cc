#include "core/sharded_predictor.h"

#include <algorithm>

#include "core/bottomk_predictor.h"
#include "core/minhash_predictor.h"
#include "core/tcm_predictor.h"
#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

namespace {

/// Folds all shards of `sharded` into one predictor of type PredictorT.
/// Shards partition the vertex set, so MergeFrom is lossless here even for
/// state (like exact degree counters) that double-counts on overlapping
/// partitions.
template <typename PredictorT>
std::unique_ptr<LinkPredictor> FoldShards(const ShardedPredictor& sharded) {
  const auto& first =
      dynamic_cast<const PredictorT&>(sharded.shard(0));
  auto folded = std::make_unique<PredictorT>(first.options());
  for (uint32_t t = 0; t < sharded.num_shards(); ++t) {
    folded->MergeFrom(dynamic_cast<const PredictorT&>(sharded.shard(t)));
  }
  folded->AddProcessedEdges(sharded.edges_processed());
  folded->AddProcessedDeletes(sharded.deletes_processed());
  return folded;
}

}  // namespace

std::unique_ptr<LinkPredictor> ShardedPredictor::Clone() const {
  if (kind_ == "minhash") return FoldShards<MinHashPredictor>(*this);
  if (kind_ == "bottomk") return FoldShards<BottomKPredictor>(*this);
  if (kind_ == "tcm") return FoldShards<TcmPredictor>(*this);
  // No lossless fold for this kind: clone every shard and keep routing.
  std::vector<std::unique_ptr<LinkPredictor>> clones;
  clones.reserve(shards_.size());
  for (const auto& shard : shards_) {
    auto clone = shard->Clone();
    if (clone == nullptr) return nullptr;
    clones.push_back(std::move(clone));
  }
  auto copy = std::unique_ptr<ShardedPredictor>(
      new ShardedPredictor(kind_, std::move(clones)));
  copy->AddProcessedEdges(edges_processed());
  copy->AddProcessedDeletes(deletes_processed());
  return copy;
}

Result<std::unique_ptr<ShardedPredictor>> ShardedPredictor::Make(
    const PredictorConfig& config) {
  if (config.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1, got 0");
  }
  if (!KindSupportsSharding(config.kind)) {
    return Status::InvalidArgument(
        "predictor kind '" + config.kind +
        "' does not support sharded ingestion (threads > 1)");
  }
  PredictorConfig shard_config = config;
  shard_config.threads = 1;
  std::vector<std::unique_ptr<LinkPredictor>> shards;
  shards.reserve(config.threads);
  for (uint32_t t = 0; t < config.threads; ++t) {
    auto shard = MakePredictor(shard_config);
    if (!shard.ok()) return shard.status();
    SL_CHECK((*shard)->SupportsSharding())
        << config.kind << " disagrees with KindSupportsSharding";
    shards.push_back(std::move(*shard));
  }
  return std::unique_ptr<ShardedPredictor>(
      new ShardedPredictor(config.kind, std::move(shards)));
}

void ShardedPredictor::ProcessEdge(const Edge& edge) {
  shards_[OwnerOf(edge.u)]->ObserveNeighbor(edge.u, edge.v);
  shards_[OwnerOf(edge.v)]->ObserveNeighbor(edge.v, edge.u);
}

bool ShardedPredictor::SupportsDeletions() const {
  return KindSupportsDeletions(kind_);
}

void ShardedPredictor::ProcessDelete(const Edge& edge) {
  shards_[OwnerOf(edge.u)]->RetractNeighbor(edge.u, edge.v);
  shards_[OwnerOf(edge.v)]->RetractNeighbor(edge.v, edge.u);
}

OverlapEstimate ShardedPredictor::EstimateOverlap(VertexId u,
                                                  VertexId v) const {
  DegreeFn degree_of = [this](VertexId w) -> double {
    return shards_[OwnerOf(w)]->OwnedDegree(w);
  };
  return shards_[OwnerOf(u)]->EstimateOverlapSharded(
      u, *shards_[OwnerOf(v)], v, degree_of);
}

VertexId ShardedPredictor::num_vertices() const {
  VertexId max_vertices = 0;
  for (const auto& shard : shards_) {
    max_vertices = std::max(max_vertices, shard->num_vertices());
  }
  return max_vertices;
}

uint64_t ShardedPredictor::MemoryBytes() const {
  uint64_t bytes = sizeof(*this) +
                   shards_.capacity() * sizeof(shards_[0]);
  for (const auto& shard : shards_) bytes += shard->MemoryBytes();
  return bytes;
}

namespace {
// v1: kind, edges, shard count, nested envelopes (pre-turnstile).
// v2 adds the container's delete count after the edge count. v1 snapshots
// are still accepted (their streams had no deletes).
constexpr uint32_t kShardedPayloadVersion = 2;
}  // namespace

Status ShardedPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, "sharded", kShardedPayloadVersion);
  writer.WriteString(kind_);
  writer.WriteU64(edges_processed());
  writer.WriteU64(deletes_processed());
  writer.WriteU32(num_shards());
  for (const auto& shard : shards_) {
    if (Status st = shard->SaveTo(writer); !st.ok()) return st;
  }
  return writer.status();
}

Result<std::unique_ptr<ShardedPredictor>> ShardedPredictor::LoadFrom(
    BinaryReader& reader, uint32_t payload_version) {
  if (payload_version != 1 && payload_version != kShardedPayloadVersion) {
    return Status::InvalidArgument("unsupported sharded payload version " +
                                   std::to_string(payload_version));
  }
  std::string kind = reader.ReadString();
  uint64_t edges = reader.ReadU64();
  uint64_t deletes = payload_version >= 2 ? reader.ReadU64() : 0;
  uint32_t num_shards = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  // A sharded container only ever wraps shardable leaf kinds; anything
  // else (including a nested "sharded") is corruption, and rejecting it
  // here also bounds the LoadPredictorFrom recursion to one level.
  if (!KindSupportsSharding(kind)) {
    return Status::InvalidArgument(
        "corrupt snapshot: unshardable shard kind '" + kind + "'");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("corrupt snapshot: zero shards");
  }

  std::vector<std::unique_ptr<LinkPredictor>> shards;
  shards.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    auto shard = LoadPredictorFrom(reader);
    if (!shard.ok()) return shard.status();
    if ((*shard)->name() != kind) {
      return Status::InvalidArgument("corrupt snapshot: shard " +
                                     std::to_string(t) + " holds '" +
                                     (*shard)->name() + "', expected '" +
                                     kind + "'");
    }
    shards.push_back(std::move(*shard));
  }
  auto predictor = std::unique_ptr<ShardedPredictor>(
      new ShardedPredictor(std::move(kind), std::move(shards)));
  // Shards count nothing (they ingest half-edges); the container holds the
  // stream's edge and delete counts.
  predictor->AddProcessedEdges(edges);
  predictor->AddProcessedDeletes(deletes);
  return predictor;
}

}  // namespace streamlink

#ifndef STREAMLINK_CORE_WEIGHTED_PREDICTOR_H_
#define STREAMLINK_CORE_WEIGHTED_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/sketch_store.h"
#include "graph/weighted_graph.h"
#include "sketch/icws.h"
#include "util/status.h"

namespace streamlink {

class BinaryReader;
class BinaryWriter;

/// Options for WeightedJaccardPredictor.
struct WeightedPredictorOptions {
  /// ICWS slots per vertex; matched-slot error decays as 1/sqrt(k).
  uint32_t num_slots = 64;
  uint64_t seed = 0x5eed;
};

/// Weighted-stream extension of the streaming link predictor.
///
/// Input is a *weighted simple stream*: each undirected edge (u, v, w)
/// arrives once with its final positive weight (interaction strength,
/// co-occurrence count, channel capacity, ...). Per vertex it maintains
/// an ICWS sketch of the weighted neighborhood map x ↦ w_u(x) plus the
/// exact weighted degree (strength) S_u = Σ_x w_u(x) — the weighted
/// analogues of the paper's MinHash sketch + degree counter. Estimators:
///
///   generalized Jaccard  Ĵ_w = matched slots / k        (unbiased)
///   Σ min(w_u, w_v)      = Ĵ_w/(1+Ĵ_w) · (S_u + S_v)    (weighted CN,
///       from Σmin + Σmax = S_u + S_v, Ĵ_w = Σmin/Σmax)
///
/// With unit weights these collapse to the unweighted predictor exactly.
class WeightedJaccardPredictor {
 public:
  explicit WeightedJaccardPredictor(
      const WeightedPredictorOptions& options = {});

  std::string name() const { return "weighted_icws"; }

  /// Ingests one weighted edge. O(k). Weight must be positive.
  void OnWeightedEdge(const WeightedEdge& edge);
  void OnWeightedEdge(VertexId u, VertexId v, double weight) {
    OnWeightedEdge(WeightedEdge{u, v, weight});
  }

  uint64_t edges_processed() const { return edges_processed_; }
  VertexId num_vertices() const { return store_.num_vertices(); }

  /// Weighted degree of u on the stream so far.
  double Strength(VertexId u) const {
    return u < strength_.size() ? strength_[u] : 0.0;
  }

  /// Weighted overlap estimate (fields mirror WeightedOverlap; min_sum is
  /// the weighted common-neighbor mass).
  struct WeightedEstimate {
    double strength_u = 0.0;
    double strength_v = 0.0;
    double generalized_jaccard = 0.0;
    double min_sum = 0.0;
    double max_sum = 0.0;
  };
  WeightedEstimate Estimate(VertexId u, VertexId v) const;

  const IcwsSketch* Sketch(VertexId u) const { return store_.Get(u); }

  uint64_t MemoryBytes() const;

  // Snapshot I/O (kind "weighted_icws"). Not a LinkPredictor, so these are
  // plain members mirroring the virtual Save/SaveTo contract: SaveTo
  // streams the envelope + payload, Save wraps it in WriteFileAtomic with
  // a checksum footer, Load verifies both.
  Status SaveTo(BinaryWriter& writer) const;
  Status Save(const std::string& path) const;
  static Result<WeightedJaccardPredictor> LoadFrom(BinaryReader& reader,
                                                   uint32_t payload_version);
  static Result<WeightedJaccardPredictor> Load(const std::string& path);

 private:
  WeightedPredictorOptions options_;
  SketchStore<IcwsSketch> store_;
  std::vector<double> strength_;
  uint64_t edges_processed_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_WEIGHTED_PREDICTOR_H_

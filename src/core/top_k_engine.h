#ifndef STREAMLINK_CORE_TOP_K_ENGINE_H_
#define STREAMLINK_CORE_TOP_K_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/link_predictor.h"
#include "gen/pair_sampler.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace streamlink {

/// A scored link-prediction candidate.
struct ScoredPair {
  QueryPair pair;
  double score;
};

/// A candidate scored on several measures at once; `scores` is parallel to
/// the measure list passed to TopKEngine::TopKScored.
struct MultiScoredPair {
  QueryPair pair;
  std::vector<double> scores;
};

/// Ranks candidate pairs by a predictor's estimated measure and returns
/// the best. This is the end-task query layer: "which links are most
/// likely to form next?" Candidates come from the caller (streaming
/// predictors hold no adjacency to enumerate from) or from a graph
/// snapshot via TwoHopCandidates.
class TopKEngine {
 public:
  TopKEngine(const LinkPredictor& predictor, LinkMeasure measure)
      : predictor_(predictor), measure_(measure) {}

  /// Scores every candidate and returns the `k` highest, descending by
  /// score; ties break toward the lexicographically smaller pair (stable,
  /// reproducible output).
  std::vector<ScoredPair> TopK(const std::vector<QueryPair>& candidates,
                               uint32_t k) const;

  /// Scores a single vertex's candidates: returns the `k` best partners
  /// for `u` among `partners`.
  std::vector<ScoredPair> TopKForVertex(VertexId u,
                                        const std::vector<VertexId>& partners,
                                        uint32_t k) const;

  /// Multi-measure variant: ranks by the engine's measure (ties as in
  /// TopK) but additionally reports each of `measures` per returned pair,
  /// paying for ONE overlap estimate per candidate (the single-estimate
  /// contract of LinkPredictor::Scores). The serving layer's top-k query
  /// path runs on this.
  std::vector<MultiScoredPair> TopKScored(
      const std::vector<QueryPair>& candidates,
      std::span<const LinkMeasure> measures, uint32_t k) const;

 private:
  const LinkPredictor& predictor_;
  LinkMeasure measure_;
};

/// Enumerates non-adjacent 2-hop pairs around `u` in a snapshot: the
/// standard link-prediction candidate set (pairs at distance exactly 2).
/// Capped at `max_candidates` (0 = unlimited).
std::vector<QueryPair> TwoHopCandidates(const CsrGraph& graph, VertexId u,
                                        uint32_t max_candidates = 0);

/// All-pairs variant: non-adjacent 2-hop pairs of the whole snapshot,
/// capped at `max_candidates` per center vertex. O(Σ wedges).
std::vector<QueryPair> AllTwoHopCandidates(const CsrGraph& graph,
                                           uint32_t max_per_vertex = 0);

class MinHashPredictor;

/// Candidate generation WITHOUT any graph snapshot: mines the predictor's
/// own sketches. The arg-min items of u's MinHash slots are up to k
/// uniform samples of N(u); chaining through *their* sketches samples the
/// 2-hop neighborhood. Returns distinct non-self candidates (u's sampled
/// neighbors excluded — they are already linked). Recall against the true
/// 2-hop set grows with k and is measured in tests; this is what makes
/// fully streaming "who will u connect to next?" queries possible when no
/// adjacency exists anywhere.
std::vector<QueryPair> SketchTwoHopCandidates(const MinHashPredictor& sketch,
                                              VertexId u,
                                              uint32_t max_candidates = 0);

}  // namespace streamlink

#endif  // STREAMLINK_CORE_TOP_K_ENGINE_H_

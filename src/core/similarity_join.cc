#include "core/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/hashing.h"
#include "util/logging.h"

namespace streamlink {

BandingPlan ChooseBanding(uint32_t num_hashes, double threshold) {
  SL_CHECK(num_hashes >= 1) << "need at least one hash";
  SL_CHECK(threshold > 0.0 && threshold <= 1.0)
      << "threshold must be in (0, 1]";
  BandingPlan best;
  double best_gap = 1e9;
  for (uint32_t r = 1; r <= num_hashes; ++r) {
    uint32_t b = num_hashes / r;
    if (b == 0) break;
    double implied = std::pow(1.0 / static_cast<double>(b),
                              1.0 / static_cast<double>(r));
    double gap = std::abs(implied - threshold);
    if (gap < best_gap) {
      best_gap = gap;
      best = BandingPlan{r, b, implied};
    }
  }
  return best;
}

std::vector<ScoredPair> AllPairsSimilarVertices(
    const MinHashPredictor& predictor, const SimilarityJoinOptions& options) {
  SL_CHECK(options.threshold > 0.0 && options.threshold <= 1.0)
      << "threshold must be in (0, 1]";
  const uint32_t k = predictor.options().num_hashes;
  BandingPlan plan = options.rows_per_band > 0
                         ? BandingPlan{std::min(options.rows_per_band, k),
                                       k / std::min(options.rows_per_band, k),
                                       0.0}
                         : ChooseBanding(k, options.threshold);
  SL_CHECK(plan.num_bands >= 1) << "degenerate banding";

  // Bucket vertices by band signature.
  struct PairHash {
    size_t operator()(const std::pair<uint32_t, uint64_t>& key) const {
      return static_cast<size_t>(
          Mix64(key.second ^ (static_cast<uint64_t>(key.first) << 48)));
    }
  };
  std::unordered_map<std::pair<uint32_t, uint64_t>, std::vector<VertexId>,
                     PairHash>
      buckets;
  const VertexId n = predictor.num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    const MinHashSketch* sketch = predictor.Sketch(u);
    if (sketch == nullptr || sketch->IsEmpty()) continue;
    for (uint32_t band = 0; band < plan.num_bands; ++band) {
      uint64_t signature = Mix64(band + 0x9e37);
      for (uint32_t row = 0; row < plan.rows_per_band; ++row) {
        signature =
            Mix64(signature ^ sketch->slot(band * plan.rows_per_band + row)
                                  .hash);
      }
      auto& bucket = buckets[{band, signature}];
      if (bucket.size() < options.max_bucket) bucket.push_back(u);
    }
  }

  // Candidate pairs from co-bucketed vertices, verified with the full
  // matched-slot estimate.
  struct CandidateHash {
    size_t operator()(const QueryPair& p) const {
      return static_cast<size_t>(
          Mix64((static_cast<uint64_t>(p.u) << 32) | p.v));
    }
  };
  std::unordered_set<QueryPair, CandidateHash> seen;
  std::vector<ScoredPair> out;
  for (const auto& [key, bucket] : buckets) {
    (void)key;
    if (bucket.size() < 2) continue;
    for (size_t i = 0; i < bucket.size(); ++i) {
      for (size_t j = i + 1; j < bucket.size(); ++j) {
        QueryPair pair = bucket[i] < bucket[j]
                             ? QueryPair{bucket[i], bucket[j]}
                             : QueryPair{bucket[j], bucket[i]};
        if (!seen.insert(pair).second) continue;
        double score = MinHashSketch::EstimateJaccard(
            *predictor.Sketch(pair.u), *predictor.Sketch(pair.v));
        if (score >= options.threshold) {
          out.push_back(ScoredPair{pair, score});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.pair.u != b.pair.u) return a.pair.u < b.pair.u;
              return a.pair.v < b.pair.v;
            });
  return out;
}

}  // namespace streamlink

#ifndef STREAMLINK_CORE_TRIANGLE_COUNTER_H_
#define STREAMLINK_CORE_TRIANGLE_COUNTER_H_

#include <cstdint>

#include "core/minhash_predictor.h"
#include "stream/stream_driver.h"

namespace streamlink {

/// Options for StreamingTriangleCounter.
struct TriangleCounterOptions {
  /// MinHash slots for the underlying common-neighbor estimator.
  uint32_t num_hashes = 128;
  uint64_t seed = 0x5eed;
};

/// Streaming (global) triangle counting from the link-prediction sketches.
///
/// When edge (u, v) arrives, every common neighbor of u and v *at that
/// moment* closes one triangle whose final edge is (u, v). Since each
/// triangle has exactly one final edge in the stream, summing the
/// common-neighbor count just before each insertion counts every triangle
/// exactly once:
///
///     T = Σ_{edges (u,v) in arrival order} |N(u) ∩ N(v)|  (pre-insert).
///
/// Substituting the sketch estimator ĈN gives a streaming triangle-count
/// estimate with the same O(k)-per-vertex state as link prediction — one
/// summary, two applications. Requires a simple stream (duplicates would
/// re-count closed triangles; wrap multigraph sources in DedupEdgeStream).
class StreamingTriangleCounter : public EdgeConsumer {
 public:
  explicit StreamingTriangleCounter(const TriangleCounterOptions& options = {});

  /// Ingests one edge: accumulates the pre-insert ĈN(u, v), then updates
  /// the sketches. O(k).
  void OnEdge(const Edge& edge) override;

  /// Batched delivery (EdgeBatch API). The estimator is order-dependent
  /// (each edge's ĈN is read pre-insert), so a batch is strictly the
  /// amortized loop — no reordering, no lane use.
  using EdgeConsumer::OnEdgeBatch;
  void OnEdgeBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) OnEdge(e);
  }

  /// Estimated number of triangles in the graph so far.
  double Estimate() const { return triangle_estimate_; }

  uint64_t edges_processed() const { return predictor_.edges_processed(); }

  /// The underlying predictor (also answers pairwise queries — the
  /// "one summary, many queries" property).
  const MinHashPredictor& predictor() const { return predictor_; }

  uint64_t MemoryBytes() const {
    return sizeof(*this) + predictor_.MemoryBytes() -
           sizeof(MinHashPredictor);
  }

 private:
  MinHashPredictor predictor_;
  double triangle_estimate_ = 0.0;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_TRIANGLE_COUNTER_H_

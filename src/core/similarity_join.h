#ifndef STREAMLINK_CORE_SIMILARITY_JOIN_H_
#define STREAMLINK_CORE_SIMILARITY_JOIN_H_

#include <cstdint>
#include <vector>

#include "core/minhash_predictor.h"
#include "core/top_k_engine.h"

namespace streamlink {

/// Options for AllPairsSimilarVertices.
struct SimilarityJoinOptions {
  /// Report pairs whose estimated Jaccard is at least this.
  double threshold = 0.5;
  /// MinHash rows per LSH band; 0 = choose automatically so the banding
  /// S-curve's 50%-collision point sits near `threshold`
  /// (t ≈ (1/b)^(1/r) with b = k/r bands).
  uint32_t rows_per_band = 0;
  /// Skip candidate pairs sharing no bucket of at least 2 — always true by
  /// construction; this caps pathological buckets instead: buckets larger
  /// than this are truncated (they arise from many identical
  /// neighborhoods; the survivors still pair with each other).
  uint32_t max_bucket = 256;
};

/// All-pairs neighborhood-similarity join over EVERY vertex the predictor
/// has seen, via LSH banding of the MinHash vectors (Broder/LSH classic):
/// split each vertex's k slot-minima into b bands of r rows; vertices
/// agreeing on an entire band land in the same bucket and become
/// candidates; candidates are verified with the full matched-slot
/// estimate. A pair with Jaccard J collides in at least one band with
/// probability 1 − (1 − J^r)^b — the S-curve that makes the join output-
/// sensitive: nothing close to quadratic is ever enumerated.
///
/// Everything runs on sketch state only (no adjacency anywhere), so the
/// join answers "which vertices play the same structural role right now?"
/// on a live stream. Returned pairs are distinct, u < v, sorted by
/// descending estimated Jaccard; scores are estimates (k-slot precision).
std::vector<ScoredPair> AllPairsSimilarVertices(
    const MinHashPredictor& predictor,
    const SimilarityJoinOptions& options = {});

/// The banding parameters the join would use for a sketch width k and
/// threshold t (exposed for tests and tuning): rows per band r and the
/// implied 50%-collision threshold (1/b)^(1/r).
struct BandingPlan {
  uint32_t rows_per_band = 1;
  uint32_t num_bands = 1;
  double implied_threshold = 0.0;
};
BandingPlan ChooseBanding(uint32_t num_hashes, double threshold);

}  // namespace streamlink

#endif  // STREAMLINK_CORE_SIMILARITY_JOIN_H_

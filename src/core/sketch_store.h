#ifndef STREAMLINK_CORE_SKETCH_STORE_H_
#define STREAMLINK_CORE_SKETCH_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace streamlink {

/// Growable per-vertex sketch storage. The vertex set of a graph stream is
/// unknown upfront; the store lazily creates a sketch the first time a
/// vertex appears, via the factory supplied at construction.
template <typename SketchT>
class SketchStore {
 public:
  using Factory = std::function<SketchT()>;

  explicit SketchStore(Factory factory) : factory_(std::move(factory)) {}

  VertexId num_vertices() const {
    return static_cast<VertexId>(sketches_.size());
  }

  /// Grows the store so `u` is valid; new vertices get factory() sketches.
  /// Growth is explicitly geometric: capacity at least doubles on every
  /// reallocation, no matter how far ahead of the current size `u` lands.
  /// A plain reserve(u + 1) per call would pin capacity exactly and turn
  /// incremental vertex arrival (the common case for temporal streams)
  /// into quadratic reallocation; a bare push_back loop leans on the
  /// library's growth policy and still moves every element once per
  /// reallocation step on a large forward jump.
  void EnsureVertex(VertexId u) {
    if (u < sketches_.size()) return;
    const size_t needed = static_cast<size_t>(u) + 1;
    if (needed > sketches_.capacity()) {
      const size_t doubled = sketches_.capacity() * 2;
      sketches_.reserve(needed > doubled ? needed : doubled);
    }
    while (sketches_.size() < needed) sketches_.push_back(factory_());
  }

  SketchT& Mutable(VertexId u) {
    EnsureVertex(u);
    return sketches_[u];
  }

  /// Read access; `u` beyond the store returns nullptr (vertex never seen).
  const SketchT* Get(VertexId u) const {
    return u < sketches_.size() ? &sketches_[u] : nullptr;
  }

  /// Folds another store in: for every vertex present in `other`, applies
  /// `merge(this_sketch, other_sketch)`. Grows this store as needed.
  template <typename MergeFn>
  void MergeFrom(const SketchStore& other, const MergeFn& merge) {
    if (other.num_vertices() > 0) EnsureVertex(other.num_vertices() - 1);
    for (VertexId u = 0; u < other.num_vertices(); ++u) {
      merge(sketches_[u], other.sketches_[u]);
    }
  }

  /// Sum of per-sketch MemoryBytes plus the vector spine.
  uint64_t MemoryBytes() const {
    uint64_t bytes = sizeof(*this) + sketches_.capacity() * sizeof(SketchT);
    for (const SketchT& s : sketches_) {
      bytes += s.MemoryBytes() - sizeof(SketchT);  // avoid double-counting
    }
    return bytes;
  }

 private:
  Factory factory_;
  std::vector<SketchT> sketches_;
};

/// Exact per-vertex degree counters — one uint32 per vertex, the O(1)
/// side-state the paper's estimators combine with the sketches (CN needs
/// |N(u)|+|N(v)|; AA needs d(w) of sampled common neighbors).
class DegreeTable {
 public:
  DegreeTable() = default;

  void Increment(VertexId u);
  uint32_t Degree(VertexId u) const {
    return u < degrees_.size() ? degrees_[u] : 0;
  }

  /// Element-wise addition (disjoint-stream merge).
  void MergeFrom(const DegreeTable& other);

  /// Raw access for serialization.
  const std::vector<uint32_t>& raw() const { return degrees_; }
  void SetRaw(std::vector<uint32_t> degrees) { degrees_ = std::move(degrees); }
  VertexId num_vertices() const {
    return static_cast<VertexId>(degrees_.size());
  }

  uint64_t MemoryBytes() const {
    return sizeof(*this) + degrees_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint32_t> degrees_;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_SKETCH_STORE_H_

#include "core/exact_predictor.h"

#include "graph/exact_measures.h"
#include "util/logging.h"

namespace streamlink {

OverlapEstimate ExactPredictor::EstimateOverlap(VertexId u, VertexId v) const {
  // Same code path as a cross-shard query (see MinHashPredictor); the
  // body mirrors ComputeOverlap exactly, so exact scores are unchanged.
  return EstimateOverlapSharded(
      u, *this, v,
      [this](VertexId w) -> double { return graph_.Degree(w); });
}

OverlapEstimate ExactPredictor::EstimateOverlapSharded(
    VertexId u, const LinkPredictor& v_home, VertexId v,
    const DegreeFn& degree_of) const {
  const auto* peer = dynamic_cast<const ExactPredictor*>(&v_home);
  SL_CHECK(peer != nullptr) << "cross-shard query between predictor kinds: "
                            << name() << " vs " << v_home.name();

  OverlapEstimate est;
  const uint32_t du = graph_.Degree(u);
  const uint32_t dv = peer->graph_.Degree(v);
  est.degree_u = du;
  est.degree_v = dv;

  uint32_t intersection = 0;
  double adamic_adar = 0.0;
  double resource_allocation = 0.0;
  if (du > 0 && dv > 0) {
    // As in ComputeOverlap: iterate the smaller set, probe the larger
    // (ties keep u's side as the iterated set, preserving its fold order).
    const auto& nu = graph_.Neighbors(u);
    const auto& nv = peer->graph_.Neighbors(v);
    const auto& small = du > dv ? nv : nu;
    const auto& probe = du > dv ? nu : nv;
    for (VertexId w : small) {
      if (probe.count(w) == 0) continue;
      ++intersection;
      uint32_t dw = static_cast<uint32_t>(degree_of(w));
      adamic_adar += AdamicAdarWeight(dw);
      if (dw > 0) resource_allocation += 1.0 / dw;
    }
  }
  const uint32_t union_size = du + dv - intersection;
  est.intersection = intersection;
  est.union_size = union_size;
  est.jaccard = union_size == 0
                    ? 0.0
                    : static_cast<double>(intersection) / union_size;
  est.adamic_adar = adamic_adar;
  est.resource_allocation = resource_allocation;
  return est;
}

}  // namespace streamlink

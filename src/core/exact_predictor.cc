#include "core/exact_predictor.h"

#include "graph/exact_measures.h"

namespace streamlink {

OverlapEstimate ExactPredictor::EstimateOverlap(VertexId u, VertexId v) const {
  PairOverlap exact = ComputeOverlap(graph_, u, v);
  OverlapEstimate est;
  est.degree_u = exact.degree_u;
  est.degree_v = exact.degree_v;
  est.intersection = exact.intersection;
  est.union_size = exact.union_size;
  est.jaccard = exact.Jaccard();
  est.adamic_adar = exact.adamic_adar;
  est.resource_allocation = exact.resource_allocation;
  return est;
}

}  // namespace streamlink

#include "core/exact_predictor.h"

#include <algorithm>

#include "graph/exact_measures.h"
#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

OverlapEstimate ExactPredictor::EstimateOverlap(VertexId u, VertexId v) const {
  // Same code path as a cross-shard query (see MinHashPredictor); the
  // body mirrors ComputeOverlap exactly, so exact scores are unchanged.
  return EstimateOverlapSharded(
      u, *this, v,
      [this](VertexId w) -> double { return graph_.Degree(w); });
}

OverlapEstimate ExactPredictor::EstimateOverlapSharded(
    VertexId u, const LinkPredictor& v_home, VertexId v,
    const DegreeFn& degree_of) const {
  const auto* peer = dynamic_cast<const ExactPredictor*>(&v_home);
  SL_CHECK(peer != nullptr) << "cross-shard query between predictor kinds: "
                            << name() << " vs " << v_home.name();

  OverlapEstimate est;
  const uint32_t du = graph_.Degree(u);
  const uint32_t dv = peer->graph_.Degree(v);
  est.degree_u = du;
  est.degree_v = dv;

  uint32_t intersection = 0;
  double adamic_adar = 0.0;
  double resource_allocation = 0.0;
  if (du > 0 && dv > 0) {
    // As in ComputeOverlap: iterate the smaller set, probe the larger
    // (ties keep u's side as the iterated set, preserving its fold order).
    const auto& nu = graph_.Neighbors(u);
    const auto& nv = peer->graph_.Neighbors(v);
    const auto& small = du > dv ? nv : nu;
    const auto& probe = du > dv ? nu : nv;
    for (VertexId w : small) {
      if (probe.count(w) == 0) continue;
      ++intersection;
      uint32_t dw = static_cast<uint32_t>(degree_of(w));
      adamic_adar += AdamicAdarWeight(dw);
      if (dw > 0) resource_allocation += 1.0 / dw;
    }
  }
  const uint32_t union_size = du + dv - intersection;
  est.intersection = intersection;
  est.union_size = union_size;
  est.jaccard = union_size == 0
                    ? 0.0
                    : static_cast<double>(intersection) / union_size;
  est.adamic_adar = adamic_adar;
  est.resource_allocation = resource_allocation;
  return est;
}

namespace {
constexpr uint32_t kExactPayloadVersion = 1;
}  // namespace

Status ExactPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kExactPayloadVersion);
  writer.WriteU64(edges_processed());
  writer.WriteU64(graph_.num_edges());
  writer.WriteU64(graph_.num_vertices());
  std::vector<VertexId> neighbors;
  for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
    neighbors.assign(graph_.Neighbors(u).begin(), graph_.Neighbors(u).end());
    // Hash-set iteration order is nondeterministic across processes;
    // sorting makes equal graphs serialize byte-identically.
    std::sort(neighbors.begin(), neighbors.end());
    writer.WriteVector(neighbors);
  }
  return writer.status();
}

Result<ExactPredictor> ExactPredictor::LoadFrom(BinaryReader& reader,
                                                uint32_t payload_version) {
  if (payload_version != kExactPayloadVersion) {
    return Status::InvalidArgument("unsupported exact payload version " +
                                   std::to_string(payload_version));
  }
  uint64_t edges = reader.ReadU64();
  uint64_t num_edges = reader.ReadU64();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();

  ExactPredictor predictor;
  predictor.graph_.EnsureVertices(static_cast<VertexId>(num_vertices));
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto neighbors = reader.ReadVector<VertexId>();
    if (!reader.ok()) break;
    for (VertexId v : neighbors) {
      if (v >= num_vertices) {
        return Status::InvalidArgument(
            "corrupt snapshot: neighbor id " + std::to_string(v) +
            " beyond vertex count " + std::to_string(num_vertices));
      }
      predictor.graph_.AddArc(static_cast<VertexId>(u), v);
    }
  }
  if (!reader.ok()) return reader.status();
  // AddArc deliberately does not count whole edges; restore the counter.
  predictor.graph_.SetNumEdges(num_edges);
  predictor.AddProcessedEdges(edges);
  return predictor;
}

}  // namespace streamlink

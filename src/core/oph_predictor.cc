#include "core/oph_predictor.h"

#include <vector>

#include "graph/exact_measures.h"
#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

OphPredictor::OphPredictor(const OphPredictorOptions& options)
    : options_(options), store_([options] {
        return OphSketch(options.num_bins, options.seed);
      }) {
  SL_CHECK(options.num_bins >= 2) << "num_bins must be >= 2";
}

void OphPredictor::ProcessEdge(const Edge& edge) {
  store_.Mutable(edge.u).Update(edge.v);
  store_.Mutable(edge.v).Update(edge.u);
  degrees_.Increment(edge.u);
  degrees_.Increment(edge.v);
}

OverlapEstimate OphPredictor::EstimateOverlap(VertexId u, VertexId v) const {
  // Same code path as a cross-shard query (see MinHashPredictor).
  return EstimateOverlapSharded(
      u, *this, v,
      [this](VertexId w) -> double { return degrees_.Degree(w); });
}

OverlapEstimate OphPredictor::EstimateOverlapSharded(
    VertexId u, const LinkPredictor& v_home, VertexId v,
    const DegreeFn& degree_of) const {
  const auto* peer = dynamic_cast<const OphPredictor*>(&v_home);
  SL_CHECK(peer != nullptr) << "cross-shard query between predictor kinds: "
                            << name() << " vs " << v_home.name();
  SL_CHECK(options_.num_bins == peer->options_.num_bins &&
           options_.seed == peer->options_.seed)
      << "cross-shard query between differently-configured predictors";

  OverlapEstimate est;
  est.degree_u = degree_of(u);
  est.degree_v = degree_of(v);
  const double degree_sum = est.degree_u + est.degree_v;

  const OphSketch* su = store_.Get(u);
  const OphSketch* sv = peer->store_.Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    est.union_size = degree_sum;
    return est;
  }

  std::vector<uint64_t> matched_items;
  uint32_t matches = OphSketch::CountMatches(*su, *sv, &matched_items);
  est.jaccard = static_cast<double>(matches) / su->num_bins();
  est.union_size = degree_sum / (1.0 + est.jaccard);
  est.intersection = est.jaccard * est.union_size;

  if (!matched_items.empty()) {
    double aa_weight_sum = 0.0;
    double ra_weight_sum = 0.0;
    for (uint64_t item : matched_items) {
      uint32_t dw =
          static_cast<uint32_t>(degree_of(static_cast<VertexId>(item)));
      aa_weight_sum += AdamicAdarWeight(dw);
      if (dw > 0) ra_weight_sum += 1.0 / dw;
    }
    est.adamic_adar =
        est.intersection * (aa_weight_sum / matched_items.size());
    est.resource_allocation =
        est.intersection * (ra_weight_sum / matched_items.size());
  }
  return est;
}

uint64_t OphPredictor::MemoryBytes() const {
  return store_.MemoryBytes() + degrees_.MemoryBytes();
}

namespace {
constexpr uint32_t kOphPayloadVersion = 1;
}  // namespace

Status OphPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kOphPayloadVersion);
  writer.WriteU32(options_.num_bins);
  writer.WriteU64(options_.seed);
  writer.WriteU64(edges_processed());
  writer.WriteVector(degrees_.raw());
  writer.WriteU64(store_.num_vertices());
  for (VertexId u = 0; u < store_.num_vertices(); ++u) {
    writer.WriteVector(store_.Get(u)->bins());
  }
  return writer.status();
}

Result<OphPredictor> OphPredictor::LoadFrom(BinaryReader& reader,
                                            uint32_t payload_version) {
  if (payload_version != kOphPayloadVersion) {
    return Status::InvalidArgument("unsupported oph payload version " +
                                   std::to_string(payload_version));
  }
  OphPredictorOptions options;
  options.num_bins = reader.ReadU32();
  options.seed = reader.ReadU64();
  uint64_t edges = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // Validate before constructing: the predictor/sketch constructors treat
  // bad bin counts as programmer error (fatal), but here they mean a
  // corrupt file, which must surface as a Status.
  if (options.num_bins < 2) {
    return Status::InvalidArgument("corrupt snapshot: bad bin count " +
                                   std::to_string(options.num_bins));
  }

  auto degrees = reader.ReadVector<uint32_t>();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (degrees.size() != num_vertices) {
    return Status::InvalidArgument(
        "corrupt snapshot: degree table covers " +
        std::to_string(degrees.size()) + " vertices, sketch store " +
        std::to_string(num_vertices));
  }

  OphPredictor predictor(options);
  predictor.degrees_.SetRaw(std::move(degrees));
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto bins = reader.ReadVector<OphSketch::Bin>();
    if (!reader.ok()) break;
    if (bins.size() != options.num_bins) {
      return Status::InvalidArgument("corrupt snapshot: bad sketch width");
    }
    predictor.store_.Mutable(static_cast<VertexId>(u)) =
        OphSketch::FromBins(options.seed, std::move(bins));
  }
  if (!reader.ok()) return reader.status();
  predictor.AddProcessedEdges(edges);
  return predictor;
}

}  // namespace streamlink

#ifndef STREAMLINK_CORE_PREDICTOR_FACTORY_H_
#define STREAMLINK_CORE_PREDICTOR_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "util/status.h"

namespace streamlink {

class BinaryReader;
class FlagParser;

/// Unified construction knobs for all predictor kinds (bench binaries map
/// flags straight onto this).
struct PredictorConfig {
  /// One of: "minhash", "bottomk", "vertex_biased", "oph",
  /// "windowed_minhash", "tcm", "exact".
  std::string kind = "minhash";
  /// Sketch size (slots per vertex). For "vertex_biased" the budget is
  /// split evenly between the MinHash part and the weighted part; for
  /// "windowed_minhash" it is the per-bucket width.
  uint32_t sketch_size = 64;
  uint64_t seed = 0x5eed;
  /// BottomK only: use KMV degree estimates instead of exact counters.
  bool sketch_degrees = false;
  /// windowed_minhash only: count-based window length and bucket count.
  uint64_t window_edges = 100000;
  uint32_t window_buckets = 8;
  /// Ingestion parallelism. 1 builds a plain sequential predictor; > 1
  /// builds a vertex-sharded predictor with one shard per thread (only for
  /// kinds where KindSupportsSharding). 0 is InvalidArgument.
  uint32_t threads = 1;
  /// tcm only: rows per count strip (the excess-overlap tail shrinks
  /// geometrically in depth; width is sketch_size).
  uint32_t tcm_depth = 3;
  /// > 0 wraps a non-deletable kind in a TombstoneWindowPredictor of this
  /// capacity, giving it bounded-lag delete support (sequential only).
  /// InvalidArgument for natively-deletable kinds or threads > 1.
  uint64_t tombstone_window = 0;
};

/// Builds a predictor from the config; InvalidArgument on unknown kinds or
/// out-of-range sizes.
Result<std::unique_ptr<LinkPredictor>> MakePredictor(
    const PredictorConfig& config);

/// All predictor kind names MakePredictor accepts.
std::vector<std::string> PredictorKinds();

/// True if the kind can be built with threads > 1 (vertex-sharded state and
/// bit-identical cross-shard queries). vertex_biased and windowed_minhash
/// depend on global stream state (current neighbor degrees, global edge
/// count) and cannot be sharded losslessly.
bool KindSupportsSharding(const std::string& kind);

/// True if the kind retracts edges natively (turnstile model): DeleteEdge
/// and delete-tagged batches are exact inverse updates. Other kinds need a
/// tombstone window (config.tombstone_window) for bounded-lag deletes.
bool KindSupportsDeletions(const std::string& kind);

// --- Universal snapshot loading ---
//
// The restore side of LinkPredictor::SaveTo/Save: every snapshot opens
// with the universal envelope (util/serde.h), whose kind string selects
// the payload decoder here. Sibling kinds that are not LinkPredictors
// (weighted_icws, directed_minhash) have their own static Load and are
// rejected with a pointer to it.

/// Decodes one complete snapshot envelope (header + payload) from the
/// reader — the in-stream form used for nested shard envelopes. Does NOT
/// verify a file checksum; use LoadPredictorSnapshot for whole files.
Result<std::unique_ptr<LinkPredictor>> LoadPredictorFrom(BinaryReader& reader);

/// Restores a predictor of any kind from a Save(path) snapshot file,
/// verifying the envelope and the whole-file checksum. InvalidArgument for
/// foreign or corrupt content, IoError for truncation/unreadable files.
Result<std::unique_ptr<LinkPredictor>> LoadPredictorSnapshot(
    const std::string& path);

// --- Shared command-line mapping ---
//
// Every binary that lets the user pick a predictor (the CLI subcommands,
// the bench harness) consumes the SAME flag set through the two helpers
// below, so a new PredictorConfig knob lands in exactly one place:
//
//   --kind NAME          predictor kind (see PredictorKinds)
//   --k N                sketch size (slots per vertex)
//   --seed N             master hash seed
//   --threads N          ingestion parallelism (vertex-sharded when > 1)
//   --sketch-degrees     bottomk: KMV degree estimates, no exact counters
//   --window-edges N     windowed_minhash: count-based window length
//   --window-buckets N   windowed_minhash: buckets per window
//   --tcm-depth N        tcm: rows per count strip
//   --tombstone-window N wrap a non-deletable kind for bounded-lag deletes

/// The flag names PredictorConfigFromFlags consumes — append these to a
/// FlagParser::CheckUnknown allowlist.
std::vector<std::string> PredictorFlagNames();

/// One line per predictor flag, for usage/help text.
std::string PredictorFlagsHelp();

/// Maps the shared predictor flags onto a PredictorConfig. Flags that are
/// absent keep the value from `defaults` (so each binary chooses its own
/// default kind/size/seed without re-mapping every knob).
PredictorConfig PredictorConfigFromFlags(const FlagParser& flags,
                                         const PredictorConfig& defaults = {});

}  // namespace streamlink

#endif  // STREAMLINK_CORE_PREDICTOR_FACTORY_H_

#include "core/error_bounds.h"

#include <cmath>

#include "util/logging.h"

namespace streamlink {

double MinHashJaccardFailureProbability(uint32_t k, double epsilon) {
  SL_CHECK(epsilon > 0.0) << "epsilon must be positive";
  double p = 2.0 * std::exp(-2.0 * static_cast<double>(k) * epsilon * epsilon);
  return p > 1.0 ? 1.0 : p;
}

uint32_t MinHashSketchSizeFor(double epsilon, double delta) {
  SL_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon must be in (0,1)";
  SL_CHECK(delta > 0.0 && delta < 1.0) << "delta must be in (0,1)";
  double k = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<uint32_t>(std::ceil(k));
}

double MinHashJaccardErrorAt(uint32_t k, double delta) {
  SL_CHECK(k >= 1) << "k must be >= 1";
  SL_CHECK(delta > 0.0 && delta < 1.0) << "delta must be in (0,1)";
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(k)));
}

double BottomKCardinalityRelativeStdError(uint32_t k) {
  SL_CHECK(k >= 3) << "KMV error formula needs k >= 3";
  return 1.0 / std::sqrt(static_cast<double>(k) - 2.0);
}

uint64_t AllowedToleranceViolations(uint64_t queries, double per_query_delta,
                                    double overall_delta) {
  SL_CHECK(per_query_delta > 0.0 && per_query_delta < 1.0)
      << "per_query_delta must be in (0,1)";
  SL_CHECK(overall_delta > 0.0 && overall_delta < 1.0)
      << "overall_delta must be in (0,1)";
  const double q = static_cast<double>(queries);
  const double mean = q * per_query_delta;
  const double t = std::log(1.0 / overall_delta);
  const double variance = q * per_query_delta * (1.0 - per_query_delta);
  double ceiling =
      std::ceil(mean + std::sqrt(2.0 * variance * t) + (2.0 / 3.0) * t);
  if (ceiling > q) return queries;
  return static_cast<uint64_t>(ceiling);
}

double CommonNeighborErrorBound(double epsilon, double jaccard,
                                double degree_sum) {
  SL_CHECK(epsilon >= 0.0) << "epsilon must be non-negative";
  SL_CHECK(jaccard >= 0.0 && jaccard <= 1.0) << "jaccard must be in [0,1]";
  double denom = (1.0 + jaccard) * (1.0 + jaccard);
  return epsilon * degree_sum / denom;
}

}  // namespace streamlink

#ifndef STREAMLINK_CORE_DIRECTED_PREDICTOR_H_
#define STREAMLINK_CORE_DIRECTED_PREDICTOR_H_

#include <string>

#include "core/sketch_store.h"
#include "graph/digraph.h"
#include "graph/types.h"
#include "sketch/minhash.h"
#include "stream/stream_driver.h"
#include "util/hashing.h"
#include "util/status.h"

namespace streamlink {

class BinaryReader;
class BinaryWriter;

/// Options for DirectedMinHashPredictor.
struct DirectedPredictorOptions {
  /// MinHash slots per vertex *per side* (out and in each get this many).
  uint32_t num_hashes = 64;
  uint64_t seed = 0x5eed;
};

/// Directed-stream extension of the MinHash link predictor.
///
/// The paper's model is undirected; many real graph streams (follower
/// graphs, citations, web links) are not. This predictor keeps TWO
/// sketches per vertex — one over successors N+(u), one over predecessors
/// N-(u) — plus exact in/out degree counters. Any of the four directional
/// overlap combinations can then be estimated:
///
///   (kOut, kOut): common successors — "u and v link to the same pages"
///   (kIn,  kIn ): common predecessors — "u and v are cited together"
///   (kOut, kIn ): u's successors that are v's predecessors, etc.
///
/// Estimators mirror the undirected MinHashPredictor: matched slots give
/// Jaccard; the degree identity gives the intersection; matched arg-min
/// vertices weighted by 1/ln(total degree) give directed Adamic-Adar.
/// Streams are directed-simple (each arc at most once).
///
/// Note this is NOT a LinkPredictor (the unified interface is undirected);
/// it is a sibling with a direction-aware query surface.
class DirectedMinHashPredictor : public EdgeConsumer {
 public:
  explicit DirectedMinHashPredictor(
      const DirectedPredictorOptions& options = {});

  std::string name() const { return "directed_minhash"; }

  /// Ingests arc edge.u -> edge.v (order is meaningful). Self-loops
  /// dropped.
  void OnEdge(const Edge& edge) override;

  /// Batched delivery (EdgeBatch API): arcs apply in order; lanes unused
  /// (two per-side k-permutation families re-hash regardless).
  using EdgeConsumer::OnEdgeBatch;
  void OnEdgeBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) OnEdge(e);
  }

  uint64_t arcs_processed() const { return arcs_processed_; }
  VertexId num_vertices() const;
  uint32_t OutDegree(VertexId u) const { return out_degrees_.Degree(u); }
  uint32_t InDegree(VertexId u) const { return in_degrees_.Degree(u); }

  /// Directed overlap estimate between u's `du`-side neighborhood and v's
  /// `dv`-side neighborhood.
  struct DirectedEstimate {
    double size_u = 0.0;        // |N_du(u)|
    double size_v = 0.0;        // |N_dv(v)|
    double jaccard = 0.0;
    double intersection = 0.0;  // common neighbors in those directions
    double union_size = 0.0;
    double adamic_adar = 0.0;   // weights 1/ln(out+in degree of w)
  };
  DirectedEstimate Estimate(VertexId u, Direction du, VertexId v,
                            Direction dv) const;

  uint64_t MemoryBytes() const;

  // Snapshot I/O (kind "directed_minhash"). Not a LinkPredictor, so these
  // are plain members mirroring the virtual Save/SaveTo contract. The two
  // sides are serialized independently (their vertex sets differ: an arc
  // u->v grows only u's out side and v's in side).
  Status SaveTo(BinaryWriter& writer) const;
  Status Save(const std::string& path) const;
  static Result<DirectedMinHashPredictor> LoadFrom(BinaryReader& reader,
                                                   uint32_t payload_version);
  static Result<DirectedMinHashPredictor> Load(const std::string& path);

 private:
  const SketchStore<MinHashSketch>& SideStore(Direction direction) const {
    return direction == Direction::kOut ? out_store_ : in_store_;
  }
  double SideDegree(VertexId x, Direction direction) const {
    return direction == Direction::kOut ? out_degrees_.Degree(x)
                                        : in_degrees_.Degree(x);
  }

  DirectedPredictorOptions options_;
  HashFamily family_;
  SketchStore<MinHashSketch> out_store_;
  SketchStore<MinHashSketch> in_store_;
  DegreeTable out_degrees_;
  DegreeTable in_degrees_;
  uint64_t arcs_processed_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_CORE_DIRECTED_PREDICTOR_H_

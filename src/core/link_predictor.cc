#include "core/link_predictor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {

double MeasureFromEstimate(LinkMeasure measure, const OverlapEstimate& e) {
  switch (measure) {
    case LinkMeasure::kCommonNeighbors:
      return e.intersection;
    case LinkMeasure::kJaccard:
      return e.jaccard;
    case LinkMeasure::kAdamicAdar:
      return e.adamic_adar;
    case LinkMeasure::kResourceAllocation:
      return e.resource_allocation;
    case LinkMeasure::kPreferentialAttachment:
      return e.degree_u * e.degree_v;
    case LinkMeasure::kSalton: {
      double denom = std::sqrt(e.degree_u * e.degree_v);
      return denom > 0 ? e.intersection / denom : 0.0;
    }
    case LinkMeasure::kSorensen: {
      double denom = e.degree_u + e.degree_v;
      return denom > 0 ? 2.0 * e.intersection / denom : 0.0;
    }
    case LinkMeasure::kHubPromoted: {
      double denom = std::min(e.degree_u, e.degree_v);
      return denom > 0 ? e.intersection / denom : 0.0;
    }
    case LinkMeasure::kHubDepressed: {
      double denom = std::max(e.degree_u, e.degree_v);
      return denom > 0 ? e.intersection / denom : 0.0;
    }
    case LinkMeasure::kLeichtHolmeNewman: {
      double denom = e.degree_u * e.degree_v;
      return denom > 0 ? e.intersection / denom : 0.0;
    }
  }
  SL_LOG(kFatal) << "unhandled LinkMeasure";
  return 0.0;
}

std::vector<double> LinkPredictor::Scores(
    std::span<const LinkMeasure> measures, VertexId u, VertexId v) const {
  const OverlapEstimate estimate = EstimateOverlap(u, v);
  std::vector<double> scores;
  scores.reserve(measures.size());
  for (LinkMeasure m : measures) {
    scores.push_back(MeasureFromEstimate(m, estimate));
  }
  return scores;
}

Status LinkPredictor::SaveTo(BinaryWriter&) const {
  return Status::FailedPrecondition(name() + " does not support snapshots");
}

Status LinkPredictor::Save(const std::string& path) const {
  return WriteFileAtomic(
      path, [this](BinaryWriter& writer) { return SaveTo(writer); });
}

void LinkPredictor::ObserveNeighbor(VertexId, VertexId) {
  SL_LOG(kFatal) << name() << " does not support sharded ingestion";
}

void LinkPredictor::ProcessDelete(const Edge&) {
  SL_LOG(kFatal) << name()
                 << " does not support edge deletions (turnstile); wrap in "
                    "a tombstone window or use a deletable kind";
}

void LinkPredictor::RetractNeighbor(VertexId, VertexId) {
  SL_LOG(kFatal) << name() << " does not support sharded edge deletions";
}

double LinkPredictor::OwnedDegree(VertexId) const {
  SL_LOG(kFatal) << name() << " does not support sharded ingestion";
  return 0.0;
}

OverlapEstimate LinkPredictor::EstimateOverlapSharded(
    VertexId, const LinkPredictor&, VertexId, const DegreeFn&) const {
  SL_LOG(kFatal) << name() << " does not support sharded queries";
  return {};
}

}  // namespace streamlink

#include "core/bottomk_predictor.h"

#include <algorithm>

#include "graph/exact_measures.h"
#include "util/hashing.h"
#include "util/serde.h"
#include "util/logging.h"

namespace streamlink {

BottomKPredictor::BottomKPredictor(const BottomKPredictorOptions& options)
    : options_(options), store_([k = options.k] { return BottomKSketch(k); }) {
  SL_CHECK(options.k >= 2) << "bottom-k predictor needs k >= 2";
}

void BottomKPredictor::ProcessEdge(const Edge& edge) {
  store_.Mutable(edge.u).Update(HashU64(edge.v, options_.seed), edge.v);
  store_.Mutable(edge.v).Update(HashU64(edge.u, options_.seed), edge.u);
  if (options_.track_exact_degrees) {
    degrees_.Increment(edge.u);
    degrees_.Increment(edge.v);
  }
}

void BottomKPredictor::ObserveNeighbor(VertexId u, VertexId neighbor) {
  store_.Mutable(u).Update(HashU64(neighbor, options_.seed), neighbor);
  if (options_.track_exact_degrees) degrees_.Increment(u);
}

void BottomKPredictor::ObserveNeighborBatch(const EdgeBatch& batch) {
  if (batch.has_hash_v()) {
    // Producer pre-hashed every neighbor under our seed (NeighborHashSeed
    // contract): the kernel is pure sketch insertion, zero hashing.
    for (size_t i = 0; i < batch.size(); ++i) {
      const Edge& e = batch[i];
      store_.Mutable(e.u).Update(batch.hash_v(i), e.v);
      if (options_.track_exact_degrees) degrees_.Increment(e.u);
    }
    return;
  }
  const uint64_t mixed_seed = MixSeed(options_.seed);
  for (const Edge& e : batch) {
    store_.Mutable(e.u).Update(HashU64WithMixedSeed(e.v, mixed_seed), e.v);
    if (options_.track_exact_degrees) degrees_.Increment(e.u);
  }
}

void BottomKPredictor::ProcessBatch(const EdgeBatch& batch) {
  AddProcessedEdges(batch.size());
  const bool lanes = batch.has_hash_u() && batch.has_hash_v();
  const uint64_t mixed_seed = MixSeed(options_.seed);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Edge& e = batch[i];
    const uint64_t hu =
        lanes ? batch.hash_u(i) : HashU64WithMixedSeed(e.u, mixed_seed);
    const uint64_t hv =
        lanes ? batch.hash_v(i) : HashU64WithMixedSeed(e.v, mixed_seed);
    store_.Mutable(e.u).Update(hv, e.v);
    store_.Mutable(e.v).Update(hu, e.u);
    if (options_.track_exact_degrees) {
      degrees_.Increment(e.u);
      degrees_.Increment(e.v);
    }
  }
}

double BottomKPredictor::Degree(VertexId u) const {
  if (options_.track_exact_degrees) return degrees_.Degree(u);
  const BottomKSketch* s = store_.Get(u);
  return s == nullptr ? 0.0 : s->EstimateCardinality();
}

OverlapEstimate BottomKPredictor::EstimateOverlap(VertexId u,
                                                  VertexId v) const {
  // Same code path as a cross-shard query (see MinHashPredictor): Degree()
  // already resolves the exact-vs-KMV mode, so it doubles as the local leg
  // of the routed degree oracle.
  return EstimateOverlapSharded(
      u, *this, v, [this](VertexId w) -> double { return Degree(w); });
}

OverlapEstimate BottomKPredictor::EstimateOverlapSharded(
    VertexId u, const LinkPredictor& v_home, VertexId v,
    const DegreeFn& degree_of) const {
  const auto* peer = dynamic_cast<const BottomKPredictor*>(&v_home);
  SL_CHECK(peer != nullptr) << "cross-shard query between predictor kinds: "
                            << name() << " vs " << v_home.name();
  SL_CHECK(options_.k == peer->options_.k &&
           options_.seed == peer->options_.seed &&
           options_.track_exact_degrees == peer->options_.track_exact_degrees)
      << "cross-shard query between differently-configured predictors";

  OverlapEstimate est;
  est.degree_u = degree_of(u);
  est.degree_v = degree_of(v);

  const BottomKSketch* su = store_.Get(u);
  const BottomKSketch* sv = peer->store_.Get(v);
  if (su == nullptr || sv == nullptr || su->IsEmpty() || sv->IsEmpty()) {
    est.union_size = est.degree_u + est.degree_v;
    return est;
  }

  BottomKSketch::PairEstimate pair = BottomKSketch::EstimatePair(*su, *sv);
  est.jaccard = pair.jaccard;
  if (options_.track_exact_degrees) {
    // Exact degrees give the lower-variance closed form (as in MinHash).
    double degree_sum = est.degree_u + est.degree_v;
    est.union_size = degree_sum / (1.0 + est.jaccard);
    est.intersection = est.jaccard * est.union_size;
  } else {
    est.union_size = pair.union_cardinality;
    est.intersection = pair.intersection_cardinality;
  }

  // Adamic-Adar / RA: matched entries of the merged bottom-k are uniform
  // intersection samples; weight them by current degree, wherever it lives.
  uint32_t matched = 0;
  double aa_weight_sum = 0.0;
  double ra_weight_sum = 0.0;
  const auto& ea = su->entries();
  const auto& eb = sv->entries();
  const uint64_t tau = std::min(su->Threshold(), sv->Threshold());
  size_t i = 0, j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].hash < eb[j].hash) {
      ++i;
    } else if (ea[i].hash > eb[j].hash) {
      ++j;
    } else {
      if (ea[i].hash <= tau) {
        ++matched;
        double dw = degree_of(static_cast<VertexId>(ea[i].item));
        uint32_t dw_int = static_cast<uint32_t>(dw + 0.5);
        aa_weight_sum += AdamicAdarWeight(dw_int);
        if (dw > 0) ra_weight_sum += 1.0 / dw;
      }
      ++i;
      ++j;
    }
  }
  if (matched > 0) {
    est.adamic_adar = est.intersection * (aa_weight_sum / matched);
    est.resource_allocation = est.intersection * (ra_weight_sum / matched);
  }
  return est;
}

uint64_t BottomKPredictor::MemoryBytes() const {
  uint64_t bytes = store_.MemoryBytes();
  if (options_.track_exact_degrees) bytes += degrees_.MemoryBytes();
  return bytes;
}

void BottomKPredictor::MergeFrom(const BottomKPredictor& other) {
  SL_CHECK(options_.k == other.options_.k &&
           options_.seed == other.options_.seed &&
           options_.track_exact_degrees == other.options_.track_exact_degrees)
      << "cannot merge predictors with different options";
  store_.MergeFrom(other.store_,
                   [](BottomKSketch& mine, const BottomKSketch& theirs) {
                     mine.MergeUnion(theirs);
                   });
  if (options_.track_exact_degrees) degrees_.MergeFrom(other.degrees_);
  AddProcessedEdges(other.edges_processed());
}

namespace {
constexpr uint32_t kBottomKPayloadVersion = 1;
}  // namespace

Status BottomKPredictor::SaveTo(BinaryWriter& writer) const {
  WriteSnapshotHeader(writer, name(), kBottomKPayloadVersion);
  writer.WriteU32(options_.k);
  writer.WriteU64(options_.seed);
  writer.WriteU32(options_.track_exact_degrees ? 1 : 0);
  writer.WriteU64(edges_processed());
  writer.WriteVector(degrees_.raw());
  writer.WriteU64(store_.num_vertices());
  for (VertexId u = 0; u < store_.num_vertices(); ++u) {
    writer.WriteVector(store_.Get(u)->entries());
  }
  return writer.status();
}

Result<BottomKPredictor> BottomKPredictor::LoadFrom(BinaryReader& reader,
                                                    uint32_t payload_version) {
  if (payload_version != kBottomKPayloadVersion) {
    return Status::InvalidArgument("unsupported bottomk payload version " +
                                   std::to_string(payload_version));
  }
  BottomKPredictorOptions options;
  options.k = reader.ReadU32();
  options.seed = reader.ReadU64();
  options.track_exact_degrees = reader.ReadU32() != 0;
  uint64_t edges = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (options.k < 2) {
    return Status::InvalidArgument("corrupt snapshot: bad k");
  }

  auto degrees = reader.ReadVector<uint32_t>();
  uint64_t num_vertices = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // With exact degrees, the counter table and sketch store grow in
  // lockstep; with KMV degrees, no counters are kept at all. Either way a
  // mismatched length is corruption, not a loadable state.
  const size_t expected_degrees =
      options.track_exact_degrees ? num_vertices : 0;
  if (degrees.size() != expected_degrees) {
    return Status::InvalidArgument(
        "corrupt snapshot: degree table covers " +
        std::to_string(degrees.size()) + " vertices, expected " +
        std::to_string(expected_degrees));
  }

  BottomKPredictor predictor(options);
  predictor.degrees_.SetRaw(std::move(degrees));
  for (uint64_t u = 0; u < num_vertices && reader.ok(); ++u) {
    auto entries = reader.ReadVector<BottomKSketch::Entry>();
    if (!reader.ok()) break;
    if (entries.size() > options.k) {
      return Status::InvalidArgument("corrupt snapshot: oversized sketch");
    }
    BottomKSketch sketch(options.k);
    for (const auto& entry : entries) sketch.Update(entry.hash, entry.item);
    predictor.store_.Mutable(static_cast<VertexId>(u)) = std::move(sketch);
  }
  if (!reader.ok()) return reader.status();
  predictor.AddProcessedEdges(edges);
  return predictor;
}

Result<BottomKPredictor> BottomKPredictor::Load(const std::string& path) {
  if (Status st = PreflightSnapshotFile(path); !st.ok()) return st;
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  Result<SnapshotHeader> header = ReadSnapshotHeader(reader);
  if (!header.ok()) return header.status();
  if (header->kind != "bottomk") {
    return Status::InvalidArgument("snapshot holds a '" + header->kind +
                                   "' predictor, expected bottomk: " + path);
  }
  Result<BottomKPredictor> predictor =
      LoadFrom(reader, header->payload_version);
  if (!predictor.ok()) return predictor.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return predictor;
}

}  // namespace streamlink

#ifndef STREAMLINK_NET_FRAME_H_
#define STREAMLINK_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {
namespace net {

// The wire framing of the network serving front end (docs/net.md): a
// fixed 24-byte little-endian header followed by an opaque payload. The
// payload of query/result/nack frames is a self-checksummed query-codec
// message (serve/query_codec.h); ping/pong frames carry none. Every
// header byte is covered by a trailing header check word, so corruption
// can never silently re-frame the stream — a bad header is a protocol
// error and the connection drops.
//
//   u32 magic "SLNF" | u8 version | u8 type | u16 flags (0) |
//   u64 request_id   | u32 payload_bytes | u32 header_check
//
// `header_check` is the low 32 bits of the FNV-1a digest of the preceding
// 20 bytes. `request_id` is chosen by the client and echoed verbatim in
// the response frame; responses on one connection may come back out of
// order (a shed request is NACKed by the event loop while earlier
// admitted ones are still at the workers), so clients match on it.

inline constexpr uint32_t kFrameMagic = 0x534c4e46;  // "SLNF"
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;

enum class FrameType : uint8_t {
  kQuery = 1,   // payload: encoded QueryRequest
  kResult = 2,  // payload: encoded QueryResult
  kNack = 3,    // payload: encoded NackInfo (request shed or rejected)
  kPing = 4,    // no payload; server answers kPong with the same id
  kPong = 5,    // no payload
};

struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serializes header + payload. The result is what goes on the socket.
std::string EncodeFrame(const Frame& frame);

struct FrameDecoderOptions {
  /// Frames advertising a larger payload are a protocol error (protects
  /// the server from one connection ballooning its read buffer).
  size_t max_payload_bytes = 1u << 20;
};

/// Incremental, allocation-bounded frame parser: feed it whatever the
/// socket produced, get back every complete frame. Never throws, never
/// over-reads, never crashes on arbitrary bytes (fuzzed — see
/// FuzzNetFrame); any malformed header poisons the decoder and surfaces
/// as InvalidArgument, after which the connection must be dropped (the
/// stream cannot be re-synchronized).
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameDecoderOptions options = {})
      : options_(options) {}

  /// Appends `size` bytes and extracts every now-complete frame into
  /// `out` (appended in stream order). Returns the decoder's status:
  /// once failed, all further input is rejected.
  Status Feed(const void* data, size_t size, std::vector<Frame>* out);

  /// Bytes buffered awaiting a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - head_; }

  Status status() const { return status_; }

 private:
  FrameDecoderOptions options_;
  std::string buffer_;
  size_t head_ = 0;  // consumed prefix of buffer_
  Status status_;
};

}  // namespace net
}  // namespace streamlink

#endif  // STREAMLINK_NET_FRAME_H_

#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/admin.h"
#include "obs/export.h"
#include "obs/proc_stats.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace streamlink {
namespace net {

namespace {

constexpr uint64_t kListenerTag = 1;
constexpr uint64_t kWakeupTag = 2;
constexpr uint64_t kAdminListenerTag = 3;

/// An admin request head larger than this is not a health check.
constexpr size_t kMaxAdminRequestBytes = 8 * 1024;

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

NetServer::~NetServer() { Stop(); }

Status NetServer::OpenListener(const std::string& host, uint16_t port,
                               int* fd_out, uint16_t* port_out) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = ErrnoStatus("bind " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 128) < 0) {
    Status st = ErrnoStatus("listen");
    CloseFd(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = ErrnoStatus("getsockname");
    CloseFd(fd);
    return st;
  }
  *fd_out = fd;
  *port_out = ntohs(addr.sin_port);
  return Status::Ok();
}

Status NetServer::Start(const QueryService& service, NetServerOptions options) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("NetServer already started");
  }
  service_ = &service;
  options_ = std::move(options);
  if (options_.workers == 0) options_.workers = 1;

  if (Status st = OpenListener(options_.host, options_.port, &listen_fd_,
                               &port_);
      !st.ok()) {
    return st;
  }
  if (options_.admin.enabled) {
    if (Status st = OpenListener(options_.admin.host, options_.admin.port,
                                 &admin_listen_fd_, &admin_port_);
        !st.ok()) {
      CloseFd(listen_fd_);
      port_ = 0;
      return st;
    }
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wakeup_fd_ < 0) {
    Status st = ErrnoStatus("epoll_create1/eventfd");
    CloseFd(listen_fd_);
    CloseFd(admin_listen_fd_);
    CloseFd(epoll_fd_);
    CloseFd(wakeup_fd_);
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: accept backlog must not be missed
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeupTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);
  if (admin_listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.u64 = kAdminListenerTag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, admin_listen_fd_, &ev);
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    metrics_.connections = &reg.GetCounter("net.connections_total");
    metrics_.frames_in = &reg.GetCounter("net.frames_in_total");
    metrics_.frames_out = &reg.GetCounter("net.frames_out_total");
    metrics_.admitted = &reg.GetCounter("net.requests_admitted_total");
    metrics_.shed_queue_full =
        &reg.GetCounter("net.requests_shed_queue_full_total");
    metrics_.shed_stale = &reg.GetCounter("net.requests_shed_stale_total");
    metrics_.bad_requests = &reg.GetCounter("net.bad_requests_total");
    metrics_.protocol_errors = &reg.GetCounter("net.protocol_errors_total");
    metrics_.active_connections = &reg.GetGauge("net.active_connections");
    metrics_.admin_requests = &reg.GetCounter("net.admin_requests_total");
    metrics_.stage_decode = &reg.GetHistogram("serve.stage.decode_ns");
    metrics_.stage_admission = &reg.GetHistogram("serve.stage.admission_ns");
    metrics_.stage_queue_wait =
        &reg.GetHistogram("serve.stage.queue_wait_ns");
    metrics_.stage_encode = &reg.GetHistogram("serve.stage.encode_ns");
    metrics_.stage_write = &reg.GetHistogram("serve.stage.write_ns");
    reg.RegisterHistogram("net.request_latency_ns", &request_latency_);
    reg.RegisterGaugeFn("net.queue_depth", [this] {
      return static_cast<double>(
          queue_depth_.load(std::memory_order_relaxed));
    });
  }

  stage_timing_ = options_.metrics != nullptr || options_.admin.enabled;
  exemplars_ = std::make_unique<obs::ExemplarRing>(
      options_.admin.tracez_slots == 0 ? 32 : options_.admin.tracez_slots);
  started_at_seconds_ = MonotonicSeconds();

  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { LoopThread(); });
  workers_.reserve(options_.workers);
  for (uint32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  return Status::Ok();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  Wakeup();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_cv_.notify_all();
  }
  if (loop_.joinable()) loop_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (auto& [id, conn] : conns_) {
    (void)id;
    CloseFd(conn.fd);
  }
  conns_.clear();
  work_.clear();
  done_.clear();
  queue_depth_.store(0, std::memory_order_relaxed);
  CloseFd(listen_fd_);
  CloseFd(admin_listen_fd_);
  CloseFd(epoll_fd_);
  CloseFd(wakeup_fd_);
  port_ = 0;
  admin_port_ = 0;
}

void NetServer::Wakeup() {
  if (wakeup_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
  }
}

void NetServer::LoopThread() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      SL_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        HandleAccept(listen_fd_, /*admin=*/false);
        continue;
      }
      if (tag == kAdminListenerTag) {
        HandleAccept(admin_listen_fd_, /*admin=*/true);
        continue;
      }
      if (tag == kWakeupTag) {
        uint64_t drained;
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end() || it->second.closed) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(it->first, it->second);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(it->first, it->second);
      // Readable handling may have closed the connection.
      if (!it->second.closed && (events[i].events & EPOLLOUT)) {
        HandleWritable(it->first, it->second);
      }
    }
    // A wakeup can race with epoll_wait timing out; sweep completions
    // every iteration so none ever strand.
    DrainCompletions();
    ReapDead();
  }
}

void NetServer::HandleAccept(int listen_fd, bool admin) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t conn_id = next_conn_id_++;
    Conn& conn = conns_[conn_id];
    conn.fd = fd;
    conn.admin = admin;
    conn.decoder = FrameDecoder({options_.max_payload_bytes});
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.u64 = conn_id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    // Admin scrapes stay out of the serving-plane connection metrics.
    if (admin) continue;
    if (metrics_.connections != nullptr) metrics_.connections->Add(1);
    if (metrics_.active_connections != nullptr) {
      metrics_.active_connections->Add(1.0);
    }
  }
}

void NetServer::HandleReadable(uint64_t conn_id, Conn& conn) {
  if (conn.admin) {
    HandleAdminReadable(conn_id, conn);
    return;
  }
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      std::vector<Frame> frames;
      Status st = conn.decoder.Feed(buf, static_cast<size_t>(n), &frames);
      for (Frame& frame : frames) {
        if (metrics_.frames_in != nullptr) metrics_.frames_in->Add(1);
        OnFrame(conn_id, conn, std::move(frame));
        if (conn.closed) return;
      }
      if (!st.ok()) {
        if (metrics_.protocol_errors != nullptr) {
          metrics_.protocol_errors->Add(1);
        }
        CloseConn(conn_id, conn);
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConn(conn_id, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn_id, conn);
    return;
  }
}

void NetServer::HandleWritable(uint64_t conn_id, Conn& conn) {
  FlushConn(conn_id, conn);
}

void NetServer::HandleAdminReadable(uint64_t conn_id, Conn& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.http_in.append(buf, static_cast<size_t>(n));
      if (conn.http_in.size() > kMaxAdminRequestBytes) {
        CloseConn(conn_id, conn);
        return;
      }
      if (!obs::HttpRequestComplete(conn.http_in)) continue;
      if (metrics_.admin_requests != nullptr) metrics_.admin_requests->Add(1);
      const std::optional<std::string> path =
          obs::ParseHttpRequestPath(conn.http_in);
      std::string response =
          path.has_value()
              ? AdminResponse(*path)
              : obs::BuildHttpResponse(400, "text/plain",
                                       "malformed request\n");
      conn.close_after_flush = true;
      QueueToConn(conn_id, conn, std::move(response));
      return;
    }
    if (n == 0) {  // peer closed
      CloseConn(conn_id, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn_id, conn);
    return;
  }
}

std::string NetServer::AdminResponse(const std::string& path) {
  if (path == "/metrics" || path == "/metrics.json") {
    if (options_.metrics == nullptr) {
      return obs::BuildHttpResponse(503, "text/plain",
                                    "no metrics registry bound\n");
    }
    const obs::MetricsSnapshot snapshot = options_.metrics->Snapshot();
    if (path == "/metrics") {
      return obs::BuildHttpResponse(200, "text/plain; version=0.0.4",
                                    obs::ExportText(snapshot));
    }
    return obs::BuildHttpResponse(200, "application/json",
                                  obs::ExportJson(snapshot));
  }
  if (path == "/healthz") {
    const ServeHealth health = service_->Health();
    obs::HealthzView view;
    view.has_snapshot = health.has_snapshot;
    view.staleness_edges = health.staleness_edges;
    view.age_seconds = health.age_seconds;
    // Explicit admin bounds win; otherwise readiness mirrors the
    // service's own staleness options (what admission control enforces).
    view.max_staleness_edges =
        options_.admin.healthz_max_staleness_edges != 0
            ? options_.admin.healthz_max_staleness_edges
            : service_->options().max_staleness_edges;
    view.max_age_seconds =
        options_.admin.healthz_max_age_seconds > 0.0
            ? options_.admin.healthz_max_age_seconds
            : service_->options().max_snapshot_age_seconds;
    const obs::HealthzResult result = obs::RenderHealthz(view);
    return obs::BuildHttpResponse(result.ready ? 200 : 503, "text/plain",
                                  result.body);
  }
  if (path == "/statusz") {
    obs::StatuszView view;
    view.uptime_seconds = MonotonicSeconds() - started_at_seconds_;
    if (const auto snap = service_->snapshot(); snap != nullptr) {
      view.predictor_kind = snap->predictor->name();
      view.snapshot_version = snap->version;
      view.snapshot_edges = snap->stream_edges;
    }
    const ServeHealth health = service_->Health();
    view.staleness_edges = health.staleness_edges;
    view.snapshot_age_seconds = health.age_seconds;
    view.live_edges = service_->live_edges();
    uint64_t active = 0;
    for (const auto& [id, conn] : conns_) {
      (void)id;
      if (!conn.closed && !conn.admin) ++active;
    }
    view.active_connections = active;
    view.queue_depth = queue_depth_.load(std::memory_order_relaxed);
    if (metrics_.admitted != nullptr) {
      view.requests_admitted = metrics_.admitted->Value();
      view.requests_shed = metrics_.shed_queue_full->Value() +
                           metrics_.shed_stale->Value();
    }
    view.open_fds = obs::OpenFdCount();
    view.threads = obs::ThreadCount();
    view.rss_kb = obs::CurrentRssKb();
    if (options_.admin.key_sampler != nullptr) {
      const auto top = options_.admin.key_sampler->TopK(
          static_cast<uint32_t>(options_.admin.statusz_hot_keys));
      for (const auto& counter : top) {
        view.hot_keys.emplace_back(counter.item, counter.count);
      }
    }
    return obs::BuildHttpResponse(200, "text/plain",
                                  obs::RenderStatusz(view));
  }
  if (path == "/tracez") {
    return obs::BuildHttpResponse(
        200, "text/plain",
        obs::RenderTracez(exemplars_->SlowestFirst(), exemplars_->offered(),
                          exemplars_->capacity()));
  }
  return obs::BuildHttpResponse(
      404, "text/plain",
      "unknown path; try /metrics /healthz /statusz /tracez\n");
}

void NetServer::OnFrame(uint64_t conn_id, Conn& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      QueueToConn(conn_id, conn, EncodeFrame(pong));
      return;
    }
    case FrameType::kQuery: {
      const uint64_t admit_start_ns =
          stage_timing_ ? obs::Tracer::NowNs() : 0;
      const AdmissionDecision decision =
          Admit(options_.admission, queue_depth_.load(std::memory_order_relaxed),
                service_->Health());
      const uint64_t admission_ns =
          stage_timing_ ? obs::Tracer::NowNs() - admit_start_ns : 0;
      if (metrics_.stage_admission != nullptr) {
        metrics_.stage_admission->Record(admission_ns);
      }
      if (!decision.admit) {
        if (decision.reason == NackReason::kQueueFull) {
          if (metrics_.shed_queue_full != nullptr) {
            metrics_.shed_queue_full->Add(1);
          }
        } else if (metrics_.shed_stale != nullptr) {
          metrics_.shed_stale->Add(1);
        }
        NackInfo nack;
        nack.reason = decision.reason;
        nack.retry_after_ms = decision.retry_after_ms;
        nack.message = NackReasonName(decision.reason);
        Frame reply;
        reply.type = FrameType::kNack;
        reply.request_id = frame.request_id;
        reply.payload = EncodeNack(nack);
        QueueToConn(conn_id, conn, EncodeFrame(reply));
        return;
      }
      if (metrics_.admitted != nullptr) metrics_.admitted->Add(1);
      queue_depth_.fetch_add(1, std::memory_order_relaxed);
      conn.in_flight++;
      WorkItem item;
      item.conn_id = conn_id;
      item.request_id = frame.request_id;
      item.payload = std::move(frame.payload);
      item.admitted_at_seconds = MonotonicSeconds();
      item.admission_ns = admission_ns;
      {
        std::lock_guard<std::mutex> lock(work_mu_);
        work_.push_back(std::move(item));
      }
      work_cv_.notify_one();
      return;
    }
    default:
      // Clients may only send queries and pings; anything else means the
      // two sides disagree about the protocol.
      if (metrics_.protocol_errors != nullptr) metrics_.protocol_errors->Add(1);
      CloseConn(conn_id, conn);
      return;
  }
}

void NetServer::QueueToConn(uint64_t conn_id, Conn& conn, std::string bytes) {
  if (conn.closed) return;
  if (conn.outbox.size() - conn.sent + bytes.size() >
      options_.max_outbox_bytes) {
    // Slow reader: shedding it beats buffering its backlog forever.
    CloseConn(conn_id, conn);
    return;
  }
  conn.outbox.append(bytes);
  if (metrics_.frames_out != nullptr) metrics_.frames_out->Add(1);
  FlushConn(conn_id, conn);
}

void NetServer::FlushConn(uint64_t conn_id, Conn& conn) {
  while (conn.sent < conn.outbox.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data() + conn.sent,
               conn.outbox.size() - conn.sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn_id, conn);
    return;
  }
  conn.outbox.clear();
  conn.sent = 0;
  if (conn.close_after_flush) CloseConn(conn_id, conn);
}

void NetServer::CloseConn(uint64_t conn_id, Conn& conn) {
  if (conn.closed) return;
  conn.closed = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  CloseFd(conn.fd);
  if (!conn.admin && metrics_.active_connections != nullptr) {
    metrics_.active_connections->Add(-1.0);
  }
  // Erasure is deferred to ReapDead so references held by callers up the
  // stack stay valid; a conn with work at the workers lingers until its
  // last completion drains.
  if (conn.in_flight == 0) dead_.push_back(conn_id);
}

void NetServer::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    if (conn.in_flight > 0) conn.in_flight--;
    if (conn.closed) {
      if (conn.in_flight == 0) dead_.push_back(done.conn_id);
      continue;
    }
    if (!done.timed) {
      QueueToConn(done.conn_id, conn, std::move(done.bytes));
      continue;
    }
    // Stamp the write stage here on the loop thread (QueueToConn flushes
    // greedily; a partial write's EPOLLOUT remainder is not charged) and
    // finish the request's timeline for /tracez.
    const uint64_t write_start_ns = obs::Tracer::NowNs();
    QueueToConn(done.conn_id, conn, std::move(done.bytes));
    const uint64_t write_ns = obs::Tracer::NowNs() - write_start_ns;
    if (metrics_.stage_write != nullptr) {
      metrics_.stage_write->Record(write_ns);
    }
    done.timeline.stage_ns[static_cast<size_t>(obs::ServeStage::kWrite)] =
        write_ns;
    const double total_seconds =
        MonotonicSeconds() - done.admitted_at_seconds;
    done.timeline.total_ns =
        total_seconds <= 0.0 ? 0
                             : static_cast<uint64_t>(total_seconds * 1e9);
    exemplars_->Offer(done.timeline);
  }
}

void NetServer::ReapDead() {
  for (uint64_t conn_id : dead_) conns_.erase(conn_id);
  dead_.clear();
}

void NetServer::WorkerThread() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] {
        return !work_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (!running_.load(std::memory_order_acquire)) return;
      item = std::move(work_.front());
      work_.pop_front();
    }

    const double popped_at_seconds = MonotonicSeconds();
    const double queue_wait_seconds =
        popped_at_seconds - item.admitted_at_seconds;
    const uint64_t queue_wait_ns =
        queue_wait_seconds <= 0.0
            ? 0
            : static_cast<uint64_t>(queue_wait_seconds * 1e9);

    Frame reply;
    reply.request_id = item.request_id;
    uint64_t decode_ns = 0;
    uint64_t encode_ns = 0;  // payload + frame encode, summed
    uint64_t lookup_ns = 0;
    uint64_t topk_ns = 0;

    const uint64_t decode_start_ns = stage_timing_ ? obs::Tracer::NowNs() : 0;
    Result<QueryRequest> request = DecodeQueryRequest(item.payload);
    if (stage_timing_) decode_ns = obs::Tracer::NowNs() - decode_start_ns;
    if (!request.ok()) {
      if (metrics_.bad_requests != nullptr) metrics_.bad_requests->Add(1);
      NackInfo nack;
      nack.reason = NackReason::kBadRequest;
      nack.message = request.status().message();
      reply.type = FrameType::kNack;
      reply.payload = EncodeNack(nack);
    } else {
      Result<QueryResult> result = service_->Query(*request);
      if (!result.ok()) {
        if (metrics_.bad_requests != nullptr) metrics_.bad_requests->Add(1);
        NackInfo nack;
        nack.reason = result.status().code() == StatusCode::kNotFound
                          ? NackReason::kStaleSnapshot
                          : NackReason::kBadRequest;
        nack.retry_after_ms = options_.admission.retry_after_ms;
        nack.message = result.status().message();
        reply.type = FrameType::kNack;
        reply.payload = EncodeNack(nack);
      } else {
        // The service's own stages feed the /tracez timeline; the client
        // only sees them (plus the transport stages known pre-encode)
        // when it opted in via the request's trace bit.
        for (const StageSample& stage : result->stages) {
          if (stage.stage ==
              static_cast<uint32_t>(obs::ServeStage::kSnapshotLookup)) {
            lookup_ns = stage.ns;
          } else if (stage.stage ==
                     static_cast<uint32_t>(obs::ServeStage::kTopK)) {
            topk_ns = stage.ns;
          }
        }
        if (request->trace) {
          result->stages.push_back(StageSample{
              static_cast<uint32_t>(obs::ServeStage::kDecode), decode_ns});
          result->stages.push_back(
              StageSample{static_cast<uint32_t>(obs::ServeStage::kAdmission),
                          item.admission_ns});
          result->stages.push_back(
              StageSample{static_cast<uint32_t>(obs::ServeStage::kQueueWait),
                          queue_wait_ns});
        } else {
          result->stages.clear();
        }
        reply.type = FrameType::kResult;
        const uint64_t encode_start_ns =
            stage_timing_ ? obs::Tracer::NowNs() : 0;
        reply.payload = EncodeQueryResult(*result);
        if (stage_timing_) {
          encode_ns = obs::Tracer::NowNs() - encode_start_ns;
        }
      }
    }

    Completion done;
    done.conn_id = item.conn_id;
    const uint64_t frame_start_ns = stage_timing_ ? obs::Tracer::NowNs() : 0;
    done.bytes = EncodeFrame(reply);
    if (stage_timing_) {
      encode_ns += obs::Tracer::NowNs() - frame_start_ns;
      if (metrics_.stage_decode != nullptr) {
        metrics_.stage_decode->Record(decode_ns);
        metrics_.stage_queue_wait->Record(queue_wait_ns);
        metrics_.stage_encode->Record(encode_ns);
      }
      done.timed = true;
      done.admitted_at_seconds = item.admitted_at_seconds;
      obs::RequestTimeline& timeline = done.timeline;
      timeline.request_id = item.request_id;
      auto slot = [&timeline](obs::ServeStage stage) -> uint64_t& {
        return timeline.stage_ns[static_cast<size_t>(stage)];
      };
      slot(obs::ServeStage::kDecode) = decode_ns;
      slot(obs::ServeStage::kAdmission) = item.admission_ns;
      slot(obs::ServeStage::kQueueWait) = queue_wait_ns;
      slot(obs::ServeStage::kSnapshotLookup) = lookup_ns;
      slot(obs::ServeStage::kTopK) = topk_ns;
      slot(obs::ServeStage::kEncode) = encode_ns;
    }
    request_latency_.Record(MonotonicSeconds() - item.admitted_at_seconds);
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(done));
    }
    Wakeup();
  }
}

}  // namespace net
}  // namespace streamlink

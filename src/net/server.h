#ifndef STREAMLINK_NET_SERVER_H_
#define STREAMLINK_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/admission.h"
#include "net/frame.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/query_service.h"
#include "util/status.h"

namespace streamlink {
namespace net {

// The network serving front end (docs/net.md): one epoll edge-triggered
// event-loop thread owns the listener and every connection socket;
// admitted query frames go through a bounded work queue to a small pool
// of worker threads that decode, run QueryService::Query, and encode the
// response. Workers never touch sockets — completions come back to the
// loop thread over an eventfd, which is what keeps the whole server a
// single-writer-per-socket design (and TSan-clean). Admission control
// (net/admission.h) runs on the loop thread before anything is queued,
// so overload is shed with a ~100-byte NACK instead of queue growth.

/// The live introspection plane: a second listener on the same event loop
/// answering minimal HTTP/1.0 GETs with text — `/metrics` (Prometheus
/// scrape; `/metrics.json` for the JSON dump format), `/healthz`
/// (liveness + snapshot-staleness readiness), `/statusz` (uptime,
/// predictor, snapshot, connection and admission counts), and `/tracez`
/// (slowest-request stage timelines). See docs/observability.md.
struct AdminPlaneOptions {
  bool enabled = false;
  /// Admin listen address. Port 0 picks an ephemeral port (read it back
  /// from admin_port() after Start).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// /healthz readiness bounds; 0 falls back to the service's own
  /// staleness options (QueryServiceOptions), so by default /healthz
  /// agrees with admission control about what "fresh enough" means.
  uint64_t healthz_max_staleness_edges = 0;
  double healthz_max_age_seconds = 0.0;
  /// Slots in the slowest-request exemplar ring behind /tracez.
  size_t tracez_slots = 32;
  /// Optional hot-key sampler surfaced in /statusz (not owned).
  const obs::KeyFrequencyTopK* key_sampler = nullptr;
  /// Hot keys shown in /statusz when a sampler is bound.
  size_t statusz_hot_keys = 8;
};

struct NetServerOptions {
  /// Listen address; only numeric IPv4 is supported. Port 0 picks an
  /// ephemeral port (read it back from port() after Start).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t workers = 2;
  AdmissionPolicy admission;
  /// Frames advertising a larger payload are a protocol error.
  size_t max_payload_bytes = 1u << 20;
  /// A connection whose unsent responses exceed this is closed as a slow
  /// reader — the server never buffers without bound on its side either.
  size_t max_outbox_bytes = 8u << 20;
  /// Optional registry for the net.* metric family (docs/observability.md).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional admin/introspection listener.
  AdminPlaneOptions admin;
};

class NetServer {
 public:
  NetServer() = default;
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spins up the loop + worker threads. The service
  /// must outlive the server. Fails if already started or the socket
  /// can't be bound.
  Status Start(const QueryService& service, NetServerOptions options);

  /// Stops accepting, closes every connection, joins all threads.
  /// Queued-but-unserved requests are dropped (their clients see EOF).
  /// Safe to call twice; called by the destructor.
  void Stop();

  /// The bound port (useful with options.port == 0). 0 before Start.
  uint16_t port() const { return port_; }

  /// The bound admin port; 0 when the admin plane is disabled.
  uint16_t admin_port() const { return admin_port_; }

  /// The slowest-request exemplar ring behind /tracez (always present
  /// after Start; only fed while stage timing is on — metrics bound or
  /// admin plane enabled).
  const obs::ExemplarRing* exemplars() const { return exemplars_.get(); }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    /// Bytes queued to this socket; [sent_, size) is still unsent.
    std::string outbox;
    size_t sent = 0;
    /// Queries handed to workers and not yet completed. A closed conn
    /// with in-flight work lingers (fd == -1) until they drain so late
    /// completions have somewhere to be dropped.
    uint32_t in_flight = 0;
    bool closed = false;
    /// Admin-plane connection: bytes are an HTTP request head, not
    /// frames. Answered once and closed after the response flushes.
    bool admin = false;
    bool close_after_flush = false;
    std::string http_in;
  };

  struct WorkItem {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    std::string payload;
    double admitted_at_seconds = 0.0;
    uint64_t admission_ns = 0;  // admission-decision time (loop thread)
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;  // a fully encoded frame
    /// Stage timeline carried to the loop thread, which stamps the write
    /// stage and offers the finished timeline to the exemplar ring.
    bool timed = false;
    double admitted_at_seconds = 0.0;
    obs::RequestTimeline timeline;
  };

  void LoopThread();
  void WorkerThread();
  void HandleAccept(int listen_fd, bool admin);
  void HandleReadable(uint64_t conn_id, Conn& conn);
  void HandleAdminReadable(uint64_t conn_id, Conn& conn);
  void HandleWritable(uint64_t conn_id, Conn& conn);
  void OnFrame(uint64_t conn_id, Conn& conn, Frame frame);
  void QueueToConn(uint64_t conn_id, Conn& conn, std::string bytes);
  void FlushConn(uint64_t conn_id, Conn& conn);
  void CloseConn(uint64_t conn_id, Conn& conn);
  void DrainCompletions();
  void ReapDead();
  void Wakeup();

  /// Opens, binds, and listens a non-blocking TCP socket; on success
  /// stores the fd in `*fd_out` and the bound port in `*port_out`.
  Status OpenListener(const std::string& host, uint16_t port, int* fd_out,
                      uint16_t* port_out);

  /// Routes an admin GET path to a full HTTP response. Loop thread only
  /// (reads loop-owned connection state for /statusz).
  std::string AdminResponse(const std::string& path);

  const QueryService* service_ = nullptr;
  NetServerOptions options_;
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;
  double started_at_seconds_ = 0.0;
  /// Stage stamps are taken when anyone can observe them: metrics bound
  /// or the admin plane (i.e. /tracez) enabled.
  bool stage_timing_ = false;

  int listen_fd_ = -1;
  int admin_listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;

  std::atomic<bool> running_{false};
  std::thread loop_;
  std::vector<std::thread> workers_;

  // Loop-thread-only state. dead_ holds conn ids whose map entries are
  // reaped at the end of the current loop iteration (never mid-handler,
  // so Conn references stay valid for the whole event).
  std::unordered_map<uint64_t, Conn> conns_;
  std::vector<uint64_t> dead_;
  // 1 = listener tag, 2 = wakeup tag, 3 = admin listener tag
  uint64_t next_conn_id_ = 4;

  // Work queue: loop thread pushes admitted requests, workers pop.
  // queue_depth_ mirrors size() + in-service count so the admission
  // check never takes the mutex.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_;
  std::atomic<uint32_t> queue_depth_{0};

  // Completion queue: workers push, loop thread drains on wakeup.
  std::mutex done_mu_;
  std::deque<Completion> done_;

  struct Metrics {
    obs::Counter* connections = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* shed_queue_full = nullptr;
    obs::Counter* shed_stale = nullptr;
    obs::Counter* bad_requests = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Gauge* active_connections = nullptr;
    obs::Counter* admin_requests = nullptr;
    // Per-stage serve pipeline timing, serve.stage.<name>_ns — the
    // transport-side stages; the QueryService records snapshot_lookup and
    // topk itself (docs/observability.md).
    obs::Histogram* stage_decode = nullptr;
    obs::Histogram* stage_admission = nullptr;
    obs::Histogram* stage_queue_wait = nullptr;
    obs::Histogram* stage_encode = nullptr;
    obs::Histogram* stage_write = nullptr;
  } metrics_;
  /// Admission-to-response-encoded time of admitted requests, as
  /// net.request_latency_ns when a registry is bound.
  obs::LatencyHistogram request_latency_;
  /// Slowest-request timelines for /tracez; created at Start.
  std::unique_ptr<obs::ExemplarRing> exemplars_;
};

}  // namespace net
}  // namespace streamlink

#endif  // STREAMLINK_NET_SERVER_H_

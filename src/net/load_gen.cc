#include "net/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "net/client.h"
#include "util/percentile.h"
#include "util/random.h"
#include "util/timer.h"

namespace streamlink {
namespace net {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct ThreadStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t retried = 0;
  uint64_t dropped = 0;
  uint64_t errors = 0;
  uint64_t traced = 0;
  std::vector<double> latencies_us;  // from scheduled send time
  std::vector<double> service_us;    // from actual send time
  // Echoed server-side stage times (trace mode), per ServeStage, in us.
  std::array<std::vector<double>, obs::kNumServeStages> stage_us;
};

/// Offered rate (qps, per-thread) at relative time t.
double RateAt(const LoadGenOptions& options, double per_thread_qps, double t) {
  double rate = per_thread_qps;
  switch (options.shape) {
    case LoadShape::kSteady:
    case LoadShape::kHotKey:
      break;
    case LoadShape::kDiurnal:
      rate *= 1.0 + options.diurnal_swing *
                        std::sin(2.0 * kPi * t / options.duration_seconds);
      break;
    case LoadShape::kBursty:
      if (options.burst_every_seconds > 0.0 &&
          std::fmod(t, options.burst_every_seconds) <
              options.burst_length_seconds) {
        rate *= options.burst_factor;
      }
      break;
  }
  return std::max(rate, 1e-3);
}

QueryRequest BuildRequest(const LoadGenOptions& options, Rng& rng) {
  QueryRequest request;
  request.top_k = options.top_k;
  request.trace = options.trace;
  request.measures = options.measures;
  request.pairs.reserve(options.pairs_per_request);
  const bool hot = options.shape == LoadShape::kHotKey &&
                   rng.NextBernoulli(options.hot_fraction);
  const uint32_t universe =
      hot ? std::max(options.hot_keys, 2u) : std::max(options.node_universe, 2u);
  for (uint32_t i = 0; i < options.pairs_per_request; ++i) {
    QueryPair pair;
    pair.u = static_cast<uint32_t>(rng.NextBounded(universe));
    pair.v = static_cast<uint32_t>(rng.NextBounded(universe));
    if (pair.u == pair.v) pair.v = (pair.v + 1) % universe;
    request.pairs.push_back(pair);
  }
  return request;
}

void SleepUntil(double deadline_seconds) {
  const double now = MonotonicSeconds();
  if (deadline_seconds <= now) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(deadline_seconds - now));
}

void RunConnection(const LoadGenOptions& options, NetClient& client,
                   uint64_t thread_index, double start_seconds,
                   ThreadStats& stats) {
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + thread_index);
  const double per_thread_qps =
      options.target_qps / std::max(options.connections, 1u);
  double next_t = 0.0;  // scheduled send time, relative to start
  for (;;) {
    double scheduled;
    if (options.closed_loop) {
      scheduled = MonotonicSeconds();
      if (scheduled - start_seconds >= options.duration_seconds) break;
    } else {
      if (next_t >= options.duration_seconds) break;
      scheduled = start_seconds + next_t;
      SleepUntil(scheduled);
      next_t += 1.0 / RateAt(options, per_thread_qps, next_t);
    }
    QueryRequest request = BuildRequest(options, rng);
    stats.sent++;
    double sent_at = MonotonicSeconds();
    Result<CallOutcome> outcome = client.Call(request);
    if (!outcome.ok()) {
      stats.errors++;
      return;  // connection is poisoned; this thread is done
    }
    if (outcome->nacked) {
      stats.shed++;
      // Honor the NACK's backoff hint with exactly one retry; a zero hint
      // means the server said "don't" (bad request). The backoff counts
      // against this connection's schedule, so under sustained overload
      // the debt still lands in the open-loop percentiles.
      const uint32_t hint_ms = outcome->nack.retry_after_ms;
      if (hint_ms == 0) {
        stats.dropped++;
        continue;
      }
      stats.retried++;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min(hint_ms, 1000u)));
      stats.sent++;
      sent_at = MonotonicSeconds();
      outcome = client.Call(request);
      if (!outcome.ok()) {
        stats.errors++;
        return;
      }
      if (outcome->nacked) {
        stats.shed++;
        stats.dropped++;
        continue;
      }
    }
    stats.ok++;
    const double done_at = MonotonicSeconds();
    stats.latencies_us.push_back((done_at - scheduled) * 1e6);
    stats.service_us.push_back((done_at - sent_at) * 1e6);
    if (!outcome->result.stages.empty()) {
      stats.traced++;
      for (const StageSample& stage : outcome->result.stages) {
        if (stage.stage < obs::kNumServeStages) {
          stats.stage_us[stage.stage].push_back(
              static_cast<double>(stage.ns) / 1e3);
        }
      }
    }
  }
}

}  // namespace

const char* LoadShapeName(LoadShape shape) {
  switch (shape) {
    case LoadShape::kSteady:
      return "steady";
    case LoadShape::kDiurnal:
      return "diurnal";
    case LoadShape::kBursty:
      return "bursty";
    case LoadShape::kHotKey:
      return "hotkey";
  }
  return "unknown";
}

Result<LoadReport> RunLoad(const LoadGenOptions& options) {
  const uint32_t connections = std::max(options.connections, 1u);
  std::vector<std::unique_ptr<NetClient>> clients;
  clients.reserve(connections);
  for (uint32_t i = 0; i < connections; ++i) {
    auto client = std::make_unique<NetClient>();
    if (Status st = client->Connect(options.host, options.port); !st.ok()) {
      return st;
    }
    clients.push_back(std::move(client));
  }

  std::vector<ThreadStats> stats(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const double start = MonotonicSeconds();
  for (uint32_t i = 0; i < connections; ++i) {
    threads.emplace_back([&options, &clients, &stats, start, i] {
      RunConnection(options, *clients[i], i, start, stats[i]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall = MonotonicSeconds() - start;

  LoadReport report;
  std::vector<double> latencies;
  std::vector<double> service;
  for (ThreadStats& s : stats) {
    report.sent += s.sent;
    report.ok += s.ok;
    report.shed += s.shed;
    report.retried += s.retried;
    report.dropped += s.dropped;
    report.errors += s.errors;
    report.traced += s.traced;
    latencies.insert(latencies.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
    service.insert(service.end(), s.service_us.begin(), s.service_us.end());
  }
  report.wall_seconds = wall;
  report.achieved_qps =
      wall > 0.0 ? static_cast<double>(report.ok + report.shed) / wall : 0.0;
  report.shed_rate =
      report.sent > 0
          ? static_cast<double>(report.shed) / static_cast<double>(report.sent)
          : 0.0;
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = PercentileSorted(latencies, 0.50);
  report.p90_us = PercentileSorted(latencies, 0.90);
  report.p99_us = PercentileSorted(latencies, 0.99);
  report.p999_us = PercentileSorted(latencies, 0.999);
  report.max_us = latencies.empty() ? 0.0 : latencies.back();
  double sum = 0.0;
  for (double v : latencies) sum += v;
  report.mean_us = latencies.empty() ? 0.0 : sum / latencies.size();
  std::sort(service.begin(), service.end());
  report.service_p50_us = PercentileSorted(service, 0.50);
  report.service_p99_us = PercentileSorted(service, 0.99);
  report.service_p999_us = PercentileSorted(service, 0.999);
  for (size_t i = 0; i < obs::kNumServeStages; ++i) {
    std::vector<double> merged;
    for (ThreadStats& s : stats) {
      merged.insert(merged.end(), s.stage_us[i].begin(), s.stage_us[i].end());
    }
    if (merged.empty()) continue;
    std::sort(merged.begin(), merged.end());
    double stage_sum = 0.0;
    for (double v : merged) stage_sum += v;
    report.stage_mean_us[i] = stage_sum / static_cast<double>(merged.size());
    report.stage_p99_us[i] = PercentileSorted(merged, 0.99);
  }
  return report;
}

}  // namespace net
}  // namespace streamlink

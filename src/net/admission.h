#ifndef STREAMLINK_NET_ADMISSION_H_
#define STREAMLINK_NET_ADMISSION_H_

#include <cstdint>

#include "serve/query_codec.h"
#include "serve/query_service.h"

namespace streamlink {
namespace net {

// Admission control for the network front end (docs/net.md). The policy
// is evaluated by the event-loop thread before a query frame is queued:
// a request that would make the queue deeper than `queue_capacity`, or
// that arrives while the published snapshot is outside the staleness
// bounds, is NACKed immediately (cheap: no decode, no worker dispatch)
// with a retry-after hint instead of being buffered. Shedding at the
// door keeps the queue — and therefore admitted-request latency —
// bounded no matter how far the offered load exceeds capacity.

struct AdmissionPolicy {
  /// Maximum queued-but-unserved queries across all connections. 0 never
  /// admits anything (useful for drain/shutdown states in tests).
  uint32_t queue_capacity = 64;
  /// Shed when the snapshot trails the live frontier by more than this
  /// many edges. 0 disables the staleness check.
  uint64_t max_staleness_edges = 0;
  /// Shed when the snapshot is older than this. <= 0 disables the check.
  double max_snapshot_age_seconds = 0.0;
  /// Hint clients receive in a NACK for how long to back off.
  uint32_t retry_after_ms = 50;
};

struct AdmissionDecision {
  bool admit = false;
  /// Populated when admit is false.
  NackReason reason = NackReason::kQueueFull;
  uint32_t retry_after_ms = 0;
};

/// Pure decision function: policy x (current queue depth, serve health)
/// -> admit or shed. Kept free of server state so tests can table-drive
/// it and the loop thread can call it without locks.
AdmissionDecision Admit(const AdmissionPolicy& policy, uint32_t queue_depth,
                        const ServeHealth& health);

}  // namespace net
}  // namespace streamlink

#endif  // STREAMLINK_NET_ADMISSION_H_

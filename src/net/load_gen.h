#ifndef STREAMLINK_NET_LOAD_GEN_H_
#define STREAMLINK_NET_LOAD_GEN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/exact_measures.h"
#include "obs/exemplar.h"
#include "util/status.h"

namespace streamlink {
namespace net {

// Multi-connection load generator for the net front end (docs/net.md).
// The default mode is OPEN LOOP: each connection follows a precomputed
// arrival schedule (next send time advances by 1/rate regardless of how
// the server is doing), and every request's latency is measured from its
// *scheduled* send time. When the server falls behind, waiting requests
// keep accumulating schedule debt, so queueing delay shows up in the
// percentiles instead of being silently absorbed — the coordinated-
// omission mistake a closed loop makes. Closed-loop mode (one request in
// flight per connection, fired back-to-back) is kept for comparison.

enum class LoadShape {
  kSteady,   // constant rate
  kDiurnal,  // one sinusoidal cycle over the run: rate * (1 ± swing)
  kBursty,   // steady baseline with burst_factor x windows
  kHotKey,   // steady rate; hot_fraction of requests hit a small key set
};

const char* LoadShapeName(LoadShape shape);

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t connections = 4;
  double duration_seconds = 2.0;
  /// Aggregate target across all connections (open loop only).
  double target_qps = 1000.0;
  LoadShape shape = LoadShape::kSteady;
  /// kDiurnal: rate swings between (1-swing) and (1+swing) of target.
  double diurnal_swing = 0.5;
  /// kBursty: every burst_every_seconds the rate multiplies by
  /// burst_factor for burst_length_seconds.
  double burst_factor = 4.0;
  double burst_every_seconds = 1.0;
  double burst_length_seconds = 0.25;
  /// kHotKey: this fraction of requests draws pairs from a pool of
  /// hot_keys nodes instead of the whole universe.
  double hot_fraction = 0.9;
  uint32_t hot_keys = 16;
  /// Request composition.
  uint32_t pairs_per_request = 8;
  uint32_t top_k = 0;  // 0 = score every pair
  std::vector<LinkMeasure> measures = {LinkMeasure::kJaccard};
  uint32_t node_universe = 4096;
  /// Closed loop: ignore the schedule, fire as fast as responses return.
  bool closed_loop = false;
  /// Set the codec's trace bit so the server echoes a per-stage latency
  /// breakdown in every reply (aggregated in LoadReport::stage_*).
  bool trace = false;
  uint64_t seed = 42;
};

struct LoadReport {
  uint64_t sent = 0;     // wire requests, retries included
  uint64_t ok = 0;
  uint64_t shed = 0;     // NACK responses received (retries' NACKs too)
  /// Requests retried once after a NACK's retry_after_ms hint. A retried
  /// request that succeeds counts in `ok` with latency still measured from
  /// its original schedule slot, backoff included.
  uint64_t retried = 0;
  /// Requests abandoned without an answer: NACKed again after the one
  /// retry, or NACKed with a zero hint ("don't retry").
  uint64_t dropped = 0;
  uint64_t errors = 0;   // transport/protocol failures
  double wall_seconds = 0.0;
  double achieved_qps = 0.0;   // completed (ok + shed) per second
  double shed_rate = 0.0;      // shed / sent
  // Latency of OK responses, microseconds, measured from scheduled send
  // time in open loop (actual send time in closed loop). Includes any
  // schedule debt the client accumulated waiting for earlier responses —
  // the honest, coordinated-omission-free user experience.
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
  // Same responses, measured from the actual send: time the *server*
  // spent on admitted work (queue wait + service + transport). This is
  // the number admission control bounds — under overload it stays near
  // queue_capacity x service time while the scheduled-time percentiles
  // above grow with the offered backlog.
  double service_p50_us = 0.0;
  double service_p99_us = 0.0;
  double service_p999_us = 0.0;
  // Server-side per-stage breakdown of OK responses, microseconds,
  // indexed by obs::ServeStage. Populated only when options.trace set the
  // codec's trace bit. The encode and write stages happen at/after reply
  // encoding so they cannot be echoed and stay 0 here — the server's
  // serve.stage.* histograms and /tracez carry those.
  uint64_t traced = 0;
  std::array<double, obs::kNumServeStages> stage_mean_us{};
  std::array<double, obs::kNumServeStages> stage_p99_us{};
};

/// Runs the configured load against a serving endpoint and blocks until
/// the run completes. Fails if no connection could be established.
Result<LoadReport> RunLoad(const LoadGenOptions& options);

}  // namespace net
}  // namespace streamlink

#endif  // STREAMLINK_NET_LOAD_GEN_H_

#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

namespace streamlink {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<AdminPage> FetchAdminPage(const std::string& host, uint16_t port,
                                 const std::string& path) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = ErrnoStatus("send");
    ::close(fd);
    return st;
  }
  // HTTP/1.0 with Connection: close — read to EOF.
  std::string raw;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      Status st = ErrnoStatus("recv");
      ::close(fd);
      return st;
    }
    break;  // EOF
  }
  ::close(fd);
  // "HTTP/1.0 <code> <reason>\r\n" headers... "\r\n\r\n" body.
  const size_t space = raw.find(' ');
  if (space == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::InvalidArgument("not an HTTP response");
  }
  AdminPage page;
  page.status = std::atoi(raw.c_str() + space + 1);
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::InvalidArgument("truncated HTTP response (no header end)");
  }
  page.body = raw.substr(head_end + 4);
  return page;
}

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return ErrnoStatus("socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    Close();
    return st;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  decoder_ = FrameDecoder();
  return Status::Ok();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::SendAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = ErrnoStatus("send");
    Close();
    return st;
  }
  return Status::Ok();
}

Result<Frame> NetClient::ReadReply(uint64_t request_id) {
  // The server may interleave replies to other ids ahead of ours when a
  // NACK overtakes admitted work; with one request outstanding per
  // client that cannot happen, but matching on id keeps the client
  // honest about the protocol.
  std::vector<Frame> frames;
  for (;;) {
    for (Frame& frame : frames) {
      if (frame.request_id == request_id) return std::move(frame);
    }
    frames.clear();
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::IoError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("recv");
      Close();
      return st;
    }
    if (Status st = decoder_.Feed(buf, static_cast<size_t>(n), &frames);
        !st.ok()) {
      Close();
      return st;
    }
  }
}

Result<CallOutcome> NetClient::Call(const QueryRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.request_id = next_request_id_++;
  frame.payload = EncodeQueryRequest(request);
  if (Status st = SendAll(EncodeFrame(frame)); !st.ok()) return st;
  Result<Frame> reply = ReadReply(frame.request_id);
  if (!reply.ok()) return reply.status();

  CallOutcome outcome;
  switch (reply->type) {
    case FrameType::kResult: {
      Result<QueryResult> result = DecodeQueryResult(reply->payload);
      if (!result.ok()) {
        Close();
        return result.status();
      }
      outcome.result = std::move(*result);
      return outcome;
    }
    case FrameType::kNack: {
      Result<NackInfo> nack = DecodeNack(reply->payload);
      if (!nack.ok()) {
        Close();
        return nack.status();
      }
      outcome.nacked = true;
      outcome.nack = std::move(*nack);
      return outcome;
    }
    default:
      Close();
      return Status::InvalidArgument("unexpected reply frame type");
  }
}

Status NetClient::Ping() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Frame frame;
  frame.type = FrameType::kPing;
  frame.request_id = next_request_id_++;
  if (Status st = SendAll(EncodeFrame(frame)); !st.ok()) return st;
  Result<Frame> reply = ReadReply(frame.request_id);
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kPong) {
    Close();
    return Status::InvalidArgument("expected pong");
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace streamlink

#include "net/frame.h"

#include <cstring>

#include "util/serde.h"

namespace streamlink {
namespace net {

namespace {

constexpr size_t kCheckedHeaderBytes = kFrameHeaderBytes - sizeof(uint32_t);

void PutU16(char* dst, uint16_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

void PutU32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

void PutU64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

uint32_t GetU32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

uint64_t GetU64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

uint32_t HeaderCheck(const char* header) {
  return static_cast<uint32_t>(
      Fnv1aUpdate(kFnv1aOffset, header, kCheckedHeaderBytes));
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kPong);
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out(kFrameHeaderBytes, '\0');
  PutU32(&out[0], kFrameMagic);
  out[4] = static_cast<char>(kFrameVersion);
  out[5] = static_cast<char>(frame.type);
  PutU16(&out[6], 0);  // flags
  PutU64(&out[8], frame.request_id);
  PutU32(&out[16], static_cast<uint32_t>(frame.payload.size()));
  PutU32(&out[20], HeaderCheck(out.data()));
  out.append(frame.payload);
  return out;
}

Status FrameDecoder::Feed(const void* data, size_t size,
                          std::vector<Frame>* out) {
  if (!status_.ok()) return status_;
  buffer_.append(static_cast<const char*>(data), size);
  for (;;) {
    const size_t available = buffer_.size() - head_;
    if (available < kFrameHeaderBytes) break;
    const char* header = buffer_.data() + head_;
    const uint32_t stated_check = GetU32(header + 20);
    if (stated_check != HeaderCheck(header)) {
      status_ = Status::InvalidArgument("frame header checksum mismatch");
      return status_;
    }
    // Magic/version/type/flags errors after a passing check are real
    // protocol disagreements, not line noise — report them distinctly.
    if (GetU32(header) != kFrameMagic) {
      status_ = Status::InvalidArgument("bad frame magic");
      return status_;
    }
    if (static_cast<uint8_t>(header[4]) != kFrameVersion) {
      status_ = Status::InvalidArgument(
          "unsupported frame version " +
          std::to_string(static_cast<unsigned>(header[4])));
      return status_;
    }
    const uint8_t type = static_cast<uint8_t>(header[5]);
    if (!ValidFrameType(type)) {
      status_ = Status::InvalidArgument("unknown frame type " +
                                        std::to_string(type));
      return status_;
    }
    const uint32_t payload_bytes = GetU32(header + 16);
    if (payload_bytes > options_.max_payload_bytes) {
      status_ = Status::InvalidArgument(
          "frame payload " + std::to_string(payload_bytes) +
          " bytes exceeds limit " +
          std::to_string(options_.max_payload_bytes));
      return status_;
    }
    if (available < kFrameHeaderBytes + payload_bytes) break;
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.request_id = GetU64(header + 8);
    frame.payload.assign(header + kFrameHeaderBytes, payload_bytes);
    out->push_back(std::move(frame));
    head_ += kFrameHeaderBytes + payload_bytes;
  }
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer doesn't grow with total bytes ever received.
  if (head_ > 0 && (head_ >= buffer_.size() || head_ > 64 * 1024)) {
    buffer_.erase(0, head_);
    head_ = 0;
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace streamlink

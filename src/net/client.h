#ifndef STREAMLINK_NET_CLIENT_H_
#define STREAMLINK_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "serve/query_codec.h"
#include "util/status.h"

namespace streamlink {
namespace net {

/// What one Call came back with: either an answered query or a NACK
/// (shed / rejected) carrying the server's retry hint.
struct CallOutcome {
  bool nacked = false;
  QueryResult result;  // valid when !nacked
  NackInfo nack;       // valid when nacked
};

/// One admin-plane page fetched over a one-shot HTTP/1.0 GET.
struct AdminPage {
  int status = 0;     // HTTP status code from the response line
  std::string body;   // bytes after the header block
};

/// Fetches an admin endpoint path (e.g. "/tracez") from the server's
/// admin listener. Blocking; opens and closes its own connection.
Result<AdminPage> FetchAdminPage(const std::string& host, uint16_t port,
                                 const std::string& path);

// Minimal blocking client for the net front end: one connection, one
// outstanding request at a time (the load generator multiplexes by
// opening many). Single-threaded; not safe for concurrent use.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to a numeric IPv4 host:port.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends the request and blocks for its response frame (result or
  /// NACK). Any transport or protocol failure poisons the connection.
  Result<CallOutcome> Call(const QueryRequest& request);

  /// Round-trips a ping frame (liveness / warm-up).
  Status Ping();

 private:
  Status SendAll(const std::string& bytes);
  /// Reads until the frame answering `request_id` arrives.
  Result<Frame> ReadReply(uint64_t request_id);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace streamlink

#endif  // STREAMLINK_NET_CLIENT_H_

#include "net/admission.h"

namespace streamlink {
namespace net {

AdmissionDecision Admit(const AdmissionPolicy& policy, uint32_t queue_depth,
                        const ServeHealth& health) {
  AdmissionDecision decision;
  decision.retry_after_ms = policy.retry_after_ms;
  // No snapshot at all is indistinguishable from "infinitely stale" to a
  // client; tell it to come back rather than erroring every request.
  if (!health.has_snapshot) {
    decision.reason = NackReason::kStaleSnapshot;
    return decision;
  }
  if (policy.max_staleness_edges > 0 &&
      health.staleness_edges > policy.max_staleness_edges) {
    decision.reason = NackReason::kStaleSnapshot;
    return decision;
  }
  if (policy.max_snapshot_age_seconds > 0.0 &&
      health.age_seconds > policy.max_snapshot_age_seconds) {
    decision.reason = NackReason::kStaleSnapshot;
    return decision;
  }
  if (queue_depth >= policy.queue_capacity) {
    decision.reason = NackReason::kQueueFull;
    return decision;
  }
  decision.admit = true;
  decision.retry_after_ms = 0;
  return decision;
}

}  // namespace net
}  // namespace streamlink

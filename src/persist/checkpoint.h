#ifndef STREAMLINK_PERSIST_CHECKPOINT_H_
#define STREAMLINK_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "stream/parallel_ingest.h"
#include "stream/stream_driver.h"
#include "util/status.h"

namespace streamlink {

class QueryService;

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Configuration for a checkpoint directory.
struct CheckpointOptions {
  /// Directory the checkpoints live in; created if missing.
  std::string dir;
  /// Retain the newest `keep` checkpoints (>= 1); older snapshot files are
  /// pruned after each successful write. Keeping more than one is what
  /// makes restore robust: if the newest snapshot is unreadable (partial
  /// disk, bit rot), RestoreLatest falls back to the next one.
  uint32_t keep = 3;
};

/// One durable checkpoint: a predictor snapshot tagged with the stream
/// position it corresponds to.
struct CheckpointEntry {
  /// Edges pulled from the source stream when the snapshot was taken
  /// (self-loops included — a cursor, not a simple-edge count). Resuming
  /// means skipping this many stream edges (SkipEdgeStream) and ingesting
  /// the rest into the restored predictor.
  uint64_t stream_edges = 0;
  /// The predictor's own simple-edge tally at snapshot time (informational;
  /// 0 for entries recovered by directory scan — see Open).
  uint64_t edges_processed = 0;
};

/// Periodic crash-safe checkpointing of a live predictor build, and the
/// restore side of it.
///
/// On disk a checkpoint directory holds snapshot files named
/// `ckpt-<stream_edges>.snap` (each a complete LinkPredictor::Save file:
/// envelope + payload + checksum footer, written atomically) plus a
/// MANIFEST listing the retained entries, itself rewritten through
/// WriteFileAtomic after every checkpoint. The ordering — snapshot first,
/// then manifest, then prune — means a crash at any point leaves the
/// directory restorable: at worst an unreferenced snapshot file (ignored)
/// or a pruned file the manifest no longer names (also ignored).
///
/// Writer side is single-threaded (call Write / the publishers from the
/// thread that owns the live predictor, while it is quiescent); restore is
/// read-only.
class CheckpointManager {
 public:
  /// Opens (creating if needed) a checkpoint directory and loads its
  /// entry list. A valid MANIFEST is authoritative; when it is missing or
  /// corrupt, the directory is scanned for `ckpt-*.snap` files instead
  /// (their stream positions are recovered from the filenames, so a torn
  /// manifest never strands otherwise-good snapshots).
  static Result<CheckpointManager> Open(const CheckpointOptions& options);

  CheckpointManager(CheckpointManager&&) = default;
  CheckpointManager& operator=(CheckpointManager&&) = default;

  const CheckpointOptions& options() const { return options_; }

  /// Retained checkpoints, oldest first.
  const std::vector<CheckpointEntry>& entries() const { return entries_; }

  /// Path of the snapshot file for a given stream position.
  std::string PathFor(uint64_t stream_edges) const;
  std::string ManifestPath() const;

  /// Takes one checkpoint: snapshots `predictor` (LinkPredictor::Save,
  /// atomic + checksummed) at stream position `stream_edges`, rewrites the
  /// manifest, and prunes beyond `keep`. A repeat of the newest position is
  /// a no-op (the end-of-stream publish often coincides with a cadence
  /// publish); a position older than the newest entry is InvalidArgument.
  Status Write(const LinkPredictor& predictor, uint64_t stream_edges);

  struct Restored {
    std::unique_ptr<LinkPredictor> predictor;
    CheckpointEntry entry;
    std::string path;
  };

  /// Restores the newest valid checkpoint, trying older entries when a
  /// newer one fails to load (torn, corrupt, missing) — each failure is
  /// logged, never fatal. NotFound when no entry restores.
  Result<Restored> RestoreLatest() const;

  /// The ParallelIngestOptions::on_publish hook: checkpoints every
  /// quiesced predictor the engine hands out at the engine's publish
  /// cadence. A failed write is logged as a warning and does not stop the
  /// build (the stream position is re-attempted at the next cadence).
  IngestPublishFn IngestPublisher();

  /// StreamDriver checkpoint callback that snapshots `live` at every
  /// driver checkpoint. `live` must outlive the returned callback.
  StreamDriver::CheckpointFn CheckpointPublisher(const LinkPredictor& live);

  /// Registers and maintains the `persist.*` metric family
  /// (docs/observability.md): checkpoint/restore counters and failure
  /// counters, write/restore duration histograms, and a gauge with the
  /// newest snapshot's byte size. The registry must outlive this manager;
  /// nullptr (default) disables.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  explicit CheckpointManager(CheckpointOptions options)
      : options_(std::move(options)) {}

  Status WriteManifest() const;

  /// Instruments live in the bound registry; null until BindMetrics.
  /// Mutable + raw pointers so the read-only RestoreLatest can record too.
  struct PersistMetrics {
    obs::Counter* checkpoints = nullptr;        // persist.checkpoints_total
    obs::Counter* checkpoint_failures = nullptr;
    obs::Counter* restores = nullptr;           // persist.restores_total
    obs::Counter* restore_failures = nullptr;
    obs::Gauge* checkpoint_bytes = nullptr;     // newest snapshot size
    obs::Histogram* write_ns = nullptr;         // persist.checkpoint_write_ns
    obs::Histogram* restore_ns = nullptr;       // persist.restore_ns
  };

  CheckpointOptions options_;
  std::vector<CheckpointEntry> entries_;
  PersistMetrics metrics_;
};

/// Warm-starts a query service from the newest valid checkpoint: restores
/// it, publishes it as the service's first snapshot, and returns the
/// stream position queries now reflect (the position ingestion should
/// resume from). NotFound when the directory has no restorable checkpoint.
Result<uint64_t> WarmStartFromCheckpoints(const CheckpointManager& manager,
                                          QueryService& service);

}  // namespace streamlink

#endif  // STREAMLINK_PERSIST_CHECKPOINT_H_

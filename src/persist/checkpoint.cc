#include "persist/checkpoint.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "core/predictor_factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_service.h"
#include "util/logging.h"
#include "util/serde.h"

namespace streamlink {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestKind[] = "checkpoint_manifest";
constexpr uint32_t kManifestPayloadVersion = 1;
constexpr char kSnapshotPrefix[] = "ckpt-";
constexpr char kSnapshotSuffix[] = ".snap";

std::string SnapshotName(uint64_t stream_edges) {
  return kSnapshotPrefix + std::to_string(stream_edges) + kSnapshotSuffix;
}

/// Recovers the stream position from a `ckpt-<N>.snap` filename; false for
/// anything else (including non-numeric or trailing junk).
bool ParseSnapshotName(const std::string& name, uint64_t* stream_edges) {
  const std::string prefix = kSnapshotPrefix;
  const std::string suffix = kSnapshotSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const char* first = name.data() + prefix.size();
  const char* last = name.data() + name.size() - suffix.size();
  auto [ptr, ec] = std::from_chars(first, last, *stream_edges);
  return ec == std::errc() && ptr == last;
}

Result<std::vector<CheckpointEntry>> ReadManifest(const std::string& path) {
  if (Status st = PreflightSnapshotFile(path); !st.ok()) return st;
  BinaryReader reader(path);
  auto header = ReadSnapshotHeader(reader);
  if (!header.ok()) return header.status();
  if (header->kind != kManifestKind) {
    return Status::InvalidArgument("not a checkpoint manifest (kind '" +
                                   header->kind + "')");
  }
  if (header->payload_version != kManifestPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported manifest version " +
        std::to_string(header->payload_version));
  }
  uint64_t count = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (count > (1ULL << 20)) {
    return Status::InvalidArgument("manifest entry count implausible: " +
                                   std::to_string(count));
  }
  std::vector<CheckpointEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CheckpointEntry entry;
    entry.stream_edges = reader.ReadU64();
    entry.edges_processed = reader.ReadU64();
    if (!reader.ok()) return reader.status();
    if (!entries.empty() && entry.stream_edges <= entries.back().stream_edges) {
      return Status::InvalidArgument(
          "manifest entries out of order (corrupt)");
    }
    entries.push_back(entry);
  }
  if (auto status = reader.VerifyChecksumFooter(); !status.ok()) {
    return status;
  }
  return entries;
}

/// Manifest-less recovery: every parseable `ckpt-*.snap` in the directory,
/// sorted by stream position. edges_processed is unknown here (0).
std::vector<CheckpointEntry> ScanSnapshotFiles(const std::string& dir) {
  std::vector<CheckpointEntry> entries;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t stream_edges = 0;
    if (!ParseSnapshotName(item.path().filename().string(), &stream_edges)) {
      continue;
    }
    entries.push_back(CheckpointEntry{stream_edges, 0});
  }
  std::sort(entries.begin(), entries.end(),
            [](const CheckpointEntry& a, const CheckpointEntry& b) {
              return a.stream_edges < b.stream_edges;
            });
  return entries;
}

}  // namespace

Result<CheckpointManager> CheckpointManager::Open(
    const CheckpointOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("checkpoint dir must not be empty");
  }
  if (options.keep < 1) {
    return Status::InvalidArgument("checkpoint keep must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + options.dir +
                           ": " + ec.message());
  }
  CheckpointManager manager(options);
  const std::string manifest_path = manager.ManifestPath();
  if (std::filesystem::exists(manifest_path, ec)) {
    auto entries = ReadManifest(manifest_path);
    if (entries.ok()) {
      manager.entries_ = std::move(entries).value();
      return manager;
    }
    SL_LOG(kWarning) << "checkpoint manifest " << manifest_path
                     << " unreadable (" << entries.status().ToString()
                     << "); recovering by directory scan";
  }
  manager.entries_ = ScanSnapshotFiles(options.dir);
  return manager;
}

std::string CheckpointManager::PathFor(uint64_t stream_edges) const {
  return (std::filesystem::path(options_.dir) / SnapshotName(stream_edges))
      .string();
}

std::string CheckpointManager::ManifestPath() const {
  return (std::filesystem::path(options_.dir) / kManifestName).string();
}

Status CheckpointManager::Write(const LinkPredictor& predictor,
                                uint64_t stream_edges) {
  if (!entries_.empty()) {
    uint64_t newest = entries_.back().stream_edges;
    if (stream_edges == newest) return Status();  // end-of-stream re-publish
    if (stream_edges < newest) {
      if (metrics_.checkpoint_failures != nullptr) {
        metrics_.checkpoint_failures->Add(1);
      }
      return Status::InvalidArgument(
          "checkpoint cursor moved backwards: " +
          std::to_string(stream_edges) + " after " + std::to_string(newest));
    }
  }
  obs::ScopedSpan span("persist/checkpoint");
  const std::string path = PathFor(stream_edges);
  const uint64_t t0 =
      metrics_.write_ns != nullptr ? obs::Tracer::NowNs() : 0;
  if (auto status = predictor.Save(path); !status.ok()) {
    if (metrics_.checkpoint_failures != nullptr) {
      metrics_.checkpoint_failures->Add(1);
    }
    return status;
  }
  if (metrics_.write_ns != nullptr) {
    metrics_.write_ns->Record(obs::Tracer::NowNs() - t0);
    metrics_.checkpoints->Add(1);
    std::error_code size_ec;
    const auto bytes = std::filesystem::file_size(path, size_ec);
    if (!size_ec) {
      metrics_.checkpoint_bytes->Set(static_cast<double>(bytes));
    }
  }
  entries_.push_back(
      CheckpointEntry{stream_edges, predictor.edges_processed()});
  std::vector<CheckpointEntry> pruned;
  while (entries_.size() > options_.keep) {
    pruned.push_back(entries_.front());
    entries_.erase(entries_.begin());
  }
  if (auto status = WriteManifest(); !status.ok()) return status;
  // Snapshot and manifest are durable; stale files go last, best-effort (a
  // crash before this point leaves extra files the manifest ignores).
  for (const auto& entry : pruned) {
    std::error_code ec;
    std::filesystem::remove(PathFor(entry.stream_edges), ec);
  }
  return Status();
}

Status CheckpointManager::WriteManifest() const {
  return WriteFileAtomic(ManifestPath(), [this](BinaryWriter& writer) {
    WriteSnapshotHeader(writer, kManifestKind, kManifestPayloadVersion);
    writer.WriteU64(entries_.size());
    for (const auto& entry : entries_) {
      writer.WriteU64(entry.stream_edges);
      writer.WriteU64(entry.edges_processed);
    }
    return writer.status();
  });
}

Result<CheckpointManager::Restored> CheckpointManager::RestoreLatest() const {
  obs::ScopedSpan span("persist/restore");
  const uint64_t t0 =
      metrics_.restore_ns != nullptr ? obs::Tracer::NowNs() : 0;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const std::string path = PathFor(it->stream_edges);
    auto predictor = LoadPredictorSnapshot(path);
    if (predictor.ok()) {
      Restored restored;
      restored.predictor = std::move(predictor).value();
      restored.entry = *it;
      restored.entry.edges_processed = restored.predictor->edges_processed();
      restored.path = path;
      if (metrics_.restore_ns != nullptr) {
        metrics_.restore_ns->Record(obs::Tracer::NowNs() - t0);
        metrics_.restores->Add(1);
      }
      return restored;
    }
    if (metrics_.restore_failures != nullptr) {
      metrics_.restore_failures->Add(1);
    }
    SL_LOG(kWarning) << "checkpoint " << path << " unusable ("
                     << predictor.status().ToString()
                     << "); trying an older one";
  }
  return Status::NotFound("no restorable checkpoint in " + options_.dir);
}

void CheckpointManager::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  metrics_.checkpoints = &registry->GetCounter("persist.checkpoints_total");
  metrics_.checkpoint_failures =
      &registry->GetCounter("persist.checkpoint_failures_total");
  metrics_.restores = &registry->GetCounter("persist.restores_total");
  metrics_.restore_failures =
      &registry->GetCounter("persist.restore_failures_total");
  metrics_.checkpoint_bytes =
      &registry->GetGauge("persist.checkpoint_bytes");
  metrics_.write_ns = &registry->GetHistogram("persist.checkpoint_write_ns");
  metrics_.restore_ns = &registry->GetHistogram("persist.restore_ns");
}

IngestPublishFn CheckpointManager::IngestPublisher() {
  return [this](const LinkPredictor& live, uint64_t stream_edges) {
    if (auto status = Write(live, stream_edges); !status.ok()) {
      SL_LOG(kWarning) << "checkpoint at stream edge " << stream_edges
                       << " failed: " << status.ToString();
    }
  };
}

StreamDriver::CheckpointFn CheckpointManager::CheckpointPublisher(
    const LinkPredictor& live) {
  return [this, &live](uint64_t stream_edges, double /*fraction*/) {
    if (auto status = Write(live, stream_edges); !status.ok()) {
      SL_LOG(kWarning) << "checkpoint at stream edge " << stream_edges
                       << " failed: " << status.ToString();
    }
  };
}

Result<uint64_t> WarmStartFromCheckpoints(const CheckpointManager& manager,
                                          QueryService& service) {
  auto restored = manager.RestoreLatest();
  if (!restored.ok()) return restored.status();
  if (auto status = service.Publish(*restored->predictor,
                                    restored->entry.stream_edges);
      !status.ok()) {
    return status;
  }
  service.NoteLiveEdges(restored->entry.stream_edges);
  return restored->entry.stream_edges;
}

}  // namespace streamlink

#ifndef STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_
#define STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_

// DEPRECATED. The serving layer's latency histogram is the obs
// subsystem's single histogram implementation (log2 buckets, lock-free
// concurrent recording) behind a seconds-based facade. Nothing in the
// tree constructs this alias anymore: latency tracking — including every
// net.* histogram in src/net/ — goes through obs::Histogram instances
// owned by (or registered in) a MetricsRegistry, so there is exactly one
// histogram path (docs/observability.md). The alias remains for
// out-of-tree callers of the pre-obs spelling and warns on use; it will
// be removed once the net front end's API has settled.

#include "obs/metrics.h"

namespace streamlink {

using LatencyHistogram
    [[deprecated("construct obs::LatencyHistogram and register it in a "
                 "MetricsRegistry instead (docs/observability.md)")]] =
        obs::LatencyHistogram;

}  // namespace streamlink

#endif  // STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_

#ifndef STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_
#define STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_

// The serving layer's latency histogram is the obs subsystem's single
// histogram implementation (log2 buckets, lock-free concurrent recording)
// behind a seconds-based facade. This alias keeps the pre-obs spelling —
// streamlink::LatencyHistogram — working; new code should reach for
// obs::Histogram / obs::LatencyHistogram directly and register it in a
// MetricsRegistry (docs/observability.md).

#include "obs/metrics.h"

namespace streamlink {

using LatencyHistogram = obs::LatencyHistogram;

}  // namespace streamlink

#endif  // STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_

#ifndef STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_
#define STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace streamlink {

/// Log2-bucketed latency histogram, safe for any number of concurrent
/// recorders (the QueryService reader threads) with no locking — each
/// sample is a few relaxed atomic increments. Bucket i counts samples
/// whose latency in nanoseconds lies in [2^i, 2^(i+1)); percentile reads
/// report the upper bound of the bucket holding the requested rank, so
/// estimates are within 2x of truth — the right fidelity for a serving
/// dashboard at per-sample cost independent of history length.
class LatencyHistogram {
 public:
  /// 2^47 ns ≈ 39 hours — effectively unbounded for query latencies.
  static constexpr size_t kNumBuckets = 48;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample of `seconds` wall time.
  void Record(double seconds);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double MeanMicros() const;

  /// Approximate p-quantile in microseconds, p in (0, 1]. Returns 0 when
  /// no samples were recorded. Concurrent Record calls may be partially
  /// visible; the estimate is still within one bucket of a consistent cut.
  double PercentileMicros(double p) const;

  /// Clears all counters (not intended to race with Record).
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
};

}  // namespace streamlink

#endif  // STREAMLINK_SERVE_LATENCY_HISTOGRAM_H_

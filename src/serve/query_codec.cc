#include "serve/query_codec.h"

#include <sstream>
#include <utility>

#include "util/serde.h"

namespace streamlink {

namespace {

/// The highest LinkMeasure value the codec accepts; keep in sync with the
/// enum in graph/exact_measures.h (a static_assert-able mirror would need
/// a kCount sentinel there; the decode-side range check is what matters
/// for wire safety).
constexpr uint32_t kMaxMeasureValue =
    static_cast<uint32_t>(LinkMeasure::kLeichtHolmeNewman);

void WriteEnvelope(BinaryWriter& writer, QueryMessageKind kind) {
  writer.WriteU32(kQueryMessageMagic);
  writer.WriteU32(kQueryCodecVersion);
  writer.WriteU32(static_cast<uint32_t>(kind));
}

/// Validates magic/version/kind. InvalidArgument on any mismatch.
Status ReadEnvelope(BinaryReader& reader, QueryMessageKind expected) {
  const uint32_t magic = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  if (magic != kQueryMessageMagic) {
    return Status::InvalidArgument("not a query message (bad magic)");
  }
  const uint32_t version = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  if (version != kQueryCodecVersion) {
    return Status::InvalidArgument("unsupported query codec version " +
                                   std::to_string(version));
  }
  const uint32_t kind = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  if (kind != static_cast<uint32_t>(expected)) {
    return Status::InvalidArgument("unexpected query message kind " +
                                   std::to_string(kind));
  }
  return Status::Ok();
}

/// Finishes an encode: checksum footer + the encoded bytes.
std::string Seal(BinaryWriter& writer, std::ostringstream& out) {
  writer.WriteChecksumFooter();
  return std::move(out).str();
}

}  // namespace

const char* NackReasonName(NackReason reason) {
  switch (reason) {
    case NackReason::kQueueFull:
      return "queue_full";
    case NackReason::kStaleSnapshot:
      return "stale_snapshot";
    case NackReason::kBadRequest:
      return "bad_request";
    case NackReason::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::ostringstream out;
  BinaryWriter writer(out);
  WriteEnvelope(writer, QueryMessageKind::kRequest);
  writer.WriteU32(request.top_k);
  writer.WriteU32(request.trace ? 1 : 0);
  writer.WriteU64(request.measures.size());
  for (LinkMeasure m : request.measures) {
    writer.WriteU32(static_cast<uint32_t>(m));
  }
  writer.WriteU64(request.pairs.size());
  for (const QueryPair& pair : request.pairs) {
    writer.WriteU32(pair.u);
    writer.WriteU32(pair.v);
  }
  return Seal(writer, out);
}

Result<QueryRequest> DecodeQueryRequest(std::string_view bytes) {
  std::istringstream in{std::string(bytes)};
  BinaryReader reader(in);
  if (Status st = ReadEnvelope(reader, QueryMessageKind::kRequest); !st.ok()) {
    return st;
  }
  QueryRequest request;
  request.top_k = reader.ReadU32();
  // Any non-zero value opts in; the checksum footer already rejects
  // corrupted bytes, so no range check is needed for wire safety.
  request.trace = reader.ReadU32() != 0;
  const uint64_t measures = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (measures > kMaxCodecMeasures) {
    return Status::InvalidArgument("request measure count implausible: " +
                                   std::to_string(measures));
  }
  request.measures.reserve(measures);
  for (uint64_t i = 0; i < measures; ++i) {
    const uint32_t value = reader.ReadU32();
    if (!reader.ok()) return reader.status();
    if (value > kMaxMeasureValue) {
      return Status::InvalidArgument("unknown link measure value " +
                                     std::to_string(value));
    }
    request.measures.push_back(static_cast<LinkMeasure>(value));
  }
  const uint64_t pairs = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (pairs > kMaxCodecPairs) {
    return Status::InvalidArgument("request pair count implausible: " +
                                   std::to_string(pairs));
  }
  request.pairs.reserve(pairs);
  for (uint64_t i = 0; i < pairs; ++i) {
    QueryPair pair;
    pair.u = reader.ReadU32();
    pair.v = reader.ReadU32();
    request.pairs.push_back(pair);
  }
  if (!reader.ok()) return reader.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return request;
}

std::string EncodeQueryResult(const QueryResult& result) {
  std::ostringstream out;
  BinaryWriter writer(out);
  WriteEnvelope(writer, QueryMessageKind::kResult);
  writer.WriteU64(result.meta.snapshot_version);
  writer.WriteU64(result.meta.snapshot_edges);
  writer.WriteU64(result.meta.live_edges);
  writer.WriteU64(result.meta.staleness_edges);
  writer.WriteDouble(result.meta.latency_us);
  writer.WriteU64(result.stages.size());
  for (const StageSample& stage : result.stages) {
    writer.WriteU32(stage.stage);
    writer.WriteU64(stage.ns);
  }
  writer.WriteU64(result.pairs.size());
  for (const PairResult& pr : result.pairs) {
    writer.WriteU32(pr.pair.u);
    writer.WriteU32(pr.pair.v);
    writer.WriteDouble(pr.estimate.degree_u);
    writer.WriteDouble(pr.estimate.degree_v);
    writer.WriteDouble(pr.estimate.intersection);
    writer.WriteDouble(pr.estimate.union_size);
    writer.WriteDouble(pr.estimate.jaccard);
    writer.WriteDouble(pr.estimate.adamic_adar);
    writer.WriteDouble(pr.estimate.resource_allocation);
    writer.WriteU64(pr.scores.size());
    for (double score : pr.scores) writer.WriteDouble(score);
  }
  return Seal(writer, out);
}

Result<QueryResult> DecodeQueryResult(std::string_view bytes) {
  std::istringstream in{std::string(bytes)};
  BinaryReader reader(in);
  if (Status st = ReadEnvelope(reader, QueryMessageKind::kResult); !st.ok()) {
    return st;
  }
  QueryResult result;
  result.meta.snapshot_version = reader.ReadU64();
  result.meta.snapshot_edges = reader.ReadU64();
  result.meta.live_edges = reader.ReadU64();
  result.meta.staleness_edges = reader.ReadU64();
  result.meta.latency_us = reader.ReadDouble();
  const uint64_t stages = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (stages > kMaxCodecStages) {
    return Status::InvalidArgument("result stage count implausible: " +
                                   std::to_string(stages));
  }
  result.stages.reserve(stages);
  for (uint64_t i = 0; i < stages; ++i) {
    StageSample stage;
    stage.stage = reader.ReadU32();
    stage.ns = reader.ReadU64();
    result.stages.push_back(stage);
  }
  const uint64_t pairs = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (pairs > kMaxCodecPairs) {
    return Status::InvalidArgument("result pair count implausible: " +
                                   std::to_string(pairs));
  }
  result.pairs.reserve(pairs);
  for (uint64_t i = 0; i < pairs; ++i) {
    PairResult pr;
    pr.pair.u = reader.ReadU32();
    pr.pair.v = reader.ReadU32();
    pr.estimate.degree_u = reader.ReadDouble();
    pr.estimate.degree_v = reader.ReadDouble();
    pr.estimate.intersection = reader.ReadDouble();
    pr.estimate.union_size = reader.ReadDouble();
    pr.estimate.jaccard = reader.ReadDouble();
    pr.estimate.adamic_adar = reader.ReadDouble();
    pr.estimate.resource_allocation = reader.ReadDouble();
    const uint64_t scores = reader.ReadU64();
    if (!reader.ok()) return reader.status();
    if (scores > kMaxCodecMeasures) {
      return Status::InvalidArgument("result score count implausible: " +
                                     std::to_string(scores));
    }
    pr.scores.reserve(scores);
    for (uint64_t s = 0; s < scores; ++s) {
      pr.scores.push_back(reader.ReadDouble());
    }
    result.pairs.push_back(std::move(pr));
  }
  if (!reader.ok()) return reader.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return result;
}

std::string EncodeNack(const NackInfo& nack) {
  std::ostringstream out;
  BinaryWriter writer(out);
  WriteEnvelope(writer, QueryMessageKind::kNack);
  writer.WriteU32(static_cast<uint32_t>(nack.reason));
  writer.WriteU32(nack.retry_after_ms);
  writer.WriteString(nack.message);
  return Seal(writer, out);
}

Result<NackInfo> DecodeNack(std::string_view bytes) {
  std::istringstream in{std::string(bytes)};
  BinaryReader reader(in);
  if (Status st = ReadEnvelope(reader, QueryMessageKind::kNack); !st.ok()) {
    return st;
  }
  NackInfo nack;
  const uint32_t reason = reader.ReadU32();
  if (!reader.ok()) return reader.status();
  if (reason < static_cast<uint32_t>(NackReason::kQueueFull) ||
      reason > static_cast<uint32_t>(NackReason::kShuttingDown)) {
    return Status::InvalidArgument("unknown NACK reason " +
                                   std::to_string(reason));
  }
  nack.reason = static_cast<NackReason>(reason);
  nack.retry_after_ms = reader.ReadU32();
  nack.message = reader.ReadString();
  if (!reader.ok()) return reader.status();
  if (Status st = reader.VerifyChecksumFooter(); !st.ok()) return st;
  return nack;
}

}  // namespace streamlink

#ifndef STREAMLINK_SERVE_QUERY_CODEC_H_
#define STREAMLINK_SERVE_QUERY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/query_service.h"
#include "util/status.h"

namespace streamlink {

// The transport-neutral wire codec for the serving surface: QueryRequest,
// QueryResult, and admission NACKs encode to self-contained byte strings
// that any carrier (the src/net/ frame protocol, a file, a test vector)
// can move verbatim. This is the ONE encode/decode implementation — the
// net server, the net client, the load generator, and the tests all call
// these functions; nothing else in the tree serializes these structs.
//
// Format, mirroring the SLSN snapshot discipline (util/serde.h):
//
//   u32 magic "SLQM" | u32 codec version | u32 message kind |
//   kind-specific payload | u64 FNV-1a checksum footer
//
// All fields little-endian through BinaryWriter/BinaryReader, so the wire
// bytes share the snapshot format's portability story. The checksum
// footer covers every preceding byte: decoders verify it and require the
// input to end there, so ANY single-byte flip, truncation, or trailing
// garbage is rejected with a clean Status (query_codec_test proves the
// every-flip property). Decoders also cap all counts before allocating,
// so corrupt lengths can never trigger huge allocations.

inline constexpr uint32_t kQueryMessageMagic = 0x534c514d;  // "SLQM"
/// v2 added the request trace-opt-in flag and the result's per-stage
/// latency breakdown (both sides of this tree speak v2; v1 is rejected).
inline constexpr uint32_t kQueryCodecVersion = 2;

/// Decode-side plausibility caps. Generous for real traffic, tight enough
/// that a corrupted count cannot allocate more than a few MiB.
inline constexpr uint64_t kMaxCodecPairs = 1u << 20;
inline constexpr uint64_t kMaxCodecMeasures = 64;
inline constexpr uint64_t kMaxCodecStages = 64;

enum class QueryMessageKind : uint32_t {
  kRequest = 1,
  kResult = 2,
  kNack = 3,
};

/// Why an admission controller refused a request (docs/net.md).
enum class NackReason : uint32_t {
  kQueueFull = 1,      // bounded request queue at capacity
  kStaleSnapshot = 2,  // no snapshot, or staler than the configured bound
  kBadRequest = 3,     // request decoded but was rejected by the service
  kShuttingDown = 4,   // server is stopping
};

/// Short stable name ("queue_full", ...), for logs and metrics.
const char* NackReasonName(NackReason reason);

/// The fast-NACK payload of a shed request: why, and when it is worth
/// retrying. `retry_after_ms` == 0 means "don't retry" (bad request).
struct NackInfo {
  NackReason reason = NackReason::kQueueFull;
  uint32_t retry_after_ms = 0;
  std::string message;
};

std::string EncodeQueryRequest(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequest(std::string_view bytes);

std::string EncodeQueryResult(const QueryResult& result);
Result<QueryResult> DecodeQueryResult(std::string_view bytes);

std::string EncodeNack(const NackInfo& nack);
Result<NackInfo> DecodeNack(std::string_view bytes);

}  // namespace streamlink

#endif  // STREAMLINK_SERVE_QUERY_CODEC_H_

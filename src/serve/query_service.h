#ifndef STREAMLINK_SERVE_QUERY_SERVICE_H_
#define STREAMLINK_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/link_predictor.h"
#include "core/top_k_engine.h"
#include "gen/pair_sampler.h"
#include "obs/metrics.h"
#include "serve/latency_histogram.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "stream/stream_driver.h"
#include "util/status.h"

namespace streamlink {

/// An immutable published checkpoint of a live predictor. Readers hold the
/// whole struct through one shared_ptr, so the predictor and its metadata
/// can never be observed torn.
struct ServeSnapshot {
  /// Deep clone of the live predictor at publish time (LinkPredictor::
  /// Clone). Never mutated after publish.
  std::shared_ptr<const LinkPredictor> predictor;
  /// Stream position at publish: edges pulled from the source stream
  /// (self-loops included — this is a cursor, not a simple-edge count).
  /// Replaying the first `stream_edges` stream edges sequentially
  /// reproduces this snapshot's answers bit for bit.
  uint64_t stream_edges = 0;
  /// The clone's own simple-edge tally (excludes self-loops).
  uint64_t edges_processed = 0;
  /// Monotonically increasing publish counter, starting at 1.
  uint64_t version = 0;
};

/// A batched query: score `pairs` on `measures` against the current
/// snapshot. With `top_k` > 0 the pairs are treated as candidates and only
/// the best `top_k` (ranked by `measures[0]`, which must exist) come back.
struct QueryRequest {
  std::vector<QueryPair> pairs;
  std::vector<LinkMeasure> measures;
  uint32_t top_k = 0;
};

/// One scored pair of a QueryResult; `scores` is parallel to the request's
/// `measures`. `estimate` is filled for non-top-k queries (top-k responses
/// carry scores only — candidates' estimates are transient).
struct PairResult {
  QueryPair pair;
  OverlapEstimate estimate;
  std::vector<double> scores;
};

/// Consistency metadata attached to every result: which checkpoint
/// answered, and how far the live stream had advanced past it.
struct QueryMeta {
  uint64_t snapshot_version = 0;
  uint64_t snapshot_edges = 0;   // stream position of the snapshot
  uint64_t live_edges = 0;       // stream position at query time
  uint64_t staleness_edges = 0;  // live_edges - snapshot_edges
  double latency_us = 0.0;       // this query's evaluation time
};

struct QueryResult {
  std::vector<PairResult> pairs;
  QueryMeta meta;
};

/// Serves link-prediction queries from any number of reader threads while
/// the underlying predictor is still ingesting its stream.
///
/// Consistency model (docs/serving.md): the ingest thread periodically
/// *publishes* — deep-clones the live predictor (LinkPredictor::Clone)
/// and swaps the clone into an atomic shared_ptr. Readers load the
/// pointer, never block, never observe a torn state, and every answer is
/// bit-identical to a quiescent predictor built from the stream prefix
/// the snapshot's `stream_edges` names. Staleness (how many stream edges
/// the snapshot trails the live ingest by) is reported on every result.
///
/// Wiring:
///  * sequential live predictor driven by StreamDriver — register
///    CheckpointPublisher(live) as the checkpoint callback;
///  * threaded build via ParallelIngestEngine — set
///    ParallelIngestOptions::on_publish = IngestPublisher() together with
///    a publish cadence (the engine quiesces its workers around the call);
///  * anything else — call Publish(live, position) from whichever thread
///    owns the live predictor, whenever it is quiescent.
///
/// Thread safety: Publish and NoteLiveEdges are writer-side (one ingest
/// thread at a time); snapshot/Query/TopK/stats are safe from any number
/// of concurrent threads.
class QueryService {
 public:
  QueryService() = default;
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Writer (ingest) side ---

  /// Clones `live` and publishes the clone as the new snapshot.
  /// `stream_edges` is the live stream position the clone corresponds to.
  /// FailedPrecondition if the predictor does not support Clone().
  Status Publish(const LinkPredictor& live, uint64_t stream_edges);

  /// Advances the live stream position without publishing (keeps reader
  /// staleness metadata fresh between snapshots). Normally fed by
  /// WrapStream; cheap enough to call per edge.
  void NoteLiveEdges(uint64_t stream_edges) {
    live_edges_.store(stream_edges, std::memory_order_relaxed);
  }

  /// A StreamDriver checkpoint callback that publishes `live` at every
  /// checkpoint. `live` must outlive the returned callback and be written
  /// only by the thread running the driver (checkpoints fire inline, so
  /// the predictor is quiescent during the publish). Fatal if a publish
  /// fails — pick a Clone()-capable predictor kind up front.
  StreamDriver::CheckpointFn CheckpointPublisher(const LinkPredictor& live);

  /// The ParallelIngestOptions::on_publish hook: publishes every quiesced
  /// predictor the engine hands out. Fatal on publish failure.
  IngestPublishFn IngestPublisher();

  /// Decorates `stream` so every pulled edge advances this service's live
  /// position — staleness metadata then tracks the true ingest frontier,
  /// not just the last publish. `stream` and this service must outlive the
  /// returned stream.
  std::unique_ptr<EdgeStream> WrapStream(EdgeStream& stream);

  // --- Reader side (any thread, lock-free) ---

  /// The current snapshot, or nullptr before the first publish. Holding
  /// the returned shared_ptr pins the snapshot; dropping it releases the
  /// clone once no other reader uses it.
  std::shared_ptr<const ServeSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Evaluates `request` against the current snapshot. NotFound before
  /// the first publish; InvalidArgument for top_k without measures. Each
  /// call records its latency in latency().
  Result<QueryResult> Query(const QueryRequest& request) const;

  uint64_t live_edges() const {
    return live_edges_.load(std::memory_order_relaxed);
  }
  uint64_t publish_count() const {
    return publish_count_.load(std::memory_order_relaxed);
  }
  const LatencyHistogram& latency() const { return latency_; }

  // --- Observability ---

  /// Registers this service's metrics in `registry` under the `serve.*`
  /// names (docs/observability.md): the per-request latency histogram,
  /// query/publish counters, batch-size and top-k fanout histograms, and
  /// snapshot staleness/age/version gauges (age and live-edge gauges are
  /// computed at scrape time). This service must outlive every scrape of
  /// `registry`. Call before serving starts; nullptr detaches nothing —
  /// metrics recording is a no-op until bound.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  /// Registry-resident instruments, null until BindMetrics. Updated on the
  /// query/publish paths with relaxed atomics only.
  struct ServeMetrics {
    obs::Counter* queries = nullptr;         // serve.queries_total
    obs::Counter* query_errors = nullptr;    // serve.query_errors_total
    obs::Counter* publishes = nullptr;       // serve.publishes_total
    obs::Gauge* staleness = nullptr;         // serve.snapshot_staleness_edges
    obs::Gauge* version = nullptr;           // serve.snapshot_version
    obs::Histogram* batch_pairs = nullptr;   // serve.query_batch_pairs
    obs::Histogram* topk_fanout = nullptr;   // serve.topk_fanout_candidates
  };

  std::atomic<std::shared_ptr<const ServeSnapshot>> snapshot_{};
  std::atomic<uint64_t> live_edges_{0};
  std::atomic<uint64_t> publish_count_{0};
  mutable LatencyHistogram latency_;
  ServeMetrics metrics_;
  /// Monotonic publish timestamp for the snapshot-age gauge; < 0 before
  /// the first publish.
  std::atomic<double> last_publish_seconds_{-1.0};
};

}  // namespace streamlink

#endif  // STREAMLINK_SERVE_QUERY_SERVICE_H_

#ifndef STREAMLINK_SERVE_QUERY_SERVICE_H_
#define STREAMLINK_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/link_predictor.h"
#include "core/top_k_engine.h"
#include "gen/pair_sampler.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "stream/stream_driver.h"
#include "util/status.h"

namespace streamlink {

/// An immutable published checkpoint of a live predictor. Readers hold the
/// whole struct through one shared_ptr, so the predictor and its metadata
/// can never be observed torn.
struct ServeSnapshot {
  /// Deep clone of the live predictor at publish time (LinkPredictor::
  /// Clone). Never mutated after publish.
  std::shared_ptr<const LinkPredictor> predictor;
  /// Stream position at publish: edges pulled from the source stream
  /// (self-loops included — this is a cursor, not a simple-edge count).
  /// Replaying the first `stream_edges` stream edges sequentially
  /// reproduces this snapshot's answers bit for bit.
  uint64_t stream_edges = 0;
  /// The clone's own simple-edge tally (excludes self-loops).
  uint64_t edges_processed = 0;
  /// The clone's delete tally (turnstile streams; 0 on insert-only ones).
  /// For turnstile builds `stream_edges` is an *event* cursor, so deletes
  /// advance it — and therefore count toward staleness — like inserts.
  uint64_t deletes_processed = 0;
  /// Monotonically increasing publish counter, starting at 1.
  uint64_t version = 0;
};

/// A batched query: score `pairs` on `measures` against the current
/// snapshot. With `top_k` > 0 the pairs are treated as candidates and only
/// the best `top_k` (ranked by `measures[0]`, which must exist) come back.
/// Empty `measures` / zero `top_k` fall back to the service's configured
/// defaults (QueryServiceOptions) when those are set.
struct QueryRequest {
  std::vector<QueryPair> pairs;
  std::vector<LinkMeasure> measures;
  uint32_t top_k = 0;
  /// Trace opt-in: ask the server to echo a per-stage latency breakdown in
  /// the result's `stages` (docs/observability.md). Rides the wire codec,
  /// so NetClient and the load generator can request it end to end.
  bool trace = false;
};

/// Construction-time policy of a QueryService. Prefer QueryServiceBuilder
/// over filling this by hand.
struct QueryServiceOptions {
  /// Freshness bounds consulted by transports for admission control
  /// (net::Admit, docs/net.md). Query() itself always answers — a stale
  /// answer with honest staleness metadata beats no answer in-process —
  /// but the bounds define when Health() reports the snapshot unservable.
  /// 0 disables the respective bound.
  uint64_t max_staleness_edges = 0;
  double max_snapshot_age_seconds = 0.0;
  /// Defaults filled into requests that leave the field empty/zero: the
  /// measure list every query scores, and the top-k cut applied when a
  /// request does not pick its own. Both off by default (empty / 0), so a
  /// plain QueryService behaves exactly as before.
  std::vector<LinkMeasure> default_measures;
  uint32_t default_top_k = 0;
};

/// A transport's view of snapshot freshness, used for admission control
/// and surfaced as gauges. `servable` folds the options' bounds: a
/// snapshot exists and is within both the edge-staleness and age bounds.
struct ServeHealth {
  bool has_snapshot = false;
  uint64_t staleness_edges = 0;
  double age_seconds = 0.0;
  bool servable = false;
};

/// One scored pair of a QueryResult; `scores` is parallel to the request's
/// `measures`. `estimate` is filled for non-top-k queries (top-k responses
/// carry scores only — candidates' estimates are transient).
struct PairResult {
  QueryPair pair;
  OverlapEstimate estimate;
  std::vector<double> scores;
};

/// Consistency metadata attached to every result: which checkpoint
/// answered, and how far the live stream had advanced past it.
struct QueryMeta {
  uint64_t snapshot_version = 0;
  uint64_t snapshot_edges = 0;   // stream position of the snapshot
  uint64_t live_edges = 0;       // stream position at query time
  uint64_t staleness_edges = 0;  // live_edges - snapshot_edges
  double latency_us = 0.0;       // this query's evaluation time
};

/// One stage of the serve pipeline and the nanoseconds a request spent in
/// it. `stage` is an obs::ServeStage value; kept as a raw u32 so the wire
/// codec round-trips unknown future stages untouched.
struct StageSample {
  uint32_t stage = 0;
  uint64_t ns = 0;
};

struct QueryResult {
  std::vector<PairResult> pairs;
  QueryMeta meta;
  /// Per-stage breakdown (snapshot-lookup and top-k from the service; the
  /// transport adds its own stages). Filled when the request opted into
  /// tracing or stage metrics are bound; empty otherwise.
  std::vector<StageSample> stages;
};

/// Serves link-prediction queries from any number of reader threads while
/// the underlying predictor is still ingesting its stream.
///
/// Consistency model (docs/serving.md): the ingest thread periodically
/// *publishes* — deep-clones the live predictor (LinkPredictor::Clone)
/// and swaps the clone into an atomic shared_ptr. Readers load the
/// pointer, never block, never observe a torn state, and every answer is
/// bit-identical to a quiescent predictor built from the stream prefix
/// the snapshot's `stream_edges` names. Staleness (how many stream edges
/// the snapshot trails the live ingest by) is reported on every result.
///
/// Wiring:
///  * sequential live predictor driven by StreamDriver — register
///    CheckpointPublisher(live) as the checkpoint callback;
///  * threaded build via ParallelIngestEngine — set
///    ParallelIngestOptions::on_publish = IngestPublisher() together with
///    a publish cadence (the engine quiesces its workers around the call);
///  * anything else — call Publish(live, position) from whichever thread
///    owns the live predictor, whenever it is quiescent.
///
/// Thread safety: Publish and NoteLiveEdges are writer-side (one ingest
/// thread at a time); snapshot/Query/TopK/stats are safe from any number
/// of concurrent threads.
class QueryService {
 public:
  QueryService() = default;
  explicit QueryService(QueryServiceOptions options)
      : options_(std::move(options)) {}
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Writer (ingest) side ---

  /// Clones `live` and publishes the clone as the new snapshot.
  /// `stream_edges` is the live stream position the clone corresponds to.
  /// FailedPrecondition if the predictor does not support Clone().
  Status Publish(const LinkPredictor& live, uint64_t stream_edges);

  /// Advances the live stream position without publishing (keeps reader
  /// staleness metadata fresh between snapshots). Normally fed by
  /// WrapStream; cheap enough to call per edge.
  void NoteLiveEdges(uint64_t stream_edges) {
    live_edges_.store(stream_edges, std::memory_order_relaxed);
  }

  /// A StreamDriver checkpoint callback that publishes `live` at every
  /// checkpoint. `live` must outlive the returned callback and be written
  /// only by the thread running the driver (checkpoints fire inline, so
  /// the predictor is quiescent during the publish). Fatal if a publish
  /// fails — pick a Clone()-capable predictor kind up front.
  StreamDriver::CheckpointFn CheckpointPublisher(const LinkPredictor& live);

  /// The ParallelIngestOptions::on_publish hook: publishes every quiesced
  /// predictor the engine hands out. Fatal on publish failure.
  IngestPublishFn IngestPublisher();

  /// Decorates `stream` so every pulled edge advances this service's live
  /// position — staleness metadata then tracks the true ingest frontier,
  /// not just the last publish. `stream` and this service must outlive the
  /// returned stream.
  std::unique_ptr<EdgeStream> WrapStream(EdgeStream& stream);

  /// Turnstile analogue: every pulled *event* (insert or delete) advances
  /// the live position, so deletes age a snapshot exactly like inserts.
  std::unique_ptr<OpStream> WrapStream(OpStream& stream);

  // --- Reader side (any thread, lock-free) ---

  /// The current snapshot, or nullptr before the first publish. Holding
  /// the returned shared_ptr pins the snapshot; dropping it releases the
  /// clone once no other reader uses it.
  std::shared_ptr<const ServeSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Evaluates `request` against the current snapshot. NotFound before
  /// the first publish; InvalidArgument for top_k without measures. Each
  /// call records its latency in latency().
  Result<QueryResult> Query(const QueryRequest& request) const;

  uint64_t live_edges() const {
    return live_edges_.load(std::memory_order_relaxed);
  }
  uint64_t publish_count() const {
    return publish_count_.load(std::memory_order_relaxed);
  }
  const obs::LatencyHistogram& latency() const { return latency_; }

  const QueryServiceOptions& options() const { return options_; }

  /// Snapshot freshness against the configured bounds — the signal
  /// transports (src/net/) feed into admission control. Cheap (a few
  /// relaxed atomic reads); safe from any thread.
  ServeHealth Health() const;

  // --- Observability ---

  /// Registers this service's metrics in `registry` under the `serve.*`
  /// names (docs/observability.md): the per-request latency histogram,
  /// query/publish counters, batch-size and top-k fanout histograms, and
  /// snapshot staleness/age/version gauges (age and live-edge gauges are
  /// computed at scrape time). This service must outlive every scrape of
  /// `registry`. Call before serving starts; nullptr detaches nothing —
  /// metrics recording is a no-op until bound.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Feeds every successful query's latency into `slo` (nullptr detaches).
  /// The tracker must outlive the service.
  void BindSlo(obs::SloTracker* slo) { slo_ = slo; }

  /// Offers every queried pair's endpoints to `sampler` — the observed
  /// key-frequency skew future partitioning wants (nullptr detaches). The
  /// sampler must outlive the service.
  void BindKeySampler(obs::KeyFrequencyTopK* sampler) {
    key_sampler_ = sampler;
  }

 private:
  /// Registry-resident instruments, null until BindMetrics. Updated on the
  /// query/publish paths with relaxed atomics only.
  struct ServeMetrics {
    obs::Counter* queries = nullptr;         // serve.queries_total
    obs::Counter* query_errors = nullptr;    // serve.query_errors_total
    obs::Counter* publishes = nullptr;       // serve.publishes_total
    obs::Gauge* staleness = nullptr;         // serve.snapshot_staleness_edges
    obs::Gauge* version = nullptr;           // serve.snapshot_version
    obs::Histogram* batch_pairs = nullptr;   // serve.query_batch_pairs
    obs::Histogram* topk_fanout = nullptr;   // serve.topk_fanout_candidates
    // Per-stage serve pipeline timing (docs/observability.md).
    obs::Histogram* stage_lookup = nullptr;  // serve.stage.snapshot_lookup_ns
    obs::Histogram* stage_topk = nullptr;    // serve.stage.topk_ns
  };

  QueryServiceOptions options_;
  std::atomic<std::shared_ptr<const ServeSnapshot>> snapshot_{};
  std::atomic<uint64_t> live_edges_{0};
  std::atomic<uint64_t> publish_count_{0};
  mutable obs::LatencyHistogram latency_;
  ServeMetrics metrics_;
  obs::SloTracker* slo_ = nullptr;
  obs::KeyFrequencyTopK* key_sampler_ = nullptr;
  /// Monotonic publish timestamp for the snapshot-age gauge; < 0 before
  /// the first publish.
  std::atomic<double> last_publish_seconds_{-1.0};
};

/// Fluent construction for the serving surface — the one place a service's
/// policy, instrumentation, and initial snapshot are wired, mirroring
/// IngestEngineBuilder on the ingest side:
///
///   auto service = QueryServiceBuilder()
///                      .StalenessBoundEdges(100000)
///                      .DefaultMeasures({LinkMeasure::kJaccard})
///                      .Metrics(&registry)
///                      .Build();
///
/// Build() returns the ready service (metrics bound, warm start applied,
/// initial snapshot published); construction problems surface as a Status,
/// never a half-wired service. Checkpoint warm starts go through the
/// WarmStartFrom hook, which accepts any source exposing a
/// WarmStartFromCheckpoints(source, service) overload (persist/
/// CheckpointManager) without this header depending on persist/.
class QueryServiceBuilder {
 public:
  QueryServiceBuilder() = default;

  QueryServiceBuilder& Options(QueryServiceOptions options) {
    options_ = std::move(options);
    return *this;
  }
  /// Transports shed queries once the snapshot trails the live stream by
  /// more than `edges` (0 = unbounded).
  QueryServiceBuilder& StalenessBoundEdges(uint64_t edges) {
    options_.max_staleness_edges = edges;
    return *this;
  }
  /// Transports shed queries once the snapshot is older than `seconds`
  /// (0 = unbounded).
  QueryServiceBuilder& StalenessBoundSeconds(double seconds) {
    options_.max_snapshot_age_seconds = seconds;
    return *this;
  }
  /// Measures scored for requests that don't pick their own.
  QueryServiceBuilder& DefaultMeasures(std::vector<LinkMeasure> measures) {
    options_.default_measures = std::move(measures);
    return *this;
  }
  /// Top-k cut applied to requests that don't pick their own (0 = none).
  QueryServiceBuilder& DefaultTopK(uint32_t top_k) {
    options_.default_top_k = top_k;
    return *this;
  }
  /// Binds the serve.* metric family at Build (docs/observability.md).
  /// The registry must outlive the built service; nullptr disables.
  QueryServiceBuilder& Metrics(obs::MetricsRegistry* registry) {
    metrics_ = registry;
    return *this;
  }
  /// Binds an SLO tracker fed by every successful query (nullptr skips).
  /// Must outlive the built service.
  QueryServiceBuilder& Slo(obs::SloTracker* slo) {
    slo_ = slo;
    return *this;
  }
  /// Binds a key-frequency sampler fed by every queried pair (nullptr
  /// skips). Must outlive the built service.
  QueryServiceBuilder& KeySampler(obs::KeyFrequencyTopK* sampler) {
    key_sampler_ = sampler;
    return *this;
  }
  /// Publishes a clone of `predictor` as the service's first snapshot at
  /// Build — the wiring for serving a finished build or a loaded snapshot
  /// file. `stream_edges` is the stream position the predictor reflects.
  /// The predictor only needs to outlive Build().
  QueryServiceBuilder& InitialSnapshot(const LinkPredictor& predictor,
                                       uint64_t stream_edges) {
    initial_predictor_ = &predictor;
    initial_stream_edges_ = stream_edges;
    return *this;
  }
  /// Warm-starts the service from `source`'s newest durable checkpoint at
  /// Build, before any live publish. Works for any source with a
  /// WarmStartFromCheckpoints(source, service) -> Result<uint64_t>
  /// overload (CheckpointManager). NotFound (no usable checkpoint) is a
  /// cold start, not an error. `warm_edges`, when non-null, receives the
  /// recovered stream position (0 on cold start).
  template <typename Source>
  QueryServiceBuilder& WarmStartFrom(Source& source,
                                     uint64_t* warm_edges = nullptr) {
    warm_start_ = [&source, warm_edges](QueryService& service) -> Status {
      auto warm = WarmStartFromCheckpoints(source, service);
      if (warm.ok()) {
        if (warm_edges != nullptr) *warm_edges = *warm;
        return Status::Ok();
      }
      if (warm.status().code() == StatusCode::kNotFound) {
        if (warm_edges != nullptr) *warm_edges = 0;
        return Status::Ok();
      }
      return warm.status();
    };
    return *this;
  }

  const QueryServiceOptions& options() const { return options_; }

  /// Finalizes: constructs the service, binds metrics, runs the warm
  /// start, publishes the initial snapshot.
  Result<std::unique_ptr<QueryService>> Build() const;

 private:
  QueryServiceOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SloTracker* slo_ = nullptr;
  obs::KeyFrequencyTopK* key_sampler_ = nullptr;
  const LinkPredictor* initial_predictor_ = nullptr;
  uint64_t initial_stream_edges_ = 0;
  std::function<Status(QueryService&)> warm_start_;
};

}  // namespace streamlink

#endif  // STREAMLINK_SERVE_QUERY_SERVICE_H_

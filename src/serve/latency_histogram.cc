#include "serve/latency_histogram.h"

#include <bit>
#include <cmath>

namespace streamlink {

void LatencyHistogram::Record(double seconds) {
  const uint64_t ns =
      seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
  size_t bucket = ns == 0 ? 0 : static_cast<size_t>(std::bit_width(ns)) - 1;
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
}

double LatencyHistogram::MeanMicros() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1e3;
}

double LatencyHistogram::PercentileMicros(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket i: 2^(i+1) ns.
      return std::ldexp(1.0, static_cast<int>(i) + 1) / 1e3;
    }
  }
  return std::ldexp(1.0, static_cast<int>(kNumBuckets)) / 1e3;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace streamlink

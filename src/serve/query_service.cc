#include "serve/query_service.h"

#include <utility>

#include "core/tombstone_predictor.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace streamlink {

namespace {

/// EdgeStream decorator that reports every pulled edge to a QueryService
/// (see QueryService::WrapStream). Single-threaded like any EdgeStream;
/// the service-side store is a relaxed atomic so readers may poll it.
class TappedEdgeStream : public EdgeStream {
 public:
  TappedEdgeStream(EdgeStream& inner, QueryService& service)
      : inner_(inner), service_(service) {}

  bool Next(Edge* edge) override {
    if (!inner_.Next(edge)) return false;
    service_.NoteLiveEdges(++pulled_);
    return true;
  }

  void Reset() override {
    inner_.Reset();
    pulled_ = 0;
    service_.NoteLiveEdges(0);
  }

  uint64_t SizeHint() const override { return inner_.SizeHint(); }

 private:
  EdgeStream& inner_;
  QueryService& service_;
  uint64_t pulled_ = 0;
};

/// Turnstile twin of TappedEdgeStream: one live-position tick per event.
class TappedOpStream : public OpStream {
 public:
  TappedOpStream(OpStream& inner, QueryService& service)
      : inner_(inner), service_(service) {}

  bool Next(EdgeEvent* event) override {
    if (!inner_.Next(event)) return false;
    service_.NoteLiveEdges(++pulled_);
    return true;
  }

  void Reset() override {
    inner_.Reset();
    pulled_ = 0;
    service_.NoteLiveEdges(0);
  }

  size_t SizeHint() const override { return inner_.SizeHint(); }

 private:
  OpStream& inner_;
  QueryService& service_;
  uint64_t pulled_ = 0;
};

}  // namespace

Status QueryService::Publish(const LinkPredictor& live,
                             uint64_t stream_edges) {
  std::unique_ptr<LinkPredictor> clone = live.Clone();
  if (clone == nullptr) {
    return Status::FailedPrecondition("predictor kind '" + live.name() +
                                      "' does not support Clone()");
  }
  auto snapshot = std::make_shared<ServeSnapshot>();
  snapshot->edges_processed = clone->edges_processed();
  snapshot->deletes_processed = clone->deletes_processed();
  snapshot->predictor = std::shared_ptr<const LinkPredictor>(std::move(clone));
  snapshot->stream_edges = stream_edges;
  snapshot->version = publish_count_.load(std::memory_order_relaxed) + 1;
  // The live frontier can only be at or past the publish point.
  if (stream_edges > live_edges_.load(std::memory_order_relaxed)) {
    live_edges_.store(stream_edges, std::memory_order_relaxed);
  }
  const uint64_t version = snapshot->version;
  publish_count_.store(version, std::memory_order_relaxed);
  // Release: a reader that acquires this pointer sees the fully built
  // clone and metadata.
  snapshot_.store(std::move(snapshot), std::memory_order_release);
  last_publish_seconds_.store(MonotonicSeconds(), std::memory_order_relaxed);
  if (metrics_.publishes != nullptr) metrics_.publishes->Add(1);
  if (metrics_.version != nullptr) {
    metrics_.version->Set(static_cast<double>(version));
  }
  return Status::Ok();
}

void QueryService::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->RegisterHistogram("serve.query_latency_ns", &latency_);
  metrics_.queries = &registry->GetCounter("serve.queries_total");
  metrics_.query_errors = &registry->GetCounter("serve.query_errors_total");
  metrics_.publishes = &registry->GetCounter("serve.publishes_total");
  metrics_.staleness = &registry->GetGauge("serve.snapshot_staleness_edges");
  metrics_.version = &registry->GetGauge("serve.snapshot_version");
  metrics_.batch_pairs = &registry->GetHistogram("serve.query_batch_pairs");
  metrics_.topk_fanout =
      &registry->GetHistogram("serve.topk_fanout_candidates");
  metrics_.stage_lookup =
      &registry->GetHistogram("serve.stage.snapshot_lookup_ns");
  metrics_.stage_topk = &registry->GetHistogram("serve.stage.topk_ns");
  // Scrape-time gauges: cheap reads of this service's own atomics, so the
  // exporter sees fresh values without any writer-side bookkeeping.
  registry->RegisterGaugeFn("serve.live_edges", [this] {
    return static_cast<double>(live_edges_.load(std::memory_order_relaxed));
  });
  registry->RegisterGaugeFn("serve.snapshot_age_seconds", [this] {
    const double at = last_publish_seconds_.load(std::memory_order_relaxed);
    return at < 0.0 ? 0.0 : MonotonicSeconds() - at;
  });
  // Turnstile visibility (docs/turnstile.md): deletes the published
  // predictor has processed, and the subset it could not retract — each
  // of those permanently over-counts one edge. Both read the snapshot at
  // scrape time; zero before the first publish or on insert-only kinds.
  registry->RegisterGaugeFn("turnstile.deletes_processed", [this] {
    const auto snap = snapshot();
    return snap == nullptr
               ? 0.0
               : static_cast<double>(snap->predictor->deletes_processed());
  });
  registry->RegisterGaugeFn("turnstile.unretractable_deletes", [this] {
    const auto snap = snapshot();
    if (snap == nullptr) return 0.0;
    const auto* tombstone = dynamic_cast<const TombstoneWindowPredictor*>(
        snap->predictor.get());
    return tombstone == nullptr
               ? 0.0
               : static_cast<double>(tombstone->unretractable_deletes());
  });
}

StreamDriver::CheckpointFn QueryService::CheckpointPublisher(
    const LinkPredictor& live) {
  return [this, &live](uint64_t edges, double /*fraction*/) {
    Status status = Publish(live, edges);
    SL_CHECK(status.ok()) << "checkpoint publish failed: "
                          << status.ToString();
  };
}

IngestPublishFn QueryService::IngestPublisher() {
  return [this](const LinkPredictor& live, uint64_t stream_edges) {
    Status status = Publish(live, stream_edges);
    SL_CHECK(status.ok()) << "ingest publish failed: " << status.ToString();
  };
}

std::unique_ptr<EdgeStream> QueryService::WrapStream(EdgeStream& stream) {
  return std::make_unique<TappedEdgeStream>(stream, *this);
}

std::unique_ptr<OpStream> QueryService::WrapStream(OpStream& stream) {
  return std::make_unique<TappedOpStream>(stream, *this);
}

ServeHealth QueryService::Health() const {
  ServeHealth health;
  std::shared_ptr<const ServeSnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  if (snap == nullptr) return health;  // servable stays false
  health.has_snapshot = true;
  const uint64_t live = live_edges_.load(std::memory_order_relaxed);
  health.staleness_edges =
      live > snap->stream_edges ? live - snap->stream_edges : 0;
  const double at = last_publish_seconds_.load(std::memory_order_relaxed);
  health.age_seconds = at < 0.0 ? 0.0 : MonotonicSeconds() - at;
  health.servable =
      (options_.max_staleness_edges == 0 ||
       health.staleness_edges <= options_.max_staleness_edges) &&
      (options_.max_snapshot_age_seconds <= 0.0 ||
       health.age_seconds <= options_.max_snapshot_age_seconds);
  return health;
}

Result<std::unique_ptr<QueryService>> QueryServiceBuilder::Build() const {
  auto service = std::make_unique<QueryService>(options_);
  service->BindMetrics(metrics_);
  service->BindSlo(slo_);
  service->BindKeySampler(key_sampler_);
  if (warm_start_) {
    if (Status st = warm_start_(*service); !st.ok()) return st;
  }
  if (initial_predictor_ != nullptr) {
    if (Status st =
            service->Publish(*initial_predictor_, initial_stream_edges_);
        !st.ok()) {
      return st;
    }
  }
  return service;
}

Result<QueryResult> QueryService::Query(const QueryRequest& request) const {
  obs::ScopedSpan span("serve/query");
  WallTimer timer;
  timer.Start();
  // Stage stamps cost two extra clock reads per query; take them only when
  // someone consumes them (bound stage histograms or a trace opt-in).
  const bool timed = request.trace || metrics_.stage_lookup != nullptr;
  const uint64_t stage_start_ns = timed ? obs::Tracer::NowNs() : 0;
  std::shared_ptr<const ServeSnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  if (snap == nullptr) {
    if (metrics_.query_errors != nullptr) metrics_.query_errors->Add(1);
    return Status::NotFound("no snapshot published yet");
  }
  // Service-level defaults fill whatever the request left open.
  const std::vector<LinkMeasure>& measures =
      request.measures.empty() && !options_.default_measures.empty()
          ? options_.default_measures
          : request.measures;
  const uint32_t top_k =
      request.top_k == 0 ? options_.default_top_k : request.top_k;
  if (top_k > 0 && measures.empty()) {
    if (metrics_.query_errors != nullptr) metrics_.query_errors->Add(1);
    return Status::InvalidArgument(
        "top_k queries need at least one measure (measures[0] ranks)");
  }
  const uint64_t lookup_end_ns = timed ? obs::Tracer::NowNs() : 0;

  QueryResult result;
  if (top_k > 0) {
    TopKEngine engine(*snap->predictor, measures[0]);
    std::vector<MultiScoredPair> winners =
        engine.TopKScored(request.pairs, measures, top_k);
    result.pairs.reserve(winners.size());
    for (auto& w : winners) {
      PairResult pr;
      pr.pair = w.pair;
      pr.scores = std::move(w.scores);
      result.pairs.push_back(std::move(pr));
    }
  } else {
    result.pairs.reserve(request.pairs.size());
    for (const QueryPair& pair : request.pairs) {
      PairResult pr;
      pr.pair = pair;
      pr.estimate = snap->predictor->EstimateOverlap(pair.u, pair.v);
      pr.scores.reserve(measures.size());
      for (LinkMeasure m : measures) {
        pr.scores.push_back(MeasureFromEstimate(m, pr.estimate));
      }
      result.pairs.push_back(std::move(pr));
    }
  }

  result.meta.snapshot_version = snap->version;
  result.meta.snapshot_edges = snap->stream_edges;
  result.meta.live_edges = live_edges_.load(std::memory_order_relaxed);
  // A racing publish can briefly leave live behind this snapshot; clamp so
  // staleness never underflows.
  result.meta.staleness_edges =
      result.meta.live_edges > result.meta.snapshot_edges
          ? result.meta.live_edges - result.meta.snapshot_edges
          : 0;
  if (timed) {
    const uint64_t score_end_ns = obs::Tracer::NowNs();
    const uint64_t lookup_ns = lookup_end_ns - stage_start_ns;
    const uint64_t score_ns = score_end_ns - lookup_end_ns;
    if (metrics_.stage_lookup != nullptr) {
      metrics_.stage_lookup->Record(lookup_ns);
      metrics_.stage_topk->Record(score_ns);
    }
    result.stages.push_back(StageSample{
        static_cast<uint32_t>(obs::ServeStage::kSnapshotLookup), lookup_ns});
    result.stages.push_back(StageSample{
        static_cast<uint32_t>(obs::ServeStage::kTopK), score_ns});
  }

  const double seconds = timer.Seconds();
  result.meta.latency_us = seconds * 1e6;
  latency_.Record(seconds);
  if (slo_ != nullptr) {
    slo_->Record(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }
  if (key_sampler_ != nullptr && !request.pairs.empty()) {
    std::vector<uint64_t> keys;
    keys.reserve(request.pairs.size() * 2);
    for (const QueryPair& pair : request.pairs) {
      keys.push_back(pair.u);
      keys.push_back(pair.v);
    }
    key_sampler_->OfferBatch(keys.data(), keys.size());
  }
  if (metrics_.queries != nullptr) {
    metrics_.queries->Add(1);
    metrics_.staleness->Set(
        static_cast<double>(result.meta.staleness_edges));
    metrics_.batch_pairs->Record(request.pairs.size());
    if (top_k > 0) {
      metrics_.topk_fanout->Record(request.pairs.size());
    }
  }
  return result;
}

}  // namespace streamlink

#if defined(__SANITIZE_THREAD__)
// libstdc++-12's std::atomic<std::shared_ptr<T>> (_Sp_atomic) guards its
// plain _M_ptr member with a spin lock bit inside an atomic word. lock()
// acquires via CAS, but load() releases with a *relaxed* fetch_sub, so there
// is no release edge from a reader's unlock to the next writer's lock and
// TSAN flags the _M_ptr read/write pair as unsynchronized. The lock bit does
// mutually exclude them; the report is a library-internal false positive
// (both stacks sit entirely inside shared_ptr_atomic.h, which the pattern
// below matches — races in streamlink code remain visible).
//
// The hook lives in this TU, not a separate file, because sanitized test
// binaries link streamlink as static archives: a TU defining only this
// weakly-referenced hook would never be pulled out of the archive, while any
// binary that can trip the false positive necessarily links query_service.o
// (the only user of std::atomic<std::shared_ptr>).
extern "C" const char* __tsan_default_suppressions() {
  return "race:bits/shared_ptr_atomic.h\n";
}
#endif  // __SANITIZE_THREAD__

#include "cli/commands.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <ostream>
#include <thread>

#include "core/exact_predictor.h"
#include "core/predictor_factory.h"
#include "core/top_k_engine.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "graph/edge_list_io.h"
#include "graph/graph_stats.h"
#include "net/client.h"
#include "net/load_gen.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/proc_stats.h"
#include "obs/slo.h"
#include "obs/stats_reporter.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "serve/query_service.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace streamlink {

namespace {

/// Parses "u:v,u:v,..." into query pairs.
Result<std::vector<QueryPair>> ParsePairs(const std::string& text) {
  std::vector<QueryPair> pairs;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad pair (want u:v): '" + token + "'");
    }
    char* end = nullptr;
    unsigned long u = std::strtoul(token.c_str(), &end, 10);
    unsigned long v = std::strtoul(token.c_str() + colon + 1, &end, 10);
    pairs.push_back(QueryPair{static_cast<VertexId>(u),
                              static_cast<VertexId>(v)});
    pos = comma + 1;
  }
  if (pairs.empty()) return Status::InvalidArgument("no pairs given");
  return pairs;
}

Result<LinkMeasure> ParseMeasure(const std::string& name) {
  for (LinkMeasure m : AllLinkMeasures()) {
    if (name == LinkMeasureName(m)) return m;
  }
  return Status::InvalidArgument("unknown measure: " + name);
}

/// Builds a predictor from the edges with `config.threads` ingestion
/// workers (sequentially when threads == 1), honoring the shared ingest
/// flags (--ingest-mode, --batch-edges, --ring-batches). Ordered builds
/// are bit-identical to sequential either way.
Result<std::unique_ptr<LinkPredictor>> BuildPredictor(
    const FlagParser& flags, const PredictorConfig& config,
    const EdgeList& edges) {
  IngestEngineBuilder builder(config);
  if (auto st = builder.ApplyFlags(flags); !st.ok()) return st;
  VectorEdgeStream stream(edges);
  return builder.Ingest(stream);
}

/// The shared predictor + ingest flag names plus a command's own flags,
/// for CheckUnknown.
std::vector<std::string> WithPredictorFlags(
    std::initializer_list<const char*> own) {
  std::vector<std::string> names = PredictorFlagNames();
  for (const std::string& name : IngestEngineBuilder::FlagNames()) {
    names.push_back(name);
  }
  for (const char* name : own) names.emplace_back(name);
  return names;
}

/// Appends the shared observability flag names (--metrics-out,
/// --metrics-every, --trace-out) for CheckUnknown.
std::vector<std::string> WithObsFlags(std::vector<std::string> names) {
  names.emplace_back("metrics-out");
  names.emplace_back("metrics-every");
  names.emplace_back("trace-out");
  return names;
}

/// Per-command observability wiring for the shared --metrics-out,
/// --metrics-every, and --trace-out flags: owns the command's
/// MetricsRegistry, an optional periodic StatsReporter, and the process
/// tracer's enablement. registry() is nullptr when --metrics-out is absent,
/// so instrumented subsystems skip all metric work. Call Finish at the end
/// of the command for the final dump and the Chrome trace; the destructor
/// only cleans up (stops the reporter, disables the tracer).
class ObsScope {
 public:
  ObsScope() = default;
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  ~ObsScope() {
    if (reporter_ != nullptr) reporter_->Stop();
    if (!trace_path_.empty()) obs::Tracer::Get().Disable();
  }

  Status Init(const FlagParser& flags) {
    metrics_path_ = flags.GetString("metrics-out", "");
    trace_path_ = flags.GetString("trace-out", "");
    const double every = flags.GetDouble("metrics-every", 0.0);
    if (metrics_path_.empty() && (flags.Has("metrics-every"))) {
      return Status::InvalidArgument("--metrics-every needs --metrics-out");
    }
    if (every < 0) {
      return Status::InvalidArgument("--metrics-every must be >= 0");
    }
    if (every > 0) {
      obs::StatsReporterOptions options;
      options.path = metrics_path_;
      options.period_seconds = every;
      reporter_ =
          std::make_unique<obs::StatsReporter>(registry_, std::move(options));
      if (auto st = reporter_->Start(); !st.ok()) return st;
    }
    if (!trace_path_.empty()) obs::Tracer::Get().Enable();
    return Status::Ok();
  }

  /// The registry instrumented subsystems should bind to, or nullptr when
  /// metrics were not requested.
  obs::MetricsRegistry* registry() {
    return metrics_path_.empty() ? nullptr : &registry_;
  }

  /// Final metrics dump (format by extension: .prom/.txt Prometheus text,
  /// .csv appended rows, else JSON) and Chrome trace write-out.
  Status Finish(std::ostream& out) {
    if (reporter_ != nullptr) {
      reporter_->Stop();
      reporter_.reset();
    }
    if (!metrics_path_.empty()) {
      obs::StatsReporterOptions options;
      options.path = metrics_path_;
      obs::StatsReporter final_dump(registry_, std::move(options));
      if (auto st = final_dump.WriteOnce(); !st.ok()) return st;
      out << "metrics written to " << metrics_path_ << "\n";
    }
    if (!trace_path_.empty()) {
      obs::Tracer& tracer = obs::Tracer::Get();
      if (auto st = tracer.WriteChromeTrace(trace_path_); !st.ok()) {
        return st;
      }
      tracer.Disable();
      out << "trace written to " << trace_path_
          << " (open in chrome://tracing or Perfetto)\n";
    }
    return Status::Ok();
  }

 private:
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::StatsReporter> reporter_;
  std::string metrics_path_;
  std::string trace_path_;
};

Status CmdGenerate(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"workload", "scale", "seed", "out"});
      !st.ok()) {
    return st;
  }
  std::string workload = flags.GetString("workload", "ba");
  std::string path = flags.GetString("out", "");
  if (path.empty()) return Status::InvalidArgument("--out is required");
  bool known = false;
  for (const std::string& name : StandardWorkloadNames()) {
    known = known || name == workload;
  }
  if (!known) {
    return Status::InvalidArgument("unknown workload: " + workload);
  }
  GeneratedGraph g = MakeWorkload(
      WorkloadSpec{workload, flags.GetDouble("scale", 1.0),
                   static_cast<uint64_t>(flags.GetInt("seed", 42))});
  if (auto st = WriteEdgeList(path, g.edges); !st.ok()) return st;
  out << "wrote " << g.edges.size() << " edges (" << g.num_vertices
      << " vertices) to " << path << "\n";
  return Status::Ok();
}

/// `stats --metrics FILE`: pretty-prints a JSON metrics dump written by
/// --metrics-out (the human face of the exporter round-trip).
Status CmdStatsMetrics(const std::string& path, std::ostream& out) {
  auto snapshot = obs::ReadJsonDumpFile(path);
  if (!snapshot.ok()) return snapshot.status();
  if (!snapshot->counters.empty()) {
    TablePrinter counters({"counter", "value"});
    for (const obs::CounterSample& c : snapshot->counters) {
      counters.AddRow({c.name, std::to_string(c.value)});
    }
    counters.Print(out);
  }
  if (!snapshot->gauges.empty()) {
    TablePrinter gauges({"gauge", "value"});
    for (const obs::GaugeSample& g : snapshot->gauges) {
      gauges.AddRow({g.name, TablePrinter::FormatCell(g.value)});
    }
    gauges.Print(out);
  }
  if (!snapshot->histograms.empty()) {
    TablePrinter histograms(
        {"histogram", "count", "mean", "p50", "p99", "max"});
    for (const obs::HistogramSample& h : snapshot->histograms) {
      histograms.AddRow({h.name, std::to_string(h.count),
                         TablePrinter::FormatCell(h.mean),
                         TablePrinter::FormatCell(h.p50),
                         TablePrinter::FormatCell(h.p99),
                         TablePrinter::FormatCell(h.max)});
    }
    histograms.Print(out);
  }
  if (snapshot->counters.empty() && snapshot->gauges.empty() &&
      snapshot->histograms.empty()) {
    out << "no metrics in " << path << "\n";
  }
  return Status::Ok();
}

Status CmdStats(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"input", "metrics"}); !st.ok()) return st;
  if (flags.Has("metrics")) {
    if (flags.Has("input")) {
      return Status::InvalidArgument(
          "--metrics and --input are mutually exclusive");
    }
    return CmdStatsMetrics(flags.GetString("metrics", ""), out);
  }
  std::string path = flags.GetString("input", "");
  if (path.empty()) return Status::InvalidArgument("--input is required");
  auto file = ReadEdgeList(path);
  if (!file.ok()) return file.status();
  CsrGraph graph = CsrGraph::FromEdges(file->edges, file->num_vertices);
  GraphStats stats = ComputeGraphStats(graph);
  TablePrinter table({"metric", "value"});
  table.AddRow({"vertices", std::to_string(stats.num_vertices)});
  table.AddRow({"edges", std::to_string(stats.num_edges)});
  table.AddRow({"avg_degree", TablePrinter::FormatCell(stats.avg_degree)});
  table.AddRow({"max_degree", std::to_string(stats.max_degree)});
  table.AddRow(
      {"clustering", TablePrinter::FormatCell(stats.global_clustering)});
  table.AddRow({"triangles", std::to_string(stats.num_triangles)});
  table.AddRow({"isolated", std::to_string(stats.num_isolated)});
  table.Print(out);
  return Status::Ok();
}

/// Maps the shared --checkpoint-dir/--checkpoint-keep flags onto an opened
/// CheckpointManager, or nullopt when no directory was requested.
Result<std::optional<CheckpointManager>> OpenCheckpointFlags(
    const FlagParser& flags) {
  std::string dir = flags.GetString("checkpoint-dir", "");
  if (dir.empty()) {
    if (flags.Has("checkpoint-every") || flags.Has("checkpoint-keep")) {
      return Status::InvalidArgument(
          "--checkpoint-every/--checkpoint-keep need --checkpoint-dir");
    }
    return std::optional<CheckpointManager>();
  }
  CheckpointOptions options;
  options.dir = dir;
  options.keep = static_cast<uint32_t>(flags.GetInt("checkpoint-keep", 3));
  auto manager = CheckpointManager::Open(options);
  if (!manager.ok()) return manager.status();
  return std::optional<CheckpointManager>(std::move(manager).value());
}

/// Folds a sharded build into one compact predictor where the kind merges
/// losslessly; other kinds stay as routed shard containers (both forms
/// snapshot through the same virtual Save).
std::unique_ptr<LinkPredictor> FoldForSnapshot(
    std::unique_ptr<LinkPredictor> predictor) {
  if (predictor->name().rfind("sharded:", 0) != 0) return predictor;
  auto folded = predictor->Clone();
  SL_CHECK(folded != nullptr);
  return folded;
}

Status CmdBuild(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(WithObsFlags(WithPredictorFlags(
          {"input", "snapshot", "checkpoint-dir", "checkpoint-every",
           "checkpoint-keep"})));
      !st.ok()) {
    return st;
  }
  std::string input = flags.GetString("input", "");
  std::string snapshot = flags.GetString("snapshot", "");
  if (input.empty() || snapshot.empty()) {
    return Status::InvalidArgument("--input and --snapshot are required");
  }
  ObsScope obs;
  if (auto st = obs.Init(flags); !st.ok()) return st;
  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();

  PredictorConfig defaults;
  defaults.sketch_size = 64;
  defaults.seed = 42;
  PredictorConfig config = PredictorConfigFromFlags(flags, defaults);

  auto manager = OpenCheckpointFlags(flags);
  if (!manager.ok()) return manager.status();
  IngestEngineBuilder builder(config);
  if (auto st = builder.ApplyFlags(flags); !st.ok()) return st;
  builder.Metrics(obs.registry());
  if (manager->has_value()) {
    (*manager)->BindMetrics(obs.registry());
    const uint64_t every =
        static_cast<uint64_t>(flags.GetInt("checkpoint-every", 10000));
    if (every == 0) {
      return Status::InvalidArgument("--checkpoint-every must be > 0");
    }
    builder.PublishEveryEdges(every).PublishTo(**manager);
  }

  VectorEdgeStream stream(file->edges);
  auto built = builder.Ingest(stream);
  if (!built.ok()) return built.status();
  std::unique_ptr<LinkPredictor> predictor =
      FoldForSnapshot(std::move(*built));
  if (auto st = predictor->Save(snapshot); !st.ok()) return st;
  out << "ingested " << predictor->edges_processed() << " edges over "
      << predictor->num_vertices() << " vertices";
  if (config.threads > 1) out << " (" << config.threads << " ingest threads)";
  if (manager->has_value()) {
    out << "; " << (*manager)->entries().size() << " checkpoints in "
        << (*manager)->options().dir;
  }
  out << "; snapshot (" << predictor->MemoryBytes() / 1024
      << " KiB of state) saved to " << snapshot << "\n";
  return obs.Finish(out);
}

/// Continues an interrupted `build --checkpoint-dir` run: restores the
/// newest valid checkpoint, skips the stream edges it already consumed
/// (SkipEdgeStream), ingests the remainder sequentially, and writes the
/// final snapshot — byte-identical to what the uninterrupted build would
/// have saved.
Status CmdResume(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(WithObsFlags(
          {"input", "snapshot", "checkpoint-dir", "checkpoint-every",
           "checkpoint-keep"}));
      !st.ok()) {
    return st;
  }
  std::string input = flags.GetString("input", "");
  std::string snapshot = flags.GetString("snapshot", "");
  if (input.empty() || snapshot.empty()) {
    return Status::InvalidArgument("--input and --snapshot are required");
  }
  if (flags.GetString("checkpoint-dir", "").empty()) {
    return Status::InvalidArgument("--checkpoint-dir is required");
  }
  ObsScope obs;
  if (auto st = obs.Init(flags); !st.ok()) return st;
  auto manager = OpenCheckpointFlags(flags);
  if (!manager.ok()) return manager.status();
  (*manager)->BindMetrics(obs.registry());
  auto restored = (*manager)->RestoreLatest();
  if (!restored.ok()) return restored.status();

  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();
  const uint64_t start = restored->entry.stream_edges;
  if (start > file->edges.size()) {
    return Status::InvalidArgument(
        "checkpoint is ahead of --input: cursor " + std::to_string(start) +
        ", stream has " + std::to_string(file->edges.size()) + " edges");
  }

  std::unique_ptr<LinkPredictor> predictor = std::move(restored->predictor);
  if (obs.registry() != nullptr) {
    // Edges the restored checkpoint saved this run from re-ingesting.
    obs.registry()->GetCounter("persist.resume_skipped_edges").Add(start);
  }
  SkipEdgeStream stream(std::make_unique<VectorEdgeStream>(file->edges),
                        start);
  // Keep the interrupted run's checkpoint grid: next checkpoint at the
  // next multiple of the cadence, not `start + every`.
  const uint64_t every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every", 0));
  uint64_t cursor = start;
  uint64_t next = every > 0 ? (cursor / every + 1) * every : 0;
  Edge edge;
  while (stream.Next(&edge)) {
    predictor->OnEdge(edge);
    ++cursor;
    if (every > 0 && cursor == next) {
      if (auto st = (*manager)->Write(*predictor, cursor); !st.ok()) return st;
      next += every;
    }
  }
  if (every > 0) {
    // Final checkpoint at end-of-stream (Write dedupes an exact repeat).
    if (auto st = (*manager)->Write(*predictor, cursor); !st.ok()) return st;
  }

  predictor = FoldForSnapshot(std::move(predictor));
  if (auto st = predictor->Save(snapshot); !st.ok()) return st;
  out << "resumed " << predictor->name() << " from checkpoint at stream edge "
      << start << " (" << restored->path << "); ingested " << (cursor - start)
      << " more edges to " << cursor << "; snapshot saved to " << snapshot
      << "\n";
  return obs.Finish(out);
}

Status CmdQuery(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"snapshot", "pairs", "measure"});
      !st.ok()) {
    return st;
  }
  std::string snapshot = flags.GetString("snapshot", "");
  if (snapshot.empty()) return Status::InvalidArgument("--snapshot required");
  auto pairs = ParsePairs(flags.GetString("pairs", ""));
  if (!pairs.ok()) return pairs.status();
  // Universal loader: the envelope's kind tag picks the decoder, so any
  // `build --kind ...` snapshot (including sharded containers) queries.
  auto predictor = LoadPredictorSnapshot(snapshot);
  if (!predictor.ok()) return predictor.status();

  // One overlap estimate per pair, scored on every column at once
  // (LinkPredictor::Scores); --measure appends an extra column.
  std::vector<LinkMeasure> measures = {LinkMeasure::kJaccard,
                                       LinkMeasure::kCommonNeighbors,
                                       LinkMeasure::kAdamicAdar};
  std::vector<std::string> columns = {"u", "v", "jaccard", "common",
                                      "adamic_adar"};
  if (flags.Has("measure")) {
    auto extra = ParseMeasure(flags.GetString("measure", ""));
    if (!extra.ok()) return extra.status();
    measures.push_back(*extra);
    columns.emplace_back(LinkMeasureName(*extra));
  }

  TablePrinter table(columns);
  for (const QueryPair& p : *pairs) {
    std::vector<double> scores = (*predictor)->Scores(measures, p.u, p.v);
    std::vector<std::string> row = {std::to_string(p.u), std::to_string(p.v)};
    for (double score : scores) row.push_back(TablePrinter::FormatCell(score));
    table.AddRow(std::move(row));
  }
  table.Print(out);
  return Status::Ok();
}

Status CmdTopK(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(
          WithPredictorFlags({"input", "vertex", "top", "measure"}));
      !st.ok()) {
    return st;
  }
  std::string input = flags.GetString("input", "");
  if (input.empty()) return Status::InvalidArgument("--input is required");
  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();
  auto measure = ParseMeasure(flags.GetString("measure", "adamic_adar"));
  if (!measure.ok()) return measure.status();

  VertexId vertex = static_cast<VertexId>(flags.GetInt("vertex", 0));
  if (vertex >= file->num_vertices) {
    return Status::OutOfRange("--vertex " + std::to_string(vertex) +
                              " not in graph");
  }
  PredictorConfig defaults;
  defaults.sketch_size = 128;
  defaults.seed = 42;
  PredictorConfig config = PredictorConfigFromFlags(flags, defaults);
  auto predictor = BuildPredictor(flags, config, file->edges);
  if (!predictor.ok()) return predictor.status();

  CsrGraph snapshot = CsrGraph::FromEdges(file->edges, file->num_vertices);
  auto candidates = TwoHopCandidates(snapshot, vertex);
  // Rank on the requested measure and report jaccard alongside it from the
  // same single overlap estimate per candidate (TopKScored).
  std::vector<LinkMeasure> measures = {*measure};
  const bool with_jaccard = *measure != LinkMeasure::kJaccard;
  if (with_jaccard) measures.push_back(LinkMeasure::kJaccard);
  TopKEngine engine(**predictor, *measure);
  auto top = engine.TopKScored(
      candidates, measures, static_cast<uint32_t>(flags.GetInt("top", 10)));

  std::vector<std::string> columns = {"candidate", LinkMeasureName(*measure)};
  if (with_jaccard) columns.emplace_back("jaccard");
  TablePrinter table(columns);
  for (const MultiScoredPair& s : top) {
    VertexId other = s.pair.u == vertex ? s.pair.v : s.pair.u;
    std::vector<std::string> row = {std::to_string(other)};
    for (double score : s.scores) row.push_back(TablePrinter::FormatCell(score));
    table.AddRow(std::move(row));
  }
  table.Print(out);
  return Status::Ok();
}

Status CmdCompare(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(WithPredictorFlags({"input", "pairs"}));
      !st.ok()) {
    return st;
  }
  if (flags.Has("kind")) {
    return Status::InvalidArgument(
        "compare scores every predictor kind; --kind is not accepted");
  }
  std::string input = flags.GetString("input", "");
  if (input.empty()) return Status::InvalidArgument("--input is required");
  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();

  GeneratedGraph graph;
  graph.name = input;
  graph.edges = file->edges;
  graph.num_vertices = file->num_vertices;
  CsrGraph csr = CsrGraph::FromEdges(graph.edges, graph.num_vertices);

  PredictorConfig defaults;
  defaults.sketch_size = 128;
  defaults.seed = 42;
  const PredictorConfig base = PredictorConfigFromFlags(flags, defaults);
  if (base.threads == 0) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  Rng rng(base.seed);
  auto pairs = SampleOverlappingPairs(
      csr, static_cast<uint32_t>(flags.GetInt("pairs", 500)), rng);

  TablePrinter table({"predictor", "k", "jaccard_mae", "cn_mre", "aa_mre",
                      "mbytes"});
  IngestEngineBuilder ingest_flags;
  if (auto st = ingest_flags.ApplyFlags(flags); !st.ok()) return st;
  const bool relaxed =
      ingest_flags.options().ordering == IngestOrdering::kRelaxed;
  for (const std::string& kind : PredictorKinds()) {
    if (kind == "exact" || kind == "windowed_minhash") continue;
    PredictorConfig config = base;
    config.kind = kind;
    // Kinds the requested mode cannot parallelize (no vertex sharding for
    // ordered, no lossless replica merge for relaxed) build sequentially
    // so the comparison still covers every predictor.
    if (relaxed ? !KindSupportsReplicatedMerge(kind)
                : !KindSupportsSharding(kind)) {
      config.threads = 1;
    }
    auto predictor = BuildPredictor(flags, config, graph.edges);
    if (!predictor.ok()) return predictor.status();
    ExactPredictor exact;
    FeedStream(exact, graph.edges);
    AccuracyReport report = MeasureAccuracyAgainst(**predictor, exact, pairs);
    table.AddRow(
        {kind, std::to_string(config.sketch_size),
         TablePrinter::FormatCell(report.jaccard.MeanAbsoluteError()),
         TablePrinter::FormatCell(report.common_neighbors.MeanRelativeError()),
         TablePrinter::FormatCell(report.adamic_adar.MeanRelativeError()),
         TablePrinter::FormatCell((*predictor)->MemoryBytes() / 1e6)});
  }
  table.Print(out);
  return Status::Ok();
}

/// Ingests --input on the calling thread (via ParallelIngestEngine, so
/// --threads N shards the build) while --readers query threads hammer a
/// QueryService fed by the engine's publish hook. Reports query throughput
/// and latency alongside the ingest rate — the CLI face of the serving
/// subsystem (docs/serving.md); bench_f17_serving is the scaling study.
Status CmdServeBench(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(WithObsFlags(WithPredictorFlags(
          {"input", "readers", "pairs", "publish-edges", "publish-seconds",
           "checkpoint-dir"})));
      !st.ok()) {
    return st;
  }
  std::string input = flags.GetString("input", "");
  if (input.empty()) return Status::InvalidArgument("--input is required");
  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();

  PredictorConfig defaults;
  defaults.sketch_size = 64;
  defaults.seed = 42;
  const PredictorConfig config = PredictorConfigFromFlags(flags, defaults);
  const uint32_t readers =
      static_cast<uint32_t>(flags.GetInt("readers", 4));
  if (readers == 0) return Status::InvalidArgument("--readers must be >= 1");

  // Query workload: overlapping pairs sampled from the final graph,
  // scored in fixed-size batches on two measures.
  CsrGraph csr = CsrGraph::FromEdges(file->edges, file->num_vertices);
  Rng rng(config.seed);
  QueryRequest request;
  request.pairs = SampleOverlappingPairs(
      csr, static_cast<uint32_t>(flags.GetInt("pairs", 64)), rng);
  if (request.pairs.empty()) {
    return Status::InvalidArgument("graph too small to sample query pairs");
  }
  request.measures = {LinkMeasure::kJaccard, LinkMeasure::kAdamicAdar};

  // Declared before the ObsScope on purpose: the registry's scrape-time
  // gauges call back into the service, so the ObsScope (which stops the
  // periodic scraper on destruction) must go away first.
  std::unique_ptr<QueryService> service_holder;
  ObsScope obs;
  if (auto st = obs.Init(flags); !st.ok()) return st;

  // With --checkpoint-dir, readers get answers from the newest durable
  // checkpoint before the build's first publish (warm start). An empty or
  // fully corrupt directory is not an error — the service just starts
  // cold, as without the flag.
  uint64_t warm_edges = 0;
  std::optional<CheckpointManager> manager;
  QueryServiceBuilder service_builder;
  service_builder.Metrics(obs.registry());
  std::string ckpt_dir = flags.GetString("checkpoint-dir", "");
  if (!ckpt_dir.empty()) {
    CheckpointOptions ckpt_options;
    ckpt_options.dir = ckpt_dir;
    auto opened = CheckpointManager::Open(ckpt_options);
    if (!opened.ok()) return opened.status();
    manager.emplace(std::move(*opened));
    manager->BindMetrics(obs.registry());
    service_builder.WarmStartFrom(*manager, &warm_edges);
  }
  auto built_service = service_builder.Build();
  if (!built_service.ok()) return built_service.status();
  service_holder = std::move(*built_service);
  QueryService& service = *service_holder;

  IngestEngineBuilder builder(config);
  if (auto st = builder.ApplyFlags(flags); !st.ok()) return st;
  builder.Metrics(obs.registry())
      .PublishEveryEdges(
          static_cast<uint64_t>(flags.GetInt("publish-edges", 5000)))
      .PublishEverySeconds(flags.GetDouble("publish-seconds", 0.0))
      .PublishTo(service);
  if (builder.options().publish_every_edges == 0 &&
      builder.options().publish_every_seconds <= 0) {
    return Status::InvalidArgument(
        "--publish-edges or --publish-seconds must be > 0");
  }

  std::atomic<bool> done{false};
  std::vector<uint64_t> query_counts(readers, 0);
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (uint32_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      while (!done.load(std::memory_order_acquire)) {
        auto result = service.Query(request);
        // NotFound just means the first snapshot is not out yet.
        if (result.ok()) ++query_counts[r];
      }
    });
  }

  ParallelIngestEngine engine = builder.BuildEngine();
  VectorEdgeStream raw(file->edges);
  std::unique_ptr<EdgeStream> tapped = service.WrapStream(raw);
  Stopwatch ingest_clock;
  auto built = engine.Build(*tapped);
  const double ingest_seconds = ingest_clock.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (auto& t : reader_threads) t.join();
  if (!built.ok()) return built.status();

  uint64_t queries = 0;
  for (uint64_t c : query_counts) queries += c;
  auto snap = service.snapshot();
  SL_CHECK(snap != nullptr);

  TablePrinter table({"metric", "value"});
  table.AddRow({"kind", config.kind});
  table.AddRow({"ingest_threads", std::to_string(config.threads)});
  table.AddRow({"edges", std::to_string(engine.edges_ingested())});
  table.AddRow({"ingest_eps",
                TablePrinter::FormatCell(ingest_seconds > 0
                    ? engine.edges_ingested() / ingest_seconds : 0.0)});
  table.AddRow({"publishes", std::to_string(service.publish_count())});
  table.AddRow({"warm_start_edges", std::to_string(warm_edges)});
  table.AddRow({"readers", std::to_string(readers)});
  table.AddRow({"queries", std::to_string(queries)});
  table.AddRow({"qps", TablePrinter::FormatCell(ingest_seconds > 0
                    ? queries / ingest_seconds : 0.0)});
  table.AddRow({"query_p50_us",
                TablePrinter::FormatCell(service.latency().PercentileMicros(0.5))});
  table.AddRow({"query_p99_us",
                TablePrinter::FormatCell(service.latency().PercentileMicros(0.99))});
  table.AddRow({"final_snapshot_edges", std::to_string(snap->stream_edges)});
  table.AddRow({"final_staleness",
                std::to_string(service.live_edges() - snap->stream_edges)});
  table.Print(out);
  return obs.Finish(out);
}

Status CmdNetServe(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(WithObsFlags(
          {"snapshot", "host", "port", "workers", "queue",
           "staleness-edges", "max-age", "retry-after-ms", "duration",
           "admin-port", "admin-host", "healthz-staleness-edges",
           "healthz-max-age", "tracez-slots", "slo-latency-us",
           "slo-target", "hot-keys"}));
      !st.ok()) {
    return st;
  }
  const std::string snapshot = flags.GetString("snapshot", "");
  if (snapshot.empty()) return Status::InvalidArgument("--snapshot is required");
  auto predictor = LoadPredictorSnapshot(snapshot);
  if (!predictor.ok()) return predictor.status();

  const bool admin_enabled = flags.Has("admin-port");

  // SLO tracker + hot-key sampler feed the service's query path, so they
  // must outlive the service (declared first = destroyed last).
  obs::SloOptions slo_options;
  slo_options.objective_latency_ns = static_cast<uint64_t>(
      flags.GetDouble("slo-latency-us", 5000.0) * 1000.0);
  slo_options.target = flags.GetDouble("slo-target", 0.999);
  obs::SloTracker slo(slo_options);
  obs::KeyFrequencyTopK key_sampler(
      static_cast<uint32_t>(flags.GetInt("hot-keys", 64)));

  std::unique_ptr<QueryService> service;  // outlives the ObsScope gauges
  // The admin plane needs a registry to serve /metrics even when no
  // --metrics-out dump was asked for.
  obs::MetricsRegistry standalone_registry;
  ObsScope obs;
  if (auto st = obs.Init(flags); !st.ok()) return st;
  obs::MetricsRegistry* registry = obs.registry();
  if (registry == nullptr && admin_enabled) registry = &standalone_registry;
  if (registry != nullptr) {
    obs::BindProcessMetrics(*registry);
    obs::BindTracerMetrics(*registry);
    slo.BindMetrics(*registry);
    key_sampler.BindMetrics(*registry);
  }
  auto built = QueryServiceBuilder()
                   .Metrics(registry)
                   .Slo(&slo)
                   .KeySampler(&key_sampler)
                   .InitialSnapshot(**predictor, (*predictor)->edges_processed())
                   .Build();
  if (!built.ok()) return built.status();
  service = std::move(*built);

  net::NetServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 7433));
  options.workers = static_cast<uint32_t>(flags.GetInt("workers", 2));
  options.admission.queue_capacity =
      static_cast<uint32_t>(flags.GetInt("queue", 64));
  options.admission.max_staleness_edges =
      static_cast<uint64_t>(flags.GetInt("staleness-edges", 0));
  options.admission.max_snapshot_age_seconds = flags.GetDouble("max-age", 0.0);
  options.admission.retry_after_ms =
      static_cast<uint32_t>(flags.GetInt("retry-after-ms", 50));
  options.metrics = registry;
  options.admin.enabled = admin_enabled;
  options.admin.host = flags.GetString("admin-host", "127.0.0.1");
  options.admin.port = static_cast<uint16_t>(flags.GetInt("admin-port", 0));
  options.admin.healthz_max_staleness_edges =
      static_cast<uint64_t>(flags.GetInt("healthz-staleness-edges", 0));
  options.admin.healthz_max_age_seconds =
      flags.GetDouble("healthz-max-age", 0.0);
  options.admin.tracez_slots =
      static_cast<size_t>(flags.GetInt("tracez-slots", 32));
  options.admin.key_sampler = &key_sampler;

  net::NetServer server;
  if (auto st = server.Start(*service, options); !st.ok()) return st;
  const double duration = flags.GetDouble("duration", 0.0);
  out << "serving " << (*predictor)->name() << " snapshot ("
      << (*predictor)->edges_processed() << " edges) on " << options.host
      << ":" << server.port()
      << (duration > 0 ? " for " + TablePrinter::FormatCell(duration) + "s"
                       : " until interrupted")
      << "\n";
  if (admin_enabled) {
    out << "admin plane on " << options.admin.host << ":"
        << server.admin_port()
        << " (/metrics /metrics.json /healthz /statusz /tracez)\n";
  }
  out << std::flush;
  if (duration > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(duration));
  } else {
    // No signal plumbing on purpose: the process serves until killed.
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
  server.Stop();
  return obs.Finish(out);
}

Status CmdNetAdmin(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"host", "port", "page"}); !st.ok()) {
    return st;
  }
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("--port is required (1-65535)");
  }
  std::string page = flags.GetString("page", "tracez");
  if (!page.empty() && page[0] != '/') page = "/" + page;
  auto fetched = net::FetchAdminPage(flags.GetString("host", "127.0.0.1"),
                                     static_cast<uint16_t>(port), page);
  if (!fetched.ok()) return fetched.status();
  out << fetched->body;
  if (fetched->status != 200) {
    return Status::FailedPrecondition(page + " answered HTTP " +
                                      std::to_string(fetched->status));
  }
  return Status::Ok();
}

Status CmdNetLoad(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(
          {"host", "port", "connections", "qps", "duration", "shape",
           "pairs", "top", "universe", "closed-loop", "trace", "seed"});
      !st.ok()) {
    return st;
  }
  net::LoadGenOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("--port is required (1-65535)");
  }
  options.port = static_cast<uint16_t>(port);
  options.connections = static_cast<uint32_t>(flags.GetInt("connections", 4));
  options.target_qps = flags.GetDouble("qps", 1000.0);
  options.duration_seconds = flags.GetDouble("duration", 2.0);
  options.pairs_per_request = static_cast<uint32_t>(flags.GetInt("pairs", 8));
  options.top_k = static_cast<uint32_t>(flags.GetInt("top", 0));
  options.node_universe =
      static_cast<uint32_t>(flags.GetInt("universe", 4096));
  options.closed_loop = flags.GetBool("closed-loop", false);
  options.trace = flags.GetBool("trace", false);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string shape = flags.GetString("shape", "steady");
  if (shape == "steady") {
    options.shape = net::LoadShape::kSteady;
  } else if (shape == "diurnal") {
    options.shape = net::LoadShape::kDiurnal;
  } else if (shape == "bursty") {
    options.shape = net::LoadShape::kBursty;
  } else if (shape == "hotkey") {
    options.shape = net::LoadShape::kHotKey;
  } else {
    return Status::InvalidArgument(
        "--shape must be steady|diurnal|bursty|hotkey");
  }

  auto report = net::RunLoad(options);
  if (!report.ok()) return report.status();

  TablePrinter table({"metric", "value"});
  table.AddRow({"shape", net::LoadShapeName(options.shape)});
  table.AddRow({"mode", options.closed_loop ? "closed-loop" : "open-loop"});
  table.AddRow({"connections", std::to_string(options.connections)});
  table.AddRow({"sent", std::to_string(report->sent)});
  table.AddRow({"ok", std::to_string(report->ok)});
  table.AddRow({"shed", std::to_string(report->shed)});
  table.AddRow({"retried", std::to_string(report->retried)});
  table.AddRow({"dropped", std::to_string(report->dropped)});
  table.AddRow({"errors", std::to_string(report->errors)});
  table.AddRow({"achieved_qps", TablePrinter::FormatCell(report->achieved_qps)});
  table.AddRow({"shed_rate", TablePrinter::FormatCell(report->shed_rate)});
  table.AddRow({"p50_us", TablePrinter::FormatCell(report->p50_us)});
  table.AddRow({"p90_us", TablePrinter::FormatCell(report->p90_us)});
  table.AddRow({"p99_us", TablePrinter::FormatCell(report->p99_us)});
  table.AddRow({"p999_us", TablePrinter::FormatCell(report->p999_us)});
  table.AddRow({"service_p50_us",
                TablePrinter::FormatCell(report->service_p50_us)});
  table.AddRow({"service_p99_us",
                TablePrinter::FormatCell(report->service_p99_us)});
  table.Print(out);
  if (options.trace && report->traced > 0) {
    TablePrinter stages({"stage", "mean_us", "p99_us"});
    for (size_t i = 0; i < obs::kNumServeStages; ++i) {
      // Encode/write happen at/after reply encoding and cannot be echoed;
      // skip their all-zero rows (server-side histograms carry them).
      if (report->stage_mean_us[i] == 0.0 && report->stage_p99_us[i] == 0.0) {
        continue;
      }
      stages.AddRow({obs::ServeStageName(static_cast<obs::ServeStage>(i)),
                     TablePrinter::FormatCell(report->stage_mean_us[i]),
                     TablePrinter::FormatCell(report->stage_p99_us[i])});
    }
    out << "server-side stage breakdown (" << report->traced
        << " traced responses):\n";
    stages.Print(out);
  }
  return Status::Ok();
}

}  // namespace

std::string CliUsage() {
  return
      "usage: streamlink_cli <command> [flags]\n"
      "commands:\n"
      "  generate  --workload ba|er|ws|rmat|sbm|plconfig [--scale S] "
      "[--seed N] --out FILE\n"
      "  stats     --input FILE | --metrics DUMP.json\n"
      "  build     --input FILE [--k N] [--seed N] [--threads N] "
      "--snapshot FILE\n"
      "            [--checkpoint-dir DIR [--checkpoint-every N] "
      "[--checkpoint-keep N]] [obs flags]\n"
      "  resume    --input FILE --checkpoint-dir DIR --snapshot FILE\n"
      "            [--checkpoint-every N] [--checkpoint-keep N] [obs flags]\n"
      "  query     --snapshot FILE --pairs u:v[,u:v...]\n"
      "  topk      --input FILE --vertex U [--top N] [--k N] "
      "[--measure NAME] [--threads N]\n"
      "  compare   --input FILE [--k N] [--pairs N] [--seed N] "
      "[--threads N]\n"
      "  serve-bench --input FILE [--readers N] [--pairs N] "
      "[--publish-edges N] [--publish-seconds S] [--checkpoint-dir DIR] "
      "[predictor flags] [obs flags]\n"
      "  net-serve --snapshot FILE [--host A] [--port N] [--workers N] "
      "[--queue N] [--staleness-edges N] [--max-age S] "
      "[--retry-after-ms N] [--duration S] [--admin-port N [--admin-host A] "
      "[--healthz-staleness-edges N] [--healthz-max-age S] "
      "[--tracez-slots N]] [--slo-latency-us U] [--slo-target F] "
      "[--hot-keys N] [obs flags]\n"
      "  net-load  --port N [--host A] [--connections N] [--qps R] "
      "[--duration S] [--shape steady|diurnal|bursty|hotkey] [--pairs N] "
      "[--top N] [--universe N] [--closed-loop] [--trace] [--seed N]\n"
      "  net-admin --port N [--host A] [--page metrics|metrics.json|healthz|"
      "statusz|tracez]\n"
      "obs flags (build/resume/serve-bench; docs/observability.md):\n"
      "  --metrics-out FILE   final metrics dump (.prom/.txt Prometheus "
      "text, .csv rows, else JSON)\n"
      "  --metrics-every S    also rewrite FILE every S seconds while "
      "running\n"
      "  --trace-out FILE     Chrome trace_event JSON of the run's spans\n"
      "predictor flags (build/topk/compare/serve-bench):\n" +
      PredictorFlagsHelp() +
      "ingest flags (build/topk/compare/serve-bench; "
      "docs/parallel_ingest.md):\n" +
      IngestEngineBuilder::FlagsHelp();
}

Status RunCliCommand(const std::vector<std::string>& args,
                     std::ostream& out) {
  if (args.empty()) {
    return Status::InvalidArgument("missing command\n" + CliUsage());
  }
  const std::string& command = args[0];
  FlagParser flags(std::vector<std::string>(args.begin() + 1, args.end()));
  if (command == "generate") return CmdGenerate(flags, out);
  if (command == "stats") return CmdStats(flags, out);
  if (command == "build") return CmdBuild(flags, out);
  if (command == "resume") return CmdResume(flags, out);
  if (command == "query") return CmdQuery(flags, out);
  if (command == "topk") return CmdTopK(flags, out);
  if (command == "compare") return CmdCompare(flags, out);
  if (command == "serve-bench") return CmdServeBench(flags, out);
  if (command == "net-serve") return CmdNetServe(flags, out);
  if (command == "net-load") return CmdNetLoad(flags, out);
  if (command == "net-admin") return CmdNetAdmin(flags, out);
  return Status::InvalidArgument("unknown command: " + command + "\n" +
                                 CliUsage());
}

}  // namespace streamlink

#include "cli/commands.h"

#include <ostream>

#include "core/exact_predictor.h"
#include "core/minhash_predictor.h"
#include "core/predictor_factory.h"
#include "core/sharded_predictor.h"
#include "core/top_k_engine.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "graph/edge_list_io.h"
#include "graph/graph_stats.h"
#include "stream/edge_stream.h"
#include "stream/parallel_ingest.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace streamlink {

namespace {

/// Parses "u:v,u:v,..." into query pairs.
Result<std::vector<QueryPair>> ParsePairs(const std::string& text) {
  std::vector<QueryPair> pairs;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad pair (want u:v): '" + token + "'");
    }
    char* end = nullptr;
    unsigned long u = std::strtoul(token.c_str(), &end, 10);
    unsigned long v = std::strtoul(token.c_str() + colon + 1, &end, 10);
    pairs.push_back(QueryPair{static_cast<VertexId>(u),
                              static_cast<VertexId>(v)});
    pos = comma + 1;
  }
  if (pairs.empty()) return Status::InvalidArgument("no pairs given");
  return pairs;
}

Result<LinkMeasure> ParseMeasure(const std::string& name) {
  for (LinkMeasure m : AllLinkMeasures()) {
    if (name == LinkMeasureName(m)) return m;
  }
  return Status::InvalidArgument("unknown measure: " + name);
}

/// Builds a predictor from the edges with `config.threads` ingestion
/// workers (sequentially when threads == 1). Queries against the result
/// are bit-identical either way.
Result<std::unique_ptr<LinkPredictor>> BuildPredictor(
    const PredictorConfig& config, const EdgeList& edges) {
  ParallelIngestEngine engine(config);
  VectorEdgeStream stream(edges);
  return engine.Build(stream);
}

Status CmdGenerate(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"workload", "scale", "seed", "out"});
      !st.ok()) {
    return st;
  }
  std::string workload = flags.GetString("workload", "ba");
  std::string path = flags.GetString("out", "");
  if (path.empty()) return Status::InvalidArgument("--out is required");
  bool known = false;
  for (const std::string& name : StandardWorkloadNames()) {
    known = known || name == workload;
  }
  if (!known) {
    return Status::InvalidArgument("unknown workload: " + workload);
  }
  GeneratedGraph g = MakeWorkload(
      WorkloadSpec{workload, flags.GetDouble("scale", 1.0),
                   static_cast<uint64_t>(flags.GetInt("seed", 42))});
  if (auto st = WriteEdgeList(path, g.edges); !st.ok()) return st;
  out << "wrote " << g.edges.size() << " edges (" << g.num_vertices
      << " vertices) to " << path << "\n";
  return Status::Ok();
}

Status CmdStats(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"input"}); !st.ok()) return st;
  std::string path = flags.GetString("input", "");
  if (path.empty()) return Status::InvalidArgument("--input is required");
  auto file = ReadEdgeList(path);
  if (!file.ok()) return file.status();
  CsrGraph graph = CsrGraph::FromEdges(file->edges, file->num_vertices);
  GraphStats stats = ComputeGraphStats(graph);
  TablePrinter table({"metric", "value"});
  table.AddRow({"vertices", std::to_string(stats.num_vertices)});
  table.AddRow({"edges", std::to_string(stats.num_edges)});
  table.AddRow({"avg_degree", TablePrinter::FormatCell(stats.avg_degree)});
  table.AddRow({"max_degree", std::to_string(stats.max_degree)});
  table.AddRow(
      {"clustering", TablePrinter::FormatCell(stats.global_clustering)});
  table.AddRow({"triangles", std::to_string(stats.num_triangles)});
  table.AddRow({"isolated", std::to_string(stats.num_isolated)});
  table.Print(out);
  return Status::Ok();
}

Status CmdBuild(const FlagParser& flags, std::ostream& out) {
  if (auto st =
          flags.CheckUnknown({"input", "k", "seed", "snapshot", "threads"});
      !st.ok()) {
    return st;
  }
  std::string input = flags.GetString("input", "");
  std::string snapshot = flags.GetString("snapshot", "");
  if (input.empty() || snapshot.empty()) {
    return Status::InvalidArgument("--input and --snapshot are required");
  }
  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();

  MinHashPredictorOptions options;
  options.num_hashes = static_cast<uint32_t>(flags.GetInt("k", 64));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));

  MinHashPredictor predictor(options);
  if (threads <= 1) {
    if (threads == 0) return Status::InvalidArgument("--threads must be >= 1");
    FeedStream(predictor, file->edges);
  } else {
    PredictorConfig config;
    config.kind = "minhash";
    config.sketch_size = options.num_hashes;
    config.seed = options.seed;
    config.threads = threads;
    auto built = BuildPredictor(config, file->edges);
    if (!built.ok()) return built.status();
    // The snapshot format stores a single predictor, so fold the vertex
    // shards back together (lossless: slot-wise minima + degree sums over
    // disjoint vertex sets) before saving.
    auto* sharded = dynamic_cast<ShardedPredictor*>(built->get());
    SL_CHECK(sharded != nullptr);
    for (uint32_t t = 0; t < sharded->num_shards(); ++t) {
      predictor.MergeFrom(
          dynamic_cast<const MinHashPredictor&>(sharded->shard(t)));
    }
    predictor.AddProcessedEdges(sharded->edges_processed());
  }
  if (auto st = predictor.Save(snapshot); !st.ok()) return st;
  out << "ingested " << predictor.edges_processed() << " edges over "
      << predictor.num_vertices() << " vertices";
  if (threads > 1) out << " (" << threads << " ingest threads)";
  out << "; snapshot (" << predictor.MemoryBytes() / 1024
      << " KiB of state) saved to " << snapshot << "\n";
  return Status::Ok();
}

Status CmdQuery(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"snapshot", "pairs", "measure"});
      !st.ok()) {
    return st;
  }
  std::string snapshot = flags.GetString("snapshot", "");
  if (snapshot.empty()) return Status::InvalidArgument("--snapshot required");
  auto pairs = ParsePairs(flags.GetString("pairs", ""));
  if (!pairs.ok()) return pairs.status();
  auto predictor = MinHashPredictor::Load(snapshot);
  if (!predictor.ok()) return predictor.status();

  TablePrinter table({"u", "v", "jaccard", "common", "adamic_adar"});
  for (const QueryPair& p : *pairs) {
    OverlapEstimate e = predictor->EstimateOverlap(p.u, p.v);
    table.AddRow({std::to_string(p.u), std::to_string(p.v),
                  TablePrinter::FormatCell(e.jaccard),
                  TablePrinter::FormatCell(e.intersection),
                  TablePrinter::FormatCell(e.adamic_adar)});
  }
  table.Print(out);
  return Status::Ok();
}

Status CmdTopK(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown(
          {"input", "vertex", "top", "k", "seed", "measure", "threads"});
      !st.ok()) {
    return st;
  }
  std::string input = flags.GetString("input", "");
  if (input.empty()) return Status::InvalidArgument("--input is required");
  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();
  auto measure = ParseMeasure(flags.GetString("measure", "adamic_adar"));
  if (!measure.ok()) return measure.status();

  VertexId vertex = static_cast<VertexId>(flags.GetInt("vertex", 0));
  if (vertex >= file->num_vertices) {
    return Status::OutOfRange("--vertex " + std::to_string(vertex) +
                              " not in graph");
  }
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = static_cast<uint32_t>(flags.GetInt("k", 128));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  auto predictor = BuildPredictor(config, file->edges);
  if (!predictor.ok()) return predictor.status();

  CsrGraph snapshot = CsrGraph::FromEdges(file->edges, file->num_vertices);
  auto candidates = TwoHopCandidates(snapshot, vertex);
  TopKEngine engine(**predictor, *measure);
  auto top =
      engine.TopK(candidates, static_cast<uint32_t>(flags.GetInt("top", 10)));

  TablePrinter table({"candidate", LinkMeasureName(*measure)});
  for (const ScoredPair& s : top) {
    VertexId other = s.pair.u == vertex ? s.pair.v : s.pair.u;
    table.AddRow(
        {std::to_string(other), TablePrinter::FormatCell(s.score)});
  }
  table.Print(out);
  return Status::Ok();
}

Status CmdCompare(const FlagParser& flags, std::ostream& out) {
  if (auto st = flags.CheckUnknown({"input", "k", "pairs", "seed", "threads"});
      !st.ok()) {
    return st;
  }
  std::string input = flags.GetString("input", "");
  if (input.empty()) return Status::InvalidArgument("--input is required");
  auto file = ReadEdgeList(input);
  if (!file.ok()) return file.status();

  GeneratedGraph graph;
  graph.name = input;
  graph.edges = file->edges;
  graph.num_vertices = file->num_vertices;
  CsrGraph csr = CsrGraph::FromEdges(graph.edges, graph.num_vertices);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  auto pairs = SampleOverlappingPairs(
      csr, static_cast<uint32_t>(flags.GetInt("pairs", 500)), rng);

  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));
  if (threads == 0) return Status::InvalidArgument("--threads must be >= 1");

  TablePrinter table({"predictor", "k", "jaccard_mae", "cn_mre", "aa_mre",
                      "mbytes"});
  for (const std::string& kind : PredictorKinds()) {
    if (kind == "exact" || kind == "windowed_minhash") continue;
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = static_cast<uint32_t>(flags.GetInt("k", 128));
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    // Kinds that depend on global stream state cannot shard; build them
    // sequentially so the comparison still covers every predictor.
    config.threads = KindSupportsSharding(kind) ? threads : 1;
    auto predictor = BuildPredictor(config, graph.edges);
    if (!predictor.ok()) return predictor.status();
    ExactPredictor exact;
    FeedStream(exact, graph.edges);
    AccuracyReport report = MeasureAccuracyAgainst(**predictor, exact, pairs);
    table.AddRow(
        {kind, std::to_string(config.sketch_size),
         TablePrinter::FormatCell(report.jaccard.MeanAbsoluteError()),
         TablePrinter::FormatCell(report.common_neighbors.MeanRelativeError()),
         TablePrinter::FormatCell(report.adamic_adar.MeanRelativeError()),
         TablePrinter::FormatCell((*predictor)->MemoryBytes() / 1e6)});
  }
  table.Print(out);
  return Status::Ok();
}

}  // namespace

std::string CliUsage() {
  return
      "usage: streamlink_cli <command> [flags]\n"
      "commands:\n"
      "  generate  --workload ba|er|ws|rmat|sbm|plconfig [--scale S] "
      "[--seed N] --out FILE\n"
      "  stats     --input FILE\n"
      "  build     --input FILE [--k N] [--seed N] [--threads N] "
      "--snapshot FILE\n"
      "  query     --snapshot FILE --pairs u:v[,u:v...]\n"
      "  topk      --input FILE --vertex U [--top N] [--k N] "
      "[--measure NAME] [--threads N]\n"
      "  compare   --input FILE [--k N] [--pairs N] [--seed N] "
      "[--threads N]\n";
}

Status RunCliCommand(const std::vector<std::string>& args,
                     std::ostream& out) {
  if (args.empty()) {
    return Status::InvalidArgument("missing command\n" + CliUsage());
  }
  const std::string& command = args[0];
  FlagParser flags(std::vector<std::string>(args.begin() + 1, args.end()));
  if (command == "generate") return CmdGenerate(flags, out);
  if (command == "stats") return CmdStats(flags, out);
  if (command == "build") return CmdBuild(flags, out);
  if (command == "query") return CmdQuery(flags, out);
  if (command == "topk") return CmdTopK(flags, out);
  if (command == "compare") return CmdCompare(flags, out);
  return Status::InvalidArgument("unknown command: " + command + "\n" +
                                 CliUsage());
}

}  // namespace streamlink

#ifndef STREAMLINK_CLI_COMMANDS_H_
#define STREAMLINK_CLI_COMMANDS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {

/// The command layer behind the `streamlink` CLI binary. Each command is a
/// plain function taking parsed arguments and an output stream, so tests
/// drive them directly and the binary stays a thin dispatcher.
///
/// Commands:
///   generate  --workload <name> [--scale S] [--seed N] --out FILE
///             Writes a synthetic graph stream as an edge-list file.
///   stats     --input FILE | --metrics DUMP.json
///             Prints graph statistics of an edge-list file, or
///             pretty-prints a --metrics-out JSON dump.
///   build     --input FILE [--k N] [--seed N] [--threads N] --snapshot FILE
///             Streams the file into a MinHash predictor, saves a snapshot.
///   query     --snapshot FILE --pairs "u:v,u:v,..." [--measure NAME]
///             Loads a snapshot and scores the pairs.
///   topk      --input FILE --vertex U [--top N] [--k N] [--measure NAME]
///             [--threads N]
///             Builds from the file and prints U's best predicted links.
///   compare   --input FILE [--k N] [--pairs N] [--seed N] [--threads N]
///             Scores every sketch kind against exact ground truth.
///   serve-bench --input FILE [--readers N] [--pairs N] [--publish-edges N]
///             [--publish-seconds S]
///             Ingests the file while N reader threads issue queries
///             through a QueryService fed by the engine's publish hook;
///             prints throughput, latency and staleness (docs/serving.md).
///   net-serve --snapshot FILE [--port N] [--queue N] [--staleness-edges N]
///             Serves a snapshot over the binary network protocol with
///             admission control (docs/net.md).
///   net-load  --port N [--connections N] [--qps R] [--shape NAME]
///             Open-loop load generator against a net-serve endpoint;
///             prints p50/p99/p999 and shed rate (docs/net.md).
///
/// Commands that build a predictor share one flag set, mapped by
/// PredictorConfigFromFlags (--kind, --k, --seed, --threads, ...); see
/// PredictorFlagsHelp. --threads N > 1 vertex-shards ingestion across N
/// worker threads via ParallelIngestEngine, with results bit-identical to
/// a sequential build.
///
/// build, resume, and serve-bench also take the observability flags
/// (docs/observability.md): --metrics-out FILE writes a final metrics dump
/// (format by extension: .prom/.txt Prometheus text, .csv appended rows,
/// else JSON), --metrics-every S rewrites it periodically while the
/// command runs, and --trace-out FILE captures the run's spans as Chrome
/// trace_event JSON.
Status RunCliCommand(const std::vector<std::string>& args, std::ostream& out);

/// The usage text printed for unknown/missing commands.
std::string CliUsage();

}  // namespace streamlink

#endif  // STREAMLINK_CLI_COMMANDS_H_

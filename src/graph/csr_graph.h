#ifndef STREAMLINK_GRAPH_CSR_GRAPH_H_
#define STREAMLINK_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace streamlink {

class AdjacencyGraph;

/// Immutable compressed-sparse-row snapshot of an undirected graph.
///
/// Built once from an edge list (or AdjacencyGraph), then queried with
/// cache-friendly sorted neighbor ranges. Exact measure computation and the
/// evaluation harness run on CSR snapshots; the streaming predictors never
/// need one (that is the point of the paper).
class CsrGraph {
 public:
  /// Builds from an edge list. Duplicate edges and self-loops are dropped;
  /// `num_vertices` may exceed the max endpoint to keep isolated vertices.
  static CsrGraph FromEdges(const EdgeList& edges, VertexId num_vertices = 0);

  /// Snapshot of a dynamic graph.
  static CsrGraph FromAdjacency(const AdjacencyGraph& graph);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }
  uint64_t num_edges() const { return neighbors_.size() / 2; }

  uint32_t Degree(VertexId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted neighbor ids of u.
  std::span<const VertexId> Neighbors(VertexId u) const {
    return {neighbors_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Binary search in u's sorted neighbor range.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Size of the sorted-neighborhood intersection |N(u) ∩ N(v)|.
  /// Linear merge: O(d(u) + d(v)).
  uint32_t IntersectionSize(VertexId u, VertexId v) const;

  /// Heap bytes of the CSR arrays.
  uint64_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           neighbors_.capacity() * sizeof(VertexId);
  }

 private:
  CsrGraph() = default;

  std::vector<uint64_t> offsets_;    // size num_vertices + 1
  std::vector<VertexId> neighbors_;  // size 2 * num_edges, sorted per vertex
};

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_CSR_GRAPH_H_

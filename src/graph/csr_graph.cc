#include "graph/csr_graph.h"

#include <algorithm>

#include "graph/adjacency_graph.h"

namespace streamlink {

CsrGraph CsrGraph::FromEdges(const EdgeList& edges, VertexId num_vertices) {
  // Canonicalize, drop self-loops, dedup.
  EdgeList clean;
  clean.reserve(edges.size());
  VertexId max_vertex = num_vertices;
  for (const Edge& e : edges) {
    // A self-loop still establishes its endpoint as a vertex.
    max_vertex = std::max(
        max_vertex, static_cast<VertexId>(std::max(e.u, e.v) + 1));
    if (e.IsSelfLoop()) continue;
    clean.push_back(e.Canonical());
  }
  std::sort(clean.begin(), clean.end());
  clean.erase(std::unique(clean.begin(), clean.end()), clean.end());

  CsrGraph g;
  const VertexId n = max_vertex;
  std::vector<uint32_t> degree(n, 0);
  for (const Edge& e : clean) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    g.offsets_[u + 1] = g.offsets_[u] + degree[u];
  }
  g.neighbors_.resize(g.offsets_[n]);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : clean) {
    g.neighbors_[cursor[e.u]++] = e.v;
    g.neighbors_[cursor[e.v]++] = e.u;
  }
  for (VertexId u = 0; u < n; ++u) {
    std::sort(g.neighbors_.begin() + g.offsets_[u],
              g.neighbors_.begin() + g.offsets_[u + 1]);
  }
  return g;
}

CsrGraph CsrGraph::FromAdjacency(const AdjacencyGraph& graph) {
  return FromEdges(graph.SortedEdges(), graph.num_vertices());
}

bool CsrGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices()) return false;
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t CsrGraph::IntersectionSize(VertexId u, VertexId v) const {
  auto a = Neighbors(u);
  auto b = Neighbors(v);
  uint32_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace streamlink

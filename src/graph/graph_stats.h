#ifndef STREAMLINK_GRAPH_GRAPH_STATS_H_
#define STREAMLINK_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {

/// Summary statistics of a graph snapshot — the rows of the dataset table
/// (experiment T1).
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0.0;
  uint32_t max_degree = 0;
  double degree_skew = 0.0;  // ratio max_degree / avg_degree
  double global_clustering = 0.0;  // 3·triangles / wedges
  double avg_local_clustering = 0.0;
  uint64_t num_triangles = 0;
  uint64_t num_wedges = 0;  // paths of length 2
  uint64_t num_isolated = 0;
};

/// Computes all statistics exactly. Triangle counting is done per-vertex by
/// neighborhood merging: O(Σ d(u)·avg_d) — fine at laptop scale.
GraphStats ComputeGraphStats(const CsrGraph& graph);

/// Approximates clustering statistics by sampling `num_samples` wedges;
/// used when the exact pass would be too slow. Other fields are exact.
GraphStats ComputeGraphStatsSampled(const CsrGraph& graph,
                                    uint64_t num_samples, Rng& rng);

/// Degree histogram: result[d] = number of vertices with degree d.
std::vector<uint64_t> DegreeHistogram(const CsrGraph& graph);

/// Empirical power-law exponent fit via the MLE for discrete power laws
/// (Clauset et al.), over degrees >= d_min. Returns 0 if too few samples.
double FitPowerLawExponent(const std::vector<uint64_t>& degree_histogram,
                           uint32_t d_min = 2);

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_GRAPH_STATS_H_

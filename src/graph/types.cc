#include "graph/types.h"

namespace streamlink {

std::string ToString(const Edge& e) {
  return "(" + std::to_string(e.u) + "," + std::to_string(e.v) + ")";
}

}  // namespace streamlink

#ifndef STREAMLINK_GRAPH_DIGRAPH_H_
#define STREAMLINK_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/types.h"

namespace streamlink {

/// Which neighborhood a directed overlap query reads.
enum class Direction {
  kOut,  // successors:  N+(x) = { w : x -> w }
  kIn,   // predecessors: N-(x) = { w : w -> x }
};

const char* DirectionName(Direction direction);

/// Dynamic directed simple graph: one successor set and one predecessor
/// set per vertex. The exact substrate for directed link prediction
/// (common-successor / common-predecessor measures), mirroring
/// AdjacencyGraph for the undirected case.
class DirectedAdjacencyGraph {
 public:
  explicit DirectedAdjacencyGraph(VertexId num_vertices = 0);

  void EnsureVertices(VertexId num_vertices);

  /// Inserts arc u -> v. Returns true if new; self-loops rejected.
  bool AddArc(VertexId u, VertexId v);

  bool HasArc(VertexId u, VertexId v) const;

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_.size());
  }
  uint64_t num_arcs() const { return num_arcs_; }

  uint32_t OutDegree(VertexId u) const;
  uint32_t InDegree(VertexId u) const;

  const std::unordered_set<VertexId>& Successors(VertexId u) const;
  const std::unordered_set<VertexId>& Predecessors(VertexId u) const;

  /// |N_dir(u) ∩ N_dir(v)| plus the Adamic-Adar-style weighted sum with
  /// weights 1/ln(total degree of w). Directions may differ per endpoint
  /// (e.g. common "u follows x who is followed by v" patterns come from
  /// (kOut, kIn)).
  struct DirectedOverlap {
    uint32_t intersection = 0;
    uint32_t union_size = 0;
    double jaccard = 0.0;
    double adamic_adar = 0.0;
  };
  DirectedOverlap ComputeOverlap(VertexId u, Direction du, VertexId v,
                                 Direction dv) const;

  uint64_t MemoryBytes() const;

 private:
  const std::unordered_set<VertexId>& Side(VertexId u,
                                           Direction direction) const;

  std::vector<std::unordered_set<VertexId>> out_;
  std::vector<std::unordered_set<VertexId>> in_;
  uint64_t num_arcs_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_DIGRAPH_H_

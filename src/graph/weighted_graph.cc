#include "graph/weighted_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

bool WeightedAdjacencyGraph::AddEdge(VertexId u, VertexId v, double weight) {
  SL_CHECK(weight > 0.0) << "edge weights must be positive, got " << weight;
  if (u == v) return false;
  VertexId needed = std::max(u, v) + 1;
  if (needed > adjacency_.size()) {
    adjacency_.resize(needed);
    strength_.resize(needed, 0.0);
  }
  auto [it, inserted] = adjacency_[u].try_emplace(v, 0.0);
  it->second += weight;
  adjacency_[v][u] = it->second;
  strength_[u] += weight;
  strength_[v] += weight;
  if (inserted) ++num_edges_;
  return inserted;
}

double WeightedAdjacencyGraph::EdgeWeight(VertexId u, VertexId v) const {
  if (u >= adjacency_.size()) return 0.0;
  auto it = adjacency_[u].find(v);
  return it == adjacency_[u].end() ? 0.0 : it->second;
}

double WeightedAdjacencyGraph::Strength(VertexId u) const {
  return u < strength_.size() ? strength_[u] : 0.0;
}

uint32_t WeightedAdjacencyGraph::Degree(VertexId u) const {
  return u < adjacency_.size() ? static_cast<uint32_t>(adjacency_[u].size())
                               : 0;
}

WeightedOverlap WeightedAdjacencyGraph::ComputeOverlap(VertexId u,
                                                       VertexId v) const {
  WeightedOverlap overlap;
  overlap.strength_u = Strength(u);
  overlap.strength_v = Strength(v);
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    overlap.max_sum = overlap.strength_u + overlap.strength_v;
    return overlap;
  }
  // Σmin over shared neighbors; Σmax = S_u + S_v − Σmin.
  const auto& small =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const auto& large =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[v]
                                                   : adjacency_[u];
  for (const auto& [w, weight] : small) {
    auto it = large.find(w);
    if (it != large.end()) {
      overlap.min_sum += std::min(weight, it->second);
    }
  }
  overlap.max_sum =
      overlap.strength_u + overlap.strength_v - overlap.min_sum;
  return overlap;
}

uint64_t WeightedAdjacencyGraph::MemoryBytes() const {
  uint64_t bytes = sizeof(*this) +
                   adjacency_.capacity() * sizeof(adjacency_[0]) +
                   strength_.capacity() * sizeof(double);
  for (const auto& nbrs : adjacency_) {
    bytes += nbrs.bucket_count() * sizeof(void*);
    bytes += nbrs.size() * (sizeof(void*) + sizeof(size_t) +
                            sizeof(VertexId) + sizeof(double));
  }
  return bytes;
}

}  // namespace streamlink

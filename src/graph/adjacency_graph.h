#ifndef STREAMLINK_GRAPH_ADJACENCY_GRAPH_H_
#define STREAMLINK_GRAPH_ADJACENCY_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/types.h"

namespace streamlink {

/// Dynamic undirected simple graph backed by one hash set per vertex.
///
/// This is the *exact* substrate: it stores full neighborhoods and is what
/// the sketches are measured against for accuracy, memory, and speed. Edge
/// insertion is idempotent (duplicates and self-loops are rejected), so
/// feeding the same stream twice yields the same graph.
class AdjacencyGraph {
 public:
  /// Creates a graph with `num_vertices` isolated vertices.
  explicit AdjacencyGraph(VertexId num_vertices = 0);

  /// Grows the vertex set to at least `num_vertices` (never shrinks).
  void EnsureVertices(VertexId num_vertices);

  /// Inserts undirected edge {u, v}, growing the vertex set as needed.
  /// Returns true if the edge was new; false for duplicates or self-loops.
  bool AddEdge(VertexId u, VertexId v);
  bool AddEdge(const Edge& e) { return AddEdge(e.u, e.v); }

  /// Inserts only the half-edge u→v: v joins N(u) and the vertex set grows
  /// to include u, but N(v) is untouched. The building block of
  /// vertex-sharded ingestion, where each shard applies just the halves of
  /// edges it owns; num_edges() counts whole AddEdge insertions only.
  /// Returns true if v was new in N(u); false for duplicates/self-loops.
  bool AddArc(VertexId u, VertexId v);

  /// Removes undirected edge {u, v}. Returns true if it was present.
  bool RemoveEdge(VertexId u, VertexId v);
  bool RemoveEdge(const Edge& e) { return RemoveEdge(e.u, e.v); }

  /// Removes only the half-edge u→v: v leaves N(u), N(v) is untouched —
  /// the retraction mirror of AddArc for vertex-sharded turnstile
  /// ingestion. Does not touch num_edges(). Returns true if v was in N(u).
  bool RemoveArc(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;

  VertexId num_vertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  uint64_t num_edges() const { return num_edges_; }

  /// Restores the whole-edge counter after a rebuild through AddArc
  /// (which deliberately does not count edges). Snapshot restore only.
  void SetNumEdges(uint64_t num_edges) { num_edges_ = num_edges; }

  /// Degree (= neighborhood size; the graph is simple). 0 for ids beyond
  /// the current vertex set.
  uint32_t Degree(VertexId u) const;

  /// Neighborhood of u. Precondition: u < num_vertices().
  const std::unordered_set<VertexId>& Neighbors(VertexId u) const;

  /// All edges in canonical (u <= v) form, sorted. O(E log E).
  EdgeList SortedEdges() const;

  /// Estimated heap footprint in bytes (buckets + nodes), used by the
  /// memory experiments. An estimate: hash-set internals are approximated
  /// from bucket_count and size.
  uint64_t MemoryBytes() const;

 private:
  std::vector<std::unordered_set<VertexId>> adjacency_;
  uint64_t num_edges_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_ADJACENCY_GRAPH_H_

#ifndef STREAMLINK_GRAPH_EDGE_LIST_IO_H_
#define STREAMLINK_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "graph/types.h"
#include "graph/weighted_graph.h"
#include "util/status.h"

namespace streamlink {

/// Options for parsing whitespace-separated edge-list files (the SNAP-style
/// format real graph-stream datasets ship in: one "u v" pair per line,
/// '#'- or '%'-prefixed comment lines).
struct EdgeListReadOptions {
  /// Remap arbitrary ids to dense [0, n) in first-seen order. When false,
  /// ids are used verbatim and must fit VertexId.
  bool remap_ids = true;
  /// Drop (u, u) edges.
  bool skip_self_loops = true;
  /// Maximum number of edges to read; 0 = unlimited.
  uint64_t max_edges = 0;
};

struct EdgeListFile {
  EdgeList edges;        // in file order — this *is* the stream
  VertexId num_vertices = 0;
};

/// Reads an edge list from `path`. Lines that fail to parse yield an
/// InvalidArgument status (with line number) rather than silent skips.
Result<EdgeListFile> ReadEdgeList(const std::string& path,
                                  const EdgeListReadOptions& options = {});

/// Parses edge-list text directly (testing and embedded data).
Result<EdgeListFile> ParseEdgeList(const std::string& text,
                                   const EdgeListReadOptions& options = {});

/// Writes `edges` to `path`, one "u v" per line with a size comment header.
Status WriteEdgeList(const std::string& path, const EdgeList& edges);

/// Weighted variant of EdgeListFile: "u v w" lines (w a positive double).
struct WeightedEdgeListFile {
  WeightedEdgeList edges;
  VertexId num_vertices = 0;
};

/// Reads a weighted edge list ("u v w" per line; missing weight defaults
/// to 1.0, so plain edge lists load too). Same comment/remap semantics as
/// ReadEdgeList; non-positive weights are an InvalidArgument error.
Result<WeightedEdgeListFile> ReadWeightedEdgeList(
    const std::string& path, const EdgeListReadOptions& options = {});

/// Parses weighted edge-list text directly.
Result<WeightedEdgeListFile> ParseWeightedEdgeList(
    const std::string& text, const EdgeListReadOptions& options = {});

/// Writes weighted edges as "u v w" lines.
Status WriteWeightedEdgeList(const std::string& path,
                             const WeightedEdgeList& edges);

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_EDGE_LIST_IO_H_

#include "graph/adjacency_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

AdjacencyGraph::AdjacencyGraph(VertexId num_vertices)
    : adjacency_(num_vertices) {}

void AdjacencyGraph::EnsureVertices(VertexId num_vertices) {
  if (num_vertices > adjacency_.size()) adjacency_.resize(num_vertices);
}

bool AdjacencyGraph::AddEdge(VertexId u, VertexId v) {
  if (u == v) return false;
  EnsureVertices(std::max(u, v) + 1);
  if (!adjacency_[u].insert(v).second) return false;
  adjacency_[v].insert(u);
  ++num_edges_;
  return true;
}

bool AdjacencyGraph::AddArc(VertexId u, VertexId v) {
  if (u == v) return false;
  EnsureVertices(u + 1);
  return adjacency_[u].insert(v).second;
}

bool AdjacencyGraph::RemoveArc(VertexId u, VertexId v) {
  if (u >= adjacency_.size()) return false;
  return adjacency_[u].erase(v) > 0;
}

bool AdjacencyGraph::RemoveEdge(VertexId u, VertexId v) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  if (adjacency_[u].erase(v) == 0) return false;
  adjacency_[v].erase(u);
  --num_edges_;
  return true;
}

bool AdjacencyGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= adjacency_.size()) return false;
  return adjacency_[u].count(v) > 0;
}

uint32_t AdjacencyGraph::Degree(VertexId u) const {
  if (u >= adjacency_.size()) return 0;
  return static_cast<uint32_t>(adjacency_[u].size());
}

const std::unordered_set<VertexId>& AdjacencyGraph::Neighbors(
    VertexId u) const {
  SL_CHECK(u < adjacency_.size()) << "vertex " << u << " out of range";
  return adjacency_[u];
}

EdgeList AdjacencyGraph::SortedEdges() const {
  EdgeList edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < adjacency_.size(); ++u) {
    for (VertexId v : adjacency_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

uint64_t AdjacencyGraph::MemoryBytes() const {
  uint64_t bytes = adjacency_.capacity() * sizeof(adjacency_[0]);
  for (const auto& nbrs : adjacency_) {
    // libstdc++ unordered_set: one bucket pointer per bucket plus one heap
    // node (hash + value + next pointer, padded) per element.
    bytes += nbrs.bucket_count() * sizeof(void*);
    bytes += nbrs.size() * (sizeof(void*) + sizeof(size_t) + sizeof(VertexId) +
                            4 /* padding */);
  }
  return bytes;
}

}  // namespace streamlink

#ifndef STREAMLINK_GRAPH_TYPES_H_
#define STREAMLINK_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace streamlink {

/// Dense vertex identifier. Generators and loaders produce ids in
/// [0, num_vertices); sketch stores index flat arrays by VertexId.
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = ~static_cast<VertexId>(0);

/// An undirected edge. Canonical form has u <= v (see Canonical()).
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  Edge() = default;
  Edge(VertexId a, VertexId b) : u(a), v(b) {}

  /// Returns the same edge with endpoints ordered so u <= v.
  Edge Canonical() const { return u <= v ? Edge(u, v) : Edge(v, u); }

  /// True for edges of the form (x, x).
  bool IsSelfLoop() const { return u == v; }

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

/// Hash functor for canonical edges (order-insensitive would be wrong for
/// directed uses; callers canonicalize first when hashing undirected edges).
struct EdgeHash {
  size_t operator()(const Edge& e) const {
    uint64_t key = (static_cast<uint64_t>(e.u) << 32) | e.v;
    // splitmix-style scramble
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return static_cast<size_t>(key);
  }
};

/// The ordered edge sequence a generator or loader produced: the stream.
using EdgeList = std::vector<Edge>;

/// Renders an edge as "(u,v)".
std::string ToString(const Edge& e);

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_TYPES_H_

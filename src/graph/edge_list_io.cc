#include "graph/edge_list_io.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace streamlink {

namespace {

/// Parses one edge line into (a, b). Returns false on blank/comment lines;
/// malformed content sets `error`.
bool ParseLine(std::string_view line, uint64_t& a, uint64_t& b,
               std::string* error) {
  size_t pos = 0;
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos])))
    ++pos;
  if (pos == line.size() || line[pos] == '#' || line[pos] == '%') return false;

  auto parse_number = [&](uint64_t& out) -> bool {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
      ++pos;
    const char* begin = line.data() + pos;
    const char* end = line.data() + line.size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr == begin) return false;
    pos = ptr - line.data();
    return true;
  };

  if (!parse_number(a) || !parse_number(b)) {
    *error = "malformed edge line: '" + std::string(line) + "'";
    return false;
  }
  return true;
}

Result<EdgeListFile> ParseStream(std::istream& in,
                                 const EdgeListReadOptions& options) {
  EdgeListFile out;
  std::unordered_map<uint64_t, VertexId> remap;
  auto to_vertex = [&](uint64_t raw) -> VertexId {
    if (!options.remap_ids) return static_cast<VertexId>(raw);
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    uint64_t a = 0, b = 0;
    std::string error;
    if (!ParseLine(line, a, b, &error)) {
      if (!error.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": " + error);
      }
      continue;
    }
    if (!options.remap_ids &&
        (a > kInvalidVertex - 1 || b > kInvalidVertex - 1)) {
      return Status::OutOfRange("line " + std::to_string(line_number) +
                                ": vertex id exceeds 32-bit range");
    }
    VertexId u = to_vertex(a);
    VertexId v = to_vertex(b);
    if (options.skip_self_loops && u == v) continue;
    out.edges.emplace_back(u, v);
    out.num_vertices = std::max(out.num_vertices,
                                static_cast<VertexId>(std::max(u, v) + 1));
    if (options.max_edges > 0 && out.edges.size() >= options.max_edges) break;
  }
  return out;
}

}  // namespace

Result<EdgeListFile> ReadEdgeList(const std::string& path,
                                  const EdgeListReadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open edge list: " + path);
  }
  return ParseStream(in, options);
}

Result<EdgeListFile> ParseEdgeList(const std::string& text,
                                   const EdgeListReadOptions& options) {
  std::istringstream in(text);
  return ParseStream(in, options);
}

namespace {

/// Parses an optional trailing weight from `line` starting at `pos`;
/// defaults to 1.0 when the line ends. Returns false on malformed input.
bool ParseOptionalWeight(std::string_view line, size_t pos, double& weight,
                         std::string* error) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])))
    ++pos;
  if (pos == line.size()) {
    weight = 1.0;
    return true;
  }
  const char* begin = line.data() + pos;
  char* end = nullptr;
  weight = std::strtod(begin, &end);
  if (end == begin) {
    *error = "malformed weight: '" + std::string(line.substr(pos)) + "'";
    return false;
  }
  return true;
}

Result<WeightedEdgeListFile> ParseWeightedStream(
    std::istream& in, const EdgeListReadOptions& options) {
  WeightedEdgeListFile out;
  std::unordered_map<uint64_t, VertexId> remap;
  auto to_vertex = [&](uint64_t raw) -> VertexId {
    if (!options.remap_ids) return static_cast<VertexId>(raw);
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Reuse the integer parsing of the unweighted loader by scanning the
    // two endpoints manually here (ParseLine is file-local above).
    size_t pos = 0;
    auto skip_ws = [&] {
      while (pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    };
    skip_ws();
    if (pos == line.size() || line[pos] == '#' || line[pos] == '%') continue;

    uint64_t raw_u = 0, raw_v = 0;
    auto parse_number = [&](uint64_t& value) -> bool {
      skip_ws();
      const char* begin = line.data() + pos;
      const char* end = line.data() + line.size();
      auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc() || ptr == begin) return false;
      pos = ptr - line.data();
      return true;
    };
    if (!parse_number(raw_u) || !parse_number(raw_v)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": malformed edge line: '" +
          line + "'");
    }
    double weight = 1.0;
    std::string error;
    if (!ParseOptionalWeight(line, pos, weight, &error)) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + error);
    }
    if (weight <= 0.0) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": non-positive weight");
    }
    if (!options.remap_ids &&
        (raw_u > kInvalidVertex - 1 || raw_v > kInvalidVertex - 1)) {
      return Status::OutOfRange("line " + std::to_string(line_number) +
                                ": vertex id exceeds 32-bit range");
    }
    VertexId u = to_vertex(raw_u);
    VertexId v = to_vertex(raw_v);
    if (options.skip_self_loops && u == v) continue;
    out.edges.push_back(WeightedEdge{u, v, weight});
    out.num_vertices = std::max(out.num_vertices,
                                static_cast<VertexId>(std::max(u, v) + 1));
    if (options.max_edges > 0 && out.edges.size() >= options.max_edges) break;
  }
  return out;
}

}  // namespace

Result<WeightedEdgeListFile> ReadWeightedEdgeList(
    const std::string& path, const EdgeListReadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open edge list: " + path);
  }
  return ParseWeightedStream(in, options);
}

Result<WeightedEdgeListFile> ParseWeightedEdgeList(
    const std::string& text, const EdgeListReadOptions& options) {
  std::istringstream in(text);
  return ParseWeightedStream(in, options);
}

Status WriteWeightedEdgeList(const std::string& path,
                             const WeightedEdgeList& edges) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# streamlink weighted edge list: " << edges.size() << " edges\n";
  for (const WeightedEdge& e : edges) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status WriteEdgeList(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# streamlink edge list: " << edges.size() << " edges\n";
  for (const Edge& e : edges) {
    out << e.u << ' ' << e.v << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace streamlink

#include "graph/digraph.h"

#include <algorithm>
#include <cmath>

#include "graph/exact_measures.h"
#include "util/logging.h"

namespace streamlink {

const char* DirectionName(Direction direction) {
  switch (direction) {
    case Direction::kOut:
      return "out";
    case Direction::kIn:
      return "in";
  }
  return "unknown";
}

DirectedAdjacencyGraph::DirectedAdjacencyGraph(VertexId num_vertices)
    : out_(num_vertices), in_(num_vertices) {}

void DirectedAdjacencyGraph::EnsureVertices(VertexId num_vertices) {
  if (num_vertices > out_.size()) {
    out_.resize(num_vertices);
    in_.resize(num_vertices);
  }
}

bool DirectedAdjacencyGraph::AddArc(VertexId u, VertexId v) {
  if (u == v) return false;
  EnsureVertices(std::max(u, v) + 1);
  if (!out_[u].insert(v).second) return false;
  in_[v].insert(u);
  ++num_arcs_;
  return true;
}

bool DirectedAdjacencyGraph::HasArc(VertexId u, VertexId v) const {
  if (u >= out_.size()) return false;
  return out_[u].count(v) > 0;
}

uint32_t DirectedAdjacencyGraph::OutDegree(VertexId u) const {
  return u < out_.size() ? static_cast<uint32_t>(out_[u].size()) : 0;
}

uint32_t DirectedAdjacencyGraph::InDegree(VertexId u) const {
  return u < in_.size() ? static_cast<uint32_t>(in_[u].size()) : 0;
}

const std::unordered_set<VertexId>& DirectedAdjacencyGraph::Successors(
    VertexId u) const {
  SL_CHECK(u < out_.size()) << "vertex " << u << " out of range";
  return out_[u];
}

const std::unordered_set<VertexId>& DirectedAdjacencyGraph::Predecessors(
    VertexId u) const {
  SL_CHECK(u < in_.size()) << "vertex " << u << " out of range";
  return in_[u];
}

const std::unordered_set<VertexId>& DirectedAdjacencyGraph::Side(
    VertexId u, Direction direction) const {
  return direction == Direction::kOut ? Successors(u) : Predecessors(u);
}

DirectedAdjacencyGraph::DirectedOverlap
DirectedAdjacencyGraph::ComputeOverlap(VertexId u, Direction du, VertexId v,
                                       Direction dv) const {
  DirectedOverlap overlap;
  uint32_t size_u = du == Direction::kOut ? OutDegree(u) : InDegree(u);
  uint32_t size_v = dv == Direction::kOut ? OutDegree(v) : InDegree(v);
  if (size_u > 0 && size_v > 0) {
    const auto& small = size_u <= size_v ? Side(u, du) : Side(v, dv);
    const auto& large = size_u <= size_v ? Side(v, dv) : Side(u, du);
    for (VertexId w : small) {
      if (large.count(w) == 0) continue;
      ++overlap.intersection;
      overlap.adamic_adar += AdamicAdarWeight(OutDegree(w) + InDegree(w));
    }
  }
  overlap.union_size = size_u + size_v - overlap.intersection;
  overlap.jaccard =
      overlap.union_size > 0
          ? static_cast<double>(overlap.intersection) / overlap.union_size
          : 0.0;
  return overlap;
}

uint64_t DirectedAdjacencyGraph::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  auto side_bytes = [](const std::vector<std::unordered_set<VertexId>>& side) {
    uint64_t total = side.capacity() * sizeof(side[0]);
    for (const auto& set : side) {
      total += set.bucket_count() * sizeof(void*);
      total += set.size() *
               (sizeof(void*) + sizeof(size_t) + sizeof(VertexId) + 4);
    }
    return total;
  };
  return bytes + side_bytes(out_) + side_bytes(in_);
}

}  // namespace streamlink

#include "graph/exact_measures.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

const char* LinkMeasureName(LinkMeasure measure) {
  switch (measure) {
    case LinkMeasure::kCommonNeighbors:
      return "common_neighbors";
    case LinkMeasure::kJaccard:
      return "jaccard";
    case LinkMeasure::kAdamicAdar:
      return "adamic_adar";
    case LinkMeasure::kResourceAllocation:
      return "resource_allocation";
    case LinkMeasure::kPreferentialAttachment:
      return "preferential_attachment";
    case LinkMeasure::kSalton:
      return "salton";
    case LinkMeasure::kSorensen:
      return "sorensen";
    case LinkMeasure::kHubPromoted:
      return "hub_promoted";
    case LinkMeasure::kHubDepressed:
      return "hub_depressed";
    case LinkMeasure::kLeichtHolmeNewman:
      return "leicht_holme_newman";
  }
  return "unknown";
}

std::vector<LinkMeasure> AllLinkMeasures() {
  return {LinkMeasure::kCommonNeighbors,
          LinkMeasure::kJaccard,
          LinkMeasure::kAdamicAdar,
          LinkMeasure::kResourceAllocation,
          LinkMeasure::kPreferentialAttachment,
          LinkMeasure::kSalton,
          LinkMeasure::kSorensen,
          LinkMeasure::kHubPromoted,
          LinkMeasure::kHubDepressed,
          LinkMeasure::kLeichtHolmeNewman};
}

double AdamicAdarWeight(uint32_t degree) {
  return degree >= 2 ? 1.0 / std::log(static_cast<double>(degree)) : 0.0;
}

namespace {

/// Folds one common neighbor `w` (with degree `dw`) into `overlap`.
inline void AccumulateCommon(uint32_t dw, PairOverlap& overlap) {
  ++overlap.intersection;
  overlap.adamic_adar += AdamicAdarWeight(dw);
  if (dw > 0) overlap.resource_allocation += 1.0 / dw;
}

}  // namespace

PairOverlap ComputeOverlap(const AdjacencyGraph& graph, VertexId u,
                           VertexId v) {
  PairOverlap overlap;
  overlap.degree_u = graph.Degree(u);
  overlap.degree_v = graph.Degree(v);
  if (overlap.degree_u > 0 && overlap.degree_v > 0) {
    // Iterate the smaller set, probe the larger.
    VertexId small = u, large = v;
    if (graph.Degree(small) > graph.Degree(large)) std::swap(small, large);
    const auto& probe = graph.Neighbors(large);
    for (VertexId w : graph.Neighbors(small)) {
      if (probe.count(w) > 0) AccumulateCommon(graph.Degree(w), overlap);
    }
  }
  overlap.union_size =
      overlap.degree_u + overlap.degree_v - overlap.intersection;
  return overlap;
}

PairOverlap ComputeOverlap(const CsrGraph& graph, VertexId u, VertexId v) {
  PairOverlap overlap;
  const VertexId n = graph.num_vertices();
  overlap.degree_u = u < n ? graph.Degree(u) : 0;
  overlap.degree_v = v < n ? graph.Degree(v) : 0;
  if (overlap.degree_u > 0 && overlap.degree_v > 0) {
    auto a = graph.Neighbors(u);
    auto b = graph.Neighbors(v);
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        AccumulateCommon(graph.Degree(a[i]), overlap);
        ++i;
        ++j;
      }
    }
  }
  overlap.union_size =
      overlap.degree_u + overlap.degree_v - overlap.intersection;
  return overlap;
}

double MeasureFromOverlap(LinkMeasure measure, const PairOverlap& o) {
  const double du = o.degree_u;
  const double dv = o.degree_v;
  const double inter = o.intersection;
  switch (measure) {
    case LinkMeasure::kCommonNeighbors:
      return inter;
    case LinkMeasure::kJaccard:
      return o.Jaccard();
    case LinkMeasure::kAdamicAdar:
      return o.adamic_adar;
    case LinkMeasure::kResourceAllocation:
      return o.resource_allocation;
    case LinkMeasure::kPreferentialAttachment:
      return du * dv;
    case LinkMeasure::kSalton:
      return du > 0 && dv > 0 ? inter / std::sqrt(du * dv) : 0.0;
    case LinkMeasure::kSorensen:
      return du + dv > 0 ? 2.0 * inter / (du + dv) : 0.0;
    case LinkMeasure::kHubPromoted: {
      double m = std::min(du, dv);
      return m > 0 ? inter / m : 0.0;
    }
    case LinkMeasure::kHubDepressed: {
      double m = std::max(du, dv);
      return m > 0 ? inter / m : 0.0;
    }
    case LinkMeasure::kLeichtHolmeNewman:
      return du > 0 && dv > 0 ? inter / (du * dv) : 0.0;
  }
  SL_LOG(kFatal) << "unhandled LinkMeasure";
  return 0.0;
}

double ExactScore(const AdjacencyGraph& graph, LinkMeasure measure,
                  VertexId u, VertexId v) {
  return MeasureFromOverlap(measure, ComputeOverlap(graph, u, v));
}

double ExactScore(const CsrGraph& graph, LinkMeasure measure, VertexId u,
                  VertexId v) {
  return MeasureFromOverlap(measure, ComputeOverlap(graph, u, v));
}

}  // namespace streamlink

#ifndef STREAMLINK_GRAPH_WEIGHTED_GRAPH_H_
#define STREAMLINK_GRAPH_WEIGHTED_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace streamlink {

/// An undirected edge carrying a positive weight.
struct WeightedEdge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  double weight = 1.0;
};

using WeightedEdgeList = std::vector<WeightedEdge>;

/// Exact weighted overlap of two weighted neighborhoods:
///   min_sum = Σ_x min(w_u(x), w_v(x)),  max_sum = Σ_x max(w_u(x), w_v(x)),
///   generalized Jaccard = min_sum / max_sum.
struct WeightedOverlap {
  double strength_u = 0.0;  // Σ_x w_u(x)
  double strength_v = 0.0;
  double min_sum = 0.0;
  double max_sum = 0.0;

  double GeneralizedJaccard() const {
    return max_sum > 0.0 ? min_sum / max_sum : 0.0;
  }
};

/// Dynamic undirected *weighted* simple graph: per-vertex weight maps.
/// The exact baseline for the weighted link-prediction extension.
/// Inserting an existing edge accumulates its weight.
class WeightedAdjacencyGraph {
 public:
  WeightedAdjacencyGraph() = default;

  /// Adds `weight` (> 0) to edge {u, v}; creates it if absent.
  /// Self-loops rejected (returns false).
  bool AddEdge(VertexId u, VertexId v, double weight);
  bool AddEdge(const WeightedEdge& e) { return AddEdge(e.u, e.v, e.weight); }

  VertexId num_vertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  uint64_t num_edges() const { return num_edges_; }

  /// Weight of edge {u, v}; 0 if absent.
  double EdgeWeight(VertexId u, VertexId v) const;

  /// Total incident weight of u (weighted degree).
  double Strength(VertexId u) const;

  /// Number of (distinct) neighbors.
  uint32_t Degree(VertexId u) const;

  /// Exact weighted overlap statistics of the pair.
  WeightedOverlap ComputeOverlap(VertexId u, VertexId v) const;

  uint64_t MemoryBytes() const;

 private:
  std::vector<std::unordered_map<VertexId, double>> adjacency_;
  std::vector<double> strength_;
  uint64_t num_edges_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_WEIGHTED_GRAPH_H_

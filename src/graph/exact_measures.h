#ifndef STREAMLINK_GRAPH_EXACT_MEASURES_H_
#define STREAMLINK_GRAPH_EXACT_MEASURES_H_

#include <string>
#include <vector>

#include "graph/adjacency_graph.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace streamlink {

/// The neighborhood-based link-prediction measures the library knows about.
/// The paper's three targets are kJaccard, kCommonNeighbors, kAdamicAdar;
/// the rest are classical relatives used by examples and extended baselines.
enum class LinkMeasure {
  kCommonNeighbors,
  kJaccard,
  kAdamicAdar,
  kResourceAllocation,   // Σ 1/d(w)
  kPreferentialAttachment,  // d(u)·d(v)
  kSalton,               // |∩| / sqrt(d(u)·d(v))  (cosine)
  kSorensen,             // 2|∩| / (d(u)+d(v))
  kHubPromoted,          // |∩| / min(d(u), d(v))
  kHubDepressed,         // |∩| / max(d(u), d(v))
  kLeichtHolmeNewman,    // |∩| / (d(u)·d(v))
};

/// Stable lowercase name, e.g. "adamic_adar".
const char* LinkMeasureName(LinkMeasure measure);

/// All measures, in enum order (for parameterized tests and sweeps).
std::vector<LinkMeasure> AllLinkMeasures();

/// The exact values of the three paper measures for one pair, plus the
/// ingredients (intersection/union sizes, degrees) other measures derive
/// from. Computed in one neighborhood pass.
struct PairOverlap {
  uint32_t degree_u = 0;
  uint32_t degree_v = 0;
  uint32_t intersection = 0;
  uint32_t union_size = 0;
  double adamic_adar = 0.0;        // Σ_{w∈∩} 1/ln d(w), d(w)≥2 terms only
  double resource_allocation = 0.0;  // Σ_{w∈∩} 1/d(w)

  double Jaccard() const {
    return union_size == 0 ? 0.0
                           : static_cast<double>(intersection) / union_size;
  }
};

/// Exact overlap statistics on the dynamic graph. O(min(d(u), d(v))) with
/// hashing. Vertices outside the graph are treated as isolated.
PairOverlap ComputeOverlap(const AdjacencyGraph& graph, VertexId u,
                           VertexId v);

/// Exact overlap statistics on a CSR snapshot. O(d(u) + d(v)) merge.
PairOverlap ComputeOverlap(const CsrGraph& graph, VertexId u, VertexId v);

/// Value of an arbitrary measure from the overlap ingredients.
double MeasureFromOverlap(LinkMeasure measure, const PairOverlap& overlap);

/// One-shot exact score of `measure` for pair (u, v).
double ExactScore(const AdjacencyGraph& graph, LinkMeasure measure,
                  VertexId u, VertexId v);
double ExactScore(const CsrGraph& graph, LinkMeasure measure, VertexId u,
                  VertexId v);

/// The Adamic-Adar weight of a common neighbor of degree d: 1/ln(d) for
/// d >= 2; degree-0/1 vertices contribute 0 (they cannot be a common
/// neighbor of two distinct vertices while having degree < 2, so this
/// convention never loses mass; it also keeps 1/ln(1) from dividing by 0).
double AdamicAdarWeight(uint32_t degree);

}  // namespace streamlink

#endif  // STREAMLINK_GRAPH_EXACT_MEASURES_H_

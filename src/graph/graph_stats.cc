#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

namespace {

/// Fills the degree-derived fields shared by exact and sampled variants.
void FillBasicStats(const CsrGraph& graph, GraphStats& stats) {
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  uint64_t degree_sum = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    uint32_t d = graph.Degree(u);
    degree_sum += d;
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.num_isolated;
    stats.num_wedges += static_cast<uint64_t>(d) * (d - 1) / 2;
  }
  stats.avg_degree = stats.num_vertices > 0
                         ? static_cast<double>(degree_sum) / stats.num_vertices
                         : 0.0;
  stats.degree_skew =
      stats.avg_degree > 0 ? stats.max_degree / stats.avg_degree : 0.0;
}

}  // namespace

GraphStats ComputeGraphStats(const CsrGraph& graph) {
  GraphStats stats;
  FillBasicStats(graph, stats);

  // Exact triangle counting and local clustering.
  uint64_t triangles3 = 0;  // each triangle counted 3 times (once per corner)
  double local_sum = 0.0;
  uint64_t non_trivial = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    uint32_t d = graph.Degree(u);
    if (d < 2) continue;
    ++non_trivial;
    uint64_t closed = 0;
    auto nbrs = graph.Neighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      // Count closed wedges (u; nbrs[i], nbrs[j]) with i < j via
      // intersection of N(u) (suffix) with N(nbrs[i]).
      auto other = graph.Neighbors(nbrs[i]);
      size_t a = i + 1, b = 0;
      while (a < nbrs.size() && b < other.size()) {
        if (nbrs[a] < other[b]) {
          ++a;
        } else if (nbrs[a] > other[b]) {
          ++b;
        } else {
          ++closed;
          ++a;
          ++b;
        }
      }
    }
    triangles3 += closed;
    double wedges_u = static_cast<double>(d) * (d - 1) / 2;
    local_sum += static_cast<double>(closed) / wedges_u;
  }
  stats.num_triangles = triangles3 / 3;
  stats.global_clustering =
      stats.num_wedges > 0
          ? static_cast<double>(triangles3) / stats.num_wedges
          : 0.0;
  stats.avg_local_clustering =
      non_trivial > 0 ? local_sum / non_trivial : 0.0;
  return stats;
}

GraphStats ComputeGraphStatsSampled(const CsrGraph& graph,
                                    uint64_t num_samples, Rng& rng) {
  GraphStats stats;
  FillBasicStats(graph, stats);
  if (stats.num_wedges == 0 || num_samples == 0) return stats;

  // Sample wedges proportionally to per-vertex wedge counts.
  std::vector<VertexId> centers;
  std::vector<double> cumulative;
  centers.reserve(graph.num_vertices());
  cumulative.reserve(graph.num_vertices());
  double total = 0.0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    uint32_t d = graph.Degree(u);
    if (d < 2) continue;
    total += static_cast<double>(d) * (d - 1) / 2;
    centers.push_back(u);
    cumulative.push_back(total);
  }
  uint64_t closed = 0;
  for (uint64_t s = 0; s < num_samples; ++s) {
    double r = rng.NextDouble() * total;
    size_t idx = std::lower_bound(cumulative.begin(), cumulative.end(), r) -
                 cumulative.begin();
    if (idx >= centers.size()) idx = centers.size() - 1;
    VertexId u = centers[idx];
    auto nbrs = graph.Neighbors(u);
    uint64_t i = rng.NextBounded(nbrs.size());
    uint64_t j = rng.NextBounded(nbrs.size() - 1);
    if (j >= i) ++j;
    if (graph.HasEdge(nbrs[i], nbrs[j])) ++closed;
  }
  stats.global_clustering = static_cast<double>(closed) / num_samples;
  stats.num_triangles = static_cast<uint64_t>(
      stats.global_clustering * static_cast<double>(stats.num_wedges) / 3.0);
  stats.avg_local_clustering = stats.global_clustering;  // sampled proxy
  return stats;
}

std::vector<uint64_t> DegreeHistogram(const CsrGraph& graph) {
  uint32_t max_degree = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    max_degree = std::max(max_degree, graph.Degree(u));
  }
  std::vector<uint64_t> hist(max_degree + 1, 0);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    ++hist[graph.Degree(u)];
  }
  return hist;
}

double FitPowerLawExponent(const std::vector<uint64_t>& degree_histogram,
                           uint32_t d_min) {
  SL_CHECK(d_min >= 1) << "d_min must be >= 1";
  // Discrete MLE approximation: alpha = 1 + n / Σ ln(d / (d_min - 0.5)).
  double log_sum = 0.0;
  uint64_t n = 0;
  for (uint32_t d = d_min; d < degree_histogram.size(); ++d) {
    uint64_t count = degree_histogram[d];
    if (count == 0) continue;
    n += count;
    log_sum += count * std::log(static_cast<double>(d) / (d_min - 0.5));
  }
  if (n < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace streamlink

#ifndef STREAMLINK_STREAM_OP_STREAM_H_
#define STREAMLINK_STREAM_OP_STREAM_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"
#include "stream/edge_batch.h"

namespace streamlink {

/// One turnstile stream event: an edge plus whether it is being inserted
/// or retracted. The replayable unit of a delete-capable workload.
struct EdgeEvent {
  Edge edge;
  EdgeOp op = EdgeOp::kInsert;

  EdgeEvent() = default;
  EdgeEvent(const Edge& e, EdgeOp o) : edge(e), op(o) {}

  bool operator==(const EdgeEvent& other) const {
    return edge == other.edge && op == other.op;
  }
};

using EdgeEventList = std::vector<EdgeEvent>;

/// A pull-based source of turnstile events — the delete-capable analogue of
/// EdgeStream. Implementations must be replayable via Reset() so the
/// verification cross products can rebuild the same stream repeatedly.
class OpStream {
 public:
  virtual ~OpStream() = default;

  /// Writes the next event and returns true, or returns false at
  /// end-of-stream.
  virtual bool Next(EdgeEvent* event) = 0;

  /// Rewinds to the beginning of the stream.
  virtual void Reset() = 0;

  /// Total number of events if known, 0 otherwise (sizing hint only).
  virtual size_t SizeHint() const { return 0; }
};

/// OpStream over an in-memory event list (non-owning by default via copy;
/// cheap for verification-scale workloads).
class VectorOpStream : public OpStream {
 public:
  explicit VectorOpStream(EdgeEventList events)
      : events_(std::move(events)) {}

  bool Next(EdgeEvent* event) override {
    if (pos_ >= events_.size()) return false;
    *event = events_[pos_++];
    return true;
  }

  void Reset() override { pos_ = 0; }
  size_t SizeHint() const override { return events_.size(); }

 private:
  EdgeEventList events_;
  size_t pos_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_OP_STREAM_H_

#include "stream/sliding_window.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

SlidingWindowGraph::SlidingWindowGraph(uint64_t window_size)
    : window_size_(window_size) {
  SL_CHECK(window_size >= 1) << "window must hold at least one edge";
}

uint32_t SlidingWindowGraph::Add(const Edge& edge) {
  if (edge.IsSelfLoop()) return 0;
  Edge canonical = edge.Canonical();
  if (!graph_.AddEdge(canonical)) {
    // Duplicate: refresh its position so it expires later.
    auto it = std::find(order_.begin(), order_.end(), canonical);
    SL_DCHECK(it != order_.end()) << "graph/window desync";
    order_.erase(it);
    order_.push_back(canonical);
    return 0;
  }
  order_.push_back(canonical);
  if (order_.size() <= window_size_) return 0;
  Edge oldest = order_.front();
  order_.pop_front();
  bool removed = graph_.RemoveEdge(oldest.u, oldest.v);
  SL_DCHECK(removed) << "expired edge missing from graph";
  (void)removed;
  return 1;
}

}  // namespace streamlink

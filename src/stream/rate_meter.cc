#include "stream/rate_meter.h"

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace streamlink {

RateMeter::RateMeter(double window_seconds)
    : window_seconds_(window_seconds) {
  SL_CHECK(window_seconds > 0.0) << "window must be positive";
}

void RateMeter::Record(double now_seconds, uint64_t count) {
  if (!has_samples_) {
    first_time_ = now_seconds;
    has_samples_ = true;
  }
  SL_DCHECK(now_seconds >= last_time_) << "time went backwards";
  last_time_ = now_seconds;
  total_events_ += count;
  window_.push_back(Sample{now_seconds, count});
  window_events_ += count;
  while (!window_.empty() &&
         window_.front().time < now_seconds - window_seconds_) {
    window_events_ -= window_.front().count;
    window_.pop_front();
  }
  if (gauge_ != nullptr) gauge_->Set(WindowRate());
}

void RateMeter::RecordNow(uint64_t count) {
  Record(MonotonicSeconds(), count);
}

double RateMeter::LifetimeRate() const {
  if (!has_samples_) return 0.0;
  double span = last_time_ - first_time_;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(total_events_) / span;
}

double RateMeter::WindowRate() const {
  if (window_.size() < 2) return 0.0;
  double span = window_.back().time - window_.front().time;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(window_events_) / span;
}

}  // namespace streamlink

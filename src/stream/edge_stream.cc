#include "stream/edge_stream.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace streamlink {

VectorEdgeStream::VectorEdgeStream(EdgeList edges)
    : edges_(std::move(edges)) {}

bool VectorEdgeStream::Next(Edge* edge) {
  if (position_ >= edges_.size()) return false;
  *edge = edges_[position_++];
  return true;
}

DedupEdgeStream::DedupEdgeStream(std::unique_ptr<EdgeStream> inner)
    : inner_(std::move(inner)) {
  SL_CHECK(inner_ != nullptr) << "DedupEdgeStream needs an inner stream";
}

bool DedupEdgeStream::Next(Edge* edge) {
  Edge e;
  while (inner_->Next(&e)) {
    if (e.IsSelfLoop()) continue;
    if (!seen_.insert(e.Canonical()).second) continue;
    *edge = e;
    return true;
  }
  return false;
}

void DedupEdgeStream::Reset() {
  inner_->Reset();
  seen_.clear();
}

PrefixEdgeStream::PrefixEdgeStream(std::unique_ptr<EdgeStream> inner,
                                   uint64_t limit)
    : inner_(std::move(inner)), limit_(limit) {
  SL_CHECK(inner_ != nullptr) << "PrefixEdgeStream needs an inner stream";
}

bool PrefixEdgeStream::Next(Edge* edge) {
  if (produced_ >= limit_) return false;
  if (!inner_->Next(edge)) return false;
  ++produced_;
  return true;
}

void PrefixEdgeStream::Reset() {
  inner_->Reset();
  produced_ = 0;
}

uint64_t PrefixEdgeStream::SizeHint() const {
  uint64_t inner_hint = inner_->SizeHint();
  return inner_hint == 0 ? limit_ : std::min(inner_hint, limit_);
}

SkipEdgeStream::SkipEdgeStream(std::unique_ptr<EdgeStream> inner,
                               uint64_t skip)
    : inner_(std::move(inner)), skip_(skip) {
  SL_CHECK(inner_ != nullptr) << "SkipEdgeStream needs an inner stream";
}

bool SkipEdgeStream::Next(Edge* edge) {
  // Lazy skip: discarding here instead of in the constructor keeps Reset
  // cheap and construction side-effect-free.
  Edge discard;
  while (skipped_ < skip_) {
    if (!inner_->Next(&discard)) return false;
    ++skipped_;
  }
  return inner_->Next(edge);
}

void SkipEdgeStream::Reset() {
  inner_->Reset();
  skipped_ = 0;
}

uint64_t SkipEdgeStream::SizeHint() const {
  uint64_t inner_hint = inner_->SizeHint();
  return inner_hint > skip_ ? inner_hint - skip_ : 0;
}

}  // namespace streamlink

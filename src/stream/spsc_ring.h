#ifndef STREAMLINK_STREAM_SPSC_RING_H_
#define STREAMLINK_STREAM_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace streamlink {

/// Bounded single-producer/single-consumer ring buffer — the lock-free
/// hand-off lane between the parallel ingest router (one producer) and each
/// shard worker (one consumer). Compared with the retired mutex+condvar
/// BoundedBatchQueue, a push or pop is one relaxed index bump plus one
/// release/acquire store — no lock, no syscall, no wakeup convoy when all
/// shards drain at once.
///
/// Design notes (the classic Lamport ring with cached indices):
///  * capacity is rounded up to a power of two so masking replaces modulo;
///  * `head_` (consumer-owned) and `tail_` (producer-owned) live on
///    separate cache lines to stop producer/consumer ping-ponging;
///  * each side keeps a *cached* copy of the other side's index and only
///    re-reads the shared atomic when the cache says full/empty, so the
///    common case touches one shared line, not two.
///
/// TryPush/TryPop never block; callers layer their own backoff (the ingest
/// engine spins-then-yields and counts stalls in ingest.ring_full_stalls).
/// Close() lets the producer signal end-of-stream: after it, TryPop keeps
/// draining and `closed() && empty-pop` means done.
///
/// Exactly one producer thread and one consumer thread, ever. T must be
/// movable.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity)
      : capacity_(RoundUpPow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Producer side. Returns false (without consuming `value`) when full.
  bool TryPush(T& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: no more pushes will follow. Idempotent.
  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Consumer side. Returns false when empty (which, combined with
  /// closed(), means end-of-stream — check closed() AFTER a failed pop to
  /// avoid missing a final push that raced with Close()).
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (either side may race it forward); exact when
  /// both threads are quiescent.
  size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  static constexpr size_t kCacheLine = 64;

  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;

  // Consumer-owned line: head index + the consumer's cache of tail.
  alignas(kCacheLine) std::atomic<size_t> head_{0};
  size_t cached_tail_ = 0;

  // Producer-owned line: tail index + the producer's cache of head.
  alignas(kCacheLine) std::atomic<size_t> tail_{0};
  size_t cached_head_ = 0;

  alignas(kCacheLine) std::atomic<bool> closed_{false};
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_SPSC_RING_H_

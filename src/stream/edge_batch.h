#ifndef STREAMLINK_STREAM_EDGE_BATCH_H_
#define STREAMLINK_STREAM_EDGE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace streamlink {

/// Turnstile op tag carried (optionally) alongside each batch element.
/// kInsert adds the edge (or half-edge) to the stream; kDelete retracts a
/// previously inserted one. A batch with no op lane is all-inserts — the
/// pre-turnstile wire format, still the common case.
enum class EdgeOp : uint8_t {
  kInsert = 0,
  kDelete = 1,
};

/// A non-owning view of a contiguous run of stream edges, optionally
/// annotated with pre-computed per-endpoint vertex hashes — the unit of
/// delivery for the batched ingestion API (EdgeConsumer::OnEdgeBatch) and
/// the payload the parallel ingest engine hands across threads.
///
/// Lanes:
///  * `edges` (always present): the run itself. For *whole-edge* batches
///    each element is an undirected stream edge; for the engine's
///    *half-edge* batches, element (u, v) means "u gained neighbor v" and
///    u is always owned by the receiving shard.
///  * `ops` (optional): the turnstile op of each element (EdgeOp). Absent
///    means every element is an insert, so insert-only producers and
///    consumers pay nothing for the lane's existence.
///  * `hash_u` / `hash_v` (optional, independently nullable): the seeded
///    vertex hash `HashU64(edge.u, seed)` / `HashU64(edge.v, seed)` of each
///    element, computed ONCE by the producer under the seed the consumer
///    announced (LinkPredictor::NeighborHashSeed), so single-hash sketch
///    kernels (bottom-k) never re-hash on the hot path. Half-edge batches
///    carry only the `hash_v` (neighbor) lane.
///
/// The view is valid only for the duration of the OnEdgeBatch call it is
/// passed to; consumers must copy anything they keep. A batch is
/// semantically identical to delivering its edges through OnEdge in order
/// (the hash lanes are a pure evaluation-strategy hint — they never change
/// what state an update produces).
class EdgeBatch {
 public:
  EdgeBatch() = default;
  EdgeBatch(const Edge* edges, size_t count)
      : edges_(edges), count_(count) {}
  EdgeBatch(const Edge* edges, size_t count, const uint64_t* hash_u,
            const uint64_t* hash_v)
      : edges_(edges), count_(count), hash_u_(hash_u), hash_v_(hash_v) {}
  EdgeBatch(const Edge* edges, size_t count, const uint64_t* hash_u,
            const uint64_t* hash_v, const EdgeOp* ops)
      : edges_(edges),
        count_(count),
        hash_u_(hash_u),
        hash_v_(hash_v),
        ops_(ops) {}

  /// Wraps one edge as a size-1 batch — what the cold-path OnEdge
  /// convenience forwards through. The edge must outlive the view.
  static EdgeBatch Single(const Edge& edge) { return EdgeBatch(&edge, 1); }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const Edge* data() const { return edges_; }
  const Edge& operator[](size_t i) const { return edges_[i]; }
  const Edge* begin() const { return edges_; }
  const Edge* end() const { return edges_ + count_; }

  bool has_hash_u() const { return hash_u_ != nullptr; }
  bool has_hash_v() const { return hash_v_ != nullptr; }
  /// Pre-computed HashU64(edge.u / edge.v, seed). Precondition:
  /// has_hash_u() / has_hash_v().
  uint64_t hash_u(size_t i) const { return hash_u_[i]; }
  uint64_t hash_v(size_t i) const { return hash_v_[i]; }
  const uint64_t* hash_u_lane() const { return hash_u_; }
  const uint64_t* hash_v_lane() const { return hash_v_; }

  bool has_ops() const { return ops_ != nullptr; }
  /// Per-element turnstile op. Batches without an op lane are all-inserts,
  /// so op(i) is total: it answers kInsert when the lane is absent.
  EdgeOp op(size_t i) const {
    return ops_ != nullptr ? ops_[i] : EdgeOp::kInsert;
  }
  const EdgeOp* ops_lane() const { return ops_; }

  /// Span-style sub-view of `count` edges starting at `offset`, lanes
  /// included. Precondition: offset + count <= size().
  EdgeBatch Slice(size_t offset, size_t count) const {
    return EdgeBatch(edges_ + offset, count,
                     hash_u_ != nullptr ? hash_u_ + offset : nullptr,
                     hash_v_ != nullptr ? hash_v_ + offset : nullptr,
                     ops_ != nullptr ? ops_ + offset : nullptr);
  }
  /// The first `count` edges (or all of them, if fewer).
  EdgeBatch Prefix(size_t count) const {
    return Slice(0, count < count_ ? count : count_);
  }

 private:
  const Edge* edges_ = nullptr;
  size_t count_ = 0;
  const uint64_t* hash_u_ = nullptr;
  const uint64_t* hash_v_ = nullptr;
  const EdgeOp* ops_ = nullptr;
};

/// Owning storage a producer fills and ships (by move) to a consumer, which
/// reads it through View(). Appending with a hash on one element and
/// without on another is a bug — lanes are all-or-nothing per buffer, and
/// View() drops a lane whose length disagrees with the edge count.
struct EdgeBatchBuffer {
  EdgeList edges;
  std::vector<uint64_t> hash_u;
  std::vector<uint64_t> hash_v;
  std::vector<EdgeOp> ops;

  void Reserve(size_t n, bool with_hash_u, bool with_hash_v,
               bool with_ops = false) {
    edges.reserve(n);
    if (with_hash_u) hash_u.reserve(n);
    if (with_hash_v) hash_v.reserve(n);
    if (with_ops) ops.reserve(n);
  }

  void Clear() {
    edges.clear();
    hash_u.clear();
    hash_v.clear();
    ops.clear();
  }

  size_t size() const { return edges.size(); }
  bool empty() const { return edges.empty(); }

  void Append(const Edge& e) { edges.push_back(e); }

  /// Appends a whole edge with an explicit turnstile op.
  void AppendOp(const Edge& e, EdgeOp op) {
    edges.push_back(e);
    ops.push_back(op);
  }

  /// Appends a half-edge (owner u, neighbor v) with the neighbor's
  /// pre-computed hash.
  void AppendHalfEdge(VertexId u, VertexId v, uint64_t neighbor_hash) {
    edges.emplace_back(u, v);
    hash_v.push_back(neighbor_hash);
  }

  /// Appends a half-edge with both an op and the neighbor's hash.
  void AppendHalfEdgeOp(VertexId u, VertexId v, uint64_t neighbor_hash,
                        EdgeOp op) {
    edges.emplace_back(u, v);
    hash_v.push_back(neighbor_hash);
    ops.push_back(op);
  }

  /// Appends a half-edge with an op and no hash lane.
  void AppendHalfEdgePlainOp(VertexId u, VertexId v, EdgeOp op) {
    edges.emplace_back(u, v);
    ops.push_back(op);
  }

  /// Appends a whole edge with both endpoint hashes.
  void AppendHashed(const Edge& e, uint64_t hu, uint64_t hv) {
    edges.push_back(e);
    hash_u.push_back(hu);
    hash_v.push_back(hv);
  }

  EdgeBatch View() const {
    return EdgeBatch(
        edges.data(), edges.size(),
        hash_u.size() == edges.size() && !edges.empty() ? hash_u.data()
                                                        : nullptr,
        hash_v.size() == edges.size() && !edges.empty() ? hash_v.data()
                                                        : nullptr,
        ops.size() == edges.size() && !edges.empty() ? ops.data() : nullptr);
  }
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_EDGE_BATCH_H_

#ifndef STREAMLINK_STREAM_RATE_METER_H_
#define STREAMLINK_STREAM_RATE_METER_H_

#include <cstdint>
#include <deque>

namespace streamlink {

namespace obs {
class Gauge;
}  // namespace obs

/// Tracks event throughput with both a lifetime average and a sliding
/// window of recent samples, using an injectable clock so tests can drive
/// it deterministically. The throughput experiments use it to report
/// steady-state edges/sec (excluding warm-up).
class RateMeter {
 public:
  /// `window_seconds`: span of the recent-rate window.
  explicit RateMeter(double window_seconds = 1.0);

  /// Records `count` events at time `now_seconds` (monotonic, caller
  /// supplied; the stream driver passes a WallTimer reading).
  void Record(double now_seconds, uint64_t count = 1);

  /// Records `count` events at the current monotonic time
  /// (MonotonicSeconds — the process-wide steady-clock epoch), so rates
  /// from different meters and the obs subsystem share one time base.
  void RecordNow(uint64_t count = 1);

  /// Mirrors WindowRate() into `gauge` after every Record/RecordNow, so a
  /// MetricsRegistry scrape sees the live windowed rate without polling
  /// this meter. `gauge` must outlive the meter; nullptr detaches.
  void BindGauge(obs::Gauge* gauge) { gauge_ = gauge; }

  uint64_t total_events() const { return total_events_; }

  /// Events/sec since the first Record.
  double LifetimeRate() const;

  /// Events/sec over the trailing window ending at the last Record.
  double WindowRate() const;

 private:
  struct Sample {
    double time;
    uint64_t count;
  };

  double window_seconds_;
  std::deque<Sample> window_;
  uint64_t window_events_ = 0;
  uint64_t total_events_ = 0;
  double first_time_ = 0.0;
  double last_time_ = 0.0;
  bool has_samples_ = false;
  obs::Gauge* gauge_ = nullptr;
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_RATE_METER_H_

#ifndef STREAMLINK_STREAM_PARALLEL_INGEST_H_
#define STREAMLINK_STREAM_PARALLEL_INGEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor_factory.h"
#include "graph/types.h"
#include "stream/edge_stream.h"
#include "stream/op_stream.h"
#include "util/status.h"

namespace streamlink {

class FlagParser;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Callback invoked at a live-publish point: the predictor under
/// construction (fully quiesced — no worker is writing while the callback
/// runs) and the number of stream edges consumed so far. For turnstile
/// builds (Build(OpStream&)) the cursor counts *events* — inserts and
/// deletes alike — so serving-side staleness accounting charges deletes
/// too. The serving layer (QueryService::IngestPublisher) snapshots
/// through this.
using IngestPublishFn =
    std::function<void(const LinkPredictor&, uint64_t stream_edges)>;

/// How a multi-threaded build trades determinism for throughput.
enum class IngestOrdering {
  /// Vertex-sharded ingestion, bit-identical to a sequential build: every
  /// vertex's half-edges reach its single owning shard in stream order.
  /// The default, and the only mode that supports live publishing.
  kOrdered,
  /// Edge-partitioned replicas folded by a disjoint-partition merge at
  /// end-of-stream. No bit-identity promise and no live publishing — the
  /// contract is only that final estimates pass the differential oracle
  /// (src/verify/) within its Hoeffding tolerances. Available for kinds
  /// with a lossless MergeFrom (KindSupportsReplicatedMerge); costs up to
  /// threads× the per-vertex state during the build. In exchange the hot
  /// path has no routing, no per-vertex ownership, and no quiesce
  /// coupling between workers.
  kRelaxed,
};

/// "ordered" / "relaxed".
std::string IngestOrderingName(IngestOrdering ordering);

/// Parses an --ingest-mode value; InvalidArgument on anything else.
Result<IngestOrdering> ParseIngestOrdering(const std::string& name);

/// True for kinds whose MergeFrom folds disjoint stream partitions
/// losslessly (minhash, bottomk) — the precondition of kRelaxed.
bool KindSupportsReplicatedMerge(const std::string& kind);

/// Tuning knobs for ParallelIngestEngine. Prefer IngestEngineBuilder over
/// filling this struct by hand; invalid combinations surface as
/// InvalidArgument from Build, never as crashes.
struct ParallelIngestOptions {
  /// Edges per batch handed across a ring: half-edges per shard batch in
  /// kOrdered, whole stream edges per replica batch in kRelaxed. Large
  /// batches are the point of the design — hand-off cost, hash-lane
  /// pre-computation, and the one virtual dispatch all amortize over it.
  uint32_t batch_edges = 8192;
  /// Ring capacity in batches per worker (rounded up to a power of two).
  /// The router stalls — counted in ingest.ring_full_stalls — when a ring
  /// is full.
  uint32_t ring_batches = 64;
  IngestOrdering ordering = IngestOrdering::kOrdered;
  /// Live-publish cadence in stream edges (0 = disabled): after every
  /// `publish_every_edges` edges pulled from the stream, the engine
  /// quiesces the shards (epoch barrier: waits until every shard's
  /// applied-batch counter catches its pushed-batch counter), invokes
  /// `on_publish`, then resumes routing. Also fires once at end-of-stream.
  /// kOrdered only.
  uint64_t publish_every_edges = 0;
  /// Time-based cadence in seconds (0 = disabled); checked at batch
  /// granularity and composable with the edge-count cadence (either
  /// trigger publishes and resets both). kOrdered only.
  double publish_every_seconds = 0.0;
  /// Required when either cadence is set.
  IngestPublishFn on_publish;
  /// When set, Build registers and maintains the `ingest.*` metric family
  /// (docs/observability.md): edge/publish counters, live-frontier and
  /// window-rate gauges, batch-size / ring-wait / publish-duration
  /// histograms, the ring_full_stalls counter, and one
  /// `ingest.shard<t>.half_edges_total` counter per worker. Updates happen
  /// at batch granularity, never per edge. The registry must outlive
  /// Build; nullptr (default) disables all instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Builds a predictor from an edge stream using `config.threads` ingestion
/// workers.
///
/// kOrdered (default): each worker owns one vertex shard (shard t owns
/// every vertex u with u % threads == t); the calling thread routes each
/// stream edge (u, v) as two half-edges to the owners of u and v through
/// per-shard bounded SPSC rings (stream/spsc_ring.h) carrying large
/// pre-hashed EdgeBatch payloads. Because sketch updates are commutative
/// and idempotent and every vertex's half-edges reach its single owner in
/// stream order, the result is bit-identical to a sequential build — the
/// returned ShardedPredictor answers queries by routing to owners, with no
/// merge step. When the kind consumes a single seeded neighbor hash
/// (LinkPredictor::NeighborHashSeed — bottomk), the router pre-computes it
/// once per half-edge into the batch's hash lane, so shard workers never
/// re-hash.
///
/// kRelaxed: each worker owns a full replica and ingests an arbitrary
/// partition of whole edges with no routing at all; replicas are folded by
/// MergeFrom at end-of-stream. See IngestOrdering for the contract.
///
/// threads == 1 degenerates to an ordinary sequential build (no rings, no
/// worker threads) and returns the plain underlying predictor.
///
/// With a publish cadence configured (kOrdered only), the engine
/// periodically quiesces the workers and hands the live predictor to
/// `on_publish` — the hook QueryService uses to serve consistent snapshots
/// while the build is still running (docs/serving.md).
class ParallelIngestEngine {
 public:
  explicit ParallelIngestEngine(PredictorConfig config,
                                ParallelIngestOptions options = {});

  /// Consumes the whole stream and returns the built predictor.
  /// InvalidArgument if the config or options are invalid, the kind cannot
  /// be sharded (kOrdered) or merged (kRelaxed) at the requested thread
  /// count, or a publish cadence is combined with kRelaxed.
  Result<std::unique_ptr<LinkPredictor>> Build(EdgeStream& stream);

  /// Turnstile build: consumes a stream of insert/delete events through
  /// the same machinery — sequential, ordered (op-tagged half-edge batches
  /// routed to vertex owners; bit-identical to a sequential replay), or
  /// relaxed (whole-event replicas folded at end-of-stream; tcm only,
  /// since the fold must be lossless for deletions too). The kind must
  /// support deletions (KindSupportsDeletions), or be tombstone-wrapped
  /// via config.tombstone_window at threads == 1; anything else is
  /// InvalidArgument. Tombstone-wrapped builds are flushed at
  /// end-of-stream.
  Result<std::unique_ptr<LinkPredictor>> Build(OpStream& stream);

  /// Edges pulled from the stream by the last Build (including
  /// self-loops, which are dropped during routing). For turnstile builds
  /// this counts *events* (inserts + deletes) — the staleness cursor.
  uint64_t edges_ingested() const { return edges_ingested_; }

  /// Delete events pulled from the stream by the last turnstile Build.
  uint64_t deletes_ingested() const { return deletes_ingested_; }

  const ParallelIngestOptions& options() const { return options_; }

 private:
  Result<std::unique_ptr<LinkPredictor>> BuildSequential(EdgeStream& stream);
  Result<std::unique_ptr<LinkPredictor>> BuildOrdered(EdgeStream& stream);
  Result<std::unique_ptr<LinkPredictor>> BuildRelaxed(EdgeStream& stream);
  Result<std::unique_ptr<LinkPredictor>> BuildSequentialOps(OpStream& stream);
  Result<std::unique_ptr<LinkPredictor>> BuildOrderedOps(OpStream& stream);
  Result<std::unique_ptr<LinkPredictor>> BuildRelaxedOps(OpStream& stream);
  Status Validate() const;
  Status ValidateTurnstile() const;

  PredictorConfig config_;
  ParallelIngestOptions options_;
  uint64_t edges_ingested_ = 0;
  uint64_t deletes_ingested_ = 0;
};

/// Fluent construction for parallel ingestion — the one place every knob
/// of a build is wired, replacing positional-constructor + post-hoc-setter
/// call sites:
///
///   auto built = IngestEngineBuilder(config)
///                    .Threads(8)
///                    .Ordering(IngestOrdering::kRelaxed)
///                    .BatchEdges(16384)
///                    .Metrics(&registry)
///                    .Ingest(stream);
///
/// Checkpoint/serving wiring goes through PublishTo, which accepts any
/// publish source exposing IngestPublisher() (CheckpointManager,
/// QueryService) without this header depending on persist/ or serve/:
///
///   builder.PublishTo(*checkpoints).PublishEveryEdges(100000);
///
/// CLI/bench binaries map the shared ingest flags (--ingest-mode,
/// --batch-edges, --ring-batches) with ApplyFlags, alongside
/// PredictorConfigFromFlags for the predictor flags.
class IngestEngineBuilder {
 public:
  IngestEngineBuilder() = default;
  explicit IngestEngineBuilder(PredictorConfig config)
      : config_(std::move(config)) {}

  IngestEngineBuilder& Config(PredictorConfig config) {
    config_ = std::move(config);
    return *this;
  }
  IngestEngineBuilder& Threads(uint32_t threads) {
    config_.threads = threads;
    return *this;
  }
  IngestEngineBuilder& BatchEdges(uint32_t batch_edges) {
    options_.batch_edges = batch_edges;
    return *this;
  }
  IngestEngineBuilder& RingBatches(uint32_t ring_batches) {
    options_.ring_batches = ring_batches;
    return *this;
  }
  IngestEngineBuilder& Ordering(IngestOrdering ordering) {
    options_.ordering = ordering;
    return *this;
  }
  IngestEngineBuilder& Metrics(obs::MetricsRegistry* registry) {
    options_.metrics = registry;
    return *this;
  }
  IngestEngineBuilder& PublishEveryEdges(uint64_t edges) {
    options_.publish_every_edges = edges;
    return *this;
  }
  IngestEngineBuilder& PublishEverySeconds(double seconds) {
    options_.publish_every_seconds = seconds;
    return *this;
  }
  IngestEngineBuilder& OnPublish(IngestPublishFn fn) {
    options_.on_publish = std::move(fn);
    return *this;
  }
  /// Publishes through `source.IngestPublisher()` — works for any source
  /// with that hook (CheckpointManager, QueryService) without a layering
  /// edge from stream/ to persist/ or serve/.
  template <typename Source>
  IngestEngineBuilder& PublishTo(Source& source) {
    return OnPublish(source.IngestPublisher());
  }

  /// Applies the shared ingest flags (absent flags keep current values):
  ///   --ingest-mode M      ordered | relaxed
  ///   --batch-edges N      edges per ring batch
  ///   --ring-batches N     ring capacity in batches
  /// InvalidArgument on an unknown mode name.
  Status ApplyFlags(const FlagParser& flags);

  /// The flag names ApplyFlags consumes — append to CheckUnknown
  /// allowlists next to PredictorFlagNames().
  static std::vector<std::string> FlagNames();
  /// One line per ingest flag, for usage/help text.
  static std::string FlagsHelp();

  const PredictorConfig& config() const { return config_; }
  const ParallelIngestOptions& options() const { return options_; }

  /// Finalizes into an engine. Never fails by itself — option/config
  /// validation surfaces from ParallelIngestEngine::Build.
  ParallelIngestEngine BuildEngine() const {
    return ParallelIngestEngine(config_, options_);
  }

  /// One-shot convenience: build the engine and consume the stream.
  /// `edges_ingested`, when non-null, receives the stream-edge tally.
  Result<std::unique_ptr<LinkPredictor>> Ingest(
      EdgeStream& stream, uint64_t* edges_ingested = nullptr) const {
    ParallelIngestEngine engine = BuildEngine();
    auto built = engine.Build(stream);
    if (edges_ingested != nullptr) *edges_ingested = engine.edges_ingested();
    return built;
  }

  /// Turnstile one-shot: events_ingested counts inserts + deletes.
  Result<std::unique_ptr<LinkPredictor>> Ingest(
      OpStream& stream, uint64_t* events_ingested = nullptr) const {
    ParallelIngestEngine engine = BuildEngine();
    auto built = engine.Build(stream);
    if (events_ingested != nullptr) {
      *events_ingested = engine.edges_ingested();
    }
    return built;
  }

 private:
  PredictorConfig config_;
  ParallelIngestOptions options_;
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_PARALLEL_INGEST_H_

#ifndef STREAMLINK_STREAM_PARALLEL_INGEST_H_
#define STREAMLINK_STREAM_PARALLEL_INGEST_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "core/predictor_factory.h"
#include "graph/types.h"
#include "stream/edge_stream.h"
#include "util/status.h"

namespace streamlink {

namespace obs {
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Bounded single-producer / single-consumer queue of half-edge batches.
/// Push blocks while `capacity` batches are in flight (backpressure on the
/// router); Pop blocks until a batch arrives, returning false once the
/// queue is closed and drained.
class BoundedBatchQueue {
 public:
  explicit BoundedBatchQueue(size_t capacity);

  /// Blocks until there is room, then enqueues. Must not be called after
  /// Close.
  void Push(EdgeList batch);

  /// Blocks for the next batch. Returns false when the queue is closed and
  /// every pushed batch has been popped.
  bool Pop(EdgeList* batch);

  /// Marks end-of-stream; wakes any blocked Pop.
  void Close();

  /// Records producer backpressure into `hist` (nanoseconds blocked in
  /// Push when the queue was full on entry — uncontended pushes record
  /// nothing). `hist` must outlive the queue; nullptr disables.
  void BindPushWaitHistogram(obs::Histogram* hist) { push_wait_ns_ = hist; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<EdgeList> batches_;
  bool closed_ = false;
  obs::Histogram* push_wait_ns_ = nullptr;
};

/// Callback invoked at a live-publish point: the predictor under
/// construction (fully quiesced — no worker is writing while the callback
/// runs) and the number of stream edges consumed so far. The serving layer
/// (QueryService::IngestPublisher) snapshots through this.
using IngestPublishFn =
    std::function<void(const LinkPredictor&, uint64_t stream_edges)>;

/// Tuning knobs for ParallelIngestEngine.
struct ParallelIngestOptions {
  /// Half-edges per routed batch handed to a worker.
  uint32_t batch_edges = 2048;
  /// Batches buffered per worker queue before the router blocks.
  uint32_t max_inflight_batches = 32;
  /// Live-publish cadence in stream edges (0 = disabled): after every
  /// `publish_every_edges` edges pulled from the stream, the engine drains
  /// and pauses the shard workers (a barrier, amortized over the cadence),
  /// invokes `on_publish`, then resumes routing. Also fires once at
  /// end-of-stream so the final snapshot is complete.
  uint64_t publish_every_edges = 0;
  /// Time-based cadence in seconds (0 = disabled); checked at batch
  /// granularity and composable with the edge-count cadence (either
  /// trigger publishes and resets both).
  double publish_every_seconds = 0.0;
  /// Required when either cadence is set.
  IngestPublishFn on_publish;
  /// When set, Build registers and maintains the `ingest.*` metric family
  /// (docs/observability.md): edge/publish counters, live-frontier and
  /// window-rate gauges, batch-size / queue-wait / publish-duration
  /// histograms, and one `ingest.shard<t>.half_edges_total` counter per
  /// worker. Updates happen at batch granularity, never per edge. The
  /// registry must outlive Build; nullptr (default) disables all
  /// instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Builds a predictor from an edge stream using `config.threads` ingestion
/// workers. Each worker owns one vertex shard (shard t owns every vertex u
/// with u % threads == t); the calling thread routes each stream edge
/// (u, v) as two half-edges to the owners of u and v through bounded
/// queues. Because sketch updates are commutative and idempotent and every
/// vertex's half-edges reach its single owner in stream order, the result
/// is bit-identical to a sequential build — the returned ShardedPredictor
/// answers queries by routing to owners, with no merge step.
///
/// threads == 1 degenerates to an ordinary sequential build (no queues, no
/// worker threads) and returns the plain underlying predictor.
///
/// With a publish cadence configured (see ParallelIngestOptions), the
/// engine periodically quiesces the workers and hands the live predictor
/// to `on_publish` — the hook QueryService uses to serve consistent
/// snapshots while the build is still running (docs/serving.md).
class ParallelIngestEngine {
 public:
  explicit ParallelIngestEngine(PredictorConfig config,
                                ParallelIngestOptions options = {});

  /// Consumes the whole stream and returns the built predictor.
  /// InvalidArgument if the config is invalid or the kind cannot be
  /// sharded at the requested thread count.
  Result<std::unique_ptr<LinkPredictor>> Build(EdgeStream& stream);

  /// Edges pulled from the stream by the last Build (including
  /// self-loops, which are dropped during routing).
  uint64_t edges_ingested() const { return edges_ingested_; }

 private:
  PredictorConfig config_;
  ParallelIngestOptions options_;
  uint64_t edges_ingested_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_PARALLEL_INGEST_H_

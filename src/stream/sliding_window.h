#ifndef STREAMLINK_STREAM_SLIDING_WINDOW_H_
#define STREAMLINK_STREAM_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>

#include "graph/adjacency_graph.h"
#include "graph/types.h"
#include "stream/stream_driver.h"

namespace streamlink {

/// Count-based sliding-window graph: maintains the exact graph induced by
/// the most recent `window_size` *distinct* inserted edges, expiring the
/// oldest as new edges arrive.
///
/// This is the extension layer for recency-weighted link prediction (the
/// paper's model is insert-only; windowing is listed as the natural
/// follow-up and exercised by the drifting-graph example). Duplicate
/// arrivals refresh an edge's position in the window.
class SlidingWindowGraph : public EdgeConsumer {
 public:
  explicit SlidingWindowGraph(uint64_t window_size);

  void OnEdge(const Edge& edge) override { Add(edge); }

  /// Batched delivery (EdgeBatch API): expiry order must match arrival
  /// order, so the batch is the amortized loop.
  using EdgeConsumer::OnEdgeBatch;
  void OnEdgeBatch(const EdgeBatch& batch) override {
    for (const Edge& e : batch) Add(e);
  }

  /// Inserts an edge, expiring the oldest if the window overflows.
  /// Returns the number of edges expired (0 or 1; duplicates expire none).
  uint32_t Add(const Edge& edge);

  uint64_t window_size() const { return window_size_; }
  uint64_t current_edges() const { return order_.size(); }

  /// The graph of the current window contents.
  const AdjacencyGraph& graph() const { return graph_; }

 private:
  uint64_t window_size_;
  AdjacencyGraph graph_;
  std::deque<Edge> order_;  // canonical edges, oldest first
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_SLIDING_WINDOW_H_

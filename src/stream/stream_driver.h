#ifndef STREAMLINK_STREAM_STREAM_DRIVER_H_
#define STREAMLINK_STREAM_STREAM_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.h"
#include "stream/edge_batch.h"
#include "stream/edge_stream.h"

namespace streamlink {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Anything that ingests stream edges — the streaming link predictors in
/// core/ implement this. The primary delivery unit is the EdgeBatch view
/// (contiguous edges plus optional pre-computed hash lanes, see
/// stream/edge_batch.h); a batch is semantically identical to delivering
/// its edges through OnEdge in order.
///
/// The three entry points shim into each other so a consumer may override
/// whichever granularity it cares about and the others keep working:
///
///   OnEdgeBatch(EdgeBatch)      — primary; default forwards to the raw
///                                 legacy signature below;
///   OnEdgeBatch(Edge*, size_t)  — legacy raw signature, kept so
///                                 out-of-tree consumers written against
///                                 the pre-EdgeBatch API migrate
///                                 gradually; default loops OnEdge;
///   OnEdge(Edge)                — cold-path convenience; default wraps
///                                 the edge as a size-1 batch.
///
/// A consumer MUST override at least one of the three (overriding none
/// makes the defaults recurse forever). New code should override the
/// EdgeBatch form. When overriding any OnEdgeBatch form in a subclass,
/// add `using EdgeConsumer::OnEdgeBatch;` so the sibling overload is not
/// hidden.
class EdgeConsumer {
 public:
  virtual ~EdgeConsumer() = default;

  /// Primary batched delivery: one virtual dispatch for the whole run.
  /// The view (and its hash lanes) is only valid for the duration of the
  /// call.
  virtual void OnEdgeBatch(const EdgeBatch& batch) {
    OnEdgeBatch(batch.data(), batch.size());
  }

  /// Legacy raw-pointer signature, retained as a migration shim for
  /// consumers predating EdgeBatch. Deprecated for new code: it cannot
  /// carry the pre-computed hash lanes.
  virtual void OnEdgeBatch(const Edge* edges, size_t count) {
    for (size_t i = 0; i < count; ++i) OnEdge(edges[i]);
  }

  /// Cold-path convenience for callers holding a single edge; forwards to
  /// a size-1 batch.
  virtual void OnEdge(const Edge& edge) {
    OnEdgeBatch(EdgeBatch::Single(edge));
  }
};

/// Drives an EdgeStream into one or more consumers, invoking a checkpoint
/// callback at requested stream fractions (the hook the error-vs-progress
/// experiment uses). All consumers see every edge in order; delivery is
/// batched (OnEdgeBatch) between checkpoints, and checkpoints still fire
/// at exact edge positions.
class StreamDriver {
 public:
  /// Callback invoked at a checkpoint: (edges consumed so far, fraction of
  /// the stream consumed). Fractions require a stream with SizeHint.
  using CheckpointFn = std::function<void(uint64_t, double)>;

  /// Edges per OnEdgeBatch delivery when the caller does not override it.
  static constexpr size_t kDefaultBatchSize = 256;

  StreamDriver() = default;

  /// Registers a consumer; not owned, must outlive Run.
  void AddConsumer(EdgeConsumer* consumer);

  /// Requests a checkpoint after each fraction of the stream in
  /// `fractions` (each in (0, 1]); requires the stream to have a size
  /// hint. A final checkpoint at 1.0 fires at end-of-stream even without
  /// a size hint.
  void SetCheckpoints(std::vector<double> fractions, CheckpointFn callback);

  /// Maximum edges per OnEdgeBatch delivery (>= 1). Batching is purely an
  /// amortization: consumers observe the same edges in the same order.
  void SetBatchSize(size_t edges);

  /// Consumes the whole stream. Returns the number of edges processed.
  uint64_t Run(EdgeStream& stream);

  /// Registers and maintains the `stream.*` metric family during Run
  /// (docs/observability.md): edge/checkpoint counters, the windowed
  /// edges/sec gauge, and a checkpoint-duration histogram. Updated at
  /// flush granularity. The registry must outlive Run; nullptr (default)
  /// disables.
  void BindMetrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

 private:
  std::vector<EdgeConsumer*> consumers_;
  std::vector<double> checkpoint_fractions_;
  CheckpointFn checkpoint_fn_;
  size_t batch_size_ = kDefaultBatchSize;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_STREAM_DRIVER_H_

#ifndef STREAMLINK_STREAM_STREAM_DRIVER_H_
#define STREAMLINK_STREAM_STREAM_DRIVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.h"
#include "stream/edge_stream.h"

namespace streamlink {

/// Anything that ingests stream edges one at a time — the streaming link
/// predictors in core/ implement this.
class EdgeConsumer {
 public:
  virtual ~EdgeConsumer() = default;
  virtual void OnEdge(const Edge& edge) = 0;
};

/// Drives an EdgeStream into one or more consumers, invoking a checkpoint
/// callback at requested stream fractions (the hook the error-vs-progress
/// experiment uses). All consumers see every edge in order.
class StreamDriver {
 public:
  /// Callback invoked at a checkpoint: (edges consumed so far, fraction of
  /// the stream consumed). Fractions require a stream with SizeHint.
  using CheckpointFn = std::function<void(uint64_t, double)>;

  StreamDriver() = default;

  /// Registers a consumer; not owned, must outlive Run.
  void AddConsumer(EdgeConsumer* consumer);

  /// Requests a checkpoint after each fraction of the stream in
  /// `fractions` (each in (0, 1]); requires the stream to have a size
  /// hint. A final checkpoint at 1.0 fires at end-of-stream even without
  /// a size hint.
  void SetCheckpoints(std::vector<double> fractions, CheckpointFn callback);

  /// Consumes the whole stream. Returns the number of edges processed.
  uint64_t Run(EdgeStream& stream);

 private:
  std::vector<EdgeConsumer*> consumers_;
  std::vector<double> checkpoint_fractions_;
  CheckpointFn checkpoint_fn_;
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_STREAM_DRIVER_H_

#ifndef STREAMLINK_STREAM_STREAM_DRIVER_H_
#define STREAMLINK_STREAM_STREAM_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.h"
#include "stream/edge_stream.h"

namespace streamlink {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Anything that ingests stream edges — the streaming link predictors in
/// core/ implement this. Edges arrive either one at a time (OnEdge) or as
/// contiguous runs (OnEdgeBatch); a batch is semantically identical to
/// delivering its edges through OnEdge in order.
class EdgeConsumer {
 public:
  virtual ~EdgeConsumer() = default;
  virtual void OnEdge(const Edge& edge) = 0;

  /// Batched delivery: one virtual dispatch for a run of `count` edges.
  /// The default forwards edge by edge, so existing consumers work
  /// unchanged; hot-path consumers (LinkPredictor) override it to amortize
  /// the per-edge virtual-call overhead. `edges` is only valid for the
  /// duration of the call.
  virtual void OnEdgeBatch(const Edge* edges, size_t count) {
    for (size_t i = 0; i < count; ++i) OnEdge(edges[i]);
  }
};

/// Drives an EdgeStream into one or more consumers, invoking a checkpoint
/// callback at requested stream fractions (the hook the error-vs-progress
/// experiment uses). All consumers see every edge in order; delivery is
/// batched (OnEdgeBatch) between checkpoints, and checkpoints still fire
/// at exact edge positions.
class StreamDriver {
 public:
  /// Callback invoked at a checkpoint: (edges consumed so far, fraction of
  /// the stream consumed). Fractions require a stream with SizeHint.
  using CheckpointFn = std::function<void(uint64_t, double)>;

  /// Edges per OnEdgeBatch delivery when the caller does not override it.
  static constexpr size_t kDefaultBatchSize = 256;

  StreamDriver() = default;

  /// Registers a consumer; not owned, must outlive Run.
  void AddConsumer(EdgeConsumer* consumer);

  /// Requests a checkpoint after each fraction of the stream in
  /// `fractions` (each in (0, 1]); requires the stream to have a size
  /// hint. A final checkpoint at 1.0 fires at end-of-stream even without
  /// a size hint.
  void SetCheckpoints(std::vector<double> fractions, CheckpointFn callback);

  /// Maximum edges per OnEdgeBatch delivery (>= 1). Batching is purely an
  /// amortization: consumers observe the same edges in the same order.
  void SetBatchSize(size_t edges);

  /// Consumes the whole stream. Returns the number of edges processed.
  uint64_t Run(EdgeStream& stream);

  /// Registers and maintains the `stream.*` metric family during Run
  /// (docs/observability.md): edge/checkpoint counters, the windowed
  /// edges/sec gauge, and a checkpoint-duration histogram. Updated at
  /// flush granularity. The registry must outlive Run; nullptr (default)
  /// disables.
  void BindMetrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

 private:
  std::vector<EdgeConsumer*> consumers_;
  std::vector<double> checkpoint_fractions_;
  CheckpointFn checkpoint_fn_;
  size_t batch_size_ = kDefaultBatchSize;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_STREAM_DRIVER_H_

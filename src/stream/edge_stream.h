#ifndef STREAMLINK_STREAM_EDGE_STREAM_H_
#define STREAMLINK_STREAM_EDGE_STREAM_H_

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "graph/types.h"

namespace streamlink {

/// Pull-based source of stream edges. Implementations are single-pass
/// cursors that can be Reset() to the beginning (all current sources are
/// replayable; a genuinely one-shot source may make Reset a fatal error).
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  /// Produces the next edge. Returns false at end of stream.
  virtual bool Next(Edge* edge) = 0;

  /// Rewinds to the beginning of the stream.
  virtual void Reset() = 0;

  /// Total number of edges if known, 0 otherwise (used for progress and
  /// checkpoint placement).
  virtual uint64_t SizeHint() const { return 0; }
};

/// Stream over an in-memory edge list (does not own external storage when
/// constructed from a reference; see the two constructors).
class VectorEdgeStream : public EdgeStream {
 public:
  /// Owns a copy/move of the edges.
  explicit VectorEdgeStream(EdgeList edges);

  bool Next(Edge* edge) override;
  void Reset() override { position_ = 0; }
  uint64_t SizeHint() const override { return edges_.size(); }

 private:
  EdgeList edges_;
  size_t position_ = 0;
};

/// Decorator that drops duplicate (canonicalized) edges and self-loops,
/// turning a multigraph source into a simple-graph stream. Uses an exact
/// hash set: O(1) per edge, O(E) total memory — acceptable because it is a
/// *test/benchmark tool*; the sketches themselves are duplicate-idempotent
/// and do not need it.
class DedupEdgeStream : public EdgeStream {
 public:
  explicit DedupEdgeStream(std::unique_ptr<EdgeStream> inner);

  bool Next(Edge* edge) override;
  void Reset() override;
  uint64_t SizeHint() const override { return inner_->SizeHint(); }

 private:
  std::unique_ptr<EdgeStream> inner_;
  std::unordered_set<Edge, EdgeHash> seen_;
};

/// Decorator exposing only the first `limit` edges of the inner stream.
class PrefixEdgeStream : public EdgeStream {
 public:
  PrefixEdgeStream(std::unique_ptr<EdgeStream> inner, uint64_t limit);

  bool Next(Edge* edge) override;
  void Reset() override;
  uint64_t SizeHint() const override;

 private:
  std::unique_ptr<EdgeStream> inner_;
  uint64_t limit_;
  uint64_t produced_ = 0;
};

/// Decorator that discards the first `skip` edges of the inner stream and
/// yields the rest — the resume primitive: a checkpoint records how many
/// stream edges the predictor consumed, and re-ingestion continues from
/// the edge after them.
class SkipEdgeStream : public EdgeStream {
 public:
  SkipEdgeStream(std::unique_ptr<EdgeStream> inner, uint64_t skip);

  bool Next(Edge* edge) override;
  void Reset() override;
  uint64_t SizeHint() const override;

 private:
  std::unique_ptr<EdgeStream> inner_;
  uint64_t skip_;
  uint64_t skipped_ = 0;  // edges discarded since the last Reset
};

}  // namespace streamlink

#endif  // STREAMLINK_STREAM_EDGE_STREAM_H_

#include "stream/stream_driver.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

void StreamDriver::AddConsumer(EdgeConsumer* consumer) {
  SL_CHECK(consumer != nullptr) << "null consumer";
  consumers_.push_back(consumer);
}

void StreamDriver::SetCheckpoints(std::vector<double> fractions,
                                  CheckpointFn callback) {
  for (double f : fractions) {
    SL_CHECK(f > 0.0 && f <= 1.0) << "checkpoint fraction " << f
                                  << " out of (0, 1]";
  }
  std::sort(fractions.begin(), fractions.end());
  checkpoint_fractions_ = std::move(fractions);
  checkpoint_fn_ = std::move(callback);
}

void StreamDriver::SetBatchSize(size_t edges) {
  SL_CHECK(edges >= 1) << "batch size must be >= 1";
  batch_size_ = edges;
}

uint64_t StreamDriver::Run(EdgeStream& stream) {
  const uint64_t total = stream.SizeHint();
  SL_CHECK(checkpoint_fractions_.empty() || total > 0 ||
           (checkpoint_fractions_.size() == 1 &&
            checkpoint_fractions_[0] == 1.0))
      << "fractional checkpoints require a stream with a size hint";

  // Precompute absolute checkpoint positions.
  std::vector<uint64_t> positions;
  positions.reserve(checkpoint_fractions_.size());
  for (double f : checkpoint_fractions_) {
    positions.push_back(
        std::max<uint64_t>(1, static_cast<uint64_t>(f * total)));
  }

  uint64_t consumed = 0;
  size_t next_checkpoint = 0;
  std::vector<Edge> batch;
  batch.reserve(batch_size_);
  auto flush = [&] {
    if (batch.empty()) return;
    for (EdgeConsumer* c : consumers_) c->OnEdgeBatch(batch.data(),
                                                      batch.size());
    consumed += batch.size();
    batch.clear();
  };

  Edge e;
  while (stream.Next(&e)) {
    batch.push_back(e);
    // Flush early when a checkpoint position lands inside the batch, so
    // the callback observes exactly `positions[next_checkpoint]` edges.
    const bool at_checkpoint =
        next_checkpoint < positions.size() &&
        consumed + batch.size() >= positions[next_checkpoint];
    if (batch.size() >= batch_size_ || at_checkpoint) {
      flush();
      while (next_checkpoint < positions.size() &&
             consumed >= positions[next_checkpoint]) {
        double fraction = total > 0
                              ? static_cast<double>(consumed) / total
                              : 1.0;
        checkpoint_fn_(consumed, fraction);
        ++next_checkpoint;
      }
    }
  }
  flush();
  // Fire any remaining checkpoints (e.g. 1.0 on an unsized stream, or when
  // rounding placed a checkpoint past the true end).
  while (next_checkpoint < checkpoint_fractions_.size()) {
    checkpoint_fn_(consumed, 1.0);
    ++next_checkpoint;
  }
  return consumed;
}

}  // namespace streamlink

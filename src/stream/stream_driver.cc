#include "stream/stream_driver.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/rate_meter.h"
#include "util/logging.h"

namespace streamlink {

void StreamDriver::AddConsumer(EdgeConsumer* consumer) {
  SL_CHECK(consumer != nullptr) << "null consumer";
  consumers_.push_back(consumer);
}

void StreamDriver::SetCheckpoints(std::vector<double> fractions,
                                  CheckpointFn callback) {
  for (double f : fractions) {
    SL_CHECK(f > 0.0 && f <= 1.0) << "checkpoint fraction " << f
                                  << " out of (0, 1]";
  }
  std::sort(fractions.begin(), fractions.end());
  checkpoint_fractions_ = std::move(fractions);
  checkpoint_fn_ = std::move(callback);
}

void StreamDriver::SetBatchSize(size_t edges) {
  SL_CHECK(edges >= 1) << "batch size must be >= 1";
  batch_size_ = edges;
}

uint64_t StreamDriver::Run(EdgeStream& stream) {
  const uint64_t total = stream.SizeHint();
  SL_CHECK(checkpoint_fractions_.empty() || total > 0 ||
           (checkpoint_fractions_.size() == 1 &&
            checkpoint_fractions_[0] == 1.0))
      << "fractional checkpoints require a stream with a size hint";

  // Precompute absolute checkpoint positions.
  std::vector<uint64_t> positions;
  positions.reserve(checkpoint_fractions_.size());
  for (double f : checkpoint_fractions_) {
    positions.push_back(
        std::max<uint64_t>(1, static_cast<uint64_t>(f * total)));
  }

  obs::ScopedSpan run_span("stream/run");

  // stream.* instruments (null without BindMetrics); updated per flush and
  // per checkpoint, never per edge.
  obs::Counter* edges_total = nullptr;
  obs::Counter* checkpoints_total = nullptr;
  obs::Gauge* window_eps = nullptr;
  obs::Histogram* checkpoint_ns = nullptr;
  RateMeter rate(/*window_seconds=*/1.0);
  if (metrics_ != nullptr) {
    edges_total = &metrics_->GetCounter("stream.edges_total");
    checkpoints_total = &metrics_->GetCounter("stream.checkpoints_total");
    window_eps = &metrics_->GetGauge("stream.window_eps");
    checkpoint_ns = &metrics_->GetHistogram("stream.checkpoint_ns");
    rate.BindGauge(window_eps);
  }

  uint64_t consumed = 0;
  size_t next_checkpoint = 0;
  std::vector<Edge> batch;
  batch.reserve(batch_size_);
  auto flush = [&] {
    if (batch.empty()) return;
    const EdgeBatch view(batch.data(), batch.size());
    for (EdgeConsumer* c : consumers_) c->OnEdgeBatch(view);
    consumed += batch.size();
    if (edges_total != nullptr) {
      edges_total->Add(batch.size());
      rate.RecordNow(batch.size());
    }
    batch.clear();
  };
  auto checkpoint = [&](uint64_t edges, double fraction) {
    obs::ScopedSpan span("stream/checkpoint");
    const uint64_t t0 =
        checkpoint_ns != nullptr ? obs::Tracer::NowNs() : 0;
    checkpoint_fn_(edges, fraction);
    if (checkpoint_ns != nullptr) {
      checkpoint_ns->Record(obs::Tracer::NowNs() - t0);
      checkpoints_total->Add(1);
    }
  };

  Edge e;
  while (stream.Next(&e)) {
    batch.push_back(e);
    // Flush early when a checkpoint position lands inside the batch, so
    // the callback observes exactly `positions[next_checkpoint]` edges.
    const bool at_checkpoint =
        next_checkpoint < positions.size() &&
        consumed + batch.size() >= positions[next_checkpoint];
    if (batch.size() >= batch_size_ || at_checkpoint) {
      flush();
      while (next_checkpoint < positions.size() &&
             consumed >= positions[next_checkpoint]) {
        double fraction = total > 0
                              ? static_cast<double>(consumed) / total
                              : 1.0;
        checkpoint(consumed, fraction);
        ++next_checkpoint;
      }
    }
  }
  flush();
  // Fire any remaining checkpoints (e.g. 1.0 on an unsized stream, or when
  // rounding placed a checkpoint past the true end).
  while (next_checkpoint < checkpoint_fractions_.size()) {
    checkpoint(consumed, 1.0);
    ++next_checkpoint;
  }
  return consumed;
}

}  // namespace streamlink

#include "stream/parallel_ingest.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "core/bottomk_predictor.h"
#include "core/minhash_predictor.h"
#include "core/sharded_predictor.h"
#include "core/tcm_predictor.h"
#include "core/tombstone_predictor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/edge_batch.h"
#include "stream/rate_meter.h"
#include "stream/spsc_ring.h"
#include "util/flags.h"
#include "util/hashing.h"
#include "util/logging.h"
#include "util/timer.h"

namespace streamlink {

std::string IngestOrderingName(IngestOrdering ordering) {
  return ordering == IngestOrdering::kOrdered ? "ordered" : "relaxed";
}

Result<IngestOrdering> ParseIngestOrdering(const std::string& name) {
  if (name == "ordered") return IngestOrdering::kOrdered;
  if (name == "relaxed") return IngestOrdering::kRelaxed;
  return Status::InvalidArgument("unknown ingest mode '" + name +
                                 "' (want ordered|relaxed)");
}

bool KindSupportsReplicatedMerge(const std::string& kind) {
  // The kinds whose MergeFrom folds disjoint stream partitions losslessly
  // (CheckMergeAssociativity covers exactly these). tcm qualifies for
  // turnstile streams too: cells and degrees are signed sums, so a replica
  // that sees a delete before its insert dips negative and heals at fold.
  return kind == "minhash" || kind == "bottomk" || kind == "tcm";
}

Status IngestEngineBuilder::ApplyFlags(const FlagParser& flags) {
  if (flags.Has("ingest-mode")) {
    auto mode = ParseIngestOrdering(flags.GetString("ingest-mode", "ordered"));
    if (!mode.ok()) return mode.status();
    options_.ordering = *mode;
  }
  options_.batch_edges = static_cast<uint32_t>(
      flags.GetInt("batch-edges", options_.batch_edges));
  options_.ring_batches = static_cast<uint32_t>(
      flags.GetInt("ring-batches", options_.ring_batches));
  return Status::Ok();
}

std::vector<std::string> IngestEngineBuilder::FlagNames() {
  return {"ingest-mode", "batch-edges", "ring-batches"};
}

std::string IngestEngineBuilder::FlagsHelp() {
  return
      "  --ingest-mode M      ordered (bit-identical, default) | relaxed\n"
      "                       (merge-folded replicas, throughput over\n"
      "                       determinism; minhash/bottomk/tcm only)\n"
      "  --batch-edges N      edges per parallel-ingest ring batch\n"
      "  --ring-batches N     ring capacity in batches per worker\n";
}

namespace {

/// Spin -> yield -> sleep wait loop for the lock-free hand-off paths
/// (ring-full on the router, ring-empty on a worker, the epoch barrier).
/// The sleep tier matters here more than on big iron: CI boxes run more
/// workers than cores, and a pure spin would steal the cycles the ingest
/// kernels need.
class Backoff {
 public:
  void Pause() {
    ++count_;
    if (count_ < 16) return;  // brief pure spin
    if (count_ < 1024) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  void Reset() { count_ = 0; }

 private:
  uint32_t count_ = 0;
};

/// Registry-resident instruments for one Build run; all pointers null when
/// ParallelIngestOptions::metrics is unset, making every update a no-op
/// branch. Updated only by the router thread except the per-shard counters,
/// which each worker bumps once per applied batch (Counter is thread-safe).
struct IngestMetrics {
  obs::Counter* edges = nullptr;            // ingest.edges_total
  obs::Counter* publishes = nullptr;        // ingest.publishes_total
  obs::Counter* ring_full_stalls = nullptr; // ingest.ring_full_stalls
  obs::Gauge* live_edges = nullptr;         // ingest.live_edges
  obs::Gauge* window_eps = nullptr;         // ingest.window_eps
  obs::Histogram* batch_half_edges = nullptr;  // ingest.batch_half_edges
  obs::Histogram* queue_wait_ns = nullptr;     // ingest.queue_wait_ns
  obs::Histogram* publish_ns = nullptr;        // ingest.publish_ns
  std::vector<obs::Counter*> shard_half_edges;

  explicit IngestMetrics(obs::MetricsRegistry* registry,
                         uint32_t num_shards) {
    if (registry == nullptr) return;
    edges = &registry->GetCounter("ingest.edges_total");
    publishes = &registry->GetCounter("ingest.publishes_total");
    ring_full_stalls = &registry->GetCounter("ingest.ring_full_stalls");
    live_edges = &registry->GetGauge("ingest.live_edges");
    window_eps = &registry->GetGauge("ingest.window_eps");
    batch_half_edges = &registry->GetHistogram("ingest.batch_half_edges");
    queue_wait_ns = &registry->GetHistogram("ingest.queue_wait_ns");
    publish_ns = &registry->GetHistogram("ingest.publish_ns");
    shard_half_edges.reserve(num_shards);
    for (uint32_t t = 0; t < num_shards; ++t) {
      shard_half_edges.push_back(&registry->GetCounter(
          "ingest.shard" + std::to_string(t) + ".half_edges_total"));
    }
  }

  bool enabled() const { return edges != nullptr; }

  /// Folds the stream frontier into the counter/gauges; called at batch
  /// and publish boundaries, never per edge.
  void NoteFrontier(uint64_t edges_now, uint64_t* last_noted,
                    RateMeter* rate) {
    if (!enabled() || edges_now == *last_noted) return;
    edges->Add(edges_now - *last_noted);
    rate->RecordNow(edges_now - *last_noted);
    window_eps->Set(rate->WindowRate());
    *last_noted = edges_now;
    live_edges->Set(static_cast<double>(edges_now));
  }

  /// Times `on_publish` and counts it.
  void TimedPublish(const IngestPublishFn& fn, const LinkPredictor& live,
                    uint64_t stream_edges) {
    obs::ScopedSpan span("ingest/publish");
    if (!enabled()) {
      fn(live, stream_edges);
      return;
    }
    const uint64_t t0 = obs::Tracer::NowNs();
    fn(live, stream_edges);
    publish_ns->Record(obs::Tracer::NowNs() - t0);
    publishes->Add(1);
  }
};

/// Per-shard applied-batch counters, one cache line each — the epoch
/// quiesce barrier. A worker's fetch_add(release) publishes that batch's
/// sketch writes; the router's acquire loads in AwaitQuiesced make them
/// visible before it touches the shards. Unlike the retired mutex+condvar
/// QuiescePoint there is no notify on the per-batch hot path at all: a
/// worker's cost per batch is one uncontended atomic increment, and only
/// the router ever waits.
class EpochBarrier {
 public:
  explicit EpochBarrier(uint32_t num_shards)
      : cells_(new Cell[num_shards]) {}

  void MarkApplied(uint32_t shard) {
    cells_[shard].applied.fetch_add(1, std::memory_order_release);
  }

  uint64_t Applied(uint32_t shard) const {
    return cells_[shard].applied.load(std::memory_order_acquire);
  }

  /// Blocks (spin/yield/sleep) until every shard's applied count reaches
  /// the epoch target `pushed[shard]`.
  void AwaitQuiesced(const std::vector<uint64_t>& pushed) {
    for (uint32_t t = 0; t < pushed.size(); ++t) {
      Backoff backoff;
      while (Applied(t) < pushed[t]) backoff.Pause();
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> applied{0};
  };
  std::unique_ptr<Cell[]> cells_;
};

/// Decides when the next live publish is due. The time cadence is checked
/// at most once per 1024 edges to keep clock reads off the per-edge path.
class PublishCadence {
 public:
  explicit PublishCadence(const ParallelIngestOptions& options)
      : every_edges_(options.publish_every_edges),
        every_seconds_(options.publish_every_seconds),
        enabled_(options.publish_every_edges > 0 ||
                 options.publish_every_seconds > 0) {
    if (every_seconds_ > 0) timer_.Start();
  }

  bool enabled() const { return enabled_; }

  bool Due(uint64_t edges_now) const {
    if (!enabled_) return false;
    if (every_edges_ > 0 && edges_now - last_edges_ >= every_edges_) {
      return true;
    }
    return every_seconds_ > 0 && (edges_now & 1023) == 0 &&
           timer_.Seconds() >= every_seconds_;
  }

  void Published(uint64_t edges_now) {
    last_edges_ = edges_now;
    if (every_seconds_ > 0) {
      timer_.Reset();
      timer_.Start();
    }
  }

 private:
  const uint64_t every_edges_;
  const double every_seconds_;
  const bool enabled_;
  uint64_t last_edges_ = 0;
  WallTimer timer_;
};

using BatchRing = SpscRing<EdgeBatchBuffer>;

/// Drains `ring` into `shard` until the ring is closed and empty.
/// Exactly one consumer per ring; MarkApplied publishes each batch to the
/// router's epoch waits. ApplyHalfEdges forwards op-less batches straight
/// to ObserveNeighborBatch and splits op-tagged (turnstile) ones into
/// observe/retract runs.
void ShardWorker(BatchRing& ring, LinkPredictor& shard, EpochBarrier& epochs,
                 uint32_t shard_index, obs::Counter* applied_counter) {
  EdgeBatchBuffer batch;
  Backoff backoff;
  for (;;) {
    if (ring.TryPop(&batch)) {
      obs::ScopedSpan span("ingest/apply_batch");
      shard.ApplyHalfEdges(batch.View());
      if (applied_counter != nullptr) applied_counter->Add(batch.size());
      epochs.MarkApplied(shard_index);
      backoff.Reset();
      continue;
    }
    // Empty. closed() is read AFTER the failed pop: the producer's last
    // push happens-before Close, so seeing closed here means one more
    // drain pass observes everything.
    if (ring.closed()) {
      if (ring.TryPop(&batch)) {
        shard.ApplyHalfEdges(batch.View());
        if (applied_counter != nullptr) applied_counter->Add(batch.size());
        epochs.MarkApplied(shard_index);
        continue;
      }
      return;
    }
    backoff.Pause();
  }
}

/// Whole-edge replica worker for kRelaxed: no routing, no epochs — each
/// replica is a full predictor ingesting its partition through the normal
/// OnEdgeBatch path (which also does the edge accounting).
void ReplicaWorker(BatchRing& ring, LinkPredictor& replica,
                   obs::Counter* applied_counter) {
  EdgeBatchBuffer batch;
  Backoff backoff;
  for (;;) {
    if (ring.TryPop(&batch)) {
      obs::ScopedSpan span("ingest/apply_batch");
      replica.OnEdgeBatch(batch.View());
      if (applied_counter != nullptr) applied_counter->Add(batch.size());
      backoff.Reset();
      continue;
    }
    if (ring.closed()) {
      if (ring.TryPop(&batch)) {
        replica.OnEdgeBatch(batch.View());
        if (applied_counter != nullptr) applied_counter->Add(batch.size());
        continue;
      }
      return;
    }
    backoff.Pause();
  }
}

/// Folds edge-partitioned replicas (all the same concrete kind) into
/// replicas[0] via the kind's lossless disjoint-partition MergeFrom
/// (which also accumulates the edge tallies). Returns nullptr if the
/// concrete type is not T (caller tries the next kind).
template <typename T>
std::unique_ptr<LinkPredictor> FoldReplicas(
    std::vector<std::unique_ptr<LinkPredictor>>* replicas) {
  T* base = dynamic_cast<T*>((*replicas)[0].get());
  if (base == nullptr) return nullptr;
  for (size_t i = 1; i < replicas->size(); ++i) {
    T* peer = dynamic_cast<T*>((*replicas)[i].get());
    SL_CHECK(peer != nullptr) << "mixed replica kinds";
    base->MergeFrom(*peer);
  }
  return std::move((*replicas)[0]);
}

}  // namespace

ParallelIngestEngine::ParallelIngestEngine(PredictorConfig config,
                                           ParallelIngestOptions options)
    : config_(std::move(config)), options_(std::move(options)) {}

Status ParallelIngestEngine::Validate() const {
  if (config_.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1, got 0");
  }
  if (options_.batch_edges < 1) {
    return Status::InvalidArgument("batch_edges must be >= 1");
  }
  if (options_.ring_batches < 1) {
    return Status::InvalidArgument("ring_batches must be >= 1");
  }
  const bool cadence_set = options_.publish_every_edges > 0 ||
                           options_.publish_every_seconds > 0;
  if (cadence_set && !options_.on_publish) {
    return Status::InvalidArgument(
        "publish cadence set but no on_publish callback");
  }
  if (config_.threads > 1 && options_.ordering == IngestOrdering::kRelaxed) {
    if (cadence_set) {
      return Status::InvalidArgument(
          "relaxed ingest cannot live-publish: replicas only merge at "
          "end-of-stream (use ordered mode with a publish cadence)");
    }
    if (!KindSupportsReplicatedMerge(config_.kind)) {
      return Status::InvalidArgument(
          "predictor kind '" + config_.kind +
          "' has no lossless disjoint-partition merge; relaxed ingest "
          "supports minhash and bottomk");
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::Build(
    EdgeStream& stream) {
  edges_ingested_ = 0;
  deletes_ingested_ = 0;
  if (Status st = Validate(); !st.ok()) return st;
  obs::ScopedSpan build_span("ingest/build");
  if (config_.threads == 1) return BuildSequential(stream);
  if (options_.ordering == IngestOrdering::kRelaxed) {
    return BuildRelaxed(stream);
  }
  return BuildOrdered(stream);
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::BuildSequential(
    EdgeStream& stream) {
  PublishCadence cadence(options_);
  IngestMetrics metrics(options_.metrics, /*num_shards=*/1);
  RateMeter rate(/*window_seconds=*/1.0);
  uint64_t metric_edges = 0;  // stream frontier already folded into metrics

  auto predictor = MakePredictor(config_);
  if (!predictor.ok()) return predictor.status();
  EdgeList batch;
  batch.reserve(options_.batch_edges);
  auto deliver = [&] {
    (*predictor)->OnEdgeBatch(EdgeBatch(batch.data(), batch.size()));
    if (metrics.enabled()) {
      metrics.batch_half_edges->Record(batch.size());
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    }
    batch.clear();
  };
  Edge edge;
  while (stream.Next(&edge)) {
    ++edges_ingested_;
    batch.push_back(edge);
    if (batch.size() >= options_.batch_edges) deliver();
    if (cadence.Due(edges_ingested_)) {
      if (!batch.empty()) deliver();
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
      metrics.TimedPublish(options_.on_publish, **predictor,
                           edges_ingested_);
      cadence.Published(edges_ingested_);
    }
  }
  if (!batch.empty()) deliver();
  if (auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(predictor->get())) {
    tomb->Flush();  // drain the deferred-insert lag before final queries
  }
  metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
  if (cadence.enabled()) {
    metrics.TimedPublish(options_.on_publish, **predictor, edges_ingested_);
  }
  return std::move(*predictor);
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::BuildOrdered(
    EdgeStream& stream) {
  PublishCadence cadence(options_);
  IngestMetrics metrics(options_.metrics, config_.threads);
  RateMeter rate(/*window_seconds=*/1.0);
  uint64_t metric_edges = 0;

  auto sharded_result = ShardedPredictor::Make(config_);
  if (!sharded_result.ok()) return sharded_result.status();
  std::unique_ptr<ShardedPredictor> sharded = std::move(*sharded_result);
  const uint32_t num_shards = sharded->num_shards();

  // Pre-hash contract: if the kind's half-edge kernel consumes one seeded
  // neighbor hash (bottomk), the router computes it once per half-edge
  // into the batch's hash_v lane and the workers never hash.
  uint64_t neighbor_seed = 0;
  const bool pre_hash = sharded->shard(0).NeighborHashSeed(&neighbor_seed);
  const uint64_t mixed_seed = pre_hash ? MixSeed(neighbor_seed) : 0;

  std::vector<std::unique_ptr<BatchRing>> rings;
  rings.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    rings.push_back(std::make_unique<BatchRing>(options_.ring_batches));
  }

  // Each worker owns exactly one shard: no two threads ever touch the same
  // predictor state, so the shards need no internal locking. The epoch
  // barrier publishes each applied batch to the router's quiesce waits.
  EpochBarrier epochs(num_shards);
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    obs::Counter* applied_counter =
        metrics.enabled() ? metrics.shard_half_edges[t] : nullptr;
    workers.emplace_back([&sharded, &rings, &epochs, applied_counter, t] {
      ShardWorker(*rings[t], sharded->shard(t), epochs, t, applied_counter);
    });
  }

  // Route each edge as two half-edges to the endpoint owners. A shard's
  // half-edges stay in stream order, which (with commutative, idempotent
  // sketch updates) makes the final per-vertex state identical to a
  // sequential build.
  std::vector<EdgeBatchBuffer> pending(num_shards);
  for (auto& p : pending) {
    p.Reserve(options_.batch_edges, /*with_hash_u=*/false,
              /*with_hash_v=*/pre_hash);
  }
  std::vector<uint64_t> pushed(num_shards, 0);
  uint64_t simple_edges = 0;
  uint64_t accounted_edges = 0;

  // Ships pending[owner] into the owner's ring. The wait histogram records
  // once per batch (it used to record only contended pushes); the stall
  // counter increments once per full-on-entry push.
  auto push = [&](uint32_t owner) {
    if (metrics.enabled()) {
      metrics.batch_half_edges->Record(pending[owner].size());
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    }
    const uint64_t t0 = metrics.enabled() ? obs::Tracer::NowNs() : 0;
    if (!rings[owner]->TryPush(pending[owner])) {
      if (metrics.enabled()) metrics.ring_full_stalls->Add(1);
      Backoff backoff;
      do {
        backoff.Pause();
      } while (!rings[owner]->TryPush(pending[owner]));
    }
    if (metrics.enabled()) {
      metrics.queue_wait_ns->Record(obs::Tracer::NowNs() - t0);
    }
    ++pushed[owner];
    pending[owner].Clear();
    pending[owner].Reserve(options_.batch_edges, false, pre_hash);
  };

  // A publish barrier: flush every partial batch, await the epoch (all
  // pushed batches applied; the workers then spin in empty-ring backoff,
  // not under a lock), bring the edge tally up to date, and hand the
  // quiescent predictor out. Cost is one drain of the in-flight window,
  // amortized over the cadence.
  auto publish_quiesced = [&] {
    for (uint32_t t = 0; t < num_shards; ++t) {
      if (!pending[t].empty()) push(t);
    }
    epochs.AwaitQuiesced(pushed);
    sharded->AddProcessedEdges(simple_edges - accounted_edges);
    accounted_edges = simple_edges;
    metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    metrics.TimedPublish(options_.on_publish, *sharded, edges_ingested_);
  };

  Edge edge;
  while (stream.Next(&edge)) {
    ++edges_ingested_;
    if (!edge.IsSelfLoop()) {
      ++simple_edges;
      const uint32_t owner_u = sharded->OwnerOf(edge.u);
      const uint32_t owner_v = sharded->OwnerOf(edge.v);
      if (pre_hash) {
        // Hash each endpoint once; each half-edge carries the OTHER
        // endpoint's hash (its neighbor).
        const uint64_t hash_u = HashU64WithMixedSeed(edge.u, mixed_seed);
        const uint64_t hash_v = HashU64WithMixedSeed(edge.v, mixed_seed);
        pending[owner_u].AppendHalfEdge(edge.u, edge.v, hash_v);
        if (pending[owner_u].size() >= options_.batch_edges) push(owner_u);
        pending[owner_v].AppendHalfEdge(edge.v, edge.u, hash_u);
        if (pending[owner_v].size() >= options_.batch_edges) push(owner_v);
      } else {
        pending[owner_u].Append(edge);
        if (pending[owner_u].size() >= options_.batch_edges) push(owner_u);
        pending[owner_v].Append(Edge(edge.v, edge.u));
        if (pending[owner_v].size() >= options_.batch_edges) push(owner_v);
      }
    }
    if (cadence.Due(edges_ingested_)) {
      publish_quiesced();
      cadence.Published(edges_ingested_);
    }
  }
  for (uint32_t t = 0; t < num_shards; ++t) {
    if (!pending[t].empty()) push(t);
    rings[t]->Close();
  }
  for (auto& worker : workers) worker.join();

  // ObserveNeighbor does not count edges (a full edge is two half-edges);
  // account for the stream once, matching the sequential OnEdge tally.
  sharded->AddProcessedEdges(simple_edges - accounted_edges);
  metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
  if (cadence.enabled()) {
    metrics.TimedPublish(options_.on_publish, *sharded, edges_ingested_);
  }
  return std::unique_ptr<LinkPredictor>(std::move(sharded));
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::BuildRelaxed(
    EdgeStream& stream) {
  IngestMetrics metrics(options_.metrics, config_.threads);
  RateMeter rate(/*window_seconds=*/1.0);
  uint64_t metric_edges = 0;
  const uint32_t num_workers = config_.threads;

  // One full replica per worker, each fed an arbitrary slice of whole
  // edges — no routing, no ownership, no inter-worker coupling. MergeFrom
  // folds them at the end (lossless for these kinds: sketch updates are
  // commutative/idempotent and exact degree counters add).
  PredictorConfig replica_config = config_;
  replica_config.threads = 1;
  std::vector<std::unique_ptr<LinkPredictor>> replicas;
  replicas.reserve(num_workers);
  for (uint32_t t = 0; t < num_workers; ++t) {
    auto replica = MakePredictor(replica_config);
    if (!replica.ok()) return replica.status();
    replicas.push_back(std::move(*replica));
  }

  uint64_t neighbor_seed = 0;
  const bool pre_hash = replicas[0]->NeighborHashSeed(&neighbor_seed);
  const uint64_t mixed_seed = pre_hash ? MixSeed(neighbor_seed) : 0;

  std::vector<std::unique_ptr<BatchRing>> rings;
  rings.reserve(num_workers);
  for (uint32_t t = 0; t < num_workers; ++t) {
    rings.push_back(std::make_unique<BatchRing>(options_.ring_batches));
  }
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (uint32_t t = 0; t < num_workers; ++t) {
    obs::Counter* applied_counter =
        metrics.enabled() ? metrics.shard_half_edges[t] : nullptr;
    workers.emplace_back([&replicas, &rings, applied_counter, t] {
      ReplicaWorker(*rings[t], *replicas[t], applied_counter);
    });
  }

  EdgeBatchBuffer pending;
  pending.Reserve(options_.batch_edges, pre_hash, pre_hash);
  uint32_t next_worker = 0;
  auto push = [&] {
    if (metrics.enabled()) {
      metrics.batch_half_edges->Record(pending.size());
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    }
    // Least-loaded-first would need shared occupancy reads; plain
    // round-robin keeps the producer write-only and balances fine when
    // batches are uniform work.
    const uint32_t start = next_worker;
    const uint64_t t0 = metrics.enabled() ? obs::Tracer::NowNs() : 0;
    if (!rings[start]->TryPush(pending)) {
      // Preferred ring is full: try the others once before backing off —
      // in relaxed mode any worker can take any batch.
      bool placed = false;
      for (uint32_t step = 1; step < num_workers && !placed; ++step) {
        placed = rings[(start + step) % num_workers]->TryPush(pending);
      }
      if (!placed) {
        if (metrics.enabled()) metrics.ring_full_stalls->Add(1);
        Backoff backoff;
        do {
          backoff.Pause();
        } while (!rings[start]->TryPush(pending));
      }
    }
    if (metrics.enabled()) {
      metrics.queue_wait_ns->Record(obs::Tracer::NowNs() - t0);
    }
    next_worker = (start + 1) % num_workers;
    pending.Clear();
    pending.Reserve(options_.batch_edges, pre_hash, pre_hash);
  };

  Edge edge;
  while (stream.Next(&edge)) {
    ++edges_ingested_;
    if (pre_hash) {
      pending.AppendHashed(edge, HashU64WithMixedSeed(edge.u, mixed_seed),
                           HashU64WithMixedSeed(edge.v, mixed_seed));
    } else {
      pending.Append(edge);
    }
    if (pending.size() >= options_.batch_edges) push();
  }
  if (!pending.empty()) push();
  for (auto& ring : rings) ring->Close();
  for (auto& worker : workers) worker.join();
  metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);

  std::unique_ptr<LinkPredictor> folded =
      FoldReplicas<MinHashPredictor>(&replicas);
  if (folded == nullptr) folded = FoldReplicas<BottomKPredictor>(&replicas);
  if (folded == nullptr) folded = FoldReplicas<TcmPredictor>(&replicas);
  SL_CHECK(folded != nullptr)
      << "relaxed ingest: no fold for kind " << config_.kind;
  return folded;
}

Status ParallelIngestEngine::ValidateTurnstile() const {
  if (KindSupportsDeletions(config_.kind)) return Status::Ok();
  if (config_.threads == 1 && config_.tombstone_window > 0) {
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "predictor kind '" + config_.kind +
      "' cannot ingest deletions; use a deletable kind "
      "(KindSupportsDeletions) or a sequential tombstone window");
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::Build(
    OpStream& stream) {
  edges_ingested_ = 0;
  deletes_ingested_ = 0;
  if (Status st = Validate(); !st.ok()) return st;
  if (Status st = ValidateTurnstile(); !st.ok()) return st;
  obs::ScopedSpan build_span("ingest/build");
  if (config_.threads == 1) return BuildSequentialOps(stream);
  if (options_.ordering == IngestOrdering::kRelaxed) {
    return BuildRelaxedOps(stream);
  }
  return BuildOrderedOps(stream);
}

Result<std::unique_ptr<LinkPredictor>>
ParallelIngestEngine::BuildSequentialOps(OpStream& stream) {
  PublishCadence cadence(options_);
  IngestMetrics metrics(options_.metrics, /*num_shards=*/1);
  RateMeter rate(/*window_seconds=*/1.0);
  uint64_t metric_edges = 0;

  auto predictor = MakePredictor(config_);
  if (!predictor.ok()) return predictor.status();
  EdgeBatchBuffer batch;
  batch.Reserve(options_.batch_edges, /*with_hash_u=*/false,
                /*with_hash_v=*/false, /*with_ops=*/true);
  auto deliver = [&] {
    (*predictor)->OnEdgeBatch(batch.View());
    if (metrics.enabled()) {
      metrics.batch_half_edges->Record(batch.size());
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    }
    batch.Clear();
    batch.Reserve(options_.batch_edges, false, false, true);
  };
  EdgeEvent event;
  while (stream.Next(&event)) {
    // The cursor counts *events* — deletes are staleness too.
    ++edges_ingested_;
    if (event.op == EdgeOp::kDelete) ++deletes_ingested_;
    batch.AppendOp(event.edge, event.op);
    if (batch.size() >= options_.batch_edges) deliver();
    if (cadence.Due(edges_ingested_)) {
      if (!batch.empty()) deliver();
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
      metrics.TimedPublish(options_.on_publish, **predictor,
                           edges_ingested_);
      cadence.Published(edges_ingested_);
    }
  }
  if (!batch.empty()) deliver();
  if (auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(predictor->get())) {
    tomb->Flush();
  }
  metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
  if (cadence.enabled()) {
    metrics.TimedPublish(options_.on_publish, **predictor, edges_ingested_);
  }
  return std::move(*predictor);
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::BuildOrderedOps(
    OpStream& stream) {
  PublishCadence cadence(options_);
  IngestMetrics metrics(options_.metrics, config_.threads);
  RateMeter rate(/*window_seconds=*/1.0);
  uint64_t metric_edges = 0;

  auto sharded_result = ShardedPredictor::Make(config_);
  if (!sharded_result.ok()) return sharded_result.status();
  std::unique_ptr<ShardedPredictor> sharded = std::move(*sharded_result);
  const uint32_t num_shards = sharded->num_shards();

  uint64_t neighbor_seed = 0;
  const bool pre_hash = sharded->shard(0).NeighborHashSeed(&neighbor_seed);
  const uint64_t mixed_seed = pre_hash ? MixSeed(neighbor_seed) : 0;

  std::vector<std::unique_ptr<BatchRing>> rings;
  rings.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    rings.push_back(std::make_unique<BatchRing>(options_.ring_batches));
  }

  EpochBarrier epochs(num_shards);
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    obs::Counter* applied_counter =
        metrics.enabled() ? metrics.shard_half_edges[t] : nullptr;
    workers.emplace_back([&sharded, &rings, &epochs, applied_counter, t] {
      ShardWorker(*rings[t], sharded->shard(t), epochs, t, applied_counter);
    });
  }

  // Same routing invariant as the insert-only build, now with an op lane:
  // every vertex's half-edge *events* (observe and retract alike) reach
  // its single owning shard in stream order, so the result is
  // bit-identical to a sequential replay of the event stream.
  std::vector<EdgeBatchBuffer> pending(num_shards);
  for (auto& p : pending) {
    p.Reserve(options_.batch_edges, /*with_hash_u=*/false,
              /*with_hash_v=*/pre_hash, /*with_ops=*/true);
  }
  std::vector<uint64_t> pushed(num_shards, 0);
  uint64_t simple_edges = 0;     // non-self-loop insert events
  uint64_t simple_deletes = 0;   // non-self-loop delete events
  uint64_t accounted_edges = 0;
  uint64_t accounted_deletes = 0;

  auto push = [&](uint32_t owner) {
    if (metrics.enabled()) {
      metrics.batch_half_edges->Record(pending[owner].size());
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    }
    const uint64_t t0 = metrics.enabled() ? obs::Tracer::NowNs() : 0;
    if (!rings[owner]->TryPush(pending[owner])) {
      if (metrics.enabled()) metrics.ring_full_stalls->Add(1);
      Backoff backoff;
      do {
        backoff.Pause();
      } while (!rings[owner]->TryPush(pending[owner]));
    }
    if (metrics.enabled()) {
      metrics.queue_wait_ns->Record(obs::Tracer::NowNs() - t0);
    }
    ++pushed[owner];
    pending[owner].Clear();
    pending[owner].Reserve(options_.batch_edges, false, pre_hash, true);
  };

  // Half-edge kernels (Observe/RetractNeighbor) count nothing; the
  // container owns the stream's edge and delete tallies, settled at every
  // quiesce point so published snapshots carry consistent counters.
  auto settle_counts = [&] {
    sharded->AddProcessedEdges(simple_edges - accounted_edges);
    sharded->AddProcessedDeletes(simple_deletes - accounted_deletes);
    accounted_edges = simple_edges;
    accounted_deletes = simple_deletes;
  };
  auto publish_quiesced = [&] {
    for (uint32_t t = 0; t < num_shards; ++t) {
      if (!pending[t].empty()) push(t);
    }
    epochs.AwaitQuiesced(pushed);
    settle_counts();
    metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    metrics.TimedPublish(options_.on_publish, *sharded, edges_ingested_);
  };

  EdgeEvent event;
  while (stream.Next(&event)) {
    ++edges_ingested_;
    if (event.op == EdgeOp::kDelete) ++deletes_ingested_;
    const Edge& edge = event.edge;
    if (!edge.IsSelfLoop()) {
      if (event.op == EdgeOp::kDelete) {
        ++simple_deletes;
      } else {
        ++simple_edges;
      }
      const uint32_t owner_u = sharded->OwnerOf(edge.u);
      const uint32_t owner_v = sharded->OwnerOf(edge.v);
      if (pre_hash) {
        const uint64_t hash_u = HashU64WithMixedSeed(edge.u, mixed_seed);
        const uint64_t hash_v = HashU64WithMixedSeed(edge.v, mixed_seed);
        pending[owner_u].AppendHalfEdgeOp(edge.u, edge.v, hash_v, event.op);
        if (pending[owner_u].size() >= options_.batch_edges) push(owner_u);
        pending[owner_v].AppendHalfEdgeOp(edge.v, edge.u, hash_u, event.op);
        if (pending[owner_v].size() >= options_.batch_edges) push(owner_v);
      } else {
        pending[owner_u].AppendHalfEdgePlainOp(edge.u, edge.v, event.op);
        if (pending[owner_u].size() >= options_.batch_edges) push(owner_u);
        pending[owner_v].AppendHalfEdgePlainOp(edge.v, edge.u, event.op);
        if (pending[owner_v].size() >= options_.batch_edges) push(owner_v);
      }
    }
    if (cadence.Due(edges_ingested_)) {
      publish_quiesced();
      cadence.Published(edges_ingested_);
    }
  }
  for (uint32_t t = 0; t < num_shards; ++t) {
    if (!pending[t].empty()) push(t);
    rings[t]->Close();
  }
  for (auto& worker : workers) worker.join();

  settle_counts();
  metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
  if (cadence.enabled()) {
    metrics.TimedPublish(options_.on_publish, *sharded, edges_ingested_);
  }
  return std::unique_ptr<LinkPredictor>(std::move(sharded));
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::BuildRelaxedOps(
    OpStream& stream) {
  IngestMetrics metrics(options_.metrics, config_.threads);
  RateMeter rate(/*window_seconds=*/1.0);
  uint64_t metric_edges = 0;
  const uint32_t num_workers = config_.threads;

  // Whole-event replicas. The fold is lossless for turnstile streams only
  // when the kind's state is a signed sum (tcm): a replica that receives a
  // delete before another replica's matching insert simply dips negative
  // and heals when MergeFrom adds the partitions back together.
  PredictorConfig replica_config = config_;
  replica_config.threads = 1;
  std::vector<std::unique_ptr<LinkPredictor>> replicas;
  replicas.reserve(num_workers);
  for (uint32_t t = 0; t < num_workers; ++t) {
    auto replica = MakePredictor(replica_config);
    if (!replica.ok()) return replica.status();
    if (!(*replica)->SupportsDeletions()) {
      return Status::InvalidArgument(
          "relaxed turnstile ingest requires a natively deletable kind; '" +
          config_.kind + "' is not");
    }
    replicas.push_back(std::move(*replica));
  }

  std::vector<std::unique_ptr<BatchRing>> rings;
  rings.reserve(num_workers);
  for (uint32_t t = 0; t < num_workers; ++t) {
    rings.push_back(std::make_unique<BatchRing>(options_.ring_batches));
  }
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (uint32_t t = 0; t < num_workers; ++t) {
    obs::Counter* applied_counter =
        metrics.enabled() ? metrics.shard_half_edges[t] : nullptr;
    workers.emplace_back([&replicas, &rings, applied_counter, t] {
      ReplicaWorker(*rings[t], *replicas[t], applied_counter);
    });
  }

  // No pre-hash lane: the deletable kinds don't announce a neighbor seed.
  EdgeBatchBuffer pending;
  pending.Reserve(options_.batch_edges, /*with_hash_u=*/false,
                  /*with_hash_v=*/false, /*with_ops=*/true);
  uint32_t next_worker = 0;
  auto push = [&] {
    if (metrics.enabled()) {
      metrics.batch_half_edges->Record(pending.size());
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    }
    const uint32_t start = next_worker;
    const uint64_t t0 = metrics.enabled() ? obs::Tracer::NowNs() : 0;
    if (!rings[start]->TryPush(pending)) {
      bool placed = false;
      for (uint32_t step = 1; step < num_workers && !placed; ++step) {
        placed = rings[(start + step) % num_workers]->TryPush(pending);
      }
      if (!placed) {
        if (metrics.enabled()) metrics.ring_full_stalls->Add(1);
        Backoff backoff;
        do {
          backoff.Pause();
        } while (!rings[start]->TryPush(pending));
      }
    }
    if (metrics.enabled()) {
      metrics.queue_wait_ns->Record(obs::Tracer::NowNs() - t0);
    }
    next_worker = (start + 1) % num_workers;
    pending.Clear();
    pending.Reserve(options_.batch_edges, false, false, true);
  };

  EdgeEvent event;
  while (stream.Next(&event)) {
    ++edges_ingested_;
    if (event.op == EdgeOp::kDelete) ++deletes_ingested_;
    pending.AppendOp(event.edge, event.op);
    if (pending.size() >= options_.batch_edges) push();
  }
  if (!pending.empty()) push();
  for (auto& ring : rings) ring->Close();
  for (auto& worker : workers) worker.join();
  metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);

  std::unique_ptr<LinkPredictor> folded = FoldReplicas<TcmPredictor>(&replicas);
  SL_CHECK(folded != nullptr)
      << "relaxed turnstile ingest: no fold for kind " << config_.kind;
  return folded;
}

}  // namespace streamlink

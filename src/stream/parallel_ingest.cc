#include "stream/parallel_ingest.h"

#include <thread>
#include <utility>
#include <vector>

#include "core/sharded_predictor.h"
#include "util/logging.h"
#include "util/timer.h"

namespace streamlink {

namespace {

/// Tracks how many batches each worker has fully applied, so the router
/// can wait for a global quiescent point (all pushed batches applied, no
/// worker mid-write). The mutex also publishes the workers' shard state to
/// the router: MarkApplied happens-after the batch's writes, WaitQuiesced
/// happens-before the router reads the shards.
class QuiescePoint {
 public:
  explicit QuiescePoint(uint32_t num_shards) : applied_(num_shards, 0) {}

  void MarkApplied(uint32_t shard) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++applied_[shard];
    }
    cv_.notify_all();
  }

  /// Blocks until every shard has applied `pushed[shard]` batches.
  void WaitQuiesced(const std::vector<uint64_t>& pushed) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      for (size_t t = 0; t < pushed.size(); ++t) {
        if (applied_[t] < pushed[t]) return false;
      }
      return true;
    });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<uint64_t> applied_;
};

}  // namespace

BoundedBatchQueue::BoundedBatchQueue(size_t capacity)
    : capacity_(capacity) {
  SL_CHECK(capacity_ >= 1) << "queue capacity must be >= 1";
}

void BoundedBatchQueue::Push(EdgeList batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_push_.wait(lock, [this] { return batches_.size() < capacity_; });
  SL_CHECK(!closed_) << "Push after Close";
  batches_.push_back(std::move(batch));
  can_pop_.notify_one();
}

bool BoundedBatchQueue::Pop(EdgeList* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [this] { return !batches_.empty() || closed_; });
  if (batches_.empty()) return false;
  *batch = std::move(batches_.front());
  batches_.pop_front();
  can_push_.notify_one();
  return true;
}

void BoundedBatchQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  can_pop_.notify_all();
}

ParallelIngestEngine::ParallelIngestEngine(PredictorConfig config,
                                           ParallelIngestOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  SL_CHECK(options_.batch_edges >= 1) << "batch_edges must be >= 1";
  SL_CHECK(options_.max_inflight_batches >= 1)
      << "max_inflight_batches must be >= 1";
  const bool cadence_set = options_.publish_every_edges > 0 ||
                           options_.publish_every_seconds > 0;
  SL_CHECK(!cadence_set || options_.on_publish)
      << "publish cadence set but no on_publish callback";
}

namespace {

/// Decides when the next live publish is due. The time cadence is checked
/// at most once per 1024 edges to keep clock reads off the per-edge path.
class PublishCadence {
 public:
  explicit PublishCadence(const ParallelIngestOptions& options)
      : every_edges_(options.publish_every_edges),
        every_seconds_(options.publish_every_seconds),
        enabled_(options.publish_every_edges > 0 ||
                 options.publish_every_seconds > 0) {
    if (every_seconds_ > 0) timer_.Start();
  }

  bool enabled() const { return enabled_; }

  bool Due(uint64_t edges_now) const {
    if (!enabled_) return false;
    if (every_edges_ > 0 && edges_now - last_edges_ >= every_edges_) {
      return true;
    }
    return every_seconds_ > 0 && (edges_now & 1023) == 0 &&
           timer_.Seconds() >= every_seconds_;
  }

  void Published(uint64_t edges_now) {
    last_edges_ = edges_now;
    if (every_seconds_ > 0) {
      timer_.Reset();
      timer_.Start();
    }
  }

 private:
  const uint64_t every_edges_;
  const double every_seconds_;
  const bool enabled_;
  uint64_t last_edges_ = 0;
  WallTimer timer_;
};

}  // namespace

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::Build(
    EdgeStream& stream) {
  edges_ingested_ = 0;
  if (config_.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1, got 0");
  }

  PublishCadence cadence(options_);

  if (config_.threads == 1) {
    auto predictor = MakePredictor(config_);
    if (!predictor.ok()) return predictor.status();
    EdgeList batch;
    batch.reserve(options_.batch_edges);
    Edge edge;
    while (stream.Next(&edge)) {
      ++edges_ingested_;
      batch.push_back(edge);
      if (batch.size() >= options_.batch_edges) {
        (*predictor)->OnEdgeBatch(batch.data(), batch.size());
        batch.clear();
      }
      if (cadence.Due(edges_ingested_)) {
        if (!batch.empty()) {
          (*predictor)->OnEdgeBatch(batch.data(), batch.size());
          batch.clear();
        }
        options_.on_publish(**predictor, edges_ingested_);
        cadence.Published(edges_ingested_);
      }
    }
    if (!batch.empty()) {
      (*predictor)->OnEdgeBatch(batch.data(), batch.size());
    }
    if (cadence.enabled()) options_.on_publish(**predictor, edges_ingested_);
    return std::move(*predictor);
  }

  auto sharded_result = ShardedPredictor::Make(config_);
  if (!sharded_result.ok()) return sharded_result.status();
  std::unique_ptr<ShardedPredictor> sharded = std::move(*sharded_result);
  const uint32_t num_shards = sharded->num_shards();

  std::vector<std::unique_ptr<BoundedBatchQueue>> queues;
  queues.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    queues.push_back(
        std::make_unique<BoundedBatchQueue>(options_.max_inflight_batches));
  }

  // Each worker owns exactly one shard: no two threads ever touch the same
  // predictor state, so the shards need no internal locking. MarkApplied
  // publishes each applied batch to the router's quiesce waits.
  QuiescePoint quiesce(num_shards);
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    workers.emplace_back([&sharded, &queues, &quiesce, t] {
      LinkPredictor& shard = sharded->shard(t);
      EdgeList batch;
      while (queues[t]->Pop(&batch)) {
        for (const Edge& half : batch) {
          shard.ObserveNeighbor(half.u, half.v);
        }
        quiesce.MarkApplied(t);
      }
    });
  }

  // Route each edge as two half-edges to the endpoint owners. A shard's
  // half-edges stay in stream order, which (with commutative, idempotent
  // sketch updates) makes the final per-vertex state identical to a
  // sequential build.
  std::vector<EdgeList> pending(num_shards);
  for (auto& p : pending) p.reserve(options_.batch_edges);
  std::vector<uint64_t> pushed(num_shards, 0);
  uint64_t simple_edges = 0;
  uint64_t accounted_edges = 0;

  auto push = [&](uint32_t owner) {
    queues[owner]->Push(std::move(pending[owner]));
    ++pushed[owner];
    pending[owner] = EdgeList();
    pending[owner].reserve(options_.batch_edges);
  };

  // A publish barrier: flush every partial batch, wait until the workers
  // have applied everything pushed so far (they then block in Pop), bring
  // the edge tally up to date, and hand the quiescent predictor out. Cost
  // is one drain of the in-flight window, amortized over the cadence.
  auto publish_quiesced = [&] {
    for (uint32_t t = 0; t < num_shards; ++t) {
      if (!pending[t].empty()) push(t);
    }
    quiesce.WaitQuiesced(pushed);
    sharded->AddProcessedEdges(simple_edges - accounted_edges);
    accounted_edges = simple_edges;
    options_.on_publish(*sharded, edges_ingested_);
  };

  Edge edge;
  while (stream.Next(&edge)) {
    ++edges_ingested_;
    if (!edge.IsSelfLoop()) {
      ++simple_edges;
      const uint32_t owner_u = sharded->OwnerOf(edge.u);
      const uint32_t owner_v = sharded->OwnerOf(edge.v);
      pending[owner_u].push_back(edge);
      if (pending[owner_u].size() >= options_.batch_edges) push(owner_u);
      pending[owner_v].push_back(Edge(edge.v, edge.u));
      if (pending[owner_v].size() >= options_.batch_edges) push(owner_v);
    }
    if (cadence.Due(edges_ingested_)) {
      publish_quiesced();
      cadence.Published(edges_ingested_);
    }
  }
  for (uint32_t t = 0; t < num_shards; ++t) {
    if (!pending[t].empty()) queues[t]->Push(std::move(pending[t]));
    queues[t]->Close();
  }
  for (auto& worker : workers) worker.join();

  // ObserveNeighbor does not count edges (a full edge is two half-edges);
  // account for the stream once, matching the sequential OnEdge tally.
  sharded->AddProcessedEdges(simple_edges - accounted_edges);
  if (cadence.enabled()) options_.on_publish(*sharded, edges_ingested_);
  return std::unique_ptr<LinkPredictor>(std::move(sharded));
}

}  // namespace streamlink

#include "stream/parallel_ingest.h"

#include <thread>
#include <utility>
#include <vector>

#include "core/sharded_predictor.h"
#include "util/logging.h"

namespace streamlink {

BoundedBatchQueue::BoundedBatchQueue(size_t capacity)
    : capacity_(capacity) {
  SL_CHECK(capacity_ >= 1) << "queue capacity must be >= 1";
}

void BoundedBatchQueue::Push(EdgeList batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_push_.wait(lock, [this] { return batches_.size() < capacity_; });
  SL_CHECK(!closed_) << "Push after Close";
  batches_.push_back(std::move(batch));
  can_pop_.notify_one();
}

bool BoundedBatchQueue::Pop(EdgeList* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [this] { return !batches_.empty() || closed_; });
  if (batches_.empty()) return false;
  *batch = std::move(batches_.front());
  batches_.pop_front();
  can_push_.notify_one();
  return true;
}

void BoundedBatchQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  can_pop_.notify_all();
}

ParallelIngestEngine::ParallelIngestEngine(PredictorConfig config,
                                           ParallelIngestOptions options)
    : config_(std::move(config)), options_(options) {
  SL_CHECK(options_.batch_edges >= 1) << "batch_edges must be >= 1";
  SL_CHECK(options_.max_inflight_batches >= 1)
      << "max_inflight_batches must be >= 1";
}

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::Build(
    EdgeStream& stream) {
  edges_ingested_ = 0;
  if (config_.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1, got 0");
  }

  if (config_.threads == 1) {
    auto predictor = MakePredictor(config_);
    if (!predictor.ok()) return predictor.status();
    EdgeList batch;
    batch.reserve(options_.batch_edges);
    Edge edge;
    while (stream.Next(&edge)) {
      ++edges_ingested_;
      batch.push_back(edge);
      if (batch.size() >= options_.batch_edges) {
        (*predictor)->OnEdgeBatch(batch.data(), batch.size());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      (*predictor)->OnEdgeBatch(batch.data(), batch.size());
    }
    return std::move(*predictor);
  }

  auto sharded_result = ShardedPredictor::Make(config_);
  if (!sharded_result.ok()) return sharded_result.status();
  std::unique_ptr<ShardedPredictor> sharded = std::move(*sharded_result);
  const uint32_t num_shards = sharded->num_shards();

  std::vector<std::unique_ptr<BoundedBatchQueue>> queues;
  queues.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    queues.push_back(
        std::make_unique<BoundedBatchQueue>(options_.max_inflight_batches));
  }

  // Each worker owns exactly one shard: no two threads ever touch the same
  // predictor state, so the shards need no internal locking.
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    workers.emplace_back([&sharded, &queues, t] {
      LinkPredictor& shard = sharded->shard(t);
      EdgeList batch;
      while (queues[t]->Pop(&batch)) {
        for (const Edge& half : batch) {
          shard.ObserveNeighbor(half.u, half.v);
        }
      }
    });
  }

  // Route each edge as two half-edges to the endpoint owners. A shard's
  // half-edges stay in stream order, which (with commutative, idempotent
  // sketch updates) makes the final per-vertex state identical to a
  // sequential build.
  std::vector<EdgeList> pending(num_shards);
  for (auto& p : pending) p.reserve(options_.batch_edges);
  uint64_t simple_edges = 0;
  Edge edge;
  while (stream.Next(&edge)) {
    ++edges_ingested_;
    if (edge.IsSelfLoop()) continue;
    ++simple_edges;
    const uint32_t owner_u = sharded->OwnerOf(edge.u);
    const uint32_t owner_v = sharded->OwnerOf(edge.v);
    pending[owner_u].push_back(edge);
    if (pending[owner_u].size() >= options_.batch_edges) {
      queues[owner_u]->Push(std::move(pending[owner_u]));
      pending[owner_u] = EdgeList();
      pending[owner_u].reserve(options_.batch_edges);
    }
    pending[owner_v].push_back(Edge(edge.v, edge.u));
    if (pending[owner_v].size() >= options_.batch_edges) {
      queues[owner_v]->Push(std::move(pending[owner_v]));
      pending[owner_v] = EdgeList();
      pending[owner_v].reserve(options_.batch_edges);
    }
  }
  for (uint32_t t = 0; t < num_shards; ++t) {
    if (!pending[t].empty()) queues[t]->Push(std::move(pending[t]));
    queues[t]->Close();
  }
  for (auto& worker : workers) worker.join();

  // ObserveNeighbor does not count edges (a full edge is two half-edges);
  // account for the stream once, matching the sequential OnEdge tally.
  sharded->AddProcessedEdges(simple_edges);
  return std::unique_ptr<LinkPredictor>(std::move(sharded));
}

}  // namespace streamlink

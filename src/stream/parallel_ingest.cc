#include "stream/parallel_ingest.h"

#include <thread>
#include <utility>
#include <vector>

#include "core/sharded_predictor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/rate_meter.h"
#include "util/logging.h"
#include "util/timer.h"

namespace streamlink {

namespace {

/// Registry-resident instruments for one Build run; all pointers null when
/// ParallelIngestOptions::metrics is unset, making every update a no-op
/// branch. Updated only by the router thread except the per-shard counters,
/// which each worker bumps once per applied batch (Counter is thread-safe).
struct IngestMetrics {
  obs::Counter* edges = nullptr;            // ingest.edges_total
  obs::Counter* publishes = nullptr;        // ingest.publishes_total
  obs::Gauge* live_edges = nullptr;         // ingest.live_edges
  obs::Gauge* window_eps = nullptr;         // ingest.window_eps
  obs::Histogram* batch_half_edges = nullptr;  // ingest.batch_half_edges
  obs::Histogram* queue_wait_ns = nullptr;     // ingest.queue_wait_ns
  obs::Histogram* publish_ns = nullptr;        // ingest.publish_ns
  std::vector<obs::Counter*> shard_half_edges;

  explicit IngestMetrics(obs::MetricsRegistry* registry,
                         uint32_t num_shards) {
    if (registry == nullptr) return;
    edges = &registry->GetCounter("ingest.edges_total");
    publishes = &registry->GetCounter("ingest.publishes_total");
    live_edges = &registry->GetGauge("ingest.live_edges");
    window_eps = &registry->GetGauge("ingest.window_eps");
    batch_half_edges = &registry->GetHistogram("ingest.batch_half_edges");
    queue_wait_ns = &registry->GetHistogram("ingest.queue_wait_ns");
    publish_ns = &registry->GetHistogram("ingest.publish_ns");
    shard_half_edges.reserve(num_shards);
    for (uint32_t t = 0; t < num_shards; ++t) {
      shard_half_edges.push_back(&registry->GetCounter(
          "ingest.shard" + std::to_string(t) + ".half_edges_total"));
    }
  }

  bool enabled() const { return edges != nullptr; }

  /// Folds the stream frontier into the counter/gauges; called at batch
  /// and publish boundaries, never per edge.
  void NoteFrontier(uint64_t edges_now, uint64_t* last_noted,
                    RateMeter* rate) {
    if (!enabled() || edges_now == *last_noted) return;
    edges->Add(edges_now - *last_noted);
    rate->RecordNow(edges_now - *last_noted);
    window_eps->Set(rate->WindowRate());
    *last_noted = edges_now;
    live_edges->Set(static_cast<double>(edges_now));
  }

  /// Times `on_publish` and counts it.
  void TimedPublish(const IngestPublishFn& fn, const LinkPredictor& live,
                    uint64_t stream_edges) {
    obs::ScopedSpan span("ingest/publish");
    if (!enabled()) {
      fn(live, stream_edges);
      return;
    }
    const uint64_t t0 = obs::Tracer::NowNs();
    fn(live, stream_edges);
    publish_ns->Record(obs::Tracer::NowNs() - t0);
    publishes->Add(1);
  }
};

/// Tracks how many batches each worker has fully applied, so the router
/// can wait for a global quiescent point (all pushed batches applied, no
/// worker mid-write). The mutex also publishes the workers' shard state to
/// the router: MarkApplied happens-after the batch's writes, WaitQuiesced
/// happens-before the router reads the shards.
class QuiescePoint {
 public:
  explicit QuiescePoint(uint32_t num_shards) : applied_(num_shards, 0) {}

  void MarkApplied(uint32_t shard) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++applied_[shard];
    }
    cv_.notify_all();
  }

  /// Blocks until every shard has applied `pushed[shard]` batches.
  void WaitQuiesced(const std::vector<uint64_t>& pushed) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      for (size_t t = 0; t < pushed.size(); ++t) {
        if (applied_[t] < pushed[t]) return false;
      }
      return true;
    });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<uint64_t> applied_;
};

}  // namespace

BoundedBatchQueue::BoundedBatchQueue(size_t capacity)
    : capacity_(capacity) {
  SL_CHECK(capacity_ >= 1) << "queue capacity must be >= 1";
}

void BoundedBatchQueue::Push(EdgeList batch) {
  std::unique_lock<std::mutex> lock(mu_);
  if (batches_.size() >= capacity_) {
    // Backpressure: only a full-on-entry Push reads the clock, so the
    // uncontended fast path stays free of timing work.
    const uint64_t t0 =
        push_wait_ns_ != nullptr ? obs::Tracer::NowNs() : 0;
    can_push_.wait(lock, [this] { return batches_.size() < capacity_; });
    if (push_wait_ns_ != nullptr) {
      push_wait_ns_->Record(obs::Tracer::NowNs() - t0);
    }
  }
  SL_CHECK(!closed_) << "Push after Close";
  batches_.push_back(std::move(batch));
  can_pop_.notify_one();
}

bool BoundedBatchQueue::Pop(EdgeList* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [this] { return !batches_.empty() || closed_; });
  if (batches_.empty()) return false;
  *batch = std::move(batches_.front());
  batches_.pop_front();
  can_push_.notify_one();
  return true;
}

void BoundedBatchQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  can_pop_.notify_all();
}

ParallelIngestEngine::ParallelIngestEngine(PredictorConfig config,
                                           ParallelIngestOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  SL_CHECK(options_.batch_edges >= 1) << "batch_edges must be >= 1";
  SL_CHECK(options_.max_inflight_batches >= 1)
      << "max_inflight_batches must be >= 1";
  const bool cadence_set = options_.publish_every_edges > 0 ||
                           options_.publish_every_seconds > 0;
  SL_CHECK(!cadence_set || options_.on_publish)
      << "publish cadence set but no on_publish callback";
}

namespace {

/// Decides when the next live publish is due. The time cadence is checked
/// at most once per 1024 edges to keep clock reads off the per-edge path.
class PublishCadence {
 public:
  explicit PublishCadence(const ParallelIngestOptions& options)
      : every_edges_(options.publish_every_edges),
        every_seconds_(options.publish_every_seconds),
        enabled_(options.publish_every_edges > 0 ||
                 options.publish_every_seconds > 0) {
    if (every_seconds_ > 0) timer_.Start();
  }

  bool enabled() const { return enabled_; }

  bool Due(uint64_t edges_now) const {
    if (!enabled_) return false;
    if (every_edges_ > 0 && edges_now - last_edges_ >= every_edges_) {
      return true;
    }
    return every_seconds_ > 0 && (edges_now & 1023) == 0 &&
           timer_.Seconds() >= every_seconds_;
  }

  void Published(uint64_t edges_now) {
    last_edges_ = edges_now;
    if (every_seconds_ > 0) {
      timer_.Reset();
      timer_.Start();
    }
  }

 private:
  const uint64_t every_edges_;
  const double every_seconds_;
  const bool enabled_;
  uint64_t last_edges_ = 0;
  WallTimer timer_;
};

}  // namespace

Result<std::unique_ptr<LinkPredictor>> ParallelIngestEngine::Build(
    EdgeStream& stream) {
  edges_ingested_ = 0;
  if (config_.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1, got 0");
  }

  obs::ScopedSpan build_span("ingest/build");
  PublishCadence cadence(options_);
  IngestMetrics metrics(options_.metrics, config_.threads);
  RateMeter rate(/*window_seconds=*/1.0);
  uint64_t metric_edges = 0;  // stream frontier already folded into metrics

  if (config_.threads == 1) {
    auto predictor = MakePredictor(config_);
    if (!predictor.ok()) return predictor.status();
    EdgeList batch;
    batch.reserve(options_.batch_edges);
    Edge edge;
    while (stream.Next(&edge)) {
      ++edges_ingested_;
      batch.push_back(edge);
      if (batch.size() >= options_.batch_edges) {
        (*predictor)->OnEdgeBatch(batch.data(), batch.size());
        if (metrics.enabled()) {
          metrics.batch_half_edges->Record(batch.size());
          metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
        }
        batch.clear();
      }
      if (cadence.Due(edges_ingested_)) {
        if (!batch.empty()) {
          (*predictor)->OnEdgeBatch(batch.data(), batch.size());
          batch.clear();
        }
        metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
        metrics.TimedPublish(options_.on_publish, **predictor,
                             edges_ingested_);
        cadence.Published(edges_ingested_);
      }
    }
    if (!batch.empty()) {
      (*predictor)->OnEdgeBatch(batch.data(), batch.size());
    }
    metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    if (cadence.enabled()) {
      metrics.TimedPublish(options_.on_publish, **predictor,
                           edges_ingested_);
    }
    return std::move(*predictor);
  }

  auto sharded_result = ShardedPredictor::Make(config_);
  if (!sharded_result.ok()) return sharded_result.status();
  std::unique_ptr<ShardedPredictor> sharded = std::move(*sharded_result);
  const uint32_t num_shards = sharded->num_shards();

  std::vector<std::unique_ptr<BoundedBatchQueue>> queues;
  queues.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    queues.push_back(
        std::make_unique<BoundedBatchQueue>(options_.max_inflight_batches));
    if (metrics.enabled()) {
      queues.back()->BindPushWaitHistogram(metrics.queue_wait_ns);
    }
  }

  // Each worker owns exactly one shard: no two threads ever touch the same
  // predictor state, so the shards need no internal locking. MarkApplied
  // publishes each applied batch to the router's quiesce waits.
  QuiescePoint quiesce(num_shards);
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (uint32_t t = 0; t < num_shards; ++t) {
    obs::Counter* applied_counter =
        metrics.enabled() ? metrics.shard_half_edges[t] : nullptr;
    workers.emplace_back([&sharded, &queues, &quiesce, applied_counter, t] {
      LinkPredictor& shard = sharded->shard(t);
      EdgeList batch;
      while (queues[t]->Pop(&batch)) {
        obs::ScopedSpan span("ingest/apply_batch");
        for (const Edge& half : batch) {
          shard.ObserveNeighbor(half.u, half.v);
        }
        if (applied_counter != nullptr) applied_counter->Add(batch.size());
        quiesce.MarkApplied(t);
      }
    });
  }

  // Route each edge as two half-edges to the endpoint owners. A shard's
  // half-edges stay in stream order, which (with commutative, idempotent
  // sketch updates) makes the final per-vertex state identical to a
  // sequential build.
  std::vector<EdgeList> pending(num_shards);
  for (auto& p : pending) p.reserve(options_.batch_edges);
  std::vector<uint64_t> pushed(num_shards, 0);
  uint64_t simple_edges = 0;
  uint64_t accounted_edges = 0;

  auto push = [&](uint32_t owner) {
    if (metrics.enabled()) {
      metrics.batch_half_edges->Record(pending[owner].size());
      metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    }
    queues[owner]->Push(std::move(pending[owner]));
    ++pushed[owner];
    pending[owner] = EdgeList();
    pending[owner].reserve(options_.batch_edges);
  };

  // A publish barrier: flush every partial batch, wait until the workers
  // have applied everything pushed so far (they then block in Pop), bring
  // the edge tally up to date, and hand the quiescent predictor out. Cost
  // is one drain of the in-flight window, amortized over the cadence.
  auto publish_quiesced = [&] {
    for (uint32_t t = 0; t < num_shards; ++t) {
      if (!pending[t].empty()) push(t);
    }
    quiesce.WaitQuiesced(pushed);
    sharded->AddProcessedEdges(simple_edges - accounted_edges);
    accounted_edges = simple_edges;
    metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
    metrics.TimedPublish(options_.on_publish, *sharded, edges_ingested_);
  };

  Edge edge;
  while (stream.Next(&edge)) {
    ++edges_ingested_;
    if (!edge.IsSelfLoop()) {
      ++simple_edges;
      const uint32_t owner_u = sharded->OwnerOf(edge.u);
      const uint32_t owner_v = sharded->OwnerOf(edge.v);
      pending[owner_u].push_back(edge);
      if (pending[owner_u].size() >= options_.batch_edges) push(owner_u);
      pending[owner_v].push_back(Edge(edge.v, edge.u));
      if (pending[owner_v].size() >= options_.batch_edges) push(owner_v);
    }
    if (cadence.Due(edges_ingested_)) {
      publish_quiesced();
      cadence.Published(edges_ingested_);
    }
  }
  for (uint32_t t = 0; t < num_shards; ++t) {
    if (!pending[t].empty()) queues[t]->Push(std::move(pending[t]));
    queues[t]->Close();
  }
  for (auto& worker : workers) worker.join();

  // ObserveNeighbor does not count edges (a full edge is two half-edges);
  // account for the stream once, matching the sequential OnEdge tally.
  sharded->AddProcessedEdges(simple_edges - accounted_edges);
  metrics.NoteFrontier(edges_ingested_, &metric_edges, &rate);
  if (cadence.enabled()) {
    metrics.TimedPublish(options_.on_publish, *sharded, edges_ingested_);
  }
  return std::unique_ptr<LinkPredictor>(std::move(sharded));
}

}  // namespace streamlink

#include "eval/temporal_split.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace streamlink {

TrainTestSplit MakeTemporalSplit(const EdgeList& stream,
                                 double train_fraction) {
  SL_CHECK(train_fraction > 0.0 && train_fraction < 1.0)
      << "train_fraction must be in (0,1)";
  TrainTestSplit split;
  size_t cut = static_cast<size_t>(train_fraction * stream.size());
  split.train.assign(stream.begin(), stream.begin() + cut);

  std::unordered_set<Edge, EdgeHash> train_edges;
  std::unordered_set<VertexId> train_vertices;
  train_edges.reserve(cut * 2);
  for (const Edge& e : split.train) {
    train_edges.insert(e.Canonical());
    train_vertices.insert(e.u);
    train_vertices.insert(e.v);
  }

  std::unordered_set<Edge, EdgeHash> seen_test;
  for (size_t i = cut; i < stream.size(); ++i) {
    Edge e = stream[i].Canonical();
    if (e.IsSelfLoop()) continue;
    if (train_edges.count(e) > 0) continue;
    if (train_vertices.count(e.u) == 0 || train_vertices.count(e.v) == 0) {
      continue;  // endpoints unseen at prediction time: not predictable
    }
    if (!seen_test.insert(e).second) continue;
    split.test_positives.push_back(e);
  }
  return split;
}

LabeledPairs MakeLabeledPairs(const TrainTestSplit& split,
                              double negatives_per_positive, Rng& rng) {
  SL_CHECK(negatives_per_positive > 0.0)
      << "need a positive negative-sampling ratio";
  LabeledPairs out;

  std::unordered_set<Edge, EdgeHash> known;
  std::vector<VertexId> train_vertices;
  {
    std::unordered_set<VertexId> vertex_set;
    for (const Edge& e : split.train) {
      known.insert(e.Canonical());
      vertex_set.insert(e.u);
      vertex_set.insert(e.v);
    }
    for (const Edge& e : split.test_positives) known.insert(e.Canonical());
    train_vertices.assign(vertex_set.begin(), vertex_set.end());
    std::sort(train_vertices.begin(), train_vertices.end());
  }
  SL_CHECK(train_vertices.size() >= 2) << "train graph too small";

  for (const Edge& e : split.test_positives) {
    out.pairs.push_back(QueryPair{e.u, e.v});
    out.labels.push_back(true);
  }

  uint64_t target_negatives = static_cast<uint64_t>(
      negatives_per_positive *
      static_cast<double>(split.test_positives.size()));
  std::unordered_set<Edge, EdgeHash> sampled;
  uint64_t attempts = 0;
  const uint64_t max_attempts = target_negatives * 64 + 4096;
  while (sampled.size() < target_negatives && attempts < max_attempts) {
    ++attempts;
    VertexId u = train_vertices[rng.NextBounded(train_vertices.size())];
    VertexId v = train_vertices[rng.NextBounded(train_vertices.size())];
    if (u == v) continue;
    Edge e = Edge(u, v).Canonical();
    if (known.count(e) > 0) continue;
    if (!sampled.insert(e).second) continue;
    out.pairs.push_back(QueryPair{e.u, e.v});
    out.labels.push_back(false);
  }
  return out;
}

}  // namespace streamlink

#ifndef STREAMLINK_EVAL_TEMPORAL_SPLIT_H_
#define STREAMLINK_EVAL_TEMPORAL_SPLIT_H_

#include <vector>

#include "gen/pair_sampler.h"
#include "graph/types.h"
#include "util/random.h"

namespace streamlink {

/// Temporal train/test split of an edge stream: the prefix is observed
/// (train), the suffix is the future to predict (test). The standard
/// link-prediction evaluation protocol (F6).
struct TrainTestSplit {
  EdgeList train;
  /// Future edges that are predictable: both endpoints appear in train and
  /// the edge is not already in train (deduplicated, canonical).
  EdgeList test_positives;
};

/// Splits `stream` at `train_fraction` of its length and filters the test
/// suffix down to predictable positives.
TrainTestSplit MakeTemporalSplit(const EdgeList& stream,
                                 double train_fraction);

/// The labeled example set for AUC/precision evaluation: all test
/// positives plus `negatives_per_positive ×` as many sampled negatives —
/// vertex pairs that are edges in neither train nor test.
struct LabeledPairs {
  std::vector<QueryPair> pairs;
  std::vector<bool> labels;  // parallel to pairs; true = future edge
};

LabeledPairs MakeLabeledPairs(const TrainTestSplit& split,
                              double negatives_per_positive, Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_EVAL_TEMPORAL_SPLIT_H_

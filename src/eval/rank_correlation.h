#ifndef STREAMLINK_EVAL_RANK_CORRELATION_H_
#define STREAMLINK_EVAL_RANK_CORRELATION_H_

#include <vector>

namespace streamlink {

/// Rank-agreement statistics between exact and estimated score vectors —
/// link prediction consumes *rankings*, so rank correlation is often the
/// more honest accuracy metric than pointwise error.

/// Kendall tau-b: concordant/discordant pair statistic with tie
/// correction. O(n log n) via merge-sort inversion counting.
/// Preconditions: equal sizes, size >= 2.
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

/// Spearman rank correlation: Pearson correlation of midrank vectors.
/// Preconditions: equal sizes, size >= 2.
double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b);

/// Fractional (midrank) ranks of `values`, 1-based; ties share the mean of
/// the ranks they span. Exposed for tests.
std::vector<double> MidRanks(const std::vector<double>& values);

}  // namespace streamlink

#endif  // STREAMLINK_EVAL_RANK_CORRELATION_H_

#ifndef STREAMLINK_EVAL_RELATIVE_ERROR_H_
#define STREAMLINK_EVAL_RELATIVE_ERROR_H_

#include <cstdint>
#include <vector>

namespace streamlink {

/// Accumulates estimation-error statistics over query pairs — the core
/// accuracy metric of experiments F2/F3/T8/F9.
///
/// For each (exact, estimate) observation the accumulator records:
///  * relative error |est − exact| / exact, over observations with
///    exact > 0 (relative error is undefined at zero);
///  * absolute error |est − exact|, over all observations;
///  * signed bias (est − exact), over all observations.
class ErrorAccumulator {
 public:
  ErrorAccumulator() = default;

  void Add(double exact, double estimate);

  uint64_t count() const { return count_; }
  uint64_t nonzero_count() const {
    return static_cast<uint64_t>(relative_errors_.size());
  }

  double MeanRelativeError() const;
  double MedianRelativeError() const;
  /// q in [0, 1]; nearest-rank quantile of the relative errors.
  double RelativeErrorQuantile(double q) const;
  double MaxRelativeError() const;

  double MeanAbsoluteError() const;
  double RootMeanSquaredError() const;
  /// Mean of (estimate − exact): ≈0 indicates an unbiased estimator.
  double MeanSignedError() const;

 private:
  mutable std::vector<double> relative_errors_;  // sorted lazily
  mutable bool sorted_ = false;
  uint64_t count_ = 0;
  double abs_error_sum_ = 0.0;
  double squared_error_sum_ = 0.0;
  double signed_error_sum_ = 0.0;
};

}  // namespace streamlink

#endif  // STREAMLINK_EVAL_RELATIVE_ERROR_H_

#include "eval/experiment.h"

#include "core/exact_predictor.h"
#include "util/logging.h"

namespace streamlink {

void FeedStream(LinkPredictor& predictor, const EdgeList& edges) {
  for (const Edge& e : edges) predictor.OnEdge(e);
}

AccuracyReport MeasureAccuracyAgainst(const LinkPredictor& predictor,
                                      const LinkPredictor& exact,
                                      const std::vector<QueryPair>& pairs) {
  AccuracyReport report;
  report.predictor = predictor.name();
  report.query_pairs = pairs.size();
  // One overlap estimate per pair per predictor, scored on all three
  // reported measures at once (LinkPredictor::Scores).
  static constexpr LinkMeasure kMeasures[] = {LinkMeasure::kJaccard,
                                              LinkMeasure::kCommonNeighbors,
                                              LinkMeasure::kAdamicAdar};
  for (const QueryPair& p : pairs) {
    std::vector<double> truth = exact.Scores(kMeasures, p.u, p.v);
    std::vector<double> est = predictor.Scores(kMeasures, p.u, p.v);
    report.jaccard.Add(truth[0], est[0]);
    report.common_neighbors.Add(truth[1], est[1]);
    report.adamic_adar.Add(truth[2], est[2]);
  }
  return report;
}

AccuracyReport MeasureAccuracy(const GeneratedGraph& graph,
                               const PredictorConfig& config,
                               const std::vector<QueryPair>& pairs) {
  auto predictor = MakePredictor(config);
  SL_CHECK(predictor.ok()) << predictor.status().ToString();
  ExactPredictor exact;
  FeedStream(**predictor, graph.edges);
  FeedStream(exact, graph.edges);
  AccuracyReport report = MeasureAccuracyAgainst(**predictor, exact, pairs);
  report.sketch_size = config.sketch_size;
  return report;
}

}  // namespace streamlink

#include "eval/experiment.h"

#include "core/exact_predictor.h"
#include "util/logging.h"

namespace streamlink {

void FeedStream(LinkPredictor& predictor, const EdgeList& edges) {
  for (const Edge& e : edges) predictor.OnEdge(e);
}

AccuracyReport MeasureAccuracyAgainst(const LinkPredictor& predictor,
                                      const LinkPredictor& exact,
                                      const std::vector<QueryPair>& pairs) {
  AccuracyReport report;
  report.predictor = predictor.name();
  report.query_pairs = pairs.size();
  for (const QueryPair& p : pairs) {
    OverlapEstimate truth = exact.EstimateOverlap(p.u, p.v);
    OverlapEstimate est = predictor.EstimateOverlap(p.u, p.v);
    report.jaccard.Add(truth.jaccard, est.jaccard);
    report.common_neighbors.Add(truth.intersection, est.intersection);
    report.adamic_adar.Add(truth.adamic_adar, est.adamic_adar);
  }
  return report;
}

AccuracyReport MeasureAccuracy(const GeneratedGraph& graph,
                               const PredictorConfig& config,
                               const std::vector<QueryPair>& pairs) {
  auto predictor = MakePredictor(config);
  SL_CHECK(predictor.ok()) << predictor.status().ToString();
  ExactPredictor exact;
  FeedStream(**predictor, graph.edges);
  FeedStream(exact, graph.edges);
  AccuracyReport report = MeasureAccuracyAgainst(**predictor, exact, pairs);
  report.sketch_size = config.sketch_size;
  return report;
}

}  // namespace streamlink

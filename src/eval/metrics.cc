#include "eval/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

namespace {

/// Sorts descending by score (stable, so equal scores keep input order).
void SortDescending(std::vector<LabeledScore>& examples) {
  std::stable_sort(examples.begin(), examples.end(),
                   [](const LabeledScore& a, const LabeledScore& b) {
                     return a.score > b.score;
                   });
}

}  // namespace

double ComputeAuc(std::vector<LabeledScore> examples) {
  uint64_t positives = 0, negatives = 0;
  for (const LabeledScore& e : examples) {
    e.positive ? ++positives : ++negatives;
  }
  if (positives == 0 || negatives == 0) return 0.5;

  // Ascending by score; assign midranks to ties.
  std::sort(examples.begin(), examples.end(),
            [](const LabeledScore& a, const LabeledScore& b) {
              return a.score < b.score;
            });
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < examples.size()) {
    size_t j = i;
    while (j < examples.size() && examples[j].score == examples[i].score) ++j;
    // Ranks i+1 .. j (1-based); midrank:
    double midrank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (size_t t = i; t < j; ++t) {
      if (examples[t].positive) positive_rank_sum += midrank;
    }
    i = j;
  }
  double p = static_cast<double>(positives);
  double n = static_cast<double>(negatives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * n);
}

double PrecisionAtK(std::vector<LabeledScore> examples, uint32_t k) {
  if (examples.empty() || k == 0) return 0.0;
  SortDescending(examples);
  uint32_t limit = std::min<uint64_t>(k, examples.size());
  uint32_t hits = 0;
  for (uint32_t i = 0; i < limit; ++i) {
    if (examples[i].positive) ++hits;
  }
  return static_cast<double>(hits) / limit;
}

double RecallAtK(std::vector<LabeledScore> examples, uint32_t k) {
  uint64_t positives = 0;
  for (const LabeledScore& e : examples) {
    if (e.positive) ++positives;
  }
  if (positives == 0 || k == 0) return 0.0;
  SortDescending(examples);
  uint32_t limit = std::min<uint64_t>(k, examples.size());
  uint32_t hits = 0;
  for (uint32_t i = 0; i < limit; ++i) {
    if (examples[i].positive) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(positives);
}

double AveragePrecision(std::vector<LabeledScore> examples) {
  uint64_t positives = 0;
  for (const LabeledScore& e : examples) {
    if (e.positive) ++positives;
  }
  if (positives == 0) return 0.0;
  SortDescending(examples);
  double sum = 0.0;
  uint64_t hits = 0;
  for (size_t i = 0; i < examples.size(); ++i) {
    if (!examples[i].positive) continue;
    ++hits;
    sum += static_cast<double>(hits) / static_cast<double>(i + 1);
  }
  return sum / static_cast<double>(positives);
}

}  // namespace streamlink

#ifndef STREAMLINK_EVAL_METRICS_H_
#define STREAMLINK_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace streamlink {

/// Binary-classification ranking metrics over (score, is_positive) pairs —
/// the end-task quality measures of the prediction-quality experiment (F6).

/// A scored example with a ground-truth label.
struct LabeledScore {
  double score;
  bool positive;
};

/// Area under the ROC curve computed by the rank statistic
/// AUC = (Σ ranks of positives − P(P+1)/2) / (P·N), with midrank tie
/// handling (ties contribute 1/2). Returns 0.5 when either class is empty
/// (no ranking information).
double ComputeAuc(std::vector<LabeledScore> examples);

/// Precision among the k highest-scoring examples (ties broken by stable
/// order after a stable sort on descending score). k is clamped to size.
double PrecisionAtK(std::vector<LabeledScore> examples, uint32_t k);

/// Recall among the k highest-scoring examples: fraction of all positives
/// that appear in the top k.
double RecallAtK(std::vector<LabeledScore> examples, uint32_t k);

/// Average precision (area under the precision-recall curve, step
/// interpolation): mean over positives of precision at each positive hit.
double AveragePrecision(std::vector<LabeledScore> examples);

}  // namespace streamlink

#endif  // STREAMLINK_EVAL_METRICS_H_

#ifndef STREAMLINK_EVAL_EXPERIMENT_H_
#define STREAMLINK_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/predictor_factory.h"
#include "eval/relative_error.h"
#include "gen/generated_graph.h"
#include "gen/pair_sampler.h"

namespace streamlink {

/// Shared plumbing for the bench harness and integration tests, so each
/// experiment binary is a thin parameter sweep around these calls.

/// Feeds every edge of `edges` into `predictor` (self-loops dropped by the
/// predictor itself).
void FeedStream(LinkPredictor& predictor, const EdgeList& edges);

/// Per-measure error statistics of one predictor against exact ground
/// truth on a fixed query set.
struct AccuracyReport {
  std::string predictor;
  uint32_t sketch_size = 0;
  ErrorAccumulator jaccard;
  ErrorAccumulator common_neighbors;
  ErrorAccumulator adamic_adar;
  uint64_t query_pairs = 0;
};

/// Builds the predictor from `config`, streams `graph.edges` into it and
/// into an exact baseline, then accumulates errors for the paper's three
/// measures over `pairs`.
AccuracyReport MeasureAccuracy(const GeneratedGraph& graph,
                               const PredictorConfig& config,
                               const std::vector<QueryPair>& pairs);

/// As above but reuses an already-fed predictor and exact baseline
/// (callers doing their own streaming, e.g. checkpointed runs).
AccuracyReport MeasureAccuracyAgainst(const LinkPredictor& predictor,
                                      const LinkPredictor& exact,
                                      const std::vector<QueryPair>& pairs);

}  // namespace streamlink

#endif  // STREAMLINK_EVAL_EXPERIMENT_H_

#include "eval/rank_correlation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/logging.h"

namespace streamlink {

std::vector<double> MidRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return values[x] < values[y]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && values[order[j]] == values[order[i]]) ++j;
    double midrank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (size_t t = i; t < j; ++t) ranks[order[t]] = midrank;
    i = j;
  }
  return ranks;
}

namespace {

/// Counts inversions in `v` by merge sort. Used for Kendall's discordant
/// pair count.
uint64_t CountInversions(std::vector<double>& v, std::vector<double>& buffer,
                         size_t lo, size_t hi) {
  if (hi - lo <= 1) return 0;
  size_t mid = lo + (hi - lo) / 2;
  uint64_t count = CountInversions(v, buffer, lo, mid) +
                   CountInversions(v, buffer, mid, hi);
  size_t i = lo, j = mid, out = lo;
  while (i < mid && j < hi) {
    if (v[i] <= v[j]) {
      buffer[out++] = v[i++];
    } else {
      count += mid - i;
      buffer[out++] = v[j++];
    }
  }
  while (i < mid) buffer[out++] = v[i++];
  while (j < hi) buffer[out++] = v[j++];
  std::copy(buffer.begin() + lo, buffer.begin() + hi, v.begin() + lo);
  return count;
}

/// Σ t(t-1)/2 over groups of tied values.
uint64_t TiePairs(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  uint64_t pairs = 0;
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    uint64_t t = j - i;
    pairs += t * (t - 1) / 2;
    i = j;
  }
  return pairs;
}

}  // namespace

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  SL_CHECK(a.size() == b.size()) << "rank correlation needs equal sizes";
  SL_CHECK(a.size() >= 2) << "rank correlation needs at least 2 items";
  const size_t n = a.size();
  const uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;

  // Sort by a (breaking ties by b so tied-a groups are b-sorted, making
  // within-group b-inversions zero as required by tau-b accounting).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    if (a[x] != a[y]) return a[x] < a[y];
    return b[x] < b[y];
  });

  std::vector<double> b_sorted(n);
  for (size_t i = 0; i < n; ++i) b_sorted[i] = b[order[i]];

  // Joint ties (same a AND same b).
  uint64_t joint_ties = 0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j < n && a[order[j]] == a[order[i]] &&
             b[order[j]] == b[order[i]])
        ++j;
      uint64_t t = j - i;
      joint_ties += t * (t - 1) / 2;
      i = j;
    }
  }

  uint64_t ties_a = TiePairs(a);
  uint64_t ties_b = TiePairs(b);

  std::vector<double> buffer(n);
  uint64_t discordant = CountInversions(b_sorted, buffer, 0, n);

  // Pairs tied in neither: total - ties_a - ties_b + joint (inclusion-
  // exclusion). Concordant = those - discordant.
  uint64_t tied_any = ties_a + ties_b - joint_ties;
  uint64_t comparable = total_pairs - tied_any;
  double numerator =
      static_cast<double>(comparable) - 2.0 * static_cast<double>(discordant);
  double denom = std::sqrt(static_cast<double>(total_pairs - ties_a)) *
                 std::sqrt(static_cast<double>(total_pairs - ties_b));
  if (denom == 0.0) return 0.0;
  return numerator / denom;
}

double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b) {
  SL_CHECK(a.size() == b.size()) << "rank correlation needs equal sizes";
  SL_CHECK(a.size() >= 2) << "rank correlation needs at least 2 items";
  std::vector<double> ra = MidRanks(a);
  std::vector<double> rb = MidRanks(b);
  const double n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = ra[i] - mean;
    double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  double denom = std::sqrt(var_a) * std::sqrt(var_b);
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

}  // namespace streamlink

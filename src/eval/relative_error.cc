#include "eval/relative_error.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

void ErrorAccumulator::Add(double exact, double estimate) {
  ++count_;
  double diff = estimate - exact;
  abs_error_sum_ += std::abs(diff);
  squared_error_sum_ += diff * diff;
  signed_error_sum_ += diff;
  if (exact > 0.0) {
    relative_errors_.push_back(std::abs(diff) / exact);
    sorted_ = false;
  }
}

double ErrorAccumulator::MeanRelativeError() const {
  if (relative_errors_.empty()) return 0.0;
  double sum = 0.0;
  for (double e : relative_errors_) sum += e;
  return sum / static_cast<double>(relative_errors_.size());
}

double ErrorAccumulator::RelativeErrorQuantile(double q) const {
  SL_CHECK(q >= 0.0 && q <= 1.0) << "quantile must be in [0,1]";
  if (relative_errors_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(relative_errors_.begin(), relative_errors_.end());
    sorted_ = true;
  }
  size_t idx = static_cast<size_t>(q * (relative_errors_.size() - 1) + 0.5);
  return relative_errors_[idx];
}

double ErrorAccumulator::MedianRelativeError() const {
  return RelativeErrorQuantile(0.5);
}

double ErrorAccumulator::MaxRelativeError() const {
  return RelativeErrorQuantile(1.0);
}

double ErrorAccumulator::MeanAbsoluteError() const {
  return count_ > 0 ? abs_error_sum_ / static_cast<double>(count_) : 0.0;
}

double ErrorAccumulator::RootMeanSquaredError() const {
  return count_ > 0
             ? std::sqrt(squared_error_sum_ / static_cast<double>(count_))
             : 0.0;
}

double ErrorAccumulator::MeanSignedError() const {
  return count_ > 0 ? signed_error_sum_ / static_cast<double>(count_) : 0.0;
}

}  // namespace streamlink

#include "sketch/minhash.h"

#include "util/logging.h"

namespace streamlink {

bool MinHashSketch::IsEmpty() const {
  // All slots are updated together, so checking one suffices — but an
  // all-default sketch with zero slots is also "empty".
  return slots_.empty() || slots_[0].hash == ~0ULL;
}

void MinHashSketch::MergeUnion(const MinHashSketch& other) {
  SL_CHECK(slots_.size() == other.slots_.size())
      << "cannot merge sketches of different widths";
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (other.slots_[i].hash < slots_[i].hash) {
      slots_[i] = other.slots_[i];
    }
  }
}

uint32_t MinHashSketch::CountMatches(const MinHashSketch& a,
                                     const MinHashSketch& b) {
  SL_CHECK(a.slots_.size() == b.slots_.size())
      << "cannot compare sketches of different widths";
  uint32_t matches = 0;
  for (uint32_t i = 0; i < a.slots_.size(); ++i) {
    if (a.slots_[i].hash == b.slots_[i].hash && a.slots_[i].hash != ~0ULL) {
      ++matches;
    }
  }
  return matches;
}

double MinHashSketch::EstimateJaccard(const MinHashSketch& a,
                                      const MinHashSketch& b) {
  if (a.IsEmpty() || b.IsEmpty() || a.num_slots() == 0) return 0.0;
  return static_cast<double>(CountMatches(a, b)) / a.num_slots();
}

}  // namespace streamlink

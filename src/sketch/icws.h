#ifndef STREAMLINK_SKETCH_ICWS_H_
#define STREAMLINK_SKETCH_ICWS_H_

#include <cstdint>
#include <vector>

namespace streamlink {

/// Improved Consistent Weighted Sampling (Ioffe 2010): MinHash for
/// *weighted* sets.
///
/// For a weighted set `S = {(x, w_x)}, w_x > 0`, each of the k slots
/// draws, per element, hash-derived variates
///
///     r, c ~ Gamma(2,1),  β ~ Uniform(0,1)
///     t = ⌊ln(w_x)/r + β⌋,  y = exp(r(t − β)),  a = c / (y·exp(r))
///
/// and retains the element minimizing `a` together with its quantized
/// level `t`. Ioffe's theorem: for two weighted sets, a slot's samples
/// coincide — same element AND same level — with probability exactly the
/// generalized (weighted) Jaccard
///
///     J_w(A, B) = Σ_x min(a_x, b_x) / Σ_x max(a_x, b_x),
///
/// so the matched-slot fraction is an unbiased estimator with the usual
/// Hoeffding concentration in k. All variates are derived from seeded
/// hashes of (slot, element), making sketches of equal weighted sets
/// identical (coordination), and the scheme is *consistent*: growing one
/// element's weight can only change the sample to that element.
///
/// Streamlink's model: each weighted edge arrives once with its final
/// weight (a weighted simple stream). Aggregating repeat arrivals would
/// require per-edge weight state, which the constant-space budget
/// excludes — see docs/algorithms.md §11.
class IcwsSketch {
 public:
  struct Slot {
    double a = kEmpty;     // minimized value
    uint64_t item = ~0ULL; // arg-min element
    int64_t t = 0;         // quantized weight level of the arg-min

    static constexpr double kEmpty = 1e300;
  };

  /// Preconditions: num_slots >= 1.
  IcwsSketch(uint32_t num_slots, uint64_t seed);

  uint32_t num_slots() const { return static_cast<uint32_t>(slots_.size()); }
  uint64_t seed() const { return seed_; }
  bool IsEmpty() const { return !has_items_; }

  /// Inserts element `item` with weight `weight` (> 0). O(k). Re-inserting
  /// the same (item, weight) is a no-op (idempotent); re-inserting with a
  /// *larger* weight is consistent (the element's `a` only decreases).
  void Update(uint64_t item, double weight);

  const Slot& slot(uint32_t i) const { return slots_[i]; }

  /// Raw slot vector, for serialization.
  const std::vector<Slot>& slots() const { return slots_; }

  /// Rebuilds a sketch from serialized slots (snapshot restore); the
  /// has-items flag is recomputed. Preconditions (callers validate before
  /// constructing): slots.size() >= 1.
  static IcwsSketch FromSlots(uint64_t seed, std::vector<Slot> slots);

  /// Slot-wise "min by a" merge: the sketch of the weighted union
  /// (element-wise max of weights) when the sets are disjoint or agree on
  /// shared weights.
  void MergeUnion(const IcwsSketch& other);

  /// Matched-slot fraction (same item and level) — the unbiased estimator
  /// of generalized Jaccard. Returns 0 if either sketch is empty.
  static double EstimateGeneralizedJaccard(const IcwsSketch& a,
                                           const IcwsSketch& b);

  /// Matches with the arg-min items appended to `items` if non-null.
  static uint32_t CountMatches(const IcwsSketch& a, const IcwsSketch& b,
                               std::vector<uint64_t>* items);

  uint64_t MemoryBytes() const {
    return sizeof(*this) + slots_.capacity() * sizeof(Slot);
  }

 private:
  uint64_t seed_;
  bool has_items_ = false;
  std::vector<Slot> slots_;
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_ICWS_H_

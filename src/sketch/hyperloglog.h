#ifndef STREAMLINK_SKETCH_HYPERLOGLOG_H_
#define STREAMLINK_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

namespace streamlink {

/// HyperLogLog distinct-count sketch over pre-hashed 64-bit values.
///
/// 2^precision byte registers; standard-error ≈ 1.04 / sqrt(2^precision).
/// Used in streamlink as the alternative degree estimator for the fully
/// self-contained bottom-k predictor variant and in the ablation suite.
/// Small cardinalities use linear counting (the usual bias correction).
class HyperLogLog {
 public:
  /// Precondition: 4 <= precision <= 18.
  explicit HyperLogLog(uint32_t precision);

  uint32_t precision() const { return precision_; }
  uint32_t num_registers() const {
    return static_cast<uint32_t>(registers_.size());
  }

  /// Inserts a (pre-hashed) value. O(1), idempotent.
  void Update(uint64_t hash);

  /// Register-wise max merge: sketch of the union.
  void MergeUnion(const HyperLogLog& other);

  /// Bias-corrected cardinality estimate.
  double Estimate() const;

  /// Theoretical relative standard error for this precision.
  double StandardError() const;

  const std::vector<uint8_t>& registers() const { return registers_; }

  uint64_t MemoryBytes() const {
    return sizeof(*this) + registers_.capacity();
  }

 private:
  uint32_t precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_HYPERLOGLOG_H_

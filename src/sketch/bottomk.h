#ifndef STREAMLINK_SKETCH_BOTTOMK_H_
#define STREAMLINK_SKETCH_BOTTOMK_H_

#include <cstdint>
#include <vector>

namespace streamlink {

/// Bottom-k (KMV, "k minimum values") distinct sketch of a set of 64-bit
/// items under a *single* hash function.
///
/// Keeps the k smallest distinct hash values seen, with arg-min items.
/// One sketch answers distinct-cardinality queries; two sketches built with
/// the same hash answer Jaccard and union-cardinality queries via the
/// bottom-k merge estimator. Compared with k-permutation MinHash, bottom-k
/// hashes each update once instead of k times (cheaper updates) and gives
/// cardinality "for free", at the cost of slightly more involved pairwise
/// estimation.
///
/// The caller supplies pre-hashed values to Update, which keeps this class
/// independent of the hash family choice.
class BottomKSketch {
 public:
  struct Entry {
    uint64_t hash;
    uint64_t item;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.hash == b.hash && a.item == b.item;
    }
  };

  explicit BottomKSketch(uint32_t k);

  uint32_t k() const { return k_; }
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  bool IsEmpty() const { return entries_.empty(); }
  bool IsSaturated() const { return entries_.size() == k_; }

  /// Inserts an item with its hash value. Duplicate hashes are ignored
  /// (idempotent). Returns true if the sketch changed. O(log k + k) worst
  /// case (sorted-array insert); k is small by design.
  bool Update(uint64_t hash, uint64_t item);

  /// Entries sorted by hash ascending.
  const std::vector<Entry>& entries() const { return entries_; }

  /// The k-th smallest hash (the inclusion threshold); ~0 if unsaturated,
  /// meaning every item seen so far is in the sketch.
  uint64_t Threshold() const;

  /// Distinct-count estimate: exact (= size) while unsaturated, otherwise
  /// the KMV estimator (k-1) / U(kth smallest hash) with U mapping hashes
  /// to (0,1].
  double EstimateCardinality() const;

  /// Folds `other` in, producing the bottom-k sketch of the set union.
  void MergeUnion(const BottomKSketch& other);

  /// Pairwise estimates from two sketches built with the same hash:
  /// Jaccard |A∩B|/|A∪B|, union cardinality |A∪B|, and intersection
  /// |A∩B| = Jaccard · union. Computed in one pass over the merged bottom-k.
  struct PairEstimate {
    double jaccard = 0.0;
    double union_cardinality = 0.0;
    double intersection_cardinality = 0.0;
  };
  static PairEstimate EstimatePair(const BottomKSketch& a,
                                   const BottomKSketch& b);

  uint64_t MemoryBytes() const {
    return sizeof(*this) + entries_.capacity() * sizeof(Entry);
  }

 private:
  uint32_t k_;
  std::vector<Entry> entries_;  // sorted by hash ascending, size <= k_
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_BOTTOMK_H_

#include "sketch/oph.h"

#include "util/hashing.h"
#include "util/logging.h"

namespace streamlink {

OphSketch::OphSketch(uint32_t num_bins, uint64_t seed)
    : seed_(seed), bins_(num_bins) {
  SL_CHECK(num_bins >= 2) << "OPH needs at least 2 bins";
}

void OphSketch::Update(uint64_t item) {
  const uint64_t h = HashU64(item, seed_);
  // Top bits choose the bin (Lemire multiply-shift range reduction keeps
  // the choice unbiased for any bin count); a second mix of the remaining
  // entropy is the within-bin rank.
  const uint32_t bin_index = static_cast<uint32_t>(
      (static_cast<__uint128_t>(h) * bins_.size()) >> 64);
  const uint64_t rank = Mix64(h);
  Bin& bin = bins_[bin_index];
  if (bin.rank == ~0ULL) ++non_empty_;
  if (rank < bin.rank) {
    bin.rank = rank;
    bin.item = item;
  }
}

void OphSketch::MergeUnion(const OphSketch& other) {
  SL_CHECK(bins_.size() == other.bins_.size() && seed_ == other.seed_)
      << "cannot merge incompatible OPH sketches";
  for (uint32_t i = 0; i < bins_.size(); ++i) {
    if (other.bins_[i].rank < bins_[i].rank) {
      if (bins_[i].rank == ~0ULL) ++non_empty_;
      bins_[i] = other.bins_[i];
    }
  }
}

OphSketch OphSketch::FromBins(uint64_t seed, std::vector<Bin> bins) {
  OphSketch sketch(static_cast<uint32_t>(bins.size()), seed);
  sketch.bins_ = std::move(bins);
  sketch.non_empty_ = 0;
  for (const Bin& bin : sketch.bins_) {
    if (bin.rank != ~0ULL) ++sketch.non_empty_;
  }
  return sketch;
}

std::vector<OphSketch::Bin> OphSketch::Densified() const {
  std::vector<Bin> out = bins_;
  if (non_empty_ == 0 || non_empty_ == bins_.size()) return out;
  const uint32_t k = static_cast<uint32_t>(bins_.size());
  for (uint32_t i = 0; i < k; ++i) {
    if (out[i].rank != ~0ULL) continue;
    // Optimal-densification-style probing: a seeded sequence of candidate
    // donors, identical for every sketch with this seed, so two sketches
    // of equal sets densify identically.
    for (uint32_t attempt = 0;; ++attempt) {
      uint32_t donor = static_cast<uint32_t>(
          HashU64(static_cast<uint64_t>(i) << 32 | attempt, seed_ ^ 0xdef5) %
          k);
      if (bins_[donor].rank != ~0ULL) {
        out[i] = bins_[donor];
        break;
      }
    }
  }
  return out;
}

uint32_t OphSketch::CountMatches(const OphSketch& a, const OphSketch& b,
                                 std::vector<uint64_t>* items) {
  SL_CHECK(a.bins_.size() == b.bins_.size() && a.seed_ == b.seed_)
      << "cannot compare incompatible OPH sketches";
  if (a.IsEmpty() || b.IsEmpty()) return 0;
  std::vector<Bin> da = a.Densified();
  std::vector<Bin> db = b.Densified();
  uint32_t matches = 0;
  for (uint32_t i = 0; i < da.size(); ++i) {
    if (da[i].rank == db[i].rank && da[i].rank != ~0ULL) {
      ++matches;
      if (items != nullptr) items->push_back(da[i].item);
    }
  }
  return matches;
}

double OphSketch::EstimateJaccard(const OphSketch& a, const OphSketch& b) {
  if (a.IsEmpty() || b.IsEmpty() || a.num_bins() == 0) return 0.0;
  return static_cast<double>(CountMatches(a, b, nullptr)) / a.num_bins();
}

}  // namespace streamlink

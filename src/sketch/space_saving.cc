#include "sketch/space_saving.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

SpaceSaving::SpaceSaving(uint32_t capacity) : capacity_(capacity) {
  SL_CHECK(capacity > 0) << "space-saving needs capacity >= 1";
}

void SpaceSaving::Offer(uint64_t item, uint64_t count) {
  total_count_ += count;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    Cell& cell = it->second;
    by_count_.erase(cell.index_it);
    cell.count += count;
    cell.index_it = by_count_.emplace(cell.count, item);
    return;
  }
  if (counters_.size() < capacity_) {
    Cell cell;
    cell.count = count;
    cell.error = 0;
    cell.index_it = by_count_.emplace(count, item);
    counters_.emplace(item, cell);
    return;
  }
  // Evict the minimum-count item and inherit its count as error.
  auto min_it = by_count_.begin();
  uint64_t evicted_item = min_it->second;
  uint64_t min_count = min_it->first;
  by_count_.erase(min_it);
  counters_.erase(evicted_item);

  Cell cell;
  cell.count = min_count + count;
  cell.error = min_count;
  cell.index_it = by_count_.emplace(cell.count, item);
  counters_.emplace(item, cell);
}

uint64_t SpaceSaving::Estimate(uint64_t item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second.count;
}

bool SpaceSaving::IsGuaranteedHeavy(uint64_t item, uint64_t threshold) const {
  auto it = counters_.find(item);
  if (it == counters_.end()) return false;
  return it->second.count - it->second.error >= threshold;
}

std::vector<SpaceSaving::Counter> SpaceSaving::TopK(uint32_t k) const {
  std::vector<Counter> out;
  out.reserve(counters_.size());
  for (const auto& [item, cell] : counters_) {
    out.push_back(Counter{item, cell.count, cell.error});
  }
  std::sort(out.begin(), out.end(), [](const Counter& a, const Counter& b) {
    return a.count != b.count ? a.count > b.count : a.item < b.item;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace streamlink

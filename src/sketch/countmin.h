#ifndef STREAMLINK_SKETCH_COUNTMIN_H_
#define STREAMLINK_SKETCH_COUNTMIN_H_

#include <cstdint>
#include <vector>

#include "util/hashing.h"

namespace streamlink {

/// Count-Min sketch for frequency estimation over 64-bit keys.
///
/// depth × width counter matrix; point query error is at most
/// ε·(total count) with probability 1−δ for width = ⌈e/ε⌉ and
/// depth = ⌈ln 1/δ⌉. Supports conservative update (tighter estimates for
/// skewed streams). In streamlink it backs the approximate-degree-tracking
/// ablation and the heavy-hitter example.
class CountMinSketch {
 public:
  /// Preconditions: depth >= 1, width >= 2.
  CountMinSketch(uint32_t depth, uint32_t width, uint64_t seed);

  /// Builder from accuracy targets: error ≤ epsilon·N at confidence 1-delta.
  static CountMinSketch FromErrorBounds(double epsilon, double delta,
                                        uint64_t seed);

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }
  uint64_t total_count() const { return total_count_; }

  /// Adds `count` to `key`'s frequency. O(depth).
  void Update(uint64_t key, uint64_t count = 1);

  /// Conservative variant: only raises counters up to the new estimate;
  /// never underestimates, usually overestimates less.
  void UpdateConservative(uint64_t key, uint64_t count = 1);

  /// Point estimate (an upper bound in expectation-free terms: the
  /// estimate never undershoots the true count).
  uint64_t Estimate(uint64_t key) const;

  uint64_t MemoryBytes() const {
    return sizeof(*this) + counters_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t& Cell(uint32_t row, uint32_t col) {
    return counters_[static_cast<size_t>(row) * width_ + col];
  }
  const uint64_t& Cell(uint32_t row, uint32_t col) const {
    return counters_[static_cast<size_t>(row) * width_ + col];
  }
  uint32_t Column(uint32_t row, uint64_t key) const {
    return static_cast<uint32_t>(family_.Hash(row, key) % width_);
  }

  uint32_t depth_;
  uint32_t width_;
  HashFamily family_;
  std::vector<uint64_t> counters_;
  uint64_t total_count_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_COUNTMIN_H_

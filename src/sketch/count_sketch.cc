#include "sketch/count_sketch.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

CountSketch::CountSketch(uint32_t depth, uint32_t width, uint64_t seed)
    : depth_(depth),
      width_(width),
      bucket_family_(Mix64(seed), depth),
      sign_family_(Mix64(seed ^ 0x51617), depth) {
  SL_CHECK(depth >= 1) << "count-sketch depth must be >= 1";
  SL_CHECK(width >= 2) << "count-sketch width must be >= 2";
  counters_.assign(static_cast<size_t>(depth) * width, 0);
}

void CountSketch::Update(uint64_t key, int64_t count) {
  for (uint32_t row = 0; row < depth_; ++row) {
    counters_[static_cast<size_t>(row) * width_ + Column(row, key)] +=
        Sign(row, key) * count;
  }
}

int64_t CountSketch::Estimate(uint64_t key) const {
  std::vector<int64_t> estimates;
  estimates.reserve(depth_);
  for (uint32_t row = 0; row < depth_; ++row) {
    estimates.push_back(
        Sign(row, key) *
        counters_[static_cast<size_t>(row) * width_ + Column(row, key)]);
  }
  std::nth_element(estimates.begin(), estimates.begin() + depth_ / 2,
                   estimates.end());
  return estimates[depth_ / 2];
}

void CountSketch::MergeFrom(const CountSketch& other) {
  SL_CHECK(depth_ == other.depth_ && width_ == other.width_ &&
           bucket_family_.master_seed() == other.bucket_family_.master_seed())
      << "cannot merge incompatible count-sketches";
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

}  // namespace streamlink

#include "sketch/hyperloglog.h"

#include <bit>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

HyperLogLog::HyperLogLog(uint32_t precision) : precision_(precision) {
  SL_CHECK(precision >= 4 && precision <= 18)
      << "HLL precision must be in [4, 18], got " << precision;
  registers_.assign(1u << precision, 0);
}

void HyperLogLog::Update(uint64_t hash) {
  const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  // Rank = position of the leftmost 1 in the remaining bits, 1-based.
  const uint64_t rest = (hash << precision_) | (1ULL << (precision_ - 1));
  const uint8_t rank = static_cast<uint8_t>(std::countl_zero(rest) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

void HyperLogLog::MergeUnion(const HyperLogLog& other) {
  SL_CHECK(precision_ == other.precision_)
      << "cannot merge HLLs of different precision";
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  switch (registers_.size()) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double inverse_sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double raw = alpha * m * m / inverse_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting.
    return m * std::log(m / zeros);
  }
  return raw;
}

double HyperLogLog::StandardError() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

}  // namespace streamlink

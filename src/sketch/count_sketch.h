#ifndef STREAMLINK_SKETCH_COUNT_SKETCH_H_
#define STREAMLINK_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "util/hashing.h"

namespace streamlink {

/// Count-Sketch (Charikar, Chen, Farach-Colton): frequency estimation with
/// signed counters and median-of-rows estimation.
///
/// Unlike Count-Min (one-sided overestimates), Count-Sketch is *unbiased*:
/// each row adds sign(key)·count to one counter, and the estimate is the
/// median over rows of sign(key)·counter. Error is bounded by the L2 norm
/// of the frequency vector (vs Count-Min's L1), which is much tighter on
/// skewed streams. streamlink offers both so callers can pick the error
/// profile; the heavy-hitter ablation exercises the contrast.
class CountSketch {
 public:
  /// Preconditions: depth >= 1 (odd recommended for a clean median),
  /// width >= 2.
  CountSketch(uint32_t depth, uint32_t width, uint64_t seed);

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }

  /// Adds `count` (may be negative: deletions are supported) to key's
  /// frequency. O(depth).
  void Update(uint64_t key, int64_t count = 1);

  /// Unbiased point estimate (median of per-row estimates).
  int64_t Estimate(uint64_t key) const;

  /// Counter-wise addition: sketch of the combined stream.
  void MergeFrom(const CountSketch& other);

  uint64_t MemoryBytes() const {
    return sizeof(*this) + counters_.capacity() * sizeof(int64_t);
  }

 private:
  uint32_t Column(uint32_t row, uint64_t key) const {
    return static_cast<uint32_t>(bucket_family_.Hash(row, key) % width_);
  }
  int64_t Sign(uint32_t row, uint64_t key) const {
    return (sign_family_.Hash(row, key) & 1) ? 1 : -1;
  }

  uint32_t depth_;
  uint32_t width_;
  HashFamily bucket_family_;
  HashFamily sign_family_;
  std::vector<int64_t> counters_;
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_COUNT_SKETCH_H_

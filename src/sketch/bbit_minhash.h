#ifndef STREAMLINK_SKETCH_BBIT_MINHASH_H_
#define STREAMLINK_SKETCH_BBIT_MINHASH_H_

#include <cstdint>
#include <vector>

#include "util/hashing.h"

namespace streamlink {

/// b-bit MinHash (Li & König 2010): keep only the lowest `b` bits of each
/// of the k min-hash values.
///
/// Storing b ∈ {1, 2, 4, 8} bits instead of 64 shrinks the sketch by up to
/// 64×, at the cost of *accidental* matches between unequal minima: two
/// independent b-bit values collide with probability 2^-b. The estimator
/// removes that bias in closed form:
///
///     E[match fraction] = J + (1 − J)·2^-b
///     Ĵ = (m̂ − 2^-b) / (1 − 2^-b),   m̂ = matches / k   (clamped to ≥ 0)
///
/// Variance is inflated by roughly 1/(1−2^-b)², so at equal *bytes* b-bit
/// sketches usually win for Jaccard estimation — the tradeoff bench F12
/// measures. The sketch stores no arg-min items, so unlike MinHashSketch
/// it cannot drive the Adamic-Adar sampler; it is the Jaccard/CN
/// specialist.
class BBitMinHash {
 public:
  /// Preconditions: 1 <= bits <= 8, num_hashes >= 1. The `family` used for
  /// updates must have exactly `num_hashes` functions.
  BBitMinHash(uint32_t num_hashes, uint32_t bits);

  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t bits() const { return bits_; }
  bool IsEmpty() const { return !has_items_; }

  /// Inserts an item hashed with each function of `family`; retains only
  /// the low b bits of each running minimum. O(k).
  void Update(uint64_t item, const HashFamily& family);

  /// The retained b bits of slot i.
  uint8_t SlotBits(uint32_t i) const;

  /// Bias-corrected Jaccard estimate. Returns 0 if either sketch is empty.
  /// Preconditions: equal k and b, same hash family used for updates.
  static double EstimateJaccard(const BBitMinHash& a, const BBitMinHash& b);

  /// Raw matched-slot fraction (before bias correction); exposed for the
  /// calibration tests.
  static double MatchFraction(const BBitMinHash& a, const BBitMinHash& b);

  /// Bytes of sketch payload: ceil(k·b/8) packed bits.
  uint64_t PayloadBytes() const { return packed_.size(); }

  uint64_t MemoryBytes() const {
    return sizeof(*this) + packed_.capacity() +
           minima_.capacity() * sizeof(uint64_t);
  }

 private:
  void StoreSlot(uint32_t i, uint8_t value);

  uint32_t num_hashes_;
  uint32_t bits_;
  bool has_items_ = false;
  // Full 64-bit running minima are needed *during* streaming to know when
  // a new value displaces the min; only the packed b bits are part of the
  // sketch payload (what a system would ship or store cold).
  std::vector<uint64_t> minima_;
  std::vector<uint8_t> packed_;  // k*b bits, little-endian bit order
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_BBIT_MINHASH_H_

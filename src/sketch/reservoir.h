#ifndef STREAMLINK_SKETCH_RESERVOIR_H_
#define STREAMLINK_SKETCH_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace streamlink {

/// Classic reservoir sampling (Algorithm R): a uniform sample of `capacity`
/// items from a stream of unknown length, O(1) per item after the reservoir
/// fills. Used by stream tooling (checkpoint pair sampling) and examples.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(uint32_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    sample_.reserve(capacity);
  }

  uint32_t capacity() const { return capacity_; }
  uint64_t items_seen() const { return items_seen_; }

  /// Offers one stream item; it displaces a random reservoir slot with
  /// probability capacity / items_seen.
  void Offer(const T& item) {
    ++items_seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(item);
      return;
    }
    uint64_t j = rng_.NextBounded(items_seen_);
    if (j < capacity_) sample_[j] = item;
  }

  /// The current sample (size = min(capacity, items_seen), arbitrary order).
  const std::vector<T>& sample() const { return sample_; }

 private:
  uint32_t capacity_;
  Rng rng_;
  std::vector<T> sample_;
  uint64_t items_seen_ = 0;
};

/// Draws a uniform sample of `count` positions from a virtual stream of
/// length `n` using skip-based reservoir sampling (Vitter's Algorithm L) —
/// O(count·log(n/count)) instead of O(n). Returns sorted positions.
std::vector<uint64_t> ReservoirSampleIndices(uint64_t n, uint32_t count,
                                             Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_RESERVOIR_H_

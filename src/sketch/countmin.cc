#include "sketch/countmin.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

CountMinSketch::CountMinSketch(uint32_t depth, uint32_t width, uint64_t seed)
    : depth_(depth), width_(width), family_(seed, depth) {
  SL_CHECK(depth >= 1) << "count-min depth must be >= 1";
  SL_CHECK(width >= 2) << "count-min width must be >= 2";
  counters_.assign(static_cast<size_t>(depth) * width, 0);
}

CountMinSketch CountMinSketch::FromErrorBounds(double epsilon, double delta,
                                               uint64_t seed) {
  SL_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon must be in (0,1)";
  SL_CHECK(delta > 0.0 && delta < 1.0) << "delta must be in (0,1)";
  uint32_t width = static_cast<uint32_t>(std::ceil(std::exp(1.0) / epsilon));
  uint32_t depth = static_cast<uint32_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max(depth, 1u), std::max(width, 2u), seed);
}

void CountMinSketch::Update(uint64_t key, uint64_t count) {
  for (uint32_t row = 0; row < depth_; ++row) {
    Cell(row, Column(row, key)) += count;
  }
  total_count_ += count;
}

void CountMinSketch::UpdateConservative(uint64_t key, uint64_t count) {
  const uint64_t target = Estimate(key) + count;
  for (uint32_t row = 0; row < depth_; ++row) {
    uint64_t& cell = Cell(row, Column(row, key));
    cell = std::max(cell, target);
  }
  total_count_ += count;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = ~0ULL;
  for (uint32_t row = 0; row < depth_; ++row) {
    best = std::min(best, Cell(row, Column(row, key)));
  }
  return best;
}

}  // namespace streamlink

#ifndef STREAMLINK_SKETCH_TCM_H_
#define STREAMLINK_SKETCH_TCM_H_

#include <cstdint>
#include <vector>

#include "util/hashing.h"

namespace streamlink {

/// TCM/GSS-style count-based neighborhood summary supporting the
/// *turnstile* stream model (inserts and deletions).
///
/// Where the original TCM ("On Summarizing Graph Streams") hashes both
/// endpoints into a shared d×w×w matrix, streamlink's vertex-sharded
/// architecture wants per-vertex state, so each vertex carries a d×w strip:
/// row r, column family.Hash(r, neighbor) % w accumulates a *signed* count
/// of that neighbor's net multiplicity. Deleting an edge subtracts where
/// inserting added, so insert∘delete annihilates bit-for-bit, updates
/// commute (cells are sums), and disjoint-partition merges are cell-wise
/// additions — the properties the metamorphic invariants pin down.
///
/// Cells are never clamped on write: a replica that sees a delete before
/// the matching insert dips to −1 and heals to 0 at fold time. Estimates
/// clamp at read instead. The intersection estimator
///   min over rows r of  Σ_c max(0, min(u_cells[r][c], v_cells[r][c]))
/// never undershoots |N(u) ∩ N(v)| on simple streams (every common
/// neighbor lands in the same column of both strips; collisions only add),
/// and the usual count-min argument bounds the excess: per row it is at
/// most the colliding mass d(u)·d(v)/w in expectation, and taking the min
/// over d independent rows drives the tail down geometrically.
class TcmSketch {
 public:
  /// Creates an all-zero depth×width strip. Preconditions: depth >= 1,
  /// width >= 2 (enforced by the predictor factory).
  TcmSketch(uint32_t depth, uint32_t width)
      : depth_(depth), width_(width),
        cells_(static_cast<size_t>(depth) * width, 0) {}

  /// Reconstructs a sketch from serialized cells (snapshot I/O).
  /// Precondition: cells.size() == depth * width.
  static TcmSketch FromCells(uint32_t depth, uint32_t width,
                             std::vector<int32_t> cells) {
    TcmSketch s(depth, width);
    s.cells_ = std::move(cells);
    return s;
  }

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }

  /// Adds `delta` (±1 for edge insert/delete) to `key`'s cell in every
  /// row. The family provides one hash function per row (family.size()
  /// >= depth()); the same family must serve every update and the peer
  /// sketch of any estimate.
  void Update(uint64_t key, const HashFamily& family, int32_t delta) {
    for (uint32_t r = 0; r < depth_; ++r) {
      cells_[static_cast<size_t>(r) * width_ +
             static_cast<uint32_t>(family.Hash(r, key) % width_)] += delta;
    }
  }

  /// One-sided (never-undershooting) estimate of |A ∩ B| for the two
  /// summarized neighbor sets. Preconditions: same depth/width/family.
  int64_t IntersectionEstimate(const TcmSketch& other) const {
    int64_t best = INT64_MAX;
    for (uint32_t r = 0; r < depth_; ++r) {
      const size_t base = static_cast<size_t>(r) * width_;
      int64_t row_sum = 0;
      for (uint32_t c = 0; c < width_; ++c) {
        const int32_t a = cells_[base + c];
        const int32_t b = other.cells_[base + c];
        const int32_t m = a < b ? a : b;
        if (m > 0) row_sum += m;
      }
      if (row_sum < best) best = row_sum;
    }
    return best == INT64_MAX ? 0 : best;
  }

  /// Folds a disjoint-partition peer in: cell-wise addition, the exact
  /// state a single sketch over the concatenated stream would hold.
  /// Precondition: equal depth and width.
  void MergeFrom(const TcmSketch& other) {
    for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  }

  const std::vector<int32_t>& cells() const { return cells_; }

  uint64_t MemoryBytes() const {
    return sizeof(*this) + cells_.capacity() * sizeof(int32_t);
  }

  friend bool operator==(const TcmSketch& a, const TcmSketch& b) {
    return a.depth_ == b.depth_ && a.width_ == b.width_ &&
           a.cells_ == b.cells_;
  }

 private:
  uint32_t depth_;
  uint32_t width_;
  std::vector<int32_t> cells_;  // row-major depth × width, signed net counts
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_TCM_H_

#ifndef STREAMLINK_SKETCH_WEIGHTED_SAMPLER_H_
#define STREAMLINK_SKETCH_WEIGHTED_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace streamlink {

/// Coordinated bottom-k weighted sampler (PPSWOR / "priority"-style with
/// exponential ranks).
///
/// Each item x carries a weight w(x) > 0 and a hash-derived Exp(1) variate
/// e(x); its rank is r(x) = e(x) / w(x) ~ Exp(w(x)). The sampler keeps the
/// k items with smallest rank — a weighted sample without replacement in
/// which heavy items are more likely to appear. Because e(x) comes from a
/// *hash* of x (not fresh randomness), two samplers built over different
/// sets are **coordinated**: the same item gets the same variate in both,
/// which is what makes *intersection* estimation possible. This class is
/// the substrate for the paper's "vertex-biased sampling" Adamic-Adar
/// estimator (see core/vertex_biased_predictor.h).
///
/// Subset-sum estimation uses the standard bottom-k Horvitz-Thompson
/// conditioning: with threshold τ = k-th smallest rank, item x is included
/// with (conditional) probability P(r(x) < τ) = 1 − exp(−w(x)·τ).
class WeightedBottomKSampler {
 public:
  struct Entry {
    double rank;
    uint64_t item;
    double weight;  // weight at the time of the latest offer
  };

  /// Rank threshold value meaning "everything is included".
  static constexpr double kInfiniteRank =
      std::numeric_limits<double>::infinity();

  explicit WeightedBottomKSampler(uint32_t k);

  uint32_t k() const { return k_; }
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  bool IsEmpty() const { return entries_.empty(); }
  bool IsSaturated() const { return entries_.size() == k_; }

  /// Offers item with exponential variate `exp_variate` (= −ln U(hash(x)))
  /// and current weight. If the item is already present its entry is
  /// *replaced* (rank recomputed from the new weight, keeping the sampler
  /// consistent as weights evolve); otherwise it competes for a slot.
  /// Returns true if the sampler changed. O(k).
  bool Offer(uint64_t item, double exp_variate, double weight);

  /// Entries sorted by rank ascending.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Rebuilds a sampler from serialized entries (snapshot restore).
  /// Preconditions (callers validate before constructing): k >= 1,
  /// entries sorted by rank ascending, entries.size() <= k.
  static WeightedBottomKSampler FromEntries(uint32_t k,
                                            std::vector<Entry> entries);

  /// Inclusion threshold τ: the k-th smallest rank when saturated,
  /// +infinity otherwise (every offered item was kept).
  double Threshold() const;

  /// Horvitz-Thompson estimate of Σ w_now(x) over the sampled set, where
  /// `current_weight(item)` supplies up-to-date weights (they may have
  /// drifted since the item was sampled). Uses the stored weight for the
  /// inclusion probability (that is the weight sampling actually used) and
  /// the current weight for the contribution.
  double EstimateSubsetSum(
      const std::function<double(uint64_t)>& current_weight) const;

  /// Coordinated two-sampler estimate of Σ w_now(x) over items present in
  /// *both* underlying sets. Requires both samplers to use the same hash
  /// source for exp variates (coordination). Items in both samples with
  /// rank below τ = min(τ_a, τ_b) contribute w_now(x) / (1 − e^{−w̄(x)·τ}),
  /// with w̄ the mean of the two stored weights (they may differ slightly
  /// if weights drifted between the two insertions).
  static double EstimateWeightedIntersection(
      const WeightedBottomKSampler& a, const WeightedBottomKSampler& b,
      const std::function<double(uint64_t)>& current_weight);

  uint64_t MemoryBytes() const {
    return sizeof(*this) + entries_.capacity() * sizeof(Entry);
  }

 private:
  uint32_t k_;
  std::vector<Entry> entries_;  // sorted by rank ascending, size <= k_
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_WEIGHTED_SAMPLER_H_

#include "sketch/bbit_minhash.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

BBitMinHash::BBitMinHash(uint32_t num_hashes, uint32_t bits)
    : num_hashes_(num_hashes), bits_(bits) {
  SL_CHECK(num_hashes >= 1) << "need at least one hash";
  SL_CHECK(bits >= 1 && bits <= 8) << "bits must be in [1, 8]";
  minima_.assign(num_hashes, ~0ULL);
  packed_.assign((static_cast<size_t>(num_hashes) * bits + 7) / 8, 0);
}

void BBitMinHash::StoreSlot(uint32_t i, uint8_t value) {
  const uint32_t bit_offset = i * bits_;
  const uint8_t mask = static_cast<uint8_t>((1u << bits_) - 1);
  value &= mask;
  size_t byte = bit_offset / 8;
  uint32_t shift = bit_offset % 8;
  // The b bits may straddle a byte boundary; write as a 16-bit window.
  uint16_t window = packed_[byte];
  if (byte + 1 < packed_.size()) {
    window |= static_cast<uint16_t>(packed_[byte + 1]) << 8;
  }
  window = static_cast<uint16_t>(
      (window & ~(static_cast<uint16_t>(mask) << shift)) |
      (static_cast<uint16_t>(value) << shift));
  packed_[byte] = static_cast<uint8_t>(window);
  if (byte + 1 < packed_.size()) {
    packed_[byte + 1] = static_cast<uint8_t>(window >> 8);
  }
}

uint8_t BBitMinHash::SlotBits(uint32_t i) const {
  SL_DCHECK(i < num_hashes_) << "slot out of range";
  const uint32_t bit_offset = i * bits_;
  const uint8_t mask = static_cast<uint8_t>((1u << bits_) - 1);
  size_t byte = bit_offset / 8;
  uint32_t shift = bit_offset % 8;
  uint16_t window = packed_[byte];
  if (byte + 1 < packed_.size()) {
    window |= static_cast<uint16_t>(packed_[byte + 1]) << 8;
  }
  return static_cast<uint8_t>((window >> shift) & mask);
}

void BBitMinHash::Update(uint64_t item, const HashFamily& family) {
  SL_DCHECK(family.size() == num_hashes_)
      << "hash family size mismatch: " << family.size() << " vs "
      << num_hashes_;
  has_items_ = true;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t h = family.Hash(i, item);
    if (h < minima_[i]) {
      minima_[i] = h;
      StoreSlot(i, static_cast<uint8_t>(h));
    }
  }
}

double BBitMinHash::MatchFraction(const BBitMinHash& a, const BBitMinHash& b) {
  SL_CHECK(a.num_hashes_ == b.num_hashes_ && a.bits_ == b.bits_)
      << "incompatible b-bit sketches";
  if (a.IsEmpty() || b.IsEmpty()) return 0.0;
  uint32_t matches = 0;
  for (uint32_t i = 0; i < a.num_hashes_; ++i) {
    if (a.SlotBits(i) == b.SlotBits(i)) ++matches;
  }
  return static_cast<double>(matches) / a.num_hashes_;
}

double BBitMinHash::EstimateJaccard(const BBitMinHash& a,
                                    const BBitMinHash& b) {
  if (a.IsEmpty() || b.IsEmpty()) return 0.0;
  const double collision = std::ldexp(1.0, -static_cast<int>(a.bits_));
  double match = MatchFraction(a, b);
  return std::max(0.0, (match - collision) / (1.0 - collision));
}

}  // namespace streamlink

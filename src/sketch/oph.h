#ifndef STREAMLINK_SKETCH_OPH_H_
#define STREAMLINK_SKETCH_OPH_H_

#include <cstdint>
#include <vector>

namespace streamlink {

/// One-permutation hashing (OPH) MinHash sketch with optimal densification
/// (Li, Owen & Zhang 2012; Shrivastava 2017).
///
/// Where the k-permutation MinHashSketch evaluates k hash functions per
/// insert, OPH evaluates *one*: the hash's top bits pick one of k bins and
/// the remaining entropy is the rank competing for that bin's minimum.
/// Updates are O(1); a full sketch still yields k (nearly) independent
/// min-wise samples. Bins that never received an item are *densified* at
/// estimation time by borrowing from a non-empty bin chosen by a seeded
/// probe sequence — identical across sketches, so borrowed bins still
/// match exactly when the underlying sets match.
///
/// The estimator is the usual matched-bin fraction. Accuracy approaches
/// k-permutation MinHash once sets are a few times larger than k; for very
/// small sets more bins are densified and variance grows — the F10 bench
/// quantifies the tradeoff.
class OphSketch {
 public:
  struct Bin {
    uint64_t rank = ~0ULL;  // min rank seen; ~0 = empty
    uint64_t item = ~0ULL;  // arg-min item
  };

  /// Creates an empty sketch with `num_bins` bins. `seed` drives both the
  /// bin assignment and the densification probes; two sketches are
  /// comparable iff they share the seed and bin count.
  OphSketch(uint32_t num_bins, uint64_t seed);

  uint32_t num_bins() const { return static_cast<uint32_t>(bins_.size()); }
  uint64_t seed() const { return seed_; }
  bool IsEmpty() const { return non_empty_ == 0; }
  uint32_t non_empty_bins() const { return non_empty_; }

  /// Inserts an item: one hash, one bin update. Idempotent and
  /// order-independent.
  void Update(uint64_t item);

  /// Bin-wise union merge.
  void MergeUnion(const OphSketch& other);

  const Bin& bin(uint32_t i) const { return bins_[i]; }

  /// Raw bin vector, for serialization.
  const std::vector<Bin>& bins() const { return bins_; }

  /// Rebuilds a sketch from serialized bins (snapshot restore); the
  /// non-empty counter is recomputed. Preconditions (callers validate
  /// before constructing): bins.size() >= 2.
  static OphSketch FromBins(uint64_t seed, std::vector<Bin> bins);

  /// The sketch vector after densification: every entry holds the rank and
  /// arg-min of some non-empty bin (its own, or the bin its probe sequence
  /// found). An entirely empty sketch densifies to all-empty bins.
  std::vector<Bin> Densified() const;

  /// Matched-bin Jaccard estimate of two comparable sketches, computed on
  /// the densified vectors. Returns 0 if either sketch is empty.
  static double EstimateJaccard(const OphSketch& a, const OphSketch& b);

  /// Matched densified bins with arg-min items — uniform-ish intersection
  /// samples, used by OphPredictor's Adamic-Adar estimator. Returns the
  /// number of matches; appends each match's item to `items` when non-null.
  static uint32_t CountMatches(const OphSketch& a, const OphSketch& b,
                               std::vector<uint64_t>* items);

  uint64_t MemoryBytes() const {
    return sizeof(*this) + bins_.capacity() * sizeof(Bin);
  }

 private:
  uint64_t seed_;
  uint32_t non_empty_ = 0;
  std::vector<Bin> bins_;
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_OPH_H_

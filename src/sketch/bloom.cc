#include "sketch/bloom.h"

#include <algorithm>
#include <cmath>

#include "util/hashing.h"
#include "util/logging.h"

namespace streamlink {

BloomFilter::BloomFilter(uint64_t num_bits, uint32_t num_hashes, uint64_t seed)
    : num_hashes_(num_hashes), seed_(seed) {
  SL_CHECK(num_bits >= 64) << "bloom filter needs at least 64 bits";
  SL_CHECK(num_hashes >= 1) << "bloom filter needs at least one hash";
  words_.assign((num_bits + 63) / 64, 0);
}

BloomFilter BloomFilter::FromExpectedItems(uint64_t expected_items,
                                           double target_fpp, uint64_t seed) {
  SL_CHECK(expected_items > 0) << "expected_items must be positive";
  SL_CHECK(target_fpp > 0.0 && target_fpp < 1.0) << "fpp must be in (0,1)";
  const double ln2 = std::log(2.0);
  double bits = -static_cast<double>(expected_items) * std::log(target_fpp) /
                (ln2 * ln2);
  uint32_t hashes = std::max(
      1u, static_cast<uint32_t>(std::lround(bits / expected_items * ln2)));
  return BloomFilter(std::max<uint64_t>(64, static_cast<uint64_t>(bits)),
                     hashes, seed);
}

bool BloomFilter::Add(uint64_t key) {
  const uint64_t h1 = HashU64(key, seed_);
  const uint64_t h2 = HashU64(key, seed_ ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  bool flipped = false;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = BitIndex(i, h1, h2);
    uint64_t mask = 1ULL << (bit & 63);
    uint64_t& word = words_[bit >> 6];
    if ((word & mask) == 0) {
      word |= mask;
      flipped = true;
    }
  }
  ++items_added_;
  return flipped;
}

bool BloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = HashU64(key, seed_);
  const uint64_t h2 = HashU64(key, seed_ ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = BitIndex(i, h1, h2);
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

double BloomFilter::EstimatedFpp() const {
  // (1 - e^{-kn/m})^k
  double exponent = -static_cast<double>(num_hashes_) * items_added_ /
                    static_cast<double>(num_bits());
  return std::pow(1.0 - std::exp(exponent), num_hashes_);
}

}  // namespace streamlink

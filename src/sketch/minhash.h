#ifndef STREAMLINK_SKETCH_MINHASH_H_
#define STREAMLINK_SKETCH_MINHASH_H_

#include <cstdint>
#include <vector>

#include "util/hashing.h"

namespace streamlink {

/// k-permutation MinHash sketch of a set of 64-bit items.
///
/// Slot i remembers the minimum of h_i over all items inserted so far,
/// together with the item achieving it (the "arg-min"). The arg-min makes
/// the sketch a *min-wise sampler*: each slot holds a uniform random member
/// of the set, and a slot where two sketches agree holds a uniform random
/// member of the sets' intersection — the property the Adamic-Adar
/// estimator in core/ relies on.
///
/// Update is O(k); space is exactly k (hash, item) pairs regardless of set
/// size; insertion is idempotent and order-independent (min is a
/// commutative idempotent monoid), so duplicate stream edges are harmless.
class MinHashSketch {
 public:
  struct Slot {
    uint64_t hash = ~0ULL;  // minimum hash seen; ~0 = empty
    uint64_t item = ~0ULL;  // arg-min item

    friend bool operator==(const Slot& a, const Slot& b) {
      return a.hash == b.hash && a.item == b.item;
    }
  };

  /// Creates an empty sketch with `family.size()` slots. The family must
  /// outlive all Update calls that use it; the sketch stores only slots.
  explicit MinHashSketch(uint32_t num_slots) : slots_(num_slots) {}

  /// Reconstructs a sketch from serialized slots (see core snapshot I/O).
  static MinHashSketch FromSlots(std::vector<Slot> slots) {
    MinHashSketch s(0);
    s.slots_ = std::move(slots);
    return s;
  }

  uint32_t num_slots() const { return static_cast<uint32_t>(slots_.size()); }

  /// True if no item has ever been inserted.
  bool IsEmpty() const;

  /// Inserts `item`, hashing it with each function of `family` — any type
  /// exposing `size()` and `Hash(i, key)` (HashFamily by default,
  /// TabulationFamily for guaranteed independence; see the A14 ablation).
  /// Precondition: family.size() == num_slots().
  template <typename FamilyT = HashFamily>
  void Update(uint64_t item, const FamilyT& family) {
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      uint64_t h = family.Hash(i, item);
      if (h < slots_[i].hash) {
        slots_[i].hash = h;
        slots_[i].item = item;
      }
    }
  }

  /// Folds `other` in, producing the sketch of the union of both sets.
  /// Precondition: equal slot counts and both built with the same family.
  void MergeUnion(const MinHashSketch& other);

  const Slot& slot(uint32_t i) const { return slots_[i]; }
  const std::vector<Slot>& slots() const { return slots_; }

  /// Number of slots where both sketches hold the same minimum.
  /// Empty-in-both slots do not count as matches.
  static uint32_t CountMatches(const MinHashSketch& a, const MinHashSketch& b);

  /// The classic unbiased Jaccard estimator: matches / k.
  /// Returns 0 if either sketch is empty.
  static double EstimateJaccard(const MinHashSketch& a, const MinHashSketch& b);

  /// Heap + inline footprint in bytes.
  uint64_t MemoryBytes() const {
    return sizeof(*this) + slots_.capacity() * sizeof(Slot);
  }

 private:
  std::vector<Slot> slots_;
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_MINHASH_H_

#include "sketch/bottomk.h"

#include <algorithm>

#include "util/hashing.h"
#include "util/logging.h"

namespace streamlink {

BottomKSketch::BottomKSketch(uint32_t k) : k_(k) {
  SL_CHECK(k > 0) << "bottom-k sketch needs k >= 1";
  entries_.reserve(k);
}

bool BottomKSketch::Update(uint64_t hash, uint64_t item) {
  if (entries_.size() == k_ && hash >= entries_.back().hash) return false;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), hash,
      [](const Entry& e, uint64_t h) { return e.hash < h; });
  if (it != entries_.end() && it->hash == hash) return false;  // duplicate
  entries_.insert(it, Entry{hash, item});
  if (entries_.size() > k_) entries_.pop_back();
  return true;
}

uint64_t BottomKSketch::Threshold() const {
  return IsSaturated() ? entries_.back().hash : ~0ULL;
}

double BottomKSketch::EstimateCardinality() const {
  if (!IsSaturated()) return static_cast<double>(entries_.size());
  // KMV estimator: (k-1) / U_(k) where U_(k) is the k-th smallest hash
  // normalized to (0, 1].
  double u_k = HashToUnit(entries_.back().hash);
  return static_cast<double>(k_ - 1) / u_k;
}

void BottomKSketch::MergeUnion(const BottomKSketch& other) {
  SL_CHECK(k_ == other.k_) << "cannot merge bottom-k sketches of different k";
  std::vector<Entry> merged;
  merged.reserve(k_);
  size_t i = 0, j = 0;
  while (merged.size() < k_ &&
         (i < entries_.size() || j < other.entries_.size())) {
    const Entry* next = nullptr;
    if (i < entries_.size() &&
        (j >= other.entries_.size() ||
         entries_[i].hash <= other.entries_[j].hash)) {
      next = &entries_[i];
      if (j < other.entries_.size() &&
          other.entries_[j].hash == entries_[i].hash) {
        ++j;  // same hash on both sides: keep one copy
      }
      ++i;
    } else {
      next = &other.entries_[j];
      ++j;
    }
    merged.push_back(*next);
  }
  entries_ = std::move(merged);
}

BottomKSketch::PairEstimate BottomKSketch::EstimatePair(
    const BottomKSketch& a, const BottomKSketch& b) {
  SL_CHECK(a.k_ == b.k_) << "pairwise estimate requires equal k";
  PairEstimate out;
  if (a.IsEmpty() && b.IsEmpty()) return out;

  // Walk the merged bottom-k of the union; count how many of those union
  // samples appear in *both* sketches.
  const uint32_t k = a.k_;
  uint32_t taken = 0;
  uint32_t in_both = 0;
  uint64_t kth_hash = 0;
  size_t i = 0, j = 0;
  while (taken < k && (i < a.entries_.size() || j < b.entries_.size())) {
    uint64_t h;
    bool in_a = false, in_b = false;
    bool pick_a =
        i < a.entries_.size() &&
        (j >= b.entries_.size() || a.entries_[i].hash <= b.entries_[j].hash);
    if (pick_a) {
      h = a.entries_[i].hash;
      in_a = true;
      if (j < b.entries_.size() && b.entries_[j].hash == h) {
        in_b = true;
        ++j;
      }
      ++i;
    } else {
      h = b.entries_[j].hash;
      in_b = true;
      ++j;
    }
    // A union sample counts toward the intersection only if it is below
    // both sketches' thresholds — otherwise absence from one sketch is
    // uninformative.
    if (in_a && in_b) ++in_both;
    (void)in_a;
    (void)in_b;
    kth_hash = h;
    ++taken;
  }
  if (taken == 0) return out;

  out.jaccard = static_cast<double>(in_both) / taken;
  if (taken < k) {
    // Union was seen in full: cardinality is exact.
    out.union_cardinality = taken;
  } else {
    out.union_cardinality = static_cast<double>(k - 1) / HashToUnit(kth_hash);
  }
  out.intersection_cardinality = out.jaccard * out.union_cardinality;
  return out;
}

}  // namespace streamlink

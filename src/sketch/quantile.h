#ifndef STREAMLINK_SKETCH_QUANTILE_H_
#define STREAMLINK_SKETCH_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamlink {

/// Greenwald-Khanna ε-approximate streaming quantile sketch.
///
/// Answers rank/quantile queries over a stream of doubles with rank error
/// at most ε·n using O((1/ε)·log(εn)) space. streamlink uses it to track
/// degree distributions online (the streaming monitor reports "p99 degree
/// so far" without storing degrees) and it completes the classic
/// streaming-summary substrate.
class QuantileSketch {
 public:
  /// `epsilon`: rank-error bound as a fraction of the stream length.
  /// Precondition: 0 < epsilon < 0.5.
  explicit QuantileSketch(double epsilon = 0.01);

  double epsilon() const { return epsilon_; }
  uint64_t count() const { return count_; }
  bool IsEmpty() const { return count_ == 0; }

  /// Inserts one value. Amortized O(log(1/ε) + compress).
  void Insert(double value);

  /// Value whose rank is within ε·n of q·n. Precondition: q in [0, 1],
  /// non-empty sketch.
  double Quantile(double q) const;

  /// Convenience accessors.
  double Median() const { return Quantile(0.5); }
  double Min() const { return Quantile(0.0); }
  double Max() const { return Quantile(1.0); }

  /// Number of retained tuples (space check).
  size_t NumTuples() const { return tuples_.size(); }

  uint64_t MemoryBytes() const {
    return sizeof(*this) + tuples_.capacity() * sizeof(Tuple);
  }

 private:
  struct Tuple {
    double value;
    uint64_t g;      // rank gap to the previous tuple
    uint64_t delta;  // rank uncertainty
  };

  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_QUANTILE_H_

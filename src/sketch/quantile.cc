#include "sketch/quantile.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

QuantileSketch::QuantileSketch(double epsilon) : epsilon_(epsilon) {
  SL_CHECK(epsilon > 0.0 && epsilon < 0.5)
      << "epsilon must be in (0, 0.5), got " << epsilon;
}

void QuantileSketch::Insert(double value) {
  ++count_;
  // Find insertion point (first tuple with larger value).
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });

  uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    // New minimum or maximum: exact rank.
    delta = 0;
  } else {
    delta = static_cast<uint64_t>(
        std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{value, 1, delta});

  // Compress periodically (every 1/(2ε) insertions keeps the invariant).
  if (count_ % std::max<uint64_t>(
                   1, static_cast<uint64_t>(1.0 / (2.0 * epsilon_))) ==
      0) {
    Compress();
  }
}

void QuantileSketch::Compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * static_cast<double>(count_);
  // Merge each tuple into its successor when the combined uncertainty
  // stays within the band. Never merge into the last tuple's successor
  // (none) and keep the first tuple (minimum) intact.
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& current = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(current.g + next.g + next.delta) <= threshold) {
      // Merge current into next: defer by accumulating g into the next
      // emitted tuple. Mutate a copy of next in the source array.
      tuples_[i + 1].g += current.g;
    } else {
      out.push_back(current);
    }
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double QuantileSketch::Quantile(double q) const {
  SL_CHECK(q >= 0.0 && q <= 1.0) << "quantile must be in [0,1]";
  SL_CHECK(!IsEmpty()) << "quantile of empty sketch";
  const double target_rank = q * static_cast<double>(count_);
  const double allowed = epsilon_ * static_cast<double>(count_);

  uint64_t rank_min = 0;
  for (const Tuple& t : tuples_) {
    rank_min += t.g;
    // The tuple's true rank lies in [rank_min, rank_min + delta].
    if (static_cast<double>(rank_min) + static_cast<double>(t.delta) >=
        target_rank - allowed) {
      return t.value;
    }
  }
  return tuples_.back().value;
}

}  // namespace streamlink

#ifndef STREAMLINK_SKETCH_SPACE_SAVING_H_
#define STREAMLINK_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace streamlink {

/// Space-Saving heavy-hitters sketch (Metwally, Agrawal, El Abbadi).
///
/// Tracks at most `capacity` counters; any item with true frequency above
/// N/capacity is guaranteed to be present, and each reported count
/// overestimates the true count by at most its recorded `error`. streamlink
/// uses it to surface high-degree vertices in examples and the ablation
/// experiments, and it rounds out the streaming-summary substrate.
class SpaceSaving {
 public:
  struct Counter {
    uint64_t item;
    uint64_t count;  // upper bound on the true frequency
    uint64_t error;  // count − error is a lower bound
  };

  explicit SpaceSaving(uint32_t capacity);

  uint32_t capacity() const { return capacity_; }
  uint64_t total_count() const { return total_count_; }
  uint32_t num_tracked() const {
    return static_cast<uint32_t>(counters_.size());
  }

  /// Processes one stream occurrence of `item`. O(log capacity).
  void Offer(uint64_t item, uint64_t count = 1);

  /// Estimated frequency (an upper bound). 0 if untracked.
  uint64_t Estimate(uint64_t item) const;

  /// True if `item`'s count is guaranteed (error == 0 or provably above
  /// every evicted count).
  bool IsGuaranteedHeavy(uint64_t item, uint64_t threshold) const;

  /// All tracked counters sorted by count descending.
  std::vector<Counter> TopK(uint32_t k) const;

  uint64_t MemoryBytes() const {
    return sizeof(*this) +
           counters_.size() * (sizeof(uint64_t) * 4 + sizeof(void*) * 4) +
           by_count_.size() * (sizeof(uint64_t) * 2 + sizeof(void*) * 4);
  }

 private:
  struct Cell {
    uint64_t count;
    uint64_t error;
    std::multimap<uint64_t, uint64_t>::iterator index_it;
  };

  uint32_t capacity_;
  uint64_t total_count_ = 0;
  std::unordered_map<uint64_t, Cell> counters_;
  std::multimap<uint64_t, uint64_t> by_count_;  // count -> item
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_SPACE_SAVING_H_

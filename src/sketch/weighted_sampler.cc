#include "sketch/weighted_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

WeightedBottomKSampler::WeightedBottomKSampler(uint32_t k) : k_(k) {
  SL_CHECK(k > 0) << "weighted bottom-k sampler needs k >= 1";
  entries_.reserve(k);
}

WeightedBottomKSampler WeightedBottomKSampler::FromEntries(
    uint32_t k, std::vector<Entry> entries) {
  WeightedBottomKSampler sampler(k);
  sampler.entries_ = std::move(entries);
  return sampler;
}

bool WeightedBottomKSampler::Offer(uint64_t item, double exp_variate,
                                   double weight) {
  SL_DCHECK(weight > 0.0) << "weights must be positive";
  SL_DCHECK(exp_variate > 0.0) << "exp variate must be positive";
  const double rank = exp_variate / weight;

  // Replace an existing entry for this item (weight refresh).
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].item == item) {
      if (entries_[i].rank == rank && entries_[i].weight == weight) {
        return false;
      }
      entries_.erase(entries_.begin() + i);
      // Reinsert below with the fresh rank; it may now fall out of the
      // bottom k only if the sampler is saturated by others — but we just
      // freed a slot, so it always fits. Keep ordering invariant.
      auto it = std::lower_bound(
          entries_.begin(), entries_.end(), rank,
          [](const Entry& e, double r) { return e.rank < r; });
      entries_.insert(it, Entry{rank, item, weight});
      return true;
    }
  }

  if (entries_.size() == k_ && rank >= entries_.back().rank) return false;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), rank,
      [](const Entry& e, double r) { return e.rank < r; });
  entries_.insert(it, Entry{rank, item, weight});
  if (entries_.size() > k_) entries_.pop_back();
  return true;
}

double WeightedBottomKSampler::Threshold() const {
  return IsSaturated() ? entries_.back().rank : kInfiniteRank;
}

double WeightedBottomKSampler::EstimateSubsetSum(
    const std::function<double(uint64_t)>& current_weight) const {
  if (entries_.empty()) return 0.0;
  const double tau = Threshold();
  if (tau == kInfiniteRank) {
    // No sampling happened: the sample *is* the set.
    double sum = 0.0;
    for (const Entry& e : entries_) sum += current_weight(e.item);
    return sum;
  }
  // Saturated: condition on τ = k-th smallest rank; the first k-1 entries
  // are included iff rank < τ, with probability 1 − e^{−w·τ}.
  double sum = 0.0;
  for (size_t i = 0; i + 1 < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    double p = -std::expm1(-e.weight * tau);
    if (p > 0.0) sum += current_weight(e.item) / p;
  }
  return sum;
}

double WeightedBottomKSampler::EstimateWeightedIntersection(
    const WeightedBottomKSampler& a, const WeightedBottomKSampler& b,
    const std::function<double(uint64_t)>& current_weight) {
  if (a.IsEmpty() || b.IsEmpty()) return 0.0;
  const double tau = std::min(a.Threshold(), b.Threshold());

  double sum = 0.0;
  // Intersect by item id. Sketches are tiny (k entries); sort copies of the
  // item lists and merge.
  std::vector<std::pair<uint64_t, const Entry*>> items_a, items_b;
  items_a.reserve(a.size());
  items_b.reserve(b.size());
  for (const Entry& e : a.entries()) items_a.emplace_back(e.item, &e);
  for (const Entry& e : b.entries()) items_b.emplace_back(e.item, &e);
  std::sort(items_a.begin(), items_a.end());
  std::sort(items_b.begin(), items_b.end());

  size_t i = 0, j = 0;
  while (i < items_a.size() && j < items_b.size()) {
    if (items_a[i].first < items_b[j].first) {
      ++i;
    } else if (items_a[i].first > items_b[j].first) {
      ++j;
    } else {
      const Entry& ea = *items_a[i].second;
      const Entry& eb = *items_b[j].second;
      // Use the larger of the two stored ranks: the item is in the
      // coordinated intersection sample iff its rank is below τ in both.
      double rank = std::max(ea.rank, eb.rank);
      if (rank < tau || tau == kInfiniteRank) {
        if (tau == kInfiniteRank) {
          sum += current_weight(ea.item);
        } else {
          double w_stored = 0.5 * (ea.weight + eb.weight);
          double p = -std::expm1(-w_stored * tau);
          if (p > 0.0) sum += current_weight(ea.item) / p;
        }
      }
      ++i;
      ++j;
    }
  }
  return sum;
}

}  // namespace streamlink

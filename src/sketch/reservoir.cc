#include "sketch/reservoir.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace streamlink {

std::vector<uint64_t> ReservoirSampleIndices(uint64_t n, uint32_t count,
                                             Rng& rng) {
  SL_CHECK(count <= n) << "cannot sample " << count << " positions from " << n;
  std::vector<uint64_t> reservoir;
  reservoir.reserve(count);
  if (count == 0) return reservoir;

  for (uint64_t i = 0; i < count; ++i) reservoir.push_back(i);

  // Algorithm L: after filling, jump geometrically between accepted items.
  double w = std::exp(std::log(rng.NextDoublePositive()) / count);
  uint64_t i = count - 1;
  while (true) {
    double jump =
        std::floor(std::log(rng.NextDoublePositive()) / std::log1p(-w));
    // Guard against numerical overflow of the jump.
    if (jump > static_cast<double>(n)) break;
    i += static_cast<uint64_t>(jump) + 1;
    if (i >= n) break;
    reservoir[rng.NextBounded(count)] = i;
    w *= std::exp(std::log(rng.NextDoublePositive()) / count);
  }
  std::sort(reservoir.begin(), reservoir.end());
  return reservoir;
}

}  // namespace streamlink

#ifndef STREAMLINK_SKETCH_BLOOM_H_
#define STREAMLINK_SKETCH_BLOOM_H_

#include <cstdint>
#include <vector>

namespace streamlink {

/// Standard Bloom filter over 64-bit keys with double hashing
/// (g_i(x) = h1(x) + i·h2(x)), which preserves the asymptotic false-positive
/// rate of independent hashes (Kirsch & Mitzenmacher).
///
/// streamlink uses it to deduplicate edges in stream adapters (so sketches
/// can be fed simple streams from multigraph sources) and in the examples.
class BloomFilter {
 public:
  /// `num_bits` is rounded up to a multiple of 64. Preconditions:
  /// num_bits >= 64, num_hashes >= 1.
  BloomFilter(uint64_t num_bits, uint32_t num_hashes, uint64_t seed);

  /// Sizes the filter for `expected_items` at `target_fpp` false-positive
  /// probability using the standard optimal formulas.
  static BloomFilter FromExpectedItems(uint64_t expected_items,
                                       double target_fpp, uint64_t seed);

  uint64_t num_bits() const { return words_.size() * 64; }
  uint32_t num_hashes() const { return num_hashes_; }
  uint64_t items_added() const { return items_added_; }

  /// Inserts `key`. Returns true if the key was definitely new (at least
  /// one bit flipped from 0), false if it was possibly already present.
  bool Add(uint64_t key);

  /// True if `key` may have been added (false positives possible,
  /// false negatives impossible).
  bool MayContain(uint64_t key) const;

  /// Expected false-positive probability at the current fill.
  double EstimatedFpp() const;

  uint64_t MemoryBytes() const {
    return sizeof(*this) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t BitIndex(uint32_t i, uint64_t h1, uint64_t h2) const {
    return (h1 + static_cast<uint64_t>(i) * h2) % num_bits();
  }

  uint32_t num_hashes_;
  uint64_t seed_;
  std::vector<uint64_t> words_;
  uint64_t items_added_ = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_SKETCH_BLOOM_H_

#include "sketch/icws.h"

#include <cmath>

#include "util/hashing.h"
#include "util/logging.h"

namespace streamlink {

IcwsSketch::IcwsSketch(uint32_t num_slots, uint64_t seed)
    : seed_(seed), slots_(num_slots) {
  SL_CHECK(num_slots >= 1) << "ICWS needs at least one slot";
}

IcwsSketch IcwsSketch::FromSlots(uint64_t seed, std::vector<Slot> slots) {
  IcwsSketch sketch(static_cast<uint32_t>(slots.size()), seed);
  sketch.slots_ = std::move(slots);
  sketch.has_items_ = false;
  for (const Slot& slot : sketch.slots_) {
    if (slot.a != Slot::kEmpty) {
      sketch.has_items_ = true;
      break;
    }
  }
  return sketch;
}

namespace {

/// Uniform(0,1] variate for (slot, item, which) under `seed`.
inline double UniformAt(uint64_t seed, uint32_t slot, uint64_t item,
                        uint32_t which) {
  uint64_t key = Mix64(item ^ (static_cast<uint64_t>(slot) << 40) ^
                       (static_cast<uint64_t>(which) << 56));
  return HashToUnit(HashU64(key, seed));
}

}  // namespace

void IcwsSketch::Update(uint64_t item, double weight) {
  SL_CHECK(weight > 0.0) << "ICWS weights must be positive, got " << weight;
  has_items_ = true;
  const double log_weight = std::log(weight);
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    // r, c ~ Gamma(2, 1) as sums of two Exp(1); beta ~ Uniform(0, 1).
    double r = -std::log(UniformAt(seed_, i, item, 1)) -
               std::log(UniformAt(seed_, i, item, 2));
    double c = -std::log(UniformAt(seed_, i, item, 3)) -
               std::log(UniformAt(seed_, i, item, 4));
    double beta = UniformAt(seed_, i, item, 5);

    double t = std::floor(log_weight / r + beta);
    double y = std::exp(r * (t - beta));
    double a = c / (y * std::exp(r));

    Slot& slot = slots_[i];
    if (a < slot.a) {
      slot.a = a;
      slot.item = item;
      slot.t = static_cast<int64_t>(t);
    }
  }
}

void IcwsSketch::MergeUnion(const IcwsSketch& other) {
  SL_CHECK(slots_.size() == other.slots_.size() && seed_ == other.seed_)
      << "cannot merge incompatible ICWS sketches";
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (other.slots_[i].a < slots_[i].a) {
      slots_[i] = other.slots_[i];
    }
  }
  has_items_ = has_items_ || other.has_items_;
}

uint32_t IcwsSketch::CountMatches(const IcwsSketch& a, const IcwsSketch& b,
                                  std::vector<uint64_t>* items) {
  SL_CHECK(a.slots_.size() == b.slots_.size() && a.seed_ == b.seed_)
      << "cannot compare incompatible ICWS sketches";
  if (a.IsEmpty() || b.IsEmpty()) return 0;
  uint32_t matches = 0;
  for (uint32_t i = 0; i < a.slots_.size(); ++i) {
    const Slot& sa = a.slots_[i];
    const Slot& sb = b.slots_[i];
    if (sa.item == sb.item && sa.t == sb.t && sa.a != Slot::kEmpty) {
      ++matches;
      if (items != nullptr) items->push_back(sa.item);
    }
  }
  return matches;
}

double IcwsSketch::EstimateGeneralizedJaccard(const IcwsSketch& a,
                                              const IcwsSketch& b) {
  if (a.IsEmpty() || b.IsEmpty() || a.num_slots() == 0) return 0.0;
  return static_cast<double>(CountMatches(a, b, nullptr)) / a.num_slots();
}

}  // namespace streamlink

#ifndef STREAMLINK_GEN_SBM_H_
#define STREAMLINK_GEN_SBM_H_

#include <vector>

#include "gen/generated_graph.h"
#include "util/random.h"

namespace streamlink {

/// Stochastic block model: `num_blocks` equal-size communities; an edge
/// between two vertices exists independently with `p_intra` (same block)
/// or `p_inter` (different blocks). Community structure produces the
/// many-moderate-overlap query pairs where link prediction is actually
/// interesting (within-community non-edges score high).
struct SbmParams {
  VertexId num_vertices = 10000;
  uint32_t num_blocks = 10;
  double p_intra = 0.02;
  double p_inter = 0.0005;
};

/// Generated graph plus the ground-truth block assignment (useful for
/// community-aware examples and tests).
struct SbmGraph {
  GeneratedGraph graph;
  std::vector<uint32_t> block_of;  // size num_vertices
};

SbmGraph GenerateSbm(const SbmParams& params, Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_SBM_H_

#ifndef STREAMLINK_GEN_WORKLOADS_H_
#define STREAMLINK_GEN_WORKLOADS_H_

#include <string>
#include <vector>

#include "gen/generated_graph.h"

namespace streamlink {

/// The named workloads the experiment suite runs on — stand-ins for the
/// paper's real-world graph streams (see DESIGN.md §4 for the substitution
/// rationale). `scale` multiplies the default sizes: 1.0 is the standard
/// bench configuration (laptop-seconds per experiment), smaller values are
/// used by integration tests.
struct WorkloadSpec {
  std::string name;
  double scale = 1.0;
  uint64_t seed = 0;
};

/// Generates one workload by name. Known names: "ba" (Barabási–Albert,
/// social-network stand-in), "er" (Erdős–Rényi), "ws" (Watts–Strogatz,
/// high clustering), "rmat" (skewed web-like), "sbm" (community
/// structure), "plconfig" (power-law configuration model).
/// Aborts on unknown names (programming error in a bench harness).
GeneratedGraph MakeWorkload(const WorkloadSpec& spec);

/// All known workload names in canonical order.
std::vector<std::string> StandardWorkloadNames();

/// Generates the full standard suite at `scale` with per-workload
/// deterministic seeds derived from `seed`.
std::vector<GeneratedGraph> MakeStandardWorkloads(double scale, uint64_t seed);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_WORKLOADS_H_

#ifndef STREAMLINK_GEN_BARABASI_ALBERT_H_
#define STREAMLINK_GEN_BARABASI_ALBERT_H_

#include "gen/generated_graph.h"
#include "util/random.h"

namespace streamlink {

/// Barabási–Albert preferential attachment: vertices arrive one at a time
/// and connect `edges_per_vertex` edges to existing vertices with
/// probability proportional to current degree. Produces the power-law
/// degree distributions typical of social networks — the main "real-world
/// stand-in" workload of the evaluation suite. The arrival order is a
/// natural temporal stream (old vertices first), which also makes it the
/// workload for temporal train/test splits.
struct BarabasiAlbertParams {
  VertexId num_vertices = 10000;
  uint32_t edges_per_vertex = 5;  // m; also the size of the seed clique
};

GeneratedGraph GenerateBarabasiAlbert(const BarabasiAlbertParams& params,
                                      Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_BARABASI_ALBERT_H_

#ifndef STREAMLINK_GEN_PAIR_SAMPLER_H_
#define STREAMLINK_GEN_PAIR_SAMPLER_H_

#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"
#include "util/random.h"

namespace streamlink {

/// A link-prediction query: "how strongly are u and v connected through
/// shared neighbors?" Queries never require (u, v) to be an edge.
struct QueryPair {
  VertexId u;
  VertexId v;

  friend bool operator==(const QueryPair& a, const QueryPair& b) {
    return a.u == b.u && a.v == b.v;
  }
};

/// Uniform random distinct vertex pairs (u != v, unordered, deduplicated).
/// On sparse graphs these mostly have zero overlap — good for checking
/// that the estimators do not hallucinate similarity.
std::vector<QueryPair> SampleUniformPairs(VertexId num_vertices,
                                          uint32_t count, Rng& rng);

/// Pairs guaranteed to share at least one common neighbor, sampled by
/// picking a random wedge (two distinct neighbors of a random center).
/// These are the pairs the accuracy experiments measure relative error on
/// (relative error is undefined when the true measure is zero).
/// Centers are drawn degree-weighted so every wedge is equally likely.
std::vector<QueryPair> SampleOverlappingPairs(const CsrGraph& graph,
                                              uint32_t count, Rng& rng);

/// Mixture: `overlap_fraction` of the pairs share a neighbor, the rest are
/// uniform. Mirrors realistic query loads (mostly-related candidates plus
/// background noise).
std::vector<QueryPair> SampleMixedPairs(const CsrGraph& graph, uint32_t count,
                                        double overlap_fraction, Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_PAIR_SAMPLER_H_

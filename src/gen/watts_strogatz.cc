#include "gen/watts_strogatz.h"

#include <unordered_set>

#include "util/logging.h"

namespace streamlink {

GeneratedGraph GenerateWattsStrogatz(const WattsStrogatzParams& params,
                                     Rng& rng) {
  const VertexId n = params.num_vertices;
  const uint32_t k = params.neighbors_each_side;
  SL_CHECK(k >= 1) << "neighbors_each_side must be >= 1";
  SL_CHECK(n > 2 * k) << "ring too small for lattice degree";
  SL_CHECK(params.rewire_prob >= 0.0 && params.rewire_prob <= 1.0)
      << "rewire_prob must be in [0,1]";

  GeneratedGraph out;
  out.name = "watts_strogatz";
  out.num_vertices = n;
  out.edges.reserve(static_cast<size_t>(n) * k);

  std::unordered_set<Edge, EdgeHash> present;
  present.reserve(static_cast<size_t>(n) * k * 2);

  // Lattice edges (u, u+offset mod n) for offset in [1, k].
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t offset = 1; offset <= k; ++offset) {
      Edge e = Edge(u, (u + offset) % n).Canonical();
      present.insert(e);
    }
  }

  // Rewire each lattice edge with probability rewire_prob: replace the far
  // endpoint with a uniform vertex, avoiding self-loops and duplicates.
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t offset = 1; offset <= k; ++offset) {
      Edge original = Edge(u, (u + offset) % n).Canonical();
      if (present.count(original) == 0) continue;  // already rewired away
      if (!rng.NextBernoulli(params.rewire_prob)) continue;
      // Try a handful of times; on dense rings a valid target can be rare.
      for (int attempt = 0; attempt < 16; ++attempt) {
        VertexId w = static_cast<VertexId>(rng.NextBounded(n));
        if (w == u) continue;
        Edge candidate = Edge(u, w).Canonical();
        if (present.count(candidate) > 0) continue;
        present.erase(original);
        present.insert(candidate);
        break;
      }
    }
  }

  out.edges.assign(present.begin(), present.end());
  // Hash-set order is arbitrary but deterministic for a given build; give
  // the stream a well-defined random arrival order instead.
  rng.Shuffle(out.edges);
  return out;
}

}  // namespace streamlink

#include "gen/drifting.h"

#include "util/logging.h"

namespace streamlink {

DriftingStream GenerateDriftingStream(const DriftingStreamParams& params,
                                      Rng& rng) {
  SL_CHECK(params.num_phases >= 1) << "need at least one phase";
  DriftingStream out;
  out.graph.name = "drifting_sbm";
  out.graph.num_vertices = params.num_vertices;

  SbmParams sbm;
  sbm.num_vertices = params.num_vertices;
  sbm.num_blocks = params.num_blocks;
  sbm.p_intra = params.p_intra;
  sbm.p_inter = params.p_inter;

  const VertexId shift_step =
      params.num_vertices / std::max(1u, params.num_phases);
  for (uint32_t phase = 0; phase < params.num_phases; ++phase) {
    SbmGraph g = GenerateSbm(sbm, rng);
    // Rotate vertex ids so the community structure moves each phase. The
    // SBM assigns blocks as v % num_blocks (interleaved), so a shift that
    // is a multiple of num_blocks would leave membership unchanged — add
    // `phase` to break the divisibility and genuinely reshuffle blocks.
    const VertexId shift =
        (phase * shift_step + phase) % params.num_vertices;
    out.phase_boundaries.push_back(out.graph.edges.size());
    for (Edge e : g.graph.edges) {
      e.u = (e.u + shift) % params.num_vertices;
      e.v = (e.v + shift) % params.num_vertices;
      out.graph.edges.push_back(e);
    }
    // Rotated block assignment: block of v in this phase is the block the
    // unshifted generator assigned to (v - shift) mod n.
    std::vector<uint32_t> blocks(params.num_vertices);
    for (VertexId v = 0; v < params.num_vertices; ++v) {
      VertexId original =
          (v + params.num_vertices - shift) % params.num_vertices;
      blocks[v] = g.block_of[original];
    }
    out.block_of_phase.push_back(std::move(blocks));
  }
  return out;
}

}  // namespace streamlink

#include "gen/rmat.h"

#include <unordered_set>

#include "util/logging.h"

namespace streamlink {

GeneratedGraph GenerateRmat(const RmatParams& params, Rng& rng) {
  SL_CHECK(params.scale >= 1 && params.scale <= 30)
      << "rmat scale must be in [1, 30]";
  const double d = 1.0 - params.a - params.b - params.c;
  SL_CHECK(params.a > 0 && params.b >= 0 && params.c >= 0 && d >= 0)
      << "rmat probabilities must be non-negative and a > 0";

  GeneratedGraph out;
  out.name = "rmat";
  out.num_vertices = static_cast<VertexId>(1u) << params.scale;
  out.edges.reserve(params.num_edges);

  std::unordered_set<Edge, EdgeHash> seen;
  if (params.deduplicate) seen.reserve(params.num_edges * 2);

  uint64_t attempts = 0;
  const uint64_t max_attempts = params.num_edges * 64 + 1024;
  while (out.edges.size() < params.num_edges && attempts < max_attempts) {
    ++attempts;
    VertexId u = 0, v = 0;
    for (uint32_t level = 0; level < params.scale; ++level) {
      // Optional multiplicative noise, renormalized.
      double na = params.a, nb = params.b, nc = params.c, nd = d;
      if (params.noise > 0.0) {
        auto jitter = [&](double p) {
          return p * (1.0 - params.noise + 2.0 * params.noise *
                                               rng.NextDouble());
        };
        na = jitter(na);
        nb = jitter(nb);
        nc = jitter(nc);
        nd = jitter(nd);
        double total = na + nb + nc + nd;
        na /= total;
        nb /= total;
        nc /= total;
      }
      double r = rng.NextDouble();
      uint32_t quadrant;
      if (r < na) {
        quadrant = 0;
      } else if (r < na + nb) {
        quadrant = 1;
      } else if (r < na + nb + nc) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      u = (u << 1) | (quadrant >> 1);
      v = (v << 1) | (quadrant & 1);
    }
    if (u == v) continue;
    Edge e = Edge(u, v).Canonical();
    if (params.deduplicate && !seen.insert(e).second) continue;
    out.edges.push_back(e);
  }
  if (out.edges.size() < params.num_edges) {
    SL_LOG(kWarning) << "rmat produced only " << out.edges.size() << " of "
                     << params.num_edges
                     << " requested edges (dedup exhausted the quadrants)";
  }
  return out;
}

}  // namespace streamlink

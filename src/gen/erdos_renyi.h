#ifndef STREAMLINK_GEN_ERDOS_RENYI_H_
#define STREAMLINK_GEN_ERDOS_RENYI_H_

#include "gen/generated_graph.h"
#include "util/random.h"

namespace streamlink {

/// Parameters for the G(n, m) Erdős–Rényi model: exactly `num_edges`
/// distinct undirected edges drawn uniformly from all pairs.
struct ErdosRenyiParams {
  VertexId num_vertices = 1000;
  uint64_t num_edges = 5000;
};

/// Samples a uniform simple graph with exactly the requested edge count
/// (rejection sampling on duplicate/self-loop pairs). Edge order is the
/// random draw order. Precondition: num_edges <= n(n-1)/2.
GeneratedGraph GenerateErdosRenyi(const ErdosRenyiParams& params, Rng& rng);

/// G(n, p) variant: each pair independently with probability p, using
/// geometric skipping (O(edges), not O(n^2)). Edge order is lexicographic
/// scan order; shuffle with stream_order.h for a random arrival order.
GeneratedGraph GenerateErdosRenyiGnp(VertexId num_vertices, double p,
                                     Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_ERDOS_RENYI_H_

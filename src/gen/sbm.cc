#include "gen/sbm.h"

#include "util/logging.h"

namespace streamlink {

namespace {

/// Emits each pair (u, v), u < v, with probability p, by geometric
/// skipping over a virtual enumeration `enumerate(index) -> Edge`.
template <typename EnumerateFn>
void SampleBernoulliPairs(uint64_t total_pairs, double p, Rng& rng,
                          const EnumerateFn& enumerate, EdgeList& out) {
  if (p <= 0.0 || total_pairs == 0) return;
  uint64_t pos = 0;
  bool first = true;
  while (true) {
    uint64_t skip = p >= 1.0 ? 0 : rng.NextGeometric(p);
    pos += skip + (first ? 0 : 1);
    first = false;
    if (pos >= total_pairs) break;
    out.push_back(enumerate(pos));
  }
}

}  // namespace

SbmGraph GenerateSbm(const SbmParams& params, Rng& rng) {
  SL_CHECK(params.num_blocks >= 1) << "SBM needs at least one block";
  SL_CHECK(params.num_vertices >= params.num_blocks)
      << "fewer vertices than blocks";
  SL_CHECK(params.p_intra >= 0.0 && params.p_intra <= 1.0 &&
           params.p_inter >= 0.0 && params.p_inter <= 1.0)
      << "probabilities must be in [0,1]";

  SbmGraph out;
  out.graph.name = "sbm";
  out.graph.num_vertices = params.num_vertices;

  const VertexId n = params.num_vertices;
  const uint32_t blocks = params.num_blocks;
  // Vertex u belongs to block u % blocks — interleaved assignment keeps
  // block sizes balanced (within 1) for any n.
  out.block_of.resize(n);
  for (VertexId u = 0; u < n; ++u) out.block_of[u] = u % blocks;

  // Vertices of block b: {b, b + blocks, b + 2*blocks, ...}.
  auto block_size = [&](uint32_t b) -> uint64_t {
    return (n - b + blocks - 1) / blocks;
  };
  auto block_member = [&](uint32_t b, uint64_t i) -> VertexId {
    return static_cast<VertexId>(b + i * blocks);
  };

  EdgeList& edges = out.graph.edges;

  // Intra-block pairs, block by block.
  for (uint32_t b = 0; b < blocks; ++b) {
    uint64_t size = block_size(b);
    if (size < 2) continue;
    uint64_t pairs = size * (size - 1) / 2;
    SampleBernoulliPairs(
        pairs, params.p_intra, rng,
        [&](uint64_t pos) {
          // Invert pos -> (i, j), i < j, row-major over the triangle.
          uint64_t i = 0;
          uint64_t row_pairs = size - 1;
          while (pos >= row_pairs) {
            pos -= row_pairs;
            ++i;
            --row_pairs;
          }
          uint64_t j = i + 1 + pos;
          return Edge(block_member(b, i), block_member(b, j)).Canonical();
        },
        edges);
  }

  // Inter-block pairs, per ordered block pair (b1 < b2): full bipartite
  // grid of size(b1) x size(b2).
  for (uint32_t b1 = 0; b1 < blocks; ++b1) {
    for (uint32_t b2 = b1 + 1; b2 < blocks; ++b2) {
      uint64_t s1 = block_size(b1), s2 = block_size(b2);
      SampleBernoulliPairs(
          s1 * s2, params.p_inter, rng,
          [&](uint64_t pos) {
            uint64_t i = pos / s2;
            uint64_t j = pos % s2;
            return Edge(block_member(b1, i), block_member(b2, j)).Canonical();
          },
          edges);
    }
  }

  rng.Shuffle(edges);
  return out;
}

}  // namespace streamlink

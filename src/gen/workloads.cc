#include "gen/workloads.h"

#include <algorithm>
#include <cmath>

#include "gen/barabasi_albert.h"
#include "gen/configuration_model.h"
#include "gen/erdos_renyi.h"
#include "gen/rmat.h"
#include "gen/sbm.h"
#include "gen/watts_strogatz.h"
#include "util/hashing.h"
#include "util/logging.h"
#include "util/random.h"

namespace streamlink {

namespace {

VertexId ScaledVertices(double scale, VertexId base) {
  double n = std::max(64.0, scale * static_cast<double>(base));
  return static_cast<VertexId>(n);
}

}  // namespace

GeneratedGraph MakeWorkload(const WorkloadSpec& spec) {
  Rng rng(Mix64(spec.seed ^ HashBytes(spec.name, 0x5717)));
  const double s = spec.scale;
  SL_CHECK(s > 0.0) << "workload scale must be positive";

  if (spec.name == "ba") {
    BarabasiAlbertParams p;
    p.num_vertices = ScaledVertices(s, 20000);
    p.edges_per_vertex = 8;
    return GenerateBarabasiAlbert(p, rng);
  }
  if (spec.name == "er") {
    ErdosRenyiParams p;
    p.num_vertices = ScaledVertices(s, 20000);
    p.num_edges = static_cast<uint64_t>(p.num_vertices) * 8;
    return GenerateErdosRenyi(p, rng);
  }
  if (spec.name == "ws") {
    WattsStrogatzParams p;
    p.num_vertices = ScaledVertices(s, 20000);
    p.neighbors_each_side = 8;
    p.rewire_prob = 0.1;
    return GenerateWattsStrogatz(p, rng);
  }
  if (spec.name == "rmat") {
    RmatParams p;
    // Pick the scale so 2^scale ≈ 20000 * s.
    double target = std::max(64.0, s * 20000.0);
    p.scale = std::clamp(
        static_cast<uint32_t>(std::lround(std::log2(target))), 6u, 24u);
    p.num_edges = static_cast<uint64_t>((1u << p.scale)) * 8;
    return GenerateRmat(p, rng);
  }
  if (spec.name == "sbm") {
    SbmParams p;
    p.num_vertices = ScaledVertices(s, 20000);
    p.num_blocks = 20;
    // Keep expected degree ~16 regardless of scale.
    double block_size = static_cast<double>(p.num_vertices) / p.num_blocks;
    p.p_intra = std::min(1.0, 14.0 / block_size);
    p.p_inter = std::min(1.0, 2.0 / (p.num_vertices - block_size));
    return GenerateSbm(p, rng).graph;
  }
  if (spec.name == "plconfig") {
    VertexId n = ScaledVertices(s, 20000);
    ConfigurationModelParams p;
    p.degrees = PowerLawDegreeSequence(n, 2.2, 2, std::max<uint32_t>(n / 20, 8),
                                       rng);
    return GenerateConfigurationModel(p, rng);
  }
  SL_LOG(kFatal) << "unknown workload: " << spec.name;
  return {};
}

std::vector<std::string> StandardWorkloadNames() {
  return {"ba", "er", "ws", "rmat", "sbm", "plconfig"};
}

std::vector<GeneratedGraph> MakeStandardWorkloads(double scale,
                                                  uint64_t seed) {
  std::vector<GeneratedGraph> out;
  for (const std::string& name : StandardWorkloadNames()) {
    out.push_back(MakeWorkload(WorkloadSpec{name, scale, seed}));
  }
  return out;
}

}  // namespace streamlink

#ifndef STREAMLINK_GEN_RMAT_H_
#define STREAMLINK_GEN_RMAT_H_

#include "gen/generated_graph.h"
#include "util/random.h"

namespace streamlink {

/// R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos): each
/// edge picks a quadrant of the adjacency matrix recursively with
/// probabilities (a, b, c, d). The Graph500 defaults (0.57, 0.19, 0.19,
/// 0.05) give heavily skewed, web-graph-like degree distributions — the
/// workload that stresses the Adamic-Adar estimators with extreme hubs.
struct RmatParams {
  uint32_t scale = 14;  // num_vertices = 2^scale
  uint64_t num_edges = 160000;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  /// Deduplicate the generated edges (the raw model is a multigraph).
  bool deduplicate = true;
  /// Perturb quadrant probabilities per level (reduces staircase artifacts).
  double noise = 0.1;
};

GeneratedGraph GenerateRmat(const RmatParams& params, Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_RMAT_H_

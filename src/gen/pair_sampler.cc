#include "gen/pair_sampler.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace streamlink {

namespace {

struct PairHash {
  size_t operator()(const QueryPair& p) const {
    uint64_t key = (static_cast<uint64_t>(p.u) << 32) | p.v;
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return static_cast<size_t>(key);
  }
};

QueryPair Canonical(VertexId a, VertexId b) {
  return a <= b ? QueryPair{a, b} : QueryPair{b, a};
}

}  // namespace

std::vector<QueryPair> SampleUniformPairs(VertexId num_vertices,
                                          uint32_t count, Rng& rng) {
  SL_CHECK(num_vertices >= 2) << "need at least two vertices to form pairs";
  const uint64_t max_pairs =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  SL_CHECK(count <= max_pairs)
      << "requested " << count << " distinct pairs but only " << max_pairs
      << " exist";

  std::vector<QueryPair> out;
  out.reserve(count);
  std::unordered_set<QueryPair, PairHash> seen;
  seen.reserve(count * 2);
  while (out.size() < count) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    QueryPair p = Canonical(u, v);
    if (!seen.insert(p).second) continue;
    out.push_back(p);
  }
  return out;
}

std::vector<QueryPair> SampleOverlappingPairs(const CsrGraph& graph,
                                              uint32_t count, Rng& rng) {
  // Degree-weighted wedge centers: cumulative wedge counts per vertex.
  std::vector<VertexId> centers;
  std::vector<double> cumulative;
  double total = 0.0;
  for (VertexId w = 0; w < graph.num_vertices(); ++w) {
    uint32_t d = graph.Degree(w);
    if (d < 2) continue;
    total += static_cast<double>(d) * (d - 1) / 2;
    centers.push_back(w);
    cumulative.push_back(total);
  }
  SL_CHECK(!centers.empty()) << "graph has no wedges; cannot sample "
                                "overlapping pairs";

  std::vector<QueryPair> out;
  out.reserve(count);
  std::unordered_set<QueryPair, PairHash> seen;
  seen.reserve(count * 2);
  uint64_t attempts = 0;
  const uint64_t max_attempts = static_cast<uint64_t>(count) * 256 + 4096;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    double r = rng.NextDouble() * total;
    size_t idx = std::lower_bound(cumulative.begin(), cumulative.end(), r) -
                 cumulative.begin();
    if (idx >= centers.size()) idx = centers.size() - 1;
    VertexId w = centers[idx];
    auto nbrs = graph.Neighbors(w);
    uint64_t i = rng.NextBounded(nbrs.size());
    uint64_t j = rng.NextBounded(nbrs.size() - 1);
    if (j >= i) ++j;
    QueryPair p = Canonical(nbrs[i], nbrs[j]);
    if (!seen.insert(p).second) continue;
    out.push_back(p);
  }
  if (out.size() < count) {
    SL_LOG(kWarning) << "only found " << out.size() << " of " << count
                     << " distinct overlapping pairs";
  }
  return out;
}

std::vector<QueryPair> SampleMixedPairs(const CsrGraph& graph, uint32_t count,
                                        double overlap_fraction, Rng& rng) {
  SL_CHECK(overlap_fraction >= 0.0 && overlap_fraction <= 1.0)
      << "overlap_fraction must be in [0,1]";
  uint32_t overlapping =
      static_cast<uint32_t>(overlap_fraction * static_cast<double>(count));
  std::vector<QueryPair> out =
      SampleOverlappingPairs(graph, overlapping, rng);
  std::vector<QueryPair> uniform =
      SampleUniformPairs(graph.num_vertices(), count - overlapping, rng);
  out.insert(out.end(), uniform.begin(), uniform.end());
  rng.Shuffle(out);
  return out;
}

}  // namespace streamlink

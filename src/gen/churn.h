#ifndef STREAMLINK_GEN_CHURN_H_
#define STREAMLINK_GEN_CHURN_H_

#include <cstdint>
#include <string>

#include "graph/types.h"
#include "stream/op_stream.h"

namespace streamlink {

/// Parameters for a delete-heavy turnstile workload derived from one of the
/// standard insert-only workloads (gen/workloads.h).
struct ChurnSpec {
  /// Base workload name ("ba", "er", "ws", "rmat", "sbm", "plconfig").
  std::string base_workload = "ba";
  double scale = 1.0;
  uint64_t seed = 0;
  /// Target fraction of *events* that are deletes, in [0, 0.5). The
  /// generator interleaves one delete draw after every insert, so the
  /// realized fraction converges to the target on any non-trivial stream.
  double delete_fraction = 0.35;
};

/// A turnstile event stream plus everything verification needs to check it:
/// the surviving edge set (`net_edges`) is, by construction, exactly what an
/// insert-only replay of `events` with deletes applied would leave live — so
/// "replay events" and "insert net_edges" must agree on every estimate.
struct TurnstileWorkload {
  std::string name;
  EdgeEventList events;
  /// The live edge set after replaying all of `events`; deterministic but
  /// in no meaningful order (deletes compact by swap-remove).
  EdgeList net_edges;
  VertexId num_vertices = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
};

/// Core transform: threads deletes through an existing edge sequence.
/// Walks `base_edges` in order, inserting each edge that is not already
/// live (duplicates are skipped — count-based sketches like tcm are not
/// duplicate-idempotent, so a duplicate insert could never be annihilated
/// by a single delete) and, after each insert, deleting a uniformly random
/// live edge with the probability that realizes `delete_fraction`. Deletes
/// only ever target live edges; self-loops pass through as insert events
/// (every predictor filters them) and are never tracked or deleted.
/// Deterministic in (base_edges, seed).
TurnstileWorkload MakeChurnFromEdges(const EdgeList& base_edges,
                                     VertexId num_vertices,
                                     double delete_fraction, uint64_t seed,
                                     const std::string& name);

/// Generates `spec.base_workload` via MakeWorkload, then churns it with
/// MakeChurnFromEdges. The workload name is "<base>_churn".
TurnstileWorkload MakeChurnWorkload(const ChurnSpec& spec);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_CHURN_H_

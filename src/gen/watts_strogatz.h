#ifndef STREAMLINK_GEN_WATTS_STROGATZ_H_
#define STREAMLINK_GEN_WATTS_STROGATZ_H_

#include "gen/generated_graph.h"
#include "util/random.h"

namespace streamlink {

/// Watts–Strogatz small-world model: a ring lattice where each vertex
/// connects to its `neighbors_each_side` nearest neighbors per side, with
/// each edge rewired to a random endpoint with probability `rewire_prob`.
/// High clustering at low rewiring — the workload that stresses the
/// sketches with *large Jaccard overlaps* (neighbors of adjacent ring
/// vertices overlap heavily).
struct WattsStrogatzParams {
  VertexId num_vertices = 10000;
  uint32_t neighbors_each_side = 5;  // lattice degree = 2 * this
  double rewire_prob = 0.1;
};

GeneratedGraph GenerateWattsStrogatz(const WattsStrogatzParams& params,
                                     Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_WATTS_STROGATZ_H_

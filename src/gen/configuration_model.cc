#include "gen/configuration_model.h"

#include <cmath>
#include <numeric>
#include <unordered_set>

#include "graph/types.h"
#include "util/logging.h"

namespace streamlink {

GeneratedGraph GenerateConfigurationModel(
    const ConfigurationModelParams& params, Rng& rng) {
  GeneratedGraph out;
  out.name = "configuration_model";
  out.num_vertices = static_cast<VertexId>(params.degrees.size());
  if (params.degrees.empty()) return out;

  uint64_t stub_count =
      std::accumulate(params.degrees.begin(), params.degrees.end(),
                      static_cast<uint64_t>(0));
  SL_CHECK(stub_count % 2 == 0) << "degree sequence sum must be even";

  std::vector<VertexId> stubs;
  stubs.reserve(stub_count);
  for (VertexId u = 0; u < params.degrees.size(); ++u) {
    for (uint32_t i = 0; i < params.degrees[u]; ++i) stubs.push_back(u);
  }
  rng.Shuffle(stubs);

  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(stub_count);
  out.edges.reserve(stub_count / 2);
  // Pair consecutive stubs; drop self-loops and duplicates (an "erased"
  // configuration model — degree sequence is approximate, which is the
  // standard practical compromise).
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    VertexId u = stubs[i], v = stubs[i + 1];
    if (u == v) continue;
    Edge e = Edge(u, v).Canonical();
    if (!seen.insert(e).second) continue;
    out.edges.push_back(e);
  }
  return out;
}

std::vector<uint32_t> PowerLawDegreeSequence(VertexId num_vertices,
                                             double exponent,
                                             uint32_t min_degree,
                                             uint32_t max_degree, Rng& rng) {
  SL_CHECK(min_degree >= 1 && min_degree <= max_degree)
      << "need 1 <= min_degree <= max_degree";
  SL_CHECK(exponent > 1.0) << "power-law exponent must exceed 1";

  // Cumulative mass over the degree range.
  std::vector<double> cumulative;
  cumulative.reserve(max_degree - min_degree + 1);
  double total = 0.0;
  for (uint32_t d = min_degree; d <= max_degree; ++d) {
    total += std::pow(static_cast<double>(d), -exponent);
    cumulative.push_back(total);
  }

  std::vector<uint32_t> degrees(num_vertices);
  uint64_t sum = 0;
  for (VertexId u = 0; u < num_vertices; ++u) {
    double r = rng.NextDouble() * total;
    size_t idx = std::lower_bound(cumulative.begin(), cumulative.end(), r) -
                 cumulative.begin();
    if (idx >= cumulative.size()) idx = cumulative.size() - 1;
    degrees[u] = min_degree + static_cast<uint32_t>(idx);
    sum += degrees[u];
  }
  if (sum % 2 == 1) ++degrees[0];  // make the stub count even
  return degrees;
}

}  // namespace streamlink

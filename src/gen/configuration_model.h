#ifndef STREAMLINK_GEN_CONFIGURATION_MODEL_H_
#define STREAMLINK_GEN_CONFIGURATION_MODEL_H_

#include <vector>

#include "gen/generated_graph.h"
#include "util/random.h"

namespace streamlink {

/// Configuration model: a uniform random simple graph with (approximately)
/// a prescribed degree sequence, built by stub matching with rejection of
/// self-loops and multi-edges. Gives direct control over degree skew — the
/// knob the accuracy experiments sweep when isolating the effect of hub
/// vertices on the estimators.
struct ConfigurationModelParams {
  std::vector<uint32_t> degrees;
};

GeneratedGraph GenerateConfigurationModel(
    const ConfigurationModelParams& params, Rng& rng);

/// Builds a discrete power-law degree sequence: P(d) ∝ d^-exponent for
/// d in [min_degree, max_degree], sampled for `num_vertices` vertices
/// (sum adjusted to even by bumping one vertex).
std::vector<uint32_t> PowerLawDegreeSequence(VertexId num_vertices,
                                             double exponent,
                                             uint32_t min_degree,
                                             uint32_t max_degree, Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_CONFIGURATION_MODEL_H_

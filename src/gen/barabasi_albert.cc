#include "gen/barabasi_albert.h"

#include <unordered_set>

#include "util/logging.h"

namespace streamlink {

GeneratedGraph GenerateBarabasiAlbert(const BarabasiAlbertParams& params,
                                      Rng& rng) {
  const VertexId n = params.num_vertices;
  const uint32_t m = params.edges_per_vertex;
  SL_CHECK(m >= 1) << "edges_per_vertex must be >= 1";
  SL_CHECK(n > m) << "need more vertices than edges_per_vertex";

  GeneratedGraph out;
  out.name = "barabasi_albert";
  out.num_vertices = n;
  out.edges.reserve(static_cast<size_t>(n) * m);

  // `targets` holds one entry per edge endpoint; sampling an entry
  // uniformly samples a vertex proportionally to its degree.
  std::vector<VertexId> targets;
  targets.reserve(2 * static_cast<size_t>(n) * m);

  // Seed: a clique on the first m+1 vertices.
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = u + 1; v <= m; ++v) {
      out.edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::unordered_set<VertexId> chosen;
  for (VertexId u = m + 1; u < n; ++u) {
    chosen.clear();
    while (chosen.size() < m) {
      VertexId v = targets[rng.NextBounded(targets.size())];
      chosen.insert(v);
    }
    for (VertexId v : chosen) {
      out.edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return out;
}

}  // namespace streamlink

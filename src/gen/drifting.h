#ifndef STREAMLINK_GEN_DRIFTING_H_
#define STREAMLINK_GEN_DRIFTING_H_

#include <vector>

#include "gen/generated_graph.h"
#include "gen/sbm.h"
#include "util/random.h"

namespace streamlink {

/// A non-stationary graph stream: several phases, each an SBM over the
/// same vertex set with the block assignment rotated, concatenated in
/// time. The canonical workload for sliding-window and concept-drift
/// experiments (F11): within a phase, intra-community pairs are similar;
/// across a phase boundary the "right" similarities change wholesale.
struct DriftingStreamParams {
  VertexId num_vertices = 2000;
  uint32_t num_blocks = 5;
  double p_intra = 0.04;
  double p_inter = 0.0005;
  uint32_t num_phases = 3;
};

struct DriftingStream {
  /// The full concatenated stream, phase by phase.
  GeneratedGraph graph;
  /// Index of the first edge of each phase in graph.edges (size
  /// num_phases); phase p spans [boundaries[p], boundaries[p+1]) with an
  /// implicit final boundary at edges.size().
  std::vector<size_t> phase_boundaries;
  /// Per-phase block assignment of each vertex.
  std::vector<std::vector<uint32_t>> block_of_phase;
};

DriftingStream GenerateDriftingStream(const DriftingStreamParams& params,
                                      Rng& rng);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_DRIFTING_H_

#ifndef STREAMLINK_GEN_STREAM_ORDER_H_
#define STREAMLINK_GEN_STREAM_ORDER_H_

#include "graph/types.h"
#include "util/random.h"

namespace streamlink {

/// How the edges of a generated graph arrive as a stream. The sketches are
/// order-insensitive for Jaccard/CN, but Adamic-Adar estimation interacts
/// with arrival order through evolving degrees — the order sweeps in the
/// robustness experiments use these.
enum class StreamOrder {
  kGenerated,     // whatever order the generator emitted (temporal for BA)
  kRandom,        // uniform shuffle
  kSortedBySource,  // ascending (u, v): adversarially "clumped" per vertex
  kReversed,      // generated order reversed (newest-first for BA)
};

const char* StreamOrderName(StreamOrder order);

/// Reorders `edges` in place according to `order`.
void ApplyStreamOrder(StreamOrder order, EdgeList& edges, Rng& rng);

/// Splits a stream into `fraction` prefix (train) and suffix (test) by
/// position. Returns the split point index.
size_t SplitPoint(const EdgeList& edges, double fraction);

}  // namespace streamlink

#endif  // STREAMLINK_GEN_STREAM_ORDER_H_

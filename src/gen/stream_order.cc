#include "gen/stream_order.h"

#include <algorithm>

#include "util/logging.h"

namespace streamlink {

const char* StreamOrderName(StreamOrder order) {
  switch (order) {
    case StreamOrder::kGenerated:
      return "generated";
    case StreamOrder::kRandom:
      return "random";
    case StreamOrder::kSortedBySource:
      return "sorted_by_source";
    case StreamOrder::kReversed:
      return "reversed";
  }
  return "unknown";
}

void ApplyStreamOrder(StreamOrder order, EdgeList& edges, Rng& rng) {
  switch (order) {
    case StreamOrder::kGenerated:
      return;
    case StreamOrder::kRandom:
      rng.Shuffle(edges);
      return;
    case StreamOrder::kSortedBySource:
      std::sort(edges.begin(), edges.end());
      return;
    case StreamOrder::kReversed:
      std::reverse(edges.begin(), edges.end());
      return;
  }
  SL_LOG(kFatal) << "unhandled StreamOrder";
}

size_t SplitPoint(const EdgeList& edges, double fraction) {
  SL_CHECK(fraction >= 0.0 && fraction <= 1.0)
      << "split fraction must be in [0,1]";
  return static_cast<size_t>(fraction * static_cast<double>(edges.size()));
}

}  // namespace streamlink

#include "gen/churn.h"

#include <unordered_map>

#include "gen/workloads.h"
#include "util/logging.h"
#include "util/random.h"

namespace streamlink {

namespace {

/// Canonical packed key for the live-edge index.
uint64_t EdgeKey(const Edge& e) {
  const Edge c = e.Canonical();
  return (static_cast<uint64_t>(c.u) << 32) | c.v;
}

}  // namespace

TurnstileWorkload MakeChurnFromEdges(const EdgeList& base_edges,
                                     VertexId num_vertices,
                                     double delete_fraction, uint64_t seed,
                                     const std::string& name) {
  SL_CHECK(delete_fraction >= 0.0 && delete_fraction < 0.5)
      << "delete_fraction must be in [0, 0.5), got " << delete_fraction;
  // Each live insert is followed by a Bernoulli(d) delete draw; the event
  // mix then converges to d/(1+d) deletes, so invert for the target f.
  const double delete_rate =
      delete_fraction > 0.0 ? delete_fraction / (1.0 - delete_fraction) : 0.0;

  TurnstileWorkload out;
  out.name = name;
  out.num_vertices = num_vertices;
  out.events.reserve(base_edges.size() * 2);

  // Live set: vector for O(1) uniform sampling, key index for O(1)
  // membership and swap-remove.
  EdgeList live;
  std::unordered_map<uint64_t, size_t> index;
  live.reserve(base_edges.size());
  index.reserve(base_edges.size());
  Rng rng(seed);

  auto delete_random_live = [&] {
    const size_t pick = static_cast<size_t>(rng.NextBounded(live.size()));
    const Edge victim = live[pick];
    out.events.emplace_back(victim, EdgeOp::kDelete);
    ++out.deletes;
    index.erase(EdgeKey(victim));
    live[pick] = live.back();
    live.pop_back();
    if (pick < live.size()) index[EdgeKey(live[pick])] = pick;
  };

  for (const Edge& edge : base_edges) {
    if (edge.IsSelfLoop()) {
      // Pass through to exercise the ingest-side filter; never live, so
      // never a delete target and absent from net_edges.
      out.events.emplace_back(edge, EdgeOp::kInsert);
      ++out.inserts;
      continue;
    }
    const uint64_t key = EdgeKey(edge);
    if (index.find(key) != index.end()) continue;  // duplicate of a live edge
    out.events.emplace_back(edge, EdgeOp::kInsert);
    ++out.inserts;
    index.emplace(key, live.size());
    live.push_back(edge);
    if (!live.empty() && rng.NextBernoulli(delete_rate)) {
      delete_random_live();
    }
  }

  out.net_edges = std::move(live);
  return out;
}

TurnstileWorkload MakeChurnWorkload(const ChurnSpec& spec) {
  WorkloadSpec base_spec;
  base_spec.name = spec.base_workload;
  base_spec.scale = spec.scale;
  base_spec.seed = spec.seed;
  GeneratedGraph base = MakeWorkload(base_spec);
  // Decouple the churn draws from the generator's: the same seed must not
  // correlate edge structure with delete choices.
  const uint64_t churn_seed = spec.seed ^ 0x9e3779b97f4a7c15ULL;
  return MakeChurnFromEdges(base.edges, base.num_vertices,
                            spec.delete_fraction, churn_seed,
                            base.name + "_churn");
}

}  // namespace streamlink

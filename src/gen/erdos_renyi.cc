#include "gen/erdos_renyi.h"

#include <cmath>
#include <unordered_set>

#include "graph/types.h"
#include "util/logging.h"

namespace streamlink {

GeneratedGraph GenerateErdosRenyi(const ErdosRenyiParams& params, Rng& rng) {
  const uint64_t n = params.num_vertices;
  SL_CHECK(n >= 2) << "Erdos-Renyi needs at least 2 vertices";
  const uint64_t max_edges = n * (n - 1) / 2;
  SL_CHECK(params.num_edges <= max_edges)
      << "requested " << params.num_edges << " edges but only " << max_edges
      << " pairs exist";

  GeneratedGraph out;
  out.name = "erdos_renyi";
  out.num_vertices = params.num_vertices;
  out.edges.reserve(params.num_edges);

  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(params.num_edges * 2);
  while (out.edges.size() < params.num_edges) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    Edge e = Edge(u, v).Canonical();
    if (!seen.insert(e).second) continue;
    out.edges.push_back(e);
  }
  return out;
}

GeneratedGraph GenerateErdosRenyiGnp(VertexId num_vertices, double p,
                                     Rng& rng) {
  SL_CHECK(num_vertices >= 2) << "G(n,p) needs at least 2 vertices";
  SL_CHECK(p >= 0.0 && p <= 1.0) << "p must be in [0,1]";
  GeneratedGraph out;
  out.name = "erdos_renyi_gnp";
  out.num_vertices = num_vertices;
  if (p == 0.0) return out;

  // Geometric skipping over the lexicographic enumeration of pairs
  // (u, v), u < v. Positions are 0 .. n(n-1)/2 - 1.
  const uint64_t n = num_vertices;
  const uint64_t total_pairs = n * (n - 1) / 2;
  uint64_t pos = 0;
  bool first = true;
  while (true) {
    uint64_t skip = p >= 1.0 ? 0 : rng.NextGeometric(p);
    pos += skip + (first ? 0 : 1);
    first = false;
    if (pos >= total_pairs) break;
    // Invert position -> (u, v): u is the largest row whose prefix count
    // row_offset(u) = u*n - u(u+3)/2 ... use direct scan-free inversion via
    // the quadratic formula on cumulative pair counts.
    // Pairs with first endpoint < u: C(u) = u*(2n - u - 1)/2.
    double nd = static_cast<double>(n);
    uint64_t u = static_cast<uint64_t>(
        std::floor((2.0 * nd - 1.0 -
                    std::sqrt((2.0 * nd - 1.0) * (2.0 * nd - 1.0) -
                              8.0 * static_cast<double>(pos))) /
                   2.0));
    auto prefix = [n](uint64_t row) { return row * (2 * n - row - 1) / 2; };
    while (prefix(u + 1) <= pos) ++u;  // guard against fp rounding
    while (prefix(u) > pos) --u;
    uint64_t v = u + 1 + (pos - prefix(u));
    out.edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    if (p >= 1.0) {
      // take every pair
      continue;
    }
  }
  return out;
}

}  // namespace streamlink

#ifndef STREAMLINK_GEN_GENERATED_GRAPH_H_
#define STREAMLINK_GEN_GENERATED_GRAPH_H_

#include <string>

#include "graph/types.h"

namespace streamlink {

/// Output of every synthetic generator: the edge sequence *is* the stream
/// (generation order), plus the vertex-set size (which may exceed the
/// largest endpoint when isolated vertices exist).
struct GeneratedGraph {
  std::string name;
  EdgeList edges;
  VertexId num_vertices = 0;
};

}  // namespace streamlink

#endif  // STREAMLINK_GEN_GENERATED_GRAPH_H_

#ifndef STREAMLINK_VERIFY_FUZZ_TARGETS_H_
#define STREAMLINK_VERIFY_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace streamlink {

/// libFuzzer-compatible fuzz targets for the two untrusted-input surfaces:
/// the snapshot loader (bytes from disk) and the edge-list text parser
/// (bytes from datasets). Each target takes one arbitrary input and must
/// never crash, abort, or hang — corrupt input always surfaces as a clean
/// Status. The fuzz/ directory wraps these in LLVMFuzzerTestOneInput for
/// real fuzzing (-DSTREAMLINK_FUZZ=ON, clang only); the corpus-replay
/// test (tests/fuzz_replay_test.cc) drives the same targets over the
/// checked-in corpus plus seeded mutations, so regressions are caught in
/// every CI run without a fuzzing toolchain.

/// Snapshot loader target. Routes the bytes through BOTH load paths:
/// LoadPredictorSnapshot (checksum preflight, the production path) and
/// LoadPredictorFrom on a raw reader (no checksum — exercises every kind
/// decoder's own validation, the way a nested shard envelope reaches
/// them). If either path accepts the input, the result must re-save
/// cleanly (parse/serialize closure). Returns 0 always.
int FuzzSnapshotLoader(const uint8_t* data, size_t size);

/// Edge-list text parser target: ParseEdgeList and ParseWeightedEdgeList
/// under both id-remapping modes, with a bounded max_edges. On success the
/// parsed result must satisfy the parser's postconditions (remapped
/// endpoints dense, edge count within bounds). Returns 0 always.
int FuzzEdgeListParser(const uint8_t* data, size_t size);

/// Network request-frame decoder target (the third untrusted surface:
/// bytes from a socket). Feeds the input through net::FrameDecoder both
/// whole and split — chunking must never change the decode — and pushes
/// every decoded payload, plus the raw bytes, through the query-codec
/// decoders. Invariant violations abort; corrupt input must always
/// surface as a clean Status. Returns 0 always.
int FuzzNetFrame(const uint8_t* data, size_t size);

/// One named target, for drivers that iterate.
struct FuzzTarget {
  std::string name;  // also the corpus subdirectory name
  int (*run)(const uint8_t* data, size_t size);
};

/// Every registered target, in a stable order.
std::vector<FuzzTarget> AllFuzzTargets();

/// Replays every regular file under `dir` (the corpus layout is one input
/// per file, see fuzz/README.md) through the target. Returns the number
/// of inputs replayed; NotFound when the directory does not exist.
Result<uint64_t> ReplayCorpusDir(const std::string& dir,
                                 const FuzzTarget& target);

/// Deterministic in-process mutation engine: derives `iterations` inputs
/// from `seed_input` with seeded structural mutations (byte flips, bit
/// flips, truncations, interior deletions, duplications, random splices)
/// and feeds each through the target. The same (seed_input, iterations,
/// seed) triple always replays the identical input sequence — CI runs
/// this as a cheap, reproducible stand-in for a fuzzing campaign.
void MutateAndReplay(const std::string& seed_input, uint32_t iterations,
                     uint64_t seed, const FuzzTarget& target);

}  // namespace streamlink

#endif  // STREAMLINK_VERIFY_FUZZ_TARGETS_H_

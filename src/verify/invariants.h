#ifndef STREAMLINK_VERIFY_INVARIANTS_H_
#define STREAMLINK_VERIFY_INVARIANTS_H_

#include <functional>
#include <string>
#include <vector>

#include "core/predictor_factory.h"
#include "graph/types.h"
#include "util/status.h"

namespace streamlink {

/// Metamorphic-invariant library: reusable, composable checks of the
/// relations that must hold between *different executions* of the same
/// predictor — the properties PRs 1–3 promised (shard-count invariance,
/// batch-size invariance, clone isolation, merge associativity, snapshot
/// round-trips, kill-and-resume equivalence), packaged so any test,
/// fuzzer, or CI lane can run every invariant against every kind without
/// re-deriving the scaffolding.
///
/// Each invariant is a pure function of an InvariantContext; it returns
/// OkStatus on a pass AND when it does not apply to the context's kind
/// (e.g. sharding invariance on an unshardable kind), so drivers can run
/// the full cross product blindly. Failures carry a reproducible
/// description (kind, knob values, first divergent field).

/// Inputs shared by every invariant: a predictor configuration (threads
/// is ignored — invariants pick their own), the stream to ingest, and
/// deterministic seeds/scratch space.
struct InvariantContext {
  PredictorConfig config;
  EdgeList edges;
  VertexId num_vertices = 0;
  /// Drives query-pair sampling inside checks; fixed => reproducible.
  uint64_t seed = 7;
  /// Pairs compared per equivalence check.
  uint32_t sample_pairs = 64;
  /// Writable scratch directory for snapshot-based invariants.
  std::string temp_dir = "/tmp";
};

/// One named invariant.
struct Invariant {
  std::string name;
  std::function<Status(const InvariantContext&)> check;
};

/// Every registered invariant, in a stable order.
std::vector<Invariant> AllInvariants();

/// The predictor configurations the verification suite exercises: every
/// LinkPredictor kind from predictor_factory, including both bottomk
/// degree modes and a windowed configuration small enough to rotate
/// buckets. sketch sizes are CI-sized.
std::vector<PredictorConfig> VerificationKindConfigs();

/// Runs every invariant against the context, collecting failures into one
/// Status (ok iff all pass). `on_result`, when set, observes each
/// (invariant name, status) — the hook tests use to report per-invariant.
Status RunAllInvariants(
    const InvariantContext& context,
    const std::function<void(const std::string&, const Status&)>& on_result =
        nullptr);

// --- Individual invariants (composable; also reachable via AllInvariants)

/// threads=1 and threads=N builds answer every query bit-identically
/// (PR 1's guarantee), for N in {2, 3}, through both the synchronous
/// routing path and ParallelIngestEngine's worker threads. Skips
/// unshardable kinds.
Status CheckShardCountInvariance(const InvariantContext& context);

/// The ordered parallel engine's free parameters — thread count × batch
/// size × ring capacity — never change a single output bit relative to a
/// sequential build; where the kind folds losslessly, the folded sharded
/// snapshot is also byte-identical. Skips unshardable kinds.
Status CheckOrderedIngestInvariance(const InvariantContext& context);

/// Relaxed (edge-partitioned replica) builds match the sequential build
/// exactly for the kinds whose MergeFrom is value-lossless over disjoint
/// partitions (the only kinds the mode admits). The contract-level bound
/// on relaxed estimates is the differential oracle's ordering knob.
/// Skips kinds without a replica merge.
Status CheckRelaxedMergeEquivalence(const InvariantContext& context);

/// Delivering the stream via OnEdge one at a time and via OnEdgeBatch at
/// several batch sizes produces byte-identical snapshots.
Status CheckBatchSizeInvariance(const InvariantContext& context);

/// Clone() equals the source at clone time and never observes later
/// ingestion (the serving layer's snapshot-isolation contract).
Status CheckCloneIsolation(const InvariantContext& context);

/// For kinds with a disjoint-partition MergeFrom (minhash, bottomk, tcm):
/// folding three stream partitions in either association order equals the
/// single-pass build, byte for byte. Skips other kinds.
Status CheckMergeAssociativity(const InvariantContext& context);

/// Turnstile triple (deletable kinds only; others pass trivially):
/// (1) insert ∘ delete annihilation — a churn event stream derived from
/// the context's edges answers exactly like an insert-only build of its
/// surviving edge set; (2) the ordered engine replays the same events
/// bit-identically across thread/batch/ring configurations; (3) relaxed
/// replica folds match where the kind's merge is lossless.
Status CheckTurnstileAnnihilation(const InvariantContext& context);

/// Save -> Load -> Save is byte-identical and the loaded predictor keeps
/// answering identically (the persistence contract, as an invariant).
Status CheckSnapshotRoundTrip(const InvariantContext& context);

/// Kill-at-every-checkpoint resume: for several checkpoint positions,
/// snapshot the prefix build, reload it, ingest the suffix, and require
/// the final snapshot to be byte-identical to an uninterrupted build.
Status CheckResumeEquivalence(const InvariantContext& context);

}  // namespace streamlink

#endif  // STREAMLINK_VERIFY_INVARIANTS_H_

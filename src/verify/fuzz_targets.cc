#include "verify/fuzz_targets.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "core/predictor_factory.h"
#include "graph/edge_list_io.h"
#include "net/frame.h"
#include "serve/query_codec.h"
#include "util/random.h"
#include "util/serde.h"

namespace streamlink {

namespace {

/// A per-call scratch path: fuzz targets may run from multiple processes
/// against the same temp dir, so the name carries the pid and a counter.
std::string ScratchPath(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("slfuzz_" + std::string(tag) + "_" + std::to_string(getpid()) +
           "_" + std::to_string(counter.fetch_add(1))))
      .string();
}

void WriteBytes(const std::string& path, const uint8_t* data, size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

}  // namespace

int FuzzSnapshotLoader(const uint8_t* data, size_t size) {
  // Inputs larger than any sane snapshot only slow the fuzzer down.
  if (size > (1u << 20)) return 0;
  std::string path = ScratchPath("snap");
  WriteBytes(path, data, size);

  // Production path: checksum preflight + parse + footer verification.
  auto checked = LoadPredictorSnapshot(path);

  // Raw path: no whole-file checksum, the way a nested shard envelope
  // reaches the kind decoders. Every decoder must reject corruption on
  // its own (length cross-checks, size caps) — never crash or overflow.
  BinaryReader reader(path);
  auto raw = reader.ok() ? LoadPredictorFrom(reader)
                         : Result<std::unique_ptr<LinkPredictor>>(
                               reader.status());

  // Parse/serialize closure: anything accepted must re-save cleanly.
  for (auto* loaded : {&checked, &raw}) {
    if (!loaded->ok()) continue;
    std::string resaved = ScratchPath("resave");
    Status st = (**loaded)->Save(resaved);
    std::remove(resaved.c_str());
    if (!st.ok()) {
      std::fprintf(stderr, "accepted snapshot failed to re-save: %s\n",
                   st.ToString().c_str());
      abort();  // a real finding — surface it to the fuzzer/test
    }
  }
  std::remove(path.c_str());
  return 0;
}

int FuzzEdgeListParser(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);
  EdgeListReadOptions options;
  options.max_edges = 10000;

  for (bool remap : {true, false}) {
    options.remap_ids = remap;
    auto parsed = ParseEdgeList(text, options);
    if (parsed.ok()) {
      if (parsed->edges.size() > options.max_edges) {
        std::fprintf(stderr, "parser exceeded max_edges\n");
        abort();
      }
      if (remap) {
        for (const Edge& e : parsed->edges) {
          if (e.u >= parsed->num_vertices || e.v >= parsed->num_vertices) {
            std::fprintf(stderr, "remapped endpoint out of range\n");
            abort();
          }
        }
      }
    }
    auto weighted = ParseWeightedEdgeList(text, options);
    if (weighted.ok() && weighted->edges.size() > options.max_edges) {
      std::fprintf(stderr, "weighted parser exceeded max_edges\n");
      abort();
    }
  }
  return 0;
}

int FuzzNetFrame(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  net::FrameDecoderOptions options;
  options.max_payload_bytes = 1u << 16;

  // Decode the buffer whole and split in half; a streaming decoder must
  // produce the identical frame sequence regardless of chunking.
  std::vector<net::Frame> whole, split;
  net::FrameDecoder a(options);
  const Status sa = a.Feed(data, size, &whole);
  net::FrameDecoder b(options);
  const size_t half = size / 2;
  Status sb = b.Feed(data, half, &split);
  if (sb.ok()) sb = b.Feed(data + half, size - half, &split);
  if (sa.ok() != sb.ok() || whole.size() != split.size()) {
    std::fprintf(stderr, "frame decode depends on chunking\n");
    abort();
  }
  for (size_t i = 0; i < whole.size(); ++i) {
    if (whole[i].type != split[i].type ||
        whole[i].request_id != split[i].request_id ||
        whole[i].payload != split[i].payload) {
      std::fprintf(stderr, "frame %zu differs between chunkings\n", i);
      abort();
    }
  }

  for (const net::Frame& frame : whole) {
    // Accepted frames must re-encode/re-decode exactly (closure).
    const std::string wire = net::EncodeFrame(frame);
    net::FrameDecoder c(options);
    std::vector<net::Frame> again;
    if (!c.Feed(wire.data(), wire.size(), &again).ok() ||
        again.size() != 1 || again[0].payload != frame.payload) {
      std::fprintf(stderr, "re-encoded frame failed to round-trip\n");
      abort();
    }
    // Frame payloads reach the codec exactly this untrusted; none of the
    // decoders may crash on them.
    (void)DecodeQueryRequest(frame.payload);
    (void)DecodeQueryResult(frame.payload);
    (void)DecodeNack(frame.payload);
  }

  // The raw input also hits the codec surface directly (a server-side
  // worker sees arbitrary bytes only through these).
  const std::string_view view(reinterpret_cast<const char*>(data), size);
  (void)DecodeQueryRequest(view);
  (void)DecodeQueryResult(view);
  (void)DecodeNack(view);
  return 0;
}

std::vector<FuzzTarget> AllFuzzTargets() {
  return {
      {"snapshot_loader", FuzzSnapshotLoader},
      {"edge_parser", FuzzEdgeListParser},
      {"net_frame", FuzzNetFrame},
  };
}

Result<uint64_t> ReplayCorpusDir(const std::string& dir,
                                 const FuzzTarget& target) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("no corpus directory at " + dir);
  }
  // Sort for a deterministic replay order regardless of filesystem.
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  uint64_t replayed = 0;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    target.run(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  return replayed;
}

void MutateAndReplay(const std::string& seed_input, uint32_t iterations,
                     uint64_t seed, const FuzzTarget& target) {
  Rng rng(seed);
  for (uint32_t i = 0; i < iterations; ++i) {
    std::string input = seed_input;
    // 1–4 stacked mutations per iteration, like a fuzzer's mutation chain.
    uint32_t stack = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    for (uint32_t m = 0; m < stack && !input.empty(); ++m) {
      switch (rng.NextBounded(6)) {
        case 0: {  // byte flip
          size_t at = rng.NextBounded(input.size());
          input[at] = static_cast<char>(input[at] ^ 0xff);
          break;
        }
        case 1: {  // single bit flip
          size_t at = rng.NextBounded(input.size());
          input[at] = static_cast<char>(input[at] ^ (1u << rng.NextBounded(8)));
          break;
        }
        case 2:  // truncate to a prefix
          input.resize(rng.NextBounded(input.size() + 1));
          break;
        case 3: {  // delete an interior run
          size_t at = rng.NextBounded(input.size());
          size_t len = 1 + rng.NextBounded(16);
          input.erase(at, len);
          break;
        }
        case 4: {  // duplicate an interior run (grows the input)
          size_t at = rng.NextBounded(input.size());
          size_t len =
              std::min<size_t>(1 + rng.NextBounded(16), input.size() - at);
          input.insert(at, input.substr(at, len));
          break;
        }
        case 5: {  // splat random bytes over a run
          size_t at = rng.NextBounded(input.size());
          size_t len =
              std::min<size_t>(1 + rng.NextBounded(8), input.size() - at);
          for (size_t b = 0; b < len; ++b) {
            input[at + b] = static_cast<char>(rng.NextBounded(256));
          }
          break;
        }
      }
    }
    target.run(reinterpret_cast<const uint8_t*>(input.data()), input.size());
  }
}

}  // namespace streamlink

#ifndef STREAMLINK_VERIFY_DIFFERENTIAL_H_
#define STREAMLINK_VERIFY_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/predictor_factory.h"
#include "gen/stream_order.h"
#include "stream/parallel_ingest.h"
#include "util/status.h"

namespace streamlink {

/// Differential-testing oracle: streams one seeded generated graph into
/// ExactPredictor and every sketch predictor kind simultaneously, then
/// checks each kind's per-query estimates against the Chernoff-style
/// tolerance from core/error_bounds — a *statistical* assertion (bounded
/// count of per-query tolerance violations), not pointwise equality,
/// because the sketches are randomized estimators whose guarantee is
/// itself probabilistic. This is the automated analogue of how Li et al.
/// (b-bit minwise) and Shrivastava/Li (OPH) validate estimators:
/// empirical error distributions against analytic bounds, at scale.
///
/// Everything is deterministic given the seeds in the options, so a
/// failure reproduces bit-for-bit.

/// Configuration of one oracle run. Defaults are sized for CI: a few
/// thousand edges, a few hundred queries per kind, well under a second
/// per kind.
struct DifferentialOracleOptions {
  /// Workload generator name (gen/workloads.h) and scale.
  std::string workload = "ba";
  double scale = 0.05;
  /// Master seed: drives generation, stream order, and query sampling.
  uint64_t seed = 1;
  /// Arrival order of the generated stream.
  StreamOrder order = StreamOrder::kGenerated;
  /// Sketch size for every kind under test.
  uint32_t sketch_size = 128;
  /// Query pairs per kind; sampled with SampleMixedPairs.
  uint32_t query_pairs = 256;
  /// Fraction of query pairs guaranteed to share a neighbor.
  double overlap_fraction = 0.7;
  /// Per-query two-sided confidence: the tolerance is
  /// epsilon = MinHashJaccardErrorAt(jaccard_slots, per_query_delta),
  /// i.e. each query violates it with probability <= per_query_delta.
  double per_query_delta = 0.05;
  /// Overall statistical budget: the allowed violation *count* is the
  /// Bernstein/Chernoff upper tail of Binomial(query_pairs,
  /// per_query_delta) at this failure probability
  /// (AllowedToleranceViolations).
  double overall_delta = 1e-9;
  /// Multiplier on the MinHash Hoeffding epsilon for estimator families
  /// whose concentration constant is close to, but not exactly, the
  /// k-permutation one (densified OPH; bottom-k sampling without
  /// replacement). 1.0 applies the bound as-is.
  double epsilon_slack = 1.0;
  /// Kinds to test; empty = every kind from PredictorKinds(). "exact" is
  /// always checked pointwise (epsilon 0) as an oracle self-test.
  std::vector<std::string> kinds;
  /// Ingestion parallelism for kinds that support it (sharded builds must
  /// agree with sequential ones, so the tolerance is unchanged).
  uint32_t threads = 1;
  /// Ordering mode of the parallel build when threads > 1. kOrdered
  /// shards by vertex and stays bit-identical, so it inherits the
  /// sequential tolerance for free. kRelaxed edge-partitions full
  /// replicas and merges at end-of-stream — THIS oracle run is the bound
  /// that mode's contract promises (estimates within the Hoeffding
  /// tolerances above). Kinds the mode cannot parallelize build
  /// sequentially, keeping the kind sweep complete either way.
  IngestOrdering ordering = IngestOrdering::kOrdered;
};

/// Per-kind outcome of an oracle run.
struct DifferentialKindReport {
  std::string kind;
  /// Slots backing the Jaccard estimate (kind-adjusted: vertex_biased
  /// spends half its budget on the weighted sampler).
  uint32_t jaccard_slots = 0;
  /// The per-query additive Jaccard tolerance applied.
  double epsilon = 0.0;
  uint64_t queries = 0;
  /// Queries whose |est − exact| Jaccard error exceeded epsilon.
  uint64_t jaccard_violations = 0;
  /// Queries whose common-neighbor error exceeded the propagated bound
  /// (CommonNeighborErrorBound, evaluated conservatively at J − ε).
  uint64_t common_neighbor_violations = 0;
  /// Statistical ceiling on either violation count.
  uint64_t allowed_violations = 0;
  /// Estimates with NaN/Inf fields, Jaccard outside [0,1], or negative
  /// counts — always 0 on a pass (structural, not statistical).
  uint64_t malformed_estimates = 0;
  double max_jaccard_error = 0.0;
  double mean_jaccard_error = 0.0;
  bool passed = false;
  /// Human-readable failure summary; empty on a pass.
  std::string detail;
};

/// Outcome of a whole oracle run.
struct DifferentialReport {
  std::vector<DifferentialKindReport> kinds;
  bool all_passed = false;
  /// Stream/graph shape, for logs.
  uint64_t stream_edges = 0;
  uint32_t num_vertices = 0;
};

/// Runs the oracle. A non-ok Status means the run itself could not be set
/// up (bad kind, bad config); estimator failures are reported through
/// DifferentialKindReport::passed so the caller can show every kind's
/// numbers, not just the first failure.
Result<DifferentialReport> RunDifferentialOracle(
    const DifferentialOracleOptions& options);

/// Configuration of a *turnstile* oracle run: a delete-heavy churn
/// workload (gen/churn.h) streamed as insert/delete events into every
/// deletable kind, checked against an ExactPredictor that replays the same
/// events. "exact" is compared pointwise (a self-test of the delete
/// plumbing); "tcm" gets a per-query tolerance derived from its Markov
/// tail — each count strip overestimates the true intersection by at most
/// slack * du * dv / width with probability 1 - per_query_delta, where
/// slack = per_query_delta^(-1/depth) (min over depth independent rows).
struct TurnstileOracleOptions {
  std::string workload = "ba";
  double scale = 0.05;
  uint64_t seed = 1;
  /// Target fraction of events that are deletes (see ChurnSpec).
  double delete_fraction = 0.35;
  uint32_t sketch_size = 128;
  uint32_t tcm_depth = 3;
  uint32_t query_pairs = 256;
  double overlap_fraction = 0.7;
  double per_query_delta = 0.05;
  double overall_delta = 1e-9;
  /// Kinds to test; empty = every deletable kind (KindSupportsDeletions).
  std::vector<std::string> kinds;
  uint32_t threads = 1;
  IngestOrdering ordering = IngestOrdering::kOrdered;
};

/// Runs the turnstile oracle. Same reporting contract as
/// RunDifferentialOracle; `stream_edges` in the report counts *events*.
Result<DifferentialReport> RunTurnstileOracle(
    const TurnstileOracleOptions& options);

/// Renders a report as one line per kind (for test logs and the bench
/// harness).
std::string FormatReport(const DifferentialReport& report);

}  // namespace streamlink

#endif  // STREAMLINK_VERIFY_DIFFERENTIAL_H_

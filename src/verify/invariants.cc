#include "verify/invariants.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>

#include "core/bottomk_predictor.h"
#include "core/minhash_predictor.h"
#include "core/tcm_predictor.h"
#include "eval/experiment.h"
#include "gen/churn.h"
#include "stream/edge_batch.h"
#include "stream/edge_stream.h"
#include "stream/op_stream.h"
#include "stream/parallel_ingest.h"
#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {

namespace {

/// A process-unique scratch file under the context's temp dir; invariants
/// create and remove these as they go.
class ScratchFile {
 public:
  ScratchFile(const InvariantContext& context, const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    // The pid disambiguates parallel ctest workers sharing one temp dir.
    path_ = context.temp_dir + "/verify_" + std::to_string(::getpid()) + "_" +
            tag + "_" + std::to_string(counter.fetch_add(1)) + ".snap";
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

Result<std::unique_ptr<LinkPredictor>> BuildSequential(
    const InvariantContext& context) {
  PredictorConfig config = context.config;
  config.threads = 1;
  auto predictor = MakePredictor(config);
  if (!predictor.ok()) return predictor.status();
  FeedStream(**predictor, context.edges);
  return predictor;
}

/// Compares two predictors' answers on seeded random pairs. Equality is
/// exact (==, not approximate): every invariant here promises
/// bit-identical execution, so any ULP of divergence is a failure.
/// `compare_counters` additionally requires the bookkeeping (processed
/// tallies, vertex-set size) to agree — right for two replays of the SAME
/// stream, wrong when comparing a churn replay against its insert-only
/// equivalent (same answers, legitimately different histories).
Status CompareEstimates(const std::string& label, const LinkPredictor& a,
                        const LinkPredictor& b,
                        const InvariantContext& context,
                        bool compare_counters = true) {
  if (compare_counters && a.edges_processed() != b.edges_processed()) {
    return Status::Internal(label + ": edges_processed diverges: " +
                            std::to_string(a.edges_processed()) + " vs " +
                            std::to_string(b.edges_processed()));
  }
  if (compare_counters && a.num_vertices() != b.num_vertices()) {
    return Status::Internal(label + ": num_vertices diverges: " +
                            std::to_string(a.num_vertices()) + " vs " +
                            std::to_string(b.num_vertices()));
  }
  VertexId n = context.num_vertices > 0 ? context.num_vertices : 1;
  Rng rng(Mix64(context.seed ^ 0xc0837a7e));
  for (uint32_t i = 0; i < context.sample_pairs; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    OverlapEstimate ea = a.EstimateOverlap(u, v);
    OverlapEstimate eb = b.EstimateOverlap(u, v);
    const struct {
      const char* field;
      double lhs, rhs;
    } fields[] = {
        {"degree_u", ea.degree_u, eb.degree_u},
        {"degree_v", ea.degree_v, eb.degree_v},
        {"intersection", ea.intersection, eb.intersection},
        {"union_size", ea.union_size, eb.union_size},
        {"jaccard", ea.jaccard, eb.jaccard},
        {"adamic_adar", ea.adamic_adar, eb.adamic_adar},
        {"resource_allocation", ea.resource_allocation,
         eb.resource_allocation},
    };
    for (const auto& f : fields) {
      // Exact equality, except that scores summed over hash-set
      // neighborhoods (exact predictor's AA/RA) may differ in the last
      // bits when a rebuild changes set iteration (= summation) order.
      double tolerance = 4e-15 * std::max(std::abs(f.lhs), std::abs(f.rhs));
      if (std::abs(f.lhs - f.rhs) > tolerance) {
        std::ostringstream out;
        out.precision(17);
        out << label << ": " << context.config.kind << " pair (" << u << ","
            << v << ") field " << f.field << " diverges: " << f.lhs << " vs "
            << f.rhs;
        return Status::Internal(out.str());
      }
    }
  }
  return Status::Ok();
}

/// Save + slurp: the byte-level fingerprint of a predictor's full state.
Result<std::string> SnapshotBytes(const LinkPredictor& predictor,
                                  const InvariantContext& context,
                                  const std::string& tag) {
  ScratchFile file(context, tag);
  if (Status st = predictor.Save(file.path()); !st.ok()) return st;
  std::string bytes = ReadFileBytes(file.path());
  if (bytes.empty()) return Status::IoError("empty snapshot at " + file.path());
  return bytes;
}

}  // namespace

Status CheckShardCountInvariance(const InvariantContext& context) {
  if (!KindSupportsSharding(context.config.kind)) return Status::Ok();
  auto sequential = BuildSequential(context);
  if (!sequential.ok()) return sequential.status();

  for (uint32_t threads : {2u, 3u}) {
    PredictorConfig config = context.config;
    config.threads = threads;

    // Path 1: synchronous half-edge routing through ShardedPredictor.
    auto routed = MakePredictor(config);
    if (!routed.ok()) return routed.status();
    FeedStream(**routed, context.edges);
    if (Status st = CompareEstimates(
            "shard-invariance(routed, threads=" + std::to_string(threads) +
                ")",
            **sequential, **routed, context);
        !st.ok()) {
      return st;
    }

    // Path 2: the real worker-threaded engine.
    ParallelIngestEngine engine(config);
    VectorEdgeStream stream(context.edges);
    auto parallel = engine.Build(stream);
    if (!parallel.ok()) return parallel.status();
    if (Status st = CompareEstimates(
            "shard-invariance(engine, threads=" + std::to_string(threads) +
                ")",
            **sequential, **parallel, context);
        !st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

Status CheckOrderedIngestInvariance(const InvariantContext& context) {
  if (!KindSupportsSharding(context.config.kind)) return Status::Ok();
  auto sequential = BuildSequential(context);
  if (!sequential.ok()) return sequential.status();

  // Thread count × batch size × ring capacity are all free parameters of
  // the ordered engine; none may change a single output bit. batch=1 with
  // a capacity-1 ring maximizes hand-off and backpressure churn; the large
  // batch exercises the one-big-batch path.
  for (uint32_t threads : {2u, 3u}) {
    for (uint32_t batch_edges : {1u, 7u, 4096u}) {
      VectorEdgeStream stream(context.edges);
      auto parallel = IngestEngineBuilder(context.config)
                          .Threads(threads)
                          .BatchEdges(batch_edges)
                          .RingBatches(batch_edges == 1 ? 1 : 64)
                          .Ingest(stream);
      if (!parallel.ok()) return parallel.status();
      if (Status st = CompareEstimates(
              "ordered-ingest-invariance(threads=" + std::to_string(threads) +
                  ", batch=" + std::to_string(batch_edges) + ")",
              **sequential, **parallel, context);
          !st.ok()) {
        return st;
      }
    }
  }

  // Where the kind folds losslessly, the sharded build's folded clone
  // must also snapshot byte-identically to the sequential build.
  if (KindSupportsReplicatedMerge(context.config.kind)) {
    VectorEdgeStream stream(context.edges);
    auto parallel =
        IngestEngineBuilder(context.config).Threads(3).Ingest(stream);
    if (!parallel.ok()) return parallel.status();
    std::unique_ptr<LinkPredictor> folded = (*parallel)->Clone();
    if (folded == nullptr) {
      return Status::Internal("ordered-ingest-invariance: " +
                              context.config.kind + " sharded fold failed");
    }
    auto want = SnapshotBytes(**sequential, context, "ordered_seq");
    auto got = SnapshotBytes(*folded, context, "ordered_fold");
    for (auto* bytes : {&want, &got}) {
      if (!bytes->ok()) return bytes->status();
    }
    if (*got != *want) {
      return Status::Internal(
          "ordered-ingest-invariance: " + context.config.kind +
          " folded 3-thread snapshot differs from the sequential one");
    }
  }
  return Status::Ok();
}

Status CheckRelaxedMergeEquivalence(const InvariantContext& context) {
  // The relaxed contract is oracle-bounded estimates (see
  // verify/differential.h ordering knob); for the kinds that allow the
  // mode at all, the disjoint-partition fold is additionally
  // value-lossless, which this invariant pins down exactly.
  if (!KindSupportsReplicatedMerge(context.config.kind)) return Status::Ok();
  auto sequential = BuildSequential(context);
  if (!sequential.ok()) return sequential.status();
  auto want = SnapshotBytes(**sequential, context, "relaxed_seq");
  if (!want.ok()) return want.status();

  for (uint32_t threads : {2u, 4u}) {
    VectorEdgeStream stream(context.edges);
    // A batch size below edges/threads guarantees every replica receives
    // a non-empty partition, so the fold path (sketch union + edge-tally
    // accumulation) is actually exercised.
    auto relaxed = IngestEngineBuilder(context.config)
                       .Threads(threads)
                       .Ordering(IngestOrdering::kRelaxed)
                       .BatchEdges(static_cast<uint32_t>(std::max(
                           size_t{1}, context.edges.size() / (threads * 4))))
                       .Ingest(stream);
    if (!relaxed.ok()) return relaxed.status();
    if (Status st = CompareEstimates(
            "relaxed-merge-equivalence(threads=" + std::to_string(threads) +
                ")",
            **sequential, **relaxed, context);
        !st.ok()) {
      return st;
    }
    // Value-losslessness at full strength: the folded replicas serialize
    // byte-identically to the sequential build (sketches AND metadata
    // like the processed-edge tally).
    auto got = SnapshotBytes(**relaxed, context, "relaxed_fold");
    if (!got.ok()) return got.status();
    if (*got != *want) {
      return Status::Internal(
          "relaxed-merge-equivalence: " + context.config.kind + " threads=" +
          std::to_string(threads) +
          " folded snapshot differs from sequential build");
    }
  }
  return Status::Ok();
}

Status CheckBatchSizeInvariance(const InvariantContext& context) {
  auto single = BuildSequential(context);
  if (!single.ok()) return single.status();
  auto reference = SnapshotBytes(**single, context, "batch_ref");
  if (!reference.ok()) return reference.status();

  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{1024}}) {
    PredictorConfig config = context.config;
    config.threads = 1;
    auto batched = MakePredictor(config);
    if (!batched.ok()) return batched.status();
    for (size_t i = 0; i < context.edges.size(); i += batch) {
      size_t count = std::min(batch, context.edges.size() - i);
      (*batched)->OnEdgeBatch(EdgeBatch(context.edges.data() + i, count));
    }
    auto bytes = SnapshotBytes(**batched, context, "batch");
    if (!bytes.ok()) return bytes.status();
    if (*bytes != *reference) {
      return Status::Internal(
          "batch-invariance: " + context.config.kind + " snapshot at batch=" +
          std::to_string(batch) + " differs from one-at-a-time delivery");
    }
  }
  return Status::Ok();
}

Status CheckCloneIsolation(const InvariantContext& context) {
  // Clone mid-stream so "later ingestion" has something left to ingest.
  size_t split = context.edges.size() * 2 / 3;
  PredictorConfig config = context.config;
  config.threads = 1;
  auto source = MakePredictor(config);
  if (!source.ok()) return source.status();
  FeedStream(**source,
             EdgeList(context.edges.begin(), context.edges.begin() + split));

  std::unique_ptr<LinkPredictor> clone = (*source)->Clone();
  if (clone == nullptr) {
    return Status::Internal("clone-isolation: " + context.config.kind +
                            " Clone() returned nullptr");
  }
  if (Status st =
          CompareEstimates("clone-isolation(at clone)", **source, *clone,
                           context);
      !st.ok()) {
    return st;
  }

  // The clone must be frozen: record its answers, pour the suffix into the
  // source only, and require the recorded answers to stand.
  VertexId n = context.num_vertices > 0 ? context.num_vertices : 1;
  Rng rng(Mix64(context.seed ^ 0x15071a7e));
  std::vector<QueryPair> probes;
  std::vector<OverlapEstimate> before;
  for (uint32_t i = 0; i < context.sample_pairs; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    probes.push_back({u, v});
    before.push_back(clone->EstimateOverlap(u, v));
  }
  FeedStream(**source,
             EdgeList(context.edges.begin() + split, context.edges.end()));
  for (size_t i = 0; i < probes.size(); ++i) {
    OverlapEstimate after = clone->EstimateOverlap(probes[i].u, probes[i].v);
    if (after.jaccard != before[i].jaccard ||
        after.intersection != before[i].intersection ||
        after.degree_u != before[i].degree_u ||
        after.adamic_adar != before[i].adamic_adar) {
      std::ostringstream out;
      out << "clone-isolation: " << context.config.kind << " clone observed "
          << "post-clone ingestion at pair (" << probes[i].u << ","
          << probes[i].v << ")";
      return Status::Internal(out.str());
    }
  }
  return Status::Ok();
}

namespace {

/// Typed leg of CheckMergeAssociativity: partitions the stream three ways,
/// folds left- and right-associated, and requires both to match the
/// single-pass build byte for byte.
template <typename PredictorT>
Status MergeAssociativityImpl(const InvariantContext& context) {
  PredictorConfig config = context.config;
  config.threads = 1;

  auto make_part = [&](size_t begin, size_t end)
      -> Result<std::unique_ptr<LinkPredictor>> {
    auto part = MakePredictor(config);
    if (!part.ok()) return part.status();
    FeedStream(**part, EdgeList(context.edges.begin() + begin,
                                context.edges.begin() + end));
    return part;
  };

  size_t third = context.edges.size() / 3;
  auto a = make_part(0, third);
  auto b = make_part(third, 2 * third);
  auto c = make_part(2 * third, context.edges.size());
  for (auto* part : {&a, &b, &c}) {
    if (!part->ok()) return part->status();
  }
  auto single = BuildSequential(context);
  if (!single.ok()) return single.status();

  auto as_typed = [](std::unique_ptr<LinkPredictor>& p) {
    return dynamic_cast<PredictorT*>(p.get());
  };

  // (A ⊔ B) ⊔ C
  std::unique_ptr<LinkPredictor> left = (*a)->Clone();
  as_typed(left)->MergeFrom(*as_typed(*b));
  as_typed(left)->MergeFrom(*as_typed(*c));

  // A ⊔ (B ⊔ C)
  std::unique_ptr<LinkPredictor> bc = (*b)->Clone();
  as_typed(bc)->MergeFrom(*as_typed(*c));
  std::unique_ptr<LinkPredictor> right = (*a)->Clone();
  as_typed(right)->MergeFrom(*as_typed(bc));

  auto want = SnapshotBytes(**single, context, "merge_single");
  auto left_bytes = SnapshotBytes(*left, context, "merge_left");
  auto right_bytes = SnapshotBytes(*right, context, "merge_right");
  for (auto* bytes : {&want, &left_bytes, &right_bytes}) {
    if (!bytes->ok()) return bytes->status();
  }
  if (*left_bytes != *want) {
    return Status::Internal("merge-associativity: " + context.config.kind +
                            " (A+B)+C differs from the single-pass build");
  }
  if (*right_bytes != *want) {
    return Status::Internal("merge-associativity: " + context.config.kind +
                            " A+(B+C) differs from the single-pass build");
  }
  return Status::Ok();
}

}  // namespace

Status CheckMergeAssociativity(const InvariantContext& context) {
  if (context.edges.size() < 9) {
    return Status::InvalidArgument(
        "merge-associativity needs at least 9 edges");
  }
  if (context.config.kind == "minhash") {
    return MergeAssociativityImpl<MinHashPredictor>(context);
  }
  if (context.config.kind == "bottomk") {
    return MergeAssociativityImpl<BottomKPredictor>(context);
  }
  if (context.config.kind == "tcm") {
    return MergeAssociativityImpl<TcmPredictor>(context);
  }
  return Status::Ok();  // no disjoint-partition merge for this kind
}

Status CheckTurnstileAnnihilation(const InvariantContext& context) {
  if (!KindSupportsDeletions(context.config.kind)) return Status::Ok();
  // Churn derived from the context's own stream: inserts stay in stream
  // order, every delete targets a then-live edge, and net_edges is exactly
  // the surviving set.
  TurnstileWorkload churn = MakeChurnFromEdges(
      context.edges, context.num_vertices, /*delete_fraction=*/0.35,
      Mix64(context.seed ^ 0x7e4a57), context.config.kind + "_churn");
  if (churn.deletes == 0) {
    return Status::InvalidArgument(
        "turnstile-annihilation: churn produced no deletes (stream too "
        "small?)");
  }

  PredictorConfig config = context.config;
  config.threads = 1;

  // Reference: sequential replay of the event stream through the engine.
  VectorOpStream seq_stream(churn.events);
  ParallelIngestEngine seq_engine(config);
  auto sequential = seq_engine.Build(seq_stream);
  if (!sequential.ok()) return sequential.status();

  // insert ∘ delete annihilation: every deleted edge leaves zero trace, so
  // the churn replay answers exactly like an insert-only build of the
  // surviving edges. Histories differ (more inserts happened), so only the
  // estimates are compared.
  auto net = MakePredictor(config);
  if (!net.ok()) return net.status();
  FeedStream(**net, churn.net_edges);
  if (Status st = CompareEstimates("turnstile-annihilation(net)",
                                   **sequential, **net, context,
                                   /*compare_counters=*/false);
      !st.ok()) {
    return st;
  }

  // Engine cross product: thread count × batch size × ring capacity replay
  // the same events bit-identically to the sequential replay, counters
  // included.
  for (uint32_t threads : {2u, 3u}) {
    for (uint32_t batch_edges : {1u, 7u, 256u}) {
      VectorOpStream stream(churn.events);
      ParallelIngestEngine engine =
          IngestEngineBuilder(context.config)
              .Threads(threads)
              .BatchEdges(batch_edges)
              .RingBatches(batch_edges == 1 ? 1 : 64)
              .BuildEngine();
      auto parallel = engine.Build(stream);
      if (!parallel.ok()) return parallel.status();
      if (Status st = CompareEstimates(
              "turnstile-annihilation(engine, threads=" +
                  std::to_string(threads) + ", batch=" +
                  std::to_string(batch_edges) + ")",
              **sequential, **parallel, context);
          !st.ok()) {
        return st;
      }
    }
  }

  // Relaxed replicas: event partitions fold losslessly for signed-sum
  // kinds; a replica that sees a delete before another's insert dips
  // negative and heals at the fold.
  if (KindSupportsReplicatedMerge(context.config.kind)) {
    VectorOpStream stream(churn.events);
    ParallelIngestEngine engine = IngestEngineBuilder(context.config)
                                      .Threads(2)
                                      .Ordering(IngestOrdering::kRelaxed)
                                      .BatchEdges(static_cast<uint32_t>(
                                          std::max(size_t{1},
                                                   churn.events.size() / 8)))
                                      .BuildEngine();
    auto relaxed = engine.Build(stream);
    if (!relaxed.ok()) return relaxed.status();
    if (Status st = CompareEstimates("turnstile-annihilation(relaxed)",
                                     **sequential, **relaxed, context);
        !st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

Status CheckSnapshotRoundTrip(const InvariantContext& context) {
  auto original = BuildSequential(context);
  if (!original.ok()) return original.status();

  ScratchFile first(context, "rt_first");
  if (Status st = (*original)->Save(first.path()); !st.ok()) return st;
  auto loaded = LoadPredictorSnapshot(first.path());
  if (!loaded.ok()) {
    return Status::Internal("round-trip: " + context.config.kind +
                            " reload failed: " + loaded.status().ToString());
  }
  if (Status st =
          CompareEstimates("round-trip", **original, **loaded, context);
      !st.ok()) {
    return st;
  }
  auto second = SnapshotBytes(**loaded, context, "rt_second");
  if (!second.ok()) return second.status();
  if (*second != ReadFileBytes(first.path())) {
    return Status::Internal("round-trip: " + context.config.kind +
                            " second-generation snapshot differs");
  }
  return Status::Ok();
}

Status CheckResumeEquivalence(const InvariantContext& context) {
  auto uninterrupted = BuildSequential(context);
  if (!uninterrupted.ok()) return uninterrupted.status();
  auto want = SnapshotBytes(**uninterrupted, context, "resume_want");
  if (!want.ok()) return want.status();

  // "Kill" at several interior checkpoints: everything after the snapshot
  // is lost, the predictor is reloaded cold, and the suffix re-ingested.
  const size_t total = context.edges.size();
  for (size_t numerator = 1; numerator <= 4; ++numerator) {
    size_t kill_at = total * numerator / 5;
    PredictorConfig config = context.config;
    config.threads = 1;
    auto prefix = MakePredictor(config);
    if (!prefix.ok()) return prefix.status();
    FeedStream(**prefix, EdgeList(context.edges.begin(),
                                  context.edges.begin() + kill_at));

    ScratchFile checkpoint(context, "resume_ckpt");
    if (Status st = (*prefix)->Save(checkpoint.path()); !st.ok()) return st;
    auto resumed = LoadPredictorSnapshot(checkpoint.path());
    if (!resumed.ok()) return resumed.status();

    FeedStream(**resumed, EdgeList(context.edges.begin() + kill_at,
                                   context.edges.end()));
    auto got = SnapshotBytes(**resumed, context, "resume_got");
    if (!got.ok()) return got.status();
    if (*got != *want) {
      return Status::Internal(
          "resume-equivalence: " + context.config.kind + " killed at edge " +
          std::to_string(kill_at) + "/" + std::to_string(total) +
          " resumes to a different final snapshot");
    }
  }
  return Status::Ok();
}

std::vector<Invariant> AllInvariants() {
  return {
      {"shard-count-invariance", CheckShardCountInvariance},
      {"ordered-ingest-invariance", CheckOrderedIngestInvariance},
      {"relaxed-merge-equivalence", CheckRelaxedMergeEquivalence},
      {"batch-size-invariance", CheckBatchSizeInvariance},
      {"clone-isolation", CheckCloneIsolation},
      {"merge-associativity", CheckMergeAssociativity},
      {"turnstile-annihilation", CheckTurnstileAnnihilation},
      {"snapshot-round-trip", CheckSnapshotRoundTrip},
      {"resume-equivalence", CheckResumeEquivalence},
  };
}

std::vector<PredictorConfig> VerificationKindConfigs() {
  std::vector<PredictorConfig> configs;
  auto add = [&configs](const std::string& kind, auto... tweak) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = 16;
    config.seed = 7;
    (tweak(config), ...);
    configs.push_back(config);
  };
  add("minhash");
  add("bottomk");
  add("bottomk", [](PredictorConfig& c) { c.sketch_degrees = true; });
  add("oph");
  add("vertex_biased");
  add("windowed_minhash", [](PredictorConfig& c) {
    c.window_edges = 200;
    c.window_buckets = 4;
  });
  add("tcm");
  add("exact");
  return configs;
}

Status RunAllInvariants(
    const InvariantContext& context,
    const std::function<void(const std::string&, const Status&)>& on_result) {
  std::string failures;
  for (const Invariant& invariant : AllInvariants()) {
    Status status = invariant.check(context);
    if (on_result) on_result(invariant.name, status);
    if (!status.ok()) {
      if (!failures.empty()) failures += "; ";
      failures += invariant.name + ": " + status.ToString();
    }
  }
  if (failures.empty()) return Status::Ok();
  return Status::Internal(failures);
}

}  // namespace streamlink

#include "verify/differential.h"

#include <cmath>
#include <sstream>

#include "core/error_bounds.h"
#include "core/exact_predictor.h"
#include "eval/experiment.h"
#include "gen/churn.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/hashing.h"

namespace streamlink {

namespace {

/// Slots backing the Jaccard estimate of one kind at a given sketch size.
/// vertex_biased splits its budget: only the MinHash half estimates
/// Jaccard (the weighted half serves Adamic-Adar variance reduction).
uint32_t JaccardSlots(const std::string& kind, uint32_t sketch_size) {
  if (kind == "vertex_biased") return sketch_size / 2;
  return sketch_size;
}

bool IsFiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

/// Structural sanity of one estimate — holds for every estimator on every
/// input, independent of randomness.
bool EstimateIsWellFormed(const OverlapEstimate& e) {
  return IsFiniteNonNegative(e.degree_u) && IsFiniteNonNegative(e.degree_v) &&
         IsFiniteNonNegative(e.intersection) &&
         IsFiniteNonNegative(e.union_size) &&
         IsFiniteNonNegative(e.adamic_adar) &&
         IsFiniteNonNegative(e.resource_allocation) &&
         std::isfinite(e.jaccard) && e.jaccard >= 0.0 && e.jaccard <= 1.0;
}

/// How one kind's estimates are judged against exact truth.
struct KindTolerance {
  /// exact: zero tolerance everywhere (oracle self-test).
  bool pointwise = false;
  /// tcm: the tolerance depends on the query's true degrees — a count
  /// strip's intersection excess is bounded by Markov, not Hoeffding.
  bool degree_scaled = false;
  /// Fixed per-query Jaccard tolerance (MinHash-family kinds).
  double epsilon = 0.0;
  /// tcm: per-row excess multiplier per_query_delta^(-1/depth) and the
  /// strip width the excess divides by.
  double tcm_slack = 0.0;
  double tcm_width = 1.0;
};

/// The shared query loop of both oracles: scores `predictor` against
/// `exact` on `pairs` under `tol` and fills everything in the report
/// except `kind`/`jaccard_slots`/`epsilon` bookkeeping, which the caller
/// sets via the returned struct's fields it already primed.
void ComparePairs(const LinkPredictor& predictor, const ExactPredictor& exact,
                  const std::vector<QueryPair>& pairs,
                  const KindTolerance& tol, DifferentialKindReport* kr) {
  double error_sum = 0.0;
  for (const QueryPair& p : pairs) {
    OverlapEstimate truth = exact.EstimateOverlap(p.u, p.v);
    OverlapEstimate est = predictor.EstimateOverlap(p.u, p.v);
    if (!EstimateIsWellFormed(est)) {
      ++kr->malformed_estimates;
      continue;
    }
    double eps_q;
    double cn_bound;
    if (tol.degree_scaled) {
      // Per-row Markov tail: E[excess] <= du*dv/width per strip row, so
      // P(min over depth rows >= slack*du*dv/width) <= slack^(-depth) =
      // per_query_delta at slack = delta^(-1/depth). +1 absorbs integer
      // truncation at tiny degrees. The estimator is one-sided (clamped
      // min-of-sums never undershoots the true count), so the Jaccard
      // tolerance is the image of the count tolerance through
      // J = I / (du + dv - I), evaluated at the capped I.
      cn_bound =
          tol.tcm_slack * truth.degree_u * truth.degree_v / tol.tcm_width +
          1.0;
      const double imax =
          std::min(truth.intersection + cn_bound,
                   std::min(truth.degree_u, truth.degree_v));
      const double denom = truth.degree_u + truth.degree_v - imax;
      const double jmax = denom > 0.0 ? imax / denom : 0.0;
      eps_q = std::max(1e-9, jmax - truth.jaccard);
    } else {
      eps_q = tol.epsilon;
      // Propagated common-neighbor bound, evaluated at the conservative
      // end of the Jaccard interval (the derivative of x/(1+x) peaks at
      // the interval's low end).
      cn_bound = CommonNeighborErrorBound(
          tol.epsilon, std::max(0.0, truth.jaccard - tol.epsilon),
          truth.degree_u + truth.degree_v);
    }
    double jaccard_error = std::abs(est.jaccard - truth.jaccard);
    error_sum += jaccard_error;
    kr->max_jaccard_error = std::max(kr->max_jaccard_error, jaccard_error);
    if (jaccard_error > eps_q) ++kr->jaccard_violations;
    if (std::abs(est.intersection - truth.intersection) > cn_bound) {
      ++kr->common_neighbor_violations;
    }
  }
  kr->mean_jaccard_error =
      pairs.empty() ? 0.0 : error_sum / static_cast<double>(pairs.size());
  kr->passed = kr->malformed_estimates == 0 &&
               kr->jaccard_violations <= kr->allowed_violations &&
               kr->common_neighbor_violations <= kr->allowed_violations;
  if (!kr->passed) {
    std::ostringstream detail;
    detail << kr->kind << ": ";
    if (kr->malformed_estimates > 0) {
      detail << kr->malformed_estimates << " malformed estimates; ";
    }
    detail << kr->jaccard_violations << " jaccard + "
           << kr->common_neighbor_violations
           << " common-neighbor violations of eps=" << kr->epsilon
           << " exceed the allowance of " << kr->allowed_violations << " over "
           << kr->queries << " queries";
    kr->detail = detail.str();
  }
}

/// The Markov slack factor for a tcm strip of `depth` rows at confidence
/// `per_query_delta`.
double TcmSlack(uint32_t depth, double per_query_delta) {
  return std::pow(per_query_delta, -1.0 / static_cast<double>(depth));
}

}  // namespace

Result<DifferentialReport> RunDifferentialOracle(
    const DifferentialOracleOptions& options) {
  if (options.sketch_size < 4) {
    return Status::InvalidArgument("oracle needs sketch_size >= 4");
  }
  if (options.query_pairs == 0) {
    return Status::InvalidArgument("oracle needs query_pairs >= 1");
  }

  // One shared graph, stream order, and query set for every kind: the
  // whole point is that all predictors answer the *same* queries on the
  // *same* stream as the exact oracle.
  GeneratedGraph graph =
      MakeWorkload(WorkloadSpec{options.workload, options.scale, options.seed});
  Rng order_rng(Mix64(options.seed ^ 0x0cac1e));
  ApplyStreamOrder(options.order, graph.edges, order_rng);

  ExactPredictor exact;
  FeedStream(exact, graph.edges);

  CsrGraph csr = CsrGraph::FromEdges(graph.edges, graph.num_vertices);
  Rng pair_rng(Mix64(options.seed ^ 0x9a125));
  std::vector<QueryPair> pairs = SampleMixedPairs(
      csr, options.query_pairs, options.overlap_fraction, pair_rng);

  std::vector<std::string> kinds =
      options.kinds.empty() ? PredictorKinds() : options.kinds;

  DifferentialReport report;
  report.stream_edges = graph.edges.size();
  report.num_vertices = graph.num_vertices;
  report.all_passed = true;

  for (const std::string& kind : kinds) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = options.sketch_size;
    config.seed = options.seed;
    const bool parallelizable =
        options.ordering == IngestOrdering::kRelaxed
            ? KindSupportsReplicatedMerge(kind)
            : KindSupportsSharding(kind);
    if (options.threads > 1 && parallelizable) {
      config.threads = options.threads;
    }
    // The tolerance compares against the *whole-stream* exact measures, so
    // the windowed kind must keep every edge live: window >= stream.
    config.window_edges = graph.edges.size() + 1;

    VectorEdgeStream stream(graph.edges);
    auto predictor = IngestEngineBuilder(config)
                         .Ordering(options.ordering)
                         .Ingest(stream);
    if (!predictor.ok()) return predictor.status();

    DifferentialKindReport kr;
    kr.kind = kind;
    kr.queries = pairs.size();
    KindTolerance tol;
    if (kind == "exact") {
      tol.pointwise = true;
    } else if (kind == "tcm") {
      tol.degree_scaled = true;
      tol.tcm_slack = TcmSlack(config.tcm_depth, options.per_query_delta);
      tol.tcm_width = options.sketch_size;
      kr.jaccard_slots = options.sketch_size;
      // The applied tolerance is degree-scaled per query; report its
      // leading coefficient (slack per unit du*dv/width) as the headline
      // epsilon so the report is never vacuously zero.
      tol.epsilon = tol.tcm_slack / tol.tcm_width;
    } else {
      kr.jaccard_slots = JaccardSlots(kind, options.sketch_size);
      tol.epsilon = options.epsilon_slack *
                    MinHashJaccardErrorAt(kr.jaccard_slots,
                                          options.per_query_delta);
    }
    kr.epsilon = tol.epsilon;
    kr.allowed_violations =
        tol.pointwise ? 0
                      : AllowedToleranceViolations(pairs.size(),
                                                  options.per_query_delta,
                                                  options.overall_delta);
    ComparePairs(**predictor, exact, pairs, tol, &kr);
    if (!kr.passed) report.all_passed = false;
    report.kinds.push_back(std::move(kr));
  }
  return report;
}

Result<DifferentialReport> RunTurnstileOracle(
    const TurnstileOracleOptions& options) {
  if (options.sketch_size < 4) {
    return Status::InvalidArgument("oracle needs sketch_size >= 4");
  }
  if (options.query_pairs == 0) {
    return Status::InvalidArgument("oracle needs query_pairs >= 1");
  }

  ChurnSpec churn;
  churn.base_workload = options.workload;
  churn.scale = options.scale;
  churn.seed = options.seed;
  churn.delete_fraction = options.delete_fraction;
  TurnstileWorkload workload = MakeChurnWorkload(churn);

  // Exact truth: a sequential replay of the very same event stream. Its
  // delete path (adjacency-set removal) is independent of every sketch
  // kind's, which is what makes this a differential oracle and not a
  // self-comparison.
  ExactPredictor exact;
  for (const EdgeEvent& event : workload.events) {
    if (event.op == EdgeOp::kDelete) {
      exact.DeleteEdge(event.edge);
    } else {
      exact.OnEdge(event.edge);
    }
  }

  // Queries target the *surviving* graph so the overlap fraction is about
  // edges that are actually live after the churn.
  CsrGraph csr =
      CsrGraph::FromEdges(workload.net_edges, workload.num_vertices);
  Rng pair_rng(Mix64(options.seed ^ 0x9a125));
  std::vector<QueryPair> pairs = SampleMixedPairs(
      csr, options.query_pairs, options.overlap_fraction, pair_rng);

  std::vector<std::string> kinds = options.kinds;
  if (kinds.empty()) {
    for (const std::string& kind : PredictorKinds()) {
      if (KindSupportsDeletions(kind)) kinds.push_back(kind);
    }
  }

  DifferentialReport report;
  report.stream_edges = workload.events.size();
  report.num_vertices = workload.num_vertices;
  report.all_passed = true;

  for (const std::string& kind : kinds) {
    if (!KindSupportsDeletions(kind)) {
      return Status::InvalidArgument("turnstile oracle: kind '" + kind +
                                     "' does not support deletions");
    }
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = options.sketch_size;
    config.tcm_depth = options.tcm_depth;
    config.seed = options.seed;
    if (options.threads > 1) config.threads = options.threads;

    VectorOpStream stream(workload.events);
    ParallelIngestEngine engine =
        IngestEngineBuilder(config).Ordering(options.ordering).BuildEngine();
    auto predictor = engine.Build(stream);
    if (!predictor.ok()) return predictor.status();

    DifferentialKindReport kr;
    kr.kind = kind;
    kr.queries = pairs.size();
    KindTolerance tol;
    if (kind == "exact") {
      tol.pointwise = true;
    } else {
      tol.degree_scaled = true;
      tol.tcm_slack = TcmSlack(options.tcm_depth, options.per_query_delta);
      tol.tcm_width = options.sketch_size;
      kr.jaccard_slots = options.sketch_size;
      // Same headline convention as the insert-only oracle: report the
      // degree-scaled tolerance's leading coefficient as epsilon.
      tol.epsilon = tol.tcm_slack / tol.tcm_width;
    }
    kr.epsilon = tol.epsilon;
    kr.allowed_violations =
        tol.pointwise ? 0
                      : AllowedToleranceViolations(pairs.size(),
                                                  options.per_query_delta,
                                                  options.overall_delta);
    ComparePairs(**predictor, exact, pairs, tol, &kr);
    if (!kr.passed) report.all_passed = false;
    report.kinds.push_back(std::move(kr));
  }
  return report;
}

std::string FormatReport(const DifferentialReport& report) {
  std::ostringstream out;
  out << "differential oracle: " << report.stream_edges << " edges, "
      << report.num_vertices << " vertices\n";
  for (const DifferentialKindReport& kr : report.kinds) {
    out << "  " << (kr.passed ? "PASS" : "FAIL") << " " << kr.kind << " eps="
        << kr.epsilon << " violations=" << kr.jaccard_violations << "/"
        << kr.common_neighbor_violations << " (allowed "
        << kr.allowed_violations << " of " << kr.queries
        << ") max|dJ|=" << kr.max_jaccard_error
        << " mean|dJ|=" << kr.mean_jaccard_error;
    if (!kr.detail.empty()) out << " — " << kr.detail;
    out << "\n";
  }
  return out.str();
}

}  // namespace streamlink

#include "verify/differential.h"

#include <cmath>
#include <sstream>

#include "core/error_bounds.h"
#include "core/exact_predictor.h"
#include "eval/experiment.h"
#include "gen/pair_sampler.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/hashing.h"

namespace streamlink {

namespace {

/// Slots backing the Jaccard estimate of one kind at a given sketch size.
/// vertex_biased splits its budget: only the MinHash half estimates
/// Jaccard (the weighted half serves Adamic-Adar variance reduction).
uint32_t JaccardSlots(const std::string& kind, uint32_t sketch_size) {
  if (kind == "vertex_biased") return sketch_size / 2;
  return sketch_size;
}

bool IsFiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

/// Structural sanity of one estimate — holds for every estimator on every
/// input, independent of randomness.
bool EstimateIsWellFormed(const OverlapEstimate& e) {
  return IsFiniteNonNegative(e.degree_u) && IsFiniteNonNegative(e.degree_v) &&
         IsFiniteNonNegative(e.intersection) &&
         IsFiniteNonNegative(e.union_size) &&
         IsFiniteNonNegative(e.adamic_adar) &&
         IsFiniteNonNegative(e.resource_allocation) &&
         std::isfinite(e.jaccard) && e.jaccard >= 0.0 && e.jaccard <= 1.0;
}

}  // namespace

Result<DifferentialReport> RunDifferentialOracle(
    const DifferentialOracleOptions& options) {
  if (options.sketch_size < 4) {
    return Status::InvalidArgument("oracle needs sketch_size >= 4");
  }
  if (options.query_pairs == 0) {
    return Status::InvalidArgument("oracle needs query_pairs >= 1");
  }

  // One shared graph, stream order, and query set for every kind: the
  // whole point is that all predictors answer the *same* queries on the
  // *same* stream as the exact oracle.
  GeneratedGraph graph =
      MakeWorkload(WorkloadSpec{options.workload, options.scale, options.seed});
  Rng order_rng(Mix64(options.seed ^ 0x0cac1e));
  ApplyStreamOrder(options.order, graph.edges, order_rng);

  ExactPredictor exact;
  FeedStream(exact, graph.edges);

  CsrGraph csr = CsrGraph::FromEdges(graph.edges, graph.num_vertices);
  Rng pair_rng(Mix64(options.seed ^ 0x9a125));
  std::vector<QueryPair> pairs = SampleMixedPairs(
      csr, options.query_pairs, options.overlap_fraction, pair_rng);

  std::vector<std::string> kinds =
      options.kinds.empty() ? PredictorKinds() : options.kinds;

  DifferentialReport report;
  report.stream_edges = graph.edges.size();
  report.num_vertices = graph.num_vertices;
  report.all_passed = true;

  for (const std::string& kind : kinds) {
    PredictorConfig config;
    config.kind = kind;
    config.sketch_size = options.sketch_size;
    config.seed = options.seed;
    const bool parallelizable =
        options.ordering == IngestOrdering::kRelaxed
            ? KindSupportsReplicatedMerge(kind)
            : KindSupportsSharding(kind);
    if (options.threads > 1 && parallelizable) {
      config.threads = options.threads;
    }
    // The tolerance compares against the *whole-stream* exact measures, so
    // the windowed kind must keep every edge live: window >= stream.
    config.window_edges = graph.edges.size() + 1;

    VectorEdgeStream stream(graph.edges);
    auto predictor = IngestEngineBuilder(config)
                         .Ordering(options.ordering)
                         .Ingest(stream);
    if (!predictor.ok()) return predictor.status();

    DifferentialKindReport kr;
    kr.kind = kind;
    kr.queries = pairs.size();
    const bool is_exact = kind == "exact";
    kr.jaccard_slots = is_exact ? 0 : JaccardSlots(kind, options.sketch_size);
    kr.epsilon = is_exact ? 0.0
                          : options.epsilon_slack *
                                MinHashJaccardErrorAt(kr.jaccard_slots,
                                                      options.per_query_delta);
    kr.allowed_violations =
        is_exact ? 0
                 : AllowedToleranceViolations(pairs.size(),
                                             options.per_query_delta,
                                             options.overall_delta);

    double error_sum = 0.0;
    for (const QueryPair& p : pairs) {
      OverlapEstimate truth = exact.EstimateOverlap(p.u, p.v);
      OverlapEstimate est = (*predictor)->EstimateOverlap(p.u, p.v);
      if (!EstimateIsWellFormed(est)) {
        ++kr.malformed_estimates;
        continue;
      }
      double jaccard_error = std::abs(est.jaccard - truth.jaccard);
      error_sum += jaccard_error;
      kr.max_jaccard_error = std::max(kr.max_jaccard_error, jaccard_error);
      if (jaccard_error > kr.epsilon) ++kr.jaccard_violations;
      // Propagated common-neighbor bound, evaluated at the conservative
      // end of the Jaccard interval (the derivative of x/(1+x) peaks at
      // the interval's low end).
      double cn_bound = CommonNeighborErrorBound(
          kr.epsilon, std::max(0.0, truth.jaccard - kr.epsilon),
          truth.degree_u + truth.degree_v);
      if (std::abs(est.intersection - truth.intersection) > cn_bound) {
        ++kr.common_neighbor_violations;
      }
    }
    kr.mean_jaccard_error =
        pairs.empty() ? 0.0 : error_sum / static_cast<double>(pairs.size());

    kr.passed = kr.malformed_estimates == 0 &&
                kr.jaccard_violations <= kr.allowed_violations &&
                kr.common_neighbor_violations <= kr.allowed_violations;
    if (!kr.passed) {
      std::ostringstream detail;
      detail << kind << ": ";
      if (kr.malformed_estimates > 0) {
        detail << kr.malformed_estimates << " malformed estimates; ";
      }
      detail << kr.jaccard_violations << " jaccard + "
             << kr.common_neighbor_violations
             << " common-neighbor violations of eps=" << kr.epsilon
             << " exceed the allowance of " << kr.allowed_violations << " over "
             << kr.queries << " queries";
      kr.detail = detail.str();
      report.all_passed = false;
    }
    report.kinds.push_back(std::move(kr));
  }
  return report;
}

std::string FormatReport(const DifferentialReport& report) {
  std::ostringstream out;
  out << "differential oracle: " << report.stream_edges << " edges, "
      << report.num_vertices << " vertices\n";
  for (const DifferentialKindReport& kr : report.kinds) {
    out << "  " << (kr.passed ? "PASS" : "FAIL") << " " << kr.kind << " eps="
        << kr.epsilon << " violations=" << kr.jaccard_violations << "/"
        << kr.common_neighbor_violations << " (allowed "
        << kr.allowed_violations << " of " << kr.queries
        << ") max|dJ|=" << kr.max_jaccard_error
        << " mean|dJ|=" << kr.mean_jaccard_error;
    if (!kr.detail.empty()) out << " — " << kr.detail;
    out << "\n";
  }
  return out.str();
}

}  // namespace streamlink

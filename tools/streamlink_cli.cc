// The streamlink command-line tool: generate synthetic graph streams,
// inspect edge-list files, build/persist predictor snapshots, and answer
// link-prediction queries — see CliUsage() or run with no arguments.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  streamlink::Status status = streamlink::RunCliCommand(args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

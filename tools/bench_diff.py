#!/usr/bin/env python3
"""Compare two BENCH_<name>.json reports and flag throughput regressions.

Every bench_* experiment binary writes a BENCH_<name>.json run report
(see bench/bench_common.h: headline `metrics` scalars plus the emitted
tables, wall_seconds, and peak_rss_kb). This tool diffs the headline
metrics of two such reports — typically the same bench run on two
commits — and exits non-zero when a throughput-like metric regressed by
more than the threshold, so it can gate CI.

Metric direction is inferred from the key name:
  * higher-is-better: *_eps, *_qps, *per_sec, *throughput*
  * lower-is-better:  *_seconds, *_us, *_ns, *_ms, *_pct, *overhead*
  * anything else is reported but never flagged.

*_pct metrics are compared in absolute percentage points (the threshold
reads as points); everything else is compared relative to the baseline.

Usage:
  tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]

Exit codes: 0 ok, 1 regression past threshold, 2 usage/parse error.
Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

HIGHER_SUFFIXES = ("_eps", "_qps", "_per_sec")
HIGHER_SUBSTRINGS = ("throughput",)
LOWER_SUFFIXES = ("_seconds", "_us", "_ns", "_ms", "_pct")
LOWER_SUBSTRINGS = ("overhead",)


def direction(key):
    """'higher', 'lower', or None (informational only)."""
    lower_key = key.lower()
    if lower_key.endswith(HIGHER_SUFFIXES) or any(
        s in lower_key for s in HIGHER_SUBSTRINGS
    ):
        return "higher"
    if lower_key.endswith(LOWER_SUFFIXES) or any(
        s in lower_key for s in LOWER_SUBSTRINGS
    ):
        return "lower"
    return None


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if not isinstance(report.get("metrics"), dict):
        sys.exit(f"error: {path} has no 'metrics' object "
                 "(not a BENCH_*.json report?)")
    return report


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json reports, flag regressions.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="regression threshold in percent (default: 10)")
    args = parser.parse_args(argv)

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    if base.get("bench") != cand.get("bench"):
        print(f"warning: comparing different benches "
              f"({base.get('bench')} vs {cand.get('bench')})")

    regressions = []
    keys = sorted(set(base["metrics"]) | set(cand["metrics"]))
    width = max((len(k) for k in keys), default=0)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'candidate':>14}  "
          f"{'delta':>8}  verdict")
    for key in keys:
        if key not in base["metrics"] or key not in cand["metrics"]:
            missing = "baseline" if key not in base["metrics"] else "candidate"
            print(f"{key:<{width}}  {'':>14}  {'':>14}  {'':>8}  "
                  f"missing in {missing}")
            continue
        old, new = base["metrics"][key], cand["metrics"][key]
        # Metrics that are themselves percentages (e.g. an overhead of
        # 3.5%) sit near zero, where a relative delta explodes into noise
        # (3.5% -> 7% reads as +100%). Compare those in absolute
        # percentage points against the same threshold instead.
        in_points = key.lower().endswith("_pct")
        if in_points:
            delta = new - old
            delta_str = f"{delta:>+6.1f}pt"
        else:
            if old == 0:
                delta = 0.0 if new == 0 else float("inf")
            else:
                delta = 100.0 * (new - old) / abs(old)
            delta_str = f"{delta:>+7.1f}%"
        sense = direction(key)
        if sense == "higher":
            regressed = delta < -args.threshold
        elif sense == "lower":
            regressed = delta > args.threshold
        else:
            regressed = False
        verdict = "REGRESSED" if regressed else ("ok" if sense else "info")
        print(f"{key:<{width}}  {old:>14.6g}  {new:>14.6g}  "
              f"{delta_str:>8}  {verdict}")
        if regressed:
            regressions.append(key)

    # Peak RSS is reported alongside but held to a looser, fixed bar (2x)
    # since allocator noise dominates small benches.
    old_rss, new_rss = base.get("peak_rss_kb", 0), cand.get("peak_rss_kb", 0)
    if old_rss and new_rss:
        print(f"{'peak_rss_kb':<{width}}  {old_rss:>14}  {new_rss:>14}  "
              f"{100.0 * (new_rss - old_rss) / old_rss:>+7.1f}%  info")

    if regressions:
        print(f"\n{len(regressions)} regression(s) past "
              f"{args.threshold:.0f}%: {', '.join(regressions)}")
        return 1
    print("\nno regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/streamlink_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/streamlink_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/streamlink_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/streamlink_eval.dir/eval/rank_correlation.cc.o"
  "CMakeFiles/streamlink_eval.dir/eval/rank_correlation.cc.o.d"
  "CMakeFiles/streamlink_eval.dir/eval/relative_error.cc.o"
  "CMakeFiles/streamlink_eval.dir/eval/relative_error.cc.o.d"
  "CMakeFiles/streamlink_eval.dir/eval/temporal_split.cc.o"
  "CMakeFiles/streamlink_eval.dir/eval/temporal_split.cc.o.d"
  "libstreamlink_eval.a"
  "libstreamlink_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstreamlink_eval.a"
)

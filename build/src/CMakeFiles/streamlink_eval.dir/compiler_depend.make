# Empty compiler generated dependencies file for streamlink_eval.
# This may be replaced when dependencies are built.

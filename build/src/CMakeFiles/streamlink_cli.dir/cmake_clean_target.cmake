file(REMOVE_RECURSE
  "libstreamlink_cli.a"
)

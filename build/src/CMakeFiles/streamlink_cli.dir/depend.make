# Empty dependencies file for streamlink_cli.
# This may be replaced when dependencies are built.

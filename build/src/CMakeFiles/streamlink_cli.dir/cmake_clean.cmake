file(REMOVE_RECURSE
  "CMakeFiles/streamlink_cli.dir/cli/commands.cc.o"
  "CMakeFiles/streamlink_cli.dir/cli/commands.cc.o.d"
  "libstreamlink_cli.a"
  "libstreamlink_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

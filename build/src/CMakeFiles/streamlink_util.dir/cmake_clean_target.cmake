file(REMOVE_RECURSE
  "libstreamlink_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_util.dir/util/csv_writer.cc.o"
  "CMakeFiles/streamlink_util.dir/util/csv_writer.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/flags.cc.o"
  "CMakeFiles/streamlink_util.dir/util/flags.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/hashing.cc.o"
  "CMakeFiles/streamlink_util.dir/util/hashing.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/logging.cc.o"
  "CMakeFiles/streamlink_util.dir/util/logging.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/random.cc.o"
  "CMakeFiles/streamlink_util.dir/util/random.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/serde.cc.o"
  "CMakeFiles/streamlink_util.dir/util/serde.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/status.cc.o"
  "CMakeFiles/streamlink_util.dir/util/status.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/table_printer.cc.o"
  "CMakeFiles/streamlink_util.dir/util/table_printer.cc.o.d"
  "CMakeFiles/streamlink_util.dir/util/timer.cc.o"
  "CMakeFiles/streamlink_util.dir/util/timer.cc.o.d"
  "libstreamlink_util.a"
  "libstreamlink_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for streamlink_util.
# This may be replaced when dependencies are built.

# Empty dependencies file for streamlink_gen.
# This may be replaced when dependencies are built.

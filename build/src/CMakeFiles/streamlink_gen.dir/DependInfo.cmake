
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/barabasi_albert.cc" "src/CMakeFiles/streamlink_gen.dir/gen/barabasi_albert.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/barabasi_albert.cc.o.d"
  "/root/repo/src/gen/configuration_model.cc" "src/CMakeFiles/streamlink_gen.dir/gen/configuration_model.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/configuration_model.cc.o.d"
  "/root/repo/src/gen/drifting.cc" "src/CMakeFiles/streamlink_gen.dir/gen/drifting.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/drifting.cc.o.d"
  "/root/repo/src/gen/erdos_renyi.cc" "src/CMakeFiles/streamlink_gen.dir/gen/erdos_renyi.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/erdos_renyi.cc.o.d"
  "/root/repo/src/gen/pair_sampler.cc" "src/CMakeFiles/streamlink_gen.dir/gen/pair_sampler.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/pair_sampler.cc.o.d"
  "/root/repo/src/gen/rmat.cc" "src/CMakeFiles/streamlink_gen.dir/gen/rmat.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/rmat.cc.o.d"
  "/root/repo/src/gen/sbm.cc" "src/CMakeFiles/streamlink_gen.dir/gen/sbm.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/sbm.cc.o.d"
  "/root/repo/src/gen/stream_order.cc" "src/CMakeFiles/streamlink_gen.dir/gen/stream_order.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/stream_order.cc.o.d"
  "/root/repo/src/gen/watts_strogatz.cc" "src/CMakeFiles/streamlink_gen.dir/gen/watts_strogatz.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/watts_strogatz.cc.o.d"
  "/root/repo/src/gen/workloads.cc" "src/CMakeFiles/streamlink_gen.dir/gen/workloads.cc.o" "gcc" "src/CMakeFiles/streamlink_gen.dir/gen/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamlink_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libstreamlink_gen.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_gen.dir/gen/barabasi_albert.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/barabasi_albert.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/configuration_model.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/configuration_model.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/drifting.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/drifting.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/erdos_renyi.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/erdos_renyi.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/pair_sampler.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/pair_sampler.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/rmat.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/rmat.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/sbm.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/sbm.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/stream_order.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/stream_order.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/watts_strogatz.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/watts_strogatz.cc.o.d"
  "CMakeFiles/streamlink_gen.dir/gen/workloads.cc.o"
  "CMakeFiles/streamlink_gen.dir/gen/workloads.cc.o.d"
  "libstreamlink_gen.a"
  "libstreamlink_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_stream.dir/stream/edge_stream.cc.o"
  "CMakeFiles/streamlink_stream.dir/stream/edge_stream.cc.o.d"
  "CMakeFiles/streamlink_stream.dir/stream/rate_meter.cc.o"
  "CMakeFiles/streamlink_stream.dir/stream/rate_meter.cc.o.d"
  "CMakeFiles/streamlink_stream.dir/stream/sliding_window.cc.o"
  "CMakeFiles/streamlink_stream.dir/stream/sliding_window.cc.o.d"
  "CMakeFiles/streamlink_stream.dir/stream/stream_driver.cc.o"
  "CMakeFiles/streamlink_stream.dir/stream/stream_driver.cc.o.d"
  "libstreamlink_stream.a"
  "libstreamlink_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

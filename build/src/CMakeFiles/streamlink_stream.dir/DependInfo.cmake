
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/edge_stream.cc" "src/CMakeFiles/streamlink_stream.dir/stream/edge_stream.cc.o" "gcc" "src/CMakeFiles/streamlink_stream.dir/stream/edge_stream.cc.o.d"
  "/root/repo/src/stream/rate_meter.cc" "src/CMakeFiles/streamlink_stream.dir/stream/rate_meter.cc.o" "gcc" "src/CMakeFiles/streamlink_stream.dir/stream/rate_meter.cc.o.d"
  "/root/repo/src/stream/sliding_window.cc" "src/CMakeFiles/streamlink_stream.dir/stream/sliding_window.cc.o" "gcc" "src/CMakeFiles/streamlink_stream.dir/stream/sliding_window.cc.o.d"
  "/root/repo/src/stream/stream_driver.cc" "src/CMakeFiles/streamlink_stream.dir/stream/stream_driver.cc.o" "gcc" "src/CMakeFiles/streamlink_stream.dir/stream/stream_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamlink_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libstreamlink_stream.a"
)

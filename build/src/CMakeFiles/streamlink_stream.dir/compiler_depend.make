# Empty compiler generated dependencies file for streamlink_stream.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstreamlink_sketch.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_sketch.dir/sketch/bbit_minhash.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/bbit_minhash.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/bloom.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/bloom.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/bottomk.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/bottomk.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/count_sketch.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/count_sketch.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/countmin.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/countmin.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/hyperloglog.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/hyperloglog.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/icws.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/icws.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/minhash.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/minhash.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/oph.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/oph.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/quantile.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/quantile.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/reservoir.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/reservoir.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/space_saving.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/space_saving.cc.o.d"
  "CMakeFiles/streamlink_sketch.dir/sketch/weighted_sampler.cc.o"
  "CMakeFiles/streamlink_sketch.dir/sketch/weighted_sampler.cc.o.d"
  "libstreamlink_sketch.a"
  "libstreamlink_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

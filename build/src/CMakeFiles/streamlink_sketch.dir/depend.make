# Empty dependencies file for streamlink_sketch.
# This may be replaced when dependencies are built.

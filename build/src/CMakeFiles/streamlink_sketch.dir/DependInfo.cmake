
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/bbit_minhash.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/bbit_minhash.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/bbit_minhash.cc.o.d"
  "/root/repo/src/sketch/bloom.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/bloom.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/bloom.cc.o.d"
  "/root/repo/src/sketch/bottomk.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/bottomk.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/bottomk.cc.o.d"
  "/root/repo/src/sketch/count_sketch.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/count_sketch.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/count_sketch.cc.o.d"
  "/root/repo/src/sketch/countmin.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/countmin.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/countmin.cc.o.d"
  "/root/repo/src/sketch/hyperloglog.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/hyperloglog.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/hyperloglog.cc.o.d"
  "/root/repo/src/sketch/icws.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/icws.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/icws.cc.o.d"
  "/root/repo/src/sketch/minhash.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/minhash.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/minhash.cc.o.d"
  "/root/repo/src/sketch/oph.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/oph.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/oph.cc.o.d"
  "/root/repo/src/sketch/quantile.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/quantile.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/quantile.cc.o.d"
  "/root/repo/src/sketch/reservoir.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/reservoir.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/reservoir.cc.o.d"
  "/root/repo/src/sketch/space_saving.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/space_saving.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/space_saving.cc.o.d"
  "/root/repo/src/sketch/weighted_sampler.cc" "src/CMakeFiles/streamlink_sketch.dir/sketch/weighted_sampler.cc.o" "gcc" "src/CMakeFiles/streamlink_sketch.dir/sketch/weighted_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

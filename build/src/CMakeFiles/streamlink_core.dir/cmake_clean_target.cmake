file(REMOVE_RECURSE
  "libstreamlink_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_core.dir/core/bottomk_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/bottomk_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/directed_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/directed_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/error_bounds.cc.o"
  "CMakeFiles/streamlink_core.dir/core/error_bounds.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/exact_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/exact_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/link_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/link_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/minhash_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/minhash_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/oph_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/oph_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/predictor_factory.cc.o"
  "CMakeFiles/streamlink_core.dir/core/predictor_factory.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/similarity_join.cc.o"
  "CMakeFiles/streamlink_core.dir/core/similarity_join.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/sketch_store.cc.o"
  "CMakeFiles/streamlink_core.dir/core/sketch_store.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/top_k_engine.cc.o"
  "CMakeFiles/streamlink_core.dir/core/top_k_engine.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/triangle_counter.cc.o"
  "CMakeFiles/streamlink_core.dir/core/triangle_counter.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/vertex_biased_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/vertex_biased_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/weighted_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/weighted_predictor.cc.o.d"
  "CMakeFiles/streamlink_core.dir/core/windowed_predictor.cc.o"
  "CMakeFiles/streamlink_core.dir/core/windowed_predictor.cc.o.d"
  "libstreamlink_core.a"
  "libstreamlink_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

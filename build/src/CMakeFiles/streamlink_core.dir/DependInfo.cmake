
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bottomk_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/bottomk_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/bottomk_predictor.cc.o.d"
  "/root/repo/src/core/directed_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/directed_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/directed_predictor.cc.o.d"
  "/root/repo/src/core/error_bounds.cc" "src/CMakeFiles/streamlink_core.dir/core/error_bounds.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/error_bounds.cc.o.d"
  "/root/repo/src/core/exact_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/exact_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/exact_predictor.cc.o.d"
  "/root/repo/src/core/link_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/link_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/link_predictor.cc.o.d"
  "/root/repo/src/core/minhash_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/minhash_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/minhash_predictor.cc.o.d"
  "/root/repo/src/core/oph_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/oph_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/oph_predictor.cc.o.d"
  "/root/repo/src/core/predictor_factory.cc" "src/CMakeFiles/streamlink_core.dir/core/predictor_factory.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/predictor_factory.cc.o.d"
  "/root/repo/src/core/similarity_join.cc" "src/CMakeFiles/streamlink_core.dir/core/similarity_join.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/similarity_join.cc.o.d"
  "/root/repo/src/core/sketch_store.cc" "src/CMakeFiles/streamlink_core.dir/core/sketch_store.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/sketch_store.cc.o.d"
  "/root/repo/src/core/top_k_engine.cc" "src/CMakeFiles/streamlink_core.dir/core/top_k_engine.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/top_k_engine.cc.o.d"
  "/root/repo/src/core/triangle_counter.cc" "src/CMakeFiles/streamlink_core.dir/core/triangle_counter.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/triangle_counter.cc.o.d"
  "/root/repo/src/core/vertex_biased_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/vertex_biased_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/vertex_biased_predictor.cc.o.d"
  "/root/repo/src/core/weighted_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/weighted_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/weighted_predictor.cc.o.d"
  "/root/repo/src/core/windowed_predictor.cc" "src/CMakeFiles/streamlink_core.dir/core/windowed_predictor.cc.o" "gcc" "src/CMakeFiles/streamlink_core.dir/core/windowed_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamlink_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for streamlink_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_graph.dir/graph/adjacency_graph.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/adjacency_graph.cc.o.d"
  "CMakeFiles/streamlink_graph.dir/graph/csr_graph.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/csr_graph.cc.o.d"
  "CMakeFiles/streamlink_graph.dir/graph/digraph.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/digraph.cc.o.d"
  "CMakeFiles/streamlink_graph.dir/graph/edge_list_io.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/edge_list_io.cc.o.d"
  "CMakeFiles/streamlink_graph.dir/graph/exact_measures.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/exact_measures.cc.o.d"
  "CMakeFiles/streamlink_graph.dir/graph/graph_stats.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/graph_stats.cc.o.d"
  "CMakeFiles/streamlink_graph.dir/graph/types.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/types.cc.o.d"
  "CMakeFiles/streamlink_graph.dir/graph/weighted_graph.cc.o"
  "CMakeFiles/streamlink_graph.dir/graph/weighted_graph.cc.o.d"
  "libstreamlink_graph.a"
  "libstreamlink_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

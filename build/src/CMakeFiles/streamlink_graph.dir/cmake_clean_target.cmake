file(REMOVE_RECURSE
  "libstreamlink_graph.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency_graph.cc" "src/CMakeFiles/streamlink_graph.dir/graph/adjacency_graph.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/adjacency_graph.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/streamlink_graph.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/streamlink_graph.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/edge_list_io.cc" "src/CMakeFiles/streamlink_graph.dir/graph/edge_list_io.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/edge_list_io.cc.o.d"
  "/root/repo/src/graph/exact_measures.cc" "src/CMakeFiles/streamlink_graph.dir/graph/exact_measures.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/exact_measures.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/streamlink_graph.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/types.cc" "src/CMakeFiles/streamlink_graph.dir/graph/types.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/types.cc.o.d"
  "/root/repo/src/graph/weighted_graph.cc" "src/CMakeFiles/streamlink_graph.dir/graph/weighted_graph.cc.o" "gcc" "src/CMakeFiles/streamlink_graph.dir/graph/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

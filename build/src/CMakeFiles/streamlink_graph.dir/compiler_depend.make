# Empty compiler generated dependencies file for streamlink_graph.
# This may be replaced when dependencies are built.

# Empty dependencies file for top_k_engine_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for vertex_biased_predictor_test.
# This may be replaced when dependencies are built.

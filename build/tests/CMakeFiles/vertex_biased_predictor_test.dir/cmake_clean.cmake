file(REMOVE_RECURSE
  "CMakeFiles/vertex_biased_predictor_test.dir/vertex_biased_predictor_test.cc.o"
  "CMakeFiles/vertex_biased_predictor_test.dir/vertex_biased_predictor_test.cc.o.d"
  "vertex_biased_predictor_test"
  "vertex_biased_predictor_test.pdb"
  "vertex_biased_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_biased_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

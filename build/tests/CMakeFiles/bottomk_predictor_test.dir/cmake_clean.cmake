file(REMOVE_RECURSE
  "CMakeFiles/bottomk_predictor_test.dir/bottomk_predictor_test.cc.o"
  "CMakeFiles/bottomk_predictor_test.dir/bottomk_predictor_test.cc.o.d"
  "bottomk_predictor_test"
  "bottomk_predictor_test.pdb"
  "bottomk_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottomk_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for extension_io_test.
# This may be replaced when dependencies are built.

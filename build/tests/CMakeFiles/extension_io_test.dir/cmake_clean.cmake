file(REMOVE_RECURSE
  "CMakeFiles/extension_io_test.dir/extension_io_test.cc.o"
  "CMakeFiles/extension_io_test.dir/extension_io_test.cc.o.d"
  "extension_io_test"
  "extension_io_test.pdb"
  "extension_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/windowed_predictor_test.dir/windowed_predictor_test.cc.o"
  "CMakeFiles/windowed_predictor_test.dir/windowed_predictor_test.cc.o.d"
  "windowed_predictor_test"
  "windowed_predictor_test.pdb"
  "windowed_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

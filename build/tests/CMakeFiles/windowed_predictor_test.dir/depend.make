# Empty dependencies file for windowed_predictor_test.
# This may be replaced when dependencies are built.

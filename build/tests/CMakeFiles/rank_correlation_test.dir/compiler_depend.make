# Empty compiler generated dependencies file for rank_correlation_test.
# This may be replaced when dependencies are built.

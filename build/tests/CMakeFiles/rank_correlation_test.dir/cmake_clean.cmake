file(REMOVE_RECURSE
  "CMakeFiles/rank_correlation_test.dir/rank_correlation_test.cc.o"
  "CMakeFiles/rank_correlation_test.dir/rank_correlation_test.cc.o.d"
  "rank_correlation_test"
  "rank_correlation_test.pdb"
  "rank_correlation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for weighted_sampler_test.
# This may be replaced when dependencies are built.

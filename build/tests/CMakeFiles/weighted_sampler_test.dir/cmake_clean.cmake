file(REMOVE_RECURSE
  "CMakeFiles/weighted_sampler_test.dir/weighted_sampler_test.cc.o"
  "CMakeFiles/weighted_sampler_test.dir/weighted_sampler_test.cc.o.d"
  "weighted_sampler_test"
  "weighted_sampler_test.pdb"
  "weighted_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

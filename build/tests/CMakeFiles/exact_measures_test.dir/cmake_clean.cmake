file(REMOVE_RECURSE
  "CMakeFiles/exact_measures_test.dir/exact_measures_test.cc.o"
  "CMakeFiles/exact_measures_test.dir/exact_measures_test.cc.o.d"
  "exact_measures_test"
  "exact_measures_test.pdb"
  "exact_measures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_measures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exact_measures_test.
# This may be replaced when dependencies are built.

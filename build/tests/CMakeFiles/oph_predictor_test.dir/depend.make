# Empty dependencies file for oph_predictor_test.
# This may be replaced when dependencies are built.

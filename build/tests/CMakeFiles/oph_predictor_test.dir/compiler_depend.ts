# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for oph_predictor_test.

file(REMOVE_RECURSE
  "CMakeFiles/oph_predictor_test.dir/oph_predictor_test.cc.o"
  "CMakeFiles/oph_predictor_test.dir/oph_predictor_test.cc.o.d"
  "oph_predictor_test"
  "oph_predictor_test.pdb"
  "oph_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oph_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oph_predictor_test.cc" "tests/CMakeFiles/oph_predictor_test.dir/oph_predictor_test.cc.o" "gcc" "tests/CMakeFiles/oph_predictor_test.dir/oph_predictor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamlink_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/triangle_counter_test.dir/triangle_counter_test.cc.o"
  "CMakeFiles/triangle_counter_test.dir/triangle_counter_test.cc.o.d"
  "triangle_counter_test"
  "triangle_counter_test.pdb"
  "triangle_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

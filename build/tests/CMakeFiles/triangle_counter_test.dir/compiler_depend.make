# Empty compiler generated dependencies file for triangle_counter_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/relative_error_test.dir/relative_error_test.cc.o"
  "CMakeFiles/relative_error_test.dir/relative_error_test.cc.o.d"
  "relative_error_test"
  "relative_error_test.pdb"
  "relative_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relative_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for relative_error_test.
# This may be replaced when dependencies are built.

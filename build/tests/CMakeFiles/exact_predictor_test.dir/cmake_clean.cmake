file(REMOVE_RECURSE
  "CMakeFiles/exact_predictor_test.dir/exact_predictor_test.cc.o"
  "CMakeFiles/exact_predictor_test.dir/exact_predictor_test.cc.o.d"
  "exact_predictor_test"
  "exact_predictor_test.pdb"
  "exact_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

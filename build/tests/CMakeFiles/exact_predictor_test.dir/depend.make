# Empty dependencies file for exact_predictor_test.
# This may be replaced when dependencies are built.

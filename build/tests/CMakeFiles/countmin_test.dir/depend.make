# Empty dependencies file for countmin_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/countmin_test.dir/countmin_test.cc.o"
  "CMakeFiles/countmin_test.dir/countmin_test.cc.o.d"
  "countmin_test"
  "countmin_test.pdb"
  "countmin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countmin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

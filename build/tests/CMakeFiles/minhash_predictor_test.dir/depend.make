# Empty dependencies file for minhash_predictor_test.
# This may be replaced when dependencies are built.

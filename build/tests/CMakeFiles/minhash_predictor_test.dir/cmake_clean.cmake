file(REMOVE_RECURSE
  "CMakeFiles/minhash_predictor_test.dir/minhash_predictor_test.cc.o"
  "CMakeFiles/minhash_predictor_test.dir/minhash_predictor_test.cc.o.d"
  "minhash_predictor_test"
  "minhash_predictor_test.pdb"
  "minhash_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minhash_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for temporal_split_test.
# This may be replaced when dependencies are built.

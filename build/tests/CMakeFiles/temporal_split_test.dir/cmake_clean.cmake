file(REMOVE_RECURSE
  "CMakeFiles/temporal_split_test.dir/temporal_split_test.cc.o"
  "CMakeFiles/temporal_split_test.dir/temporal_split_test.cc.o.d"
  "temporal_split_test"
  "temporal_split_test.pdb"
  "temporal_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for oph_test.
# This may be replaced when dependencies are built.

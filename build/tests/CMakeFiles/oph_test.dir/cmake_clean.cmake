file(REMOVE_RECURSE
  "CMakeFiles/oph_test.dir/oph_test.cc.o"
  "CMakeFiles/oph_test.dir/oph_test.cc.o.d"
  "oph_test"
  "oph_test.pdb"
  "oph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bbit_minhash_test.dir/bbit_minhash_test.cc.o"
  "CMakeFiles/bbit_minhash_test.dir/bbit_minhash_test.cc.o.d"
  "bbit_minhash_test"
  "bbit_minhash_test.pdb"
  "bbit_minhash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbit_minhash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

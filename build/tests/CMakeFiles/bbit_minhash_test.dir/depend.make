# Empty dependencies file for bbit_minhash_test.
# This may be replaced when dependencies are built.

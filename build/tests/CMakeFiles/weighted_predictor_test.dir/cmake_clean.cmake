file(REMOVE_RECURSE
  "CMakeFiles/weighted_predictor_test.dir/weighted_predictor_test.cc.o"
  "CMakeFiles/weighted_predictor_test.dir/weighted_predictor_test.cc.o.d"
  "weighted_predictor_test"
  "weighted_predictor_test.pdb"
  "weighted_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

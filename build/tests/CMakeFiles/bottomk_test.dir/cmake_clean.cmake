file(REMOVE_RECURSE
  "CMakeFiles/bottomk_test.dir/bottomk_test.cc.o"
  "CMakeFiles/bottomk_test.dir/bottomk_test.cc.o.d"
  "bottomk_test"
  "bottomk_test.pdb"
  "bottomk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottomk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bottomk_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sketch_store_test.dir/sketch_store_test.cc.o"
  "CMakeFiles/sketch_store_test.dir/sketch_store_test.cc.o.d"
  "sketch_store_test"
  "sketch_store_test.pdb"
  "sketch_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

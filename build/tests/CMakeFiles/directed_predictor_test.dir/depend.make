# Empty dependencies file for directed_predictor_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/directed_predictor_test.dir/directed_predictor_test.cc.o"
  "CMakeFiles/directed_predictor_test.dir/directed_predictor_test.cc.o.d"
  "directed_predictor_test"
  "directed_predictor_test.pdb"
  "directed_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directed_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

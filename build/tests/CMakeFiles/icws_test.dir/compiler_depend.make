# Empty compiler generated dependencies file for icws_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/icws_test.dir/icws_test.cc.o"
  "CMakeFiles/icws_test.dir/icws_test.cc.o.d"
  "icws_test"
  "icws_test.pdb"
  "icws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for streamlink_cli_bin.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/streamlink_cli_bin.dir/streamlink_cli.cc.o"
  "CMakeFiles/streamlink_cli_bin.dir/streamlink_cli.cc.o.d"
  "streamlink_cli"
  "streamlink_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlink_cli_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for citation_evolution.
# This may be replaced when dependencies are built.

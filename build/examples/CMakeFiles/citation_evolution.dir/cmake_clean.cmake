file(REMOVE_RECURSE
  "CMakeFiles/citation_evolution.dir/citation_evolution.cpp.o"
  "CMakeFiles/citation_evolution.dir/citation_evolution.cpp.o.d"
  "citation_evolution"
  "citation_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

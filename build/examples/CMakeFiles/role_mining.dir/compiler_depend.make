# Empty compiler generated dependencies file for role_mining.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/role_mining.dir/role_mining.cpp.o"
  "CMakeFiles/role_mining.dir/role_mining.cpp.o.d"
  "role_mining"
  "role_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/role_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for parallel_ingest.
# This may be replaced when dependencies are built.

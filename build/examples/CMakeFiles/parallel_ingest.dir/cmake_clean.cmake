file(REMOVE_RECURSE
  "CMakeFiles/parallel_ingest.dir/parallel_ingest.cpp.o"
  "CMakeFiles/parallel_ingest.dir/parallel_ingest.cpp.o.d"
  "parallel_ingest"
  "parallel_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/weighted_interactions.dir/weighted_interactions.cpp.o"
  "CMakeFiles/weighted_interactions.dir/weighted_interactions.cpp.o.d"
  "weighted_interactions"
  "weighted_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

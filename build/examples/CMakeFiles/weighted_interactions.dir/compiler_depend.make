# Empty compiler generated dependencies file for weighted_interactions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_f15_simjoin.dir/bench_f15_simjoin.cc.o"
  "CMakeFiles/bench_f15_simjoin.dir/bench_f15_simjoin.cc.o.d"
  "bench_f15_simjoin"
  "bench_f15_simjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f15_simjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

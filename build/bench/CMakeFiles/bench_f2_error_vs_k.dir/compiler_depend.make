# Empty compiler generated dependencies file for bench_f2_error_vs_k.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_error_vs_stream.dir/bench_f3_error_vs_stream.cc.o"
  "CMakeFiles/bench_f3_error_vs_stream.dir/bench_f3_error_vs_stream.cc.o.d"
  "bench_f3_error_vs_stream"
  "bench_f3_error_vs_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_error_vs_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_f3_error_vs_stream.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_f12_bbit.
# This may be replaced when dependencies are built.

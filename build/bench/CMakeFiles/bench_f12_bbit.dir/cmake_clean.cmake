file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_bbit.dir/bench_f12_bbit.cc.o"
  "CMakeFiles/bench_f12_bbit.dir/bench_f12_bbit.cc.o.d"
  "bench_f12_bbit"
  "bench_f12_bbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_bbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

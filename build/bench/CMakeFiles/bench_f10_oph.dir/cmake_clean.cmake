file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_oph.dir/bench_f10_oph.cc.o"
  "CMakeFiles/bench_f10_oph.dir/bench_f10_oph.cc.o.d"
  "bench_f10_oph"
  "bench_f10_oph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_oph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_f10_oph.
# This may be replaced when dependencies are built.

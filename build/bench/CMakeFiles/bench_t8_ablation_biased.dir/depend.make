# Empty dependencies file for bench_t8_ablation_biased.
# This may be replaced when dependencies are built.

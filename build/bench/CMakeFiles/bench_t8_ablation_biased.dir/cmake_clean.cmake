file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_ablation_biased.dir/bench_t8_ablation_biased.cc.o"
  "CMakeFiles/bench_t8_ablation_biased.dir/bench_t8_ablation_biased.cc.o.d"
  "bench_t8_ablation_biased"
  "bench_t8_ablation_biased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_ablation_biased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

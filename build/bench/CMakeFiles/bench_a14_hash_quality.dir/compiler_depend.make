# Empty compiler generated dependencies file for bench_a14_hash_quality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_a14_hash_quality.dir/bench_a14_hash_quality.cc.o"
  "CMakeFiles/bench_a14_hash_quality.dir/bench_a14_hash_quality.cc.o.d"
  "bench_a14_hash_quality"
  "bench_a14_hash_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a14_hash_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

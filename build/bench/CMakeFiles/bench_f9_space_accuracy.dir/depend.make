# Empty dependencies file for bench_f9_space_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_space_accuracy.dir/bench_f9_space_accuracy.cc.o"
  "CMakeFiles/bench_f9_space_accuracy.dir/bench_f9_space_accuracy.cc.o.d"
  "bench_f9_space_accuracy"
  "bench_f9_space_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_space_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

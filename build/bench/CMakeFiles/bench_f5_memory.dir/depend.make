# Empty dependencies file for bench_f5_memory.
# This may be replaced when dependencies are built.

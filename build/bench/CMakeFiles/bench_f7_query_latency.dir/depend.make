# Empty dependencies file for bench_f7_query_latency.
# This may be replaced when dependencies are built.

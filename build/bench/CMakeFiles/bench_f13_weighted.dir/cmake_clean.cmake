file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_weighted.dir/bench_f13_weighted.cc.o"
  "CMakeFiles/bench_f13_weighted.dir/bench_f13_weighted.cc.o.d"
  "bench_f13_weighted"
  "bench_f13_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

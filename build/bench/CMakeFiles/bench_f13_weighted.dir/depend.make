# Empty dependencies file for bench_f13_weighted.
# This may be replaced when dependencies are built.

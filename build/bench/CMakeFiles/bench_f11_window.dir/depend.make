# Empty dependencies file for bench_f11_window.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_window.dir/bench_f11_window.cc.o"
  "CMakeFiles/bench_f11_window.dir/bench_f11_window.cc.o.d"
  "bench_f11_window"
  "bench_f11_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

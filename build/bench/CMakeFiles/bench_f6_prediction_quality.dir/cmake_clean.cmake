file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_prediction_quality.dir/bench_f6_prediction_quality.cc.o"
  "CMakeFiles/bench_f6_prediction_quality.dir/bench_f6_prediction_quality.cc.o.d"
  "bench_f6_prediction_quality"
  "bench_f6_prediction_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_prediction_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

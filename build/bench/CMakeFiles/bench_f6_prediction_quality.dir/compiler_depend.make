# Empty compiler generated dependencies file for bench_f6_prediction_quality.
# This may be replaced when dependencies are built.

#include "util/percentile.h"

#include <gtest/gtest.h>

#include <vector>

namespace streamlink {
namespace {

TEST(PercentileSorted, EmptyIsZero) {
  EXPECT_EQ(PercentileSorted({}, 0.5), 0.0);
  EXPECT_EQ(PercentileSorted({}, 0.999), 0.0);
}

TEST(PercentileSorted, SingleSampleEveryQuantile) {
  const std::vector<double> one = {42.0};
  EXPECT_EQ(PercentileSorted(one, 0.0), 42.0);
  EXPECT_EQ(PercentileSorted(one, 0.5), 42.0);
  EXPECT_EQ(PercentileSorted(one, 0.999), 42.0);
  EXPECT_EQ(PercentileSorted(one, 1.0), 42.0);
}

// The regression the load generator shipped with: floor indexing read
// sorted[q*N], one rank too high whenever q*N is exact — the median of
// two samples reported the larger one.
TEST(PercentileSorted, TwoSampleMedianIsLowerRank) {
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_EQ(PercentileSorted(two, 0.50), 1.0);
  EXPECT_EQ(PercentileSorted(two, 0.51), 2.0);
  EXPECT_EQ(PercentileSorted(two, 1.0), 2.0);
  EXPECT_EQ(PercentileSorted(two, 0.0), 1.0);
}

TEST(PercentileSorted, HundredSamplesNearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  // With N = 100 the nearest rank of q is exactly ceil(100q).
  EXPECT_EQ(PercentileSorted(v, 0.50), 50.0);
  EXPECT_EQ(PercentileSorted(v, 0.90), 90.0);
  EXPECT_EQ(PercentileSorted(v, 0.99), 99.0);
  EXPECT_EQ(PercentileSorted(v, 0.999), 100.0);
  EXPECT_EQ(PercentileSorted(v, 0.001), 1.0);
  EXPECT_EQ(PercentileSorted(v, 1.0), 100.0);
}

TEST(PercentileSorted, OutOfRangeQuantilesClamp) {
  const std::vector<double> v = {3.0, 7.0, 9.0};
  EXPECT_EQ(PercentileSorted(v, -0.5), 3.0);
  EXPECT_EQ(PercentileSorted(v, 1.5), 9.0);
}

}  // namespace
}  // namespace streamlink

#include "sketch/reservoir.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "util/random.h"

namespace streamlink {
namespace {

TEST(ReservoirSampler, KeepsEverythingBelowCapacity) {
  ReservoirSampler<int> s(10, 1);
  for (int i = 0; i < 5; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 5u);
  EXPECT_EQ(s.items_seen(), 5u);
}

TEST(ReservoirSampler, CapsAtCapacity) {
  ReservoirSampler<int> s(10, 2);
  for (int i = 0; i < 1000; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 10u);
  EXPECT_EQ(s.items_seen(), 1000u);
}

TEST(ReservoirSampler, SampleElementsComeFromStream) {
  ReservoirSampler<int> s(16, 3);
  for (int i = 0; i < 500; ++i) s.Offer(i);
  for (int x : s.sample()) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 500);
  }
  std::set<int> unique(s.sample().begin(), s.sample().end());
  EXPECT_EQ(unique.size(), s.sample().size());
}

TEST(ReservoirSampler, InclusionIsApproximatelyUniform) {
  // Run many independent reservoirs; each item's inclusion frequency should
  // approximate capacity/stream_length.
  const int stream_length = 100;
  const uint32_t capacity = 10;
  const int trials = 4000;
  std::vector<int> inclusion(stream_length, 0);
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int> s(capacity, 1000 + t);
    for (int i = 0; i < stream_length; ++i) s.Offer(i);
    for (int x : s.sample()) ++inclusion[x];
  }
  double expected = static_cast<double>(trials) * capacity / stream_length;
  for (int i = 0; i < stream_length; ++i) {
    EXPECT_NEAR(inclusion[i], expected, 6 * std::sqrt(expected))
        << "item " << i;
  }
}

TEST(ReservoirSampleIndices, SizeAndRange) {
  Rng rng(5);
  auto sample = ReservoirSampleIndices(10000, 100, rng);
  EXPECT_EQ(sample.size(), 100u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint64_t idx : sample) EXPECT_LT(idx, 10000u);
  // Output is sorted.
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
  }
}

TEST(ReservoirSampleIndices, FullSampleIsIdentity) {
  Rng rng(6);
  auto sample = ReservoirSampleIndices(50, 50, rng);
  ASSERT_EQ(sample.size(), 50u);
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(ReservoirSampleIndices, ZeroCountIsEmpty) {
  Rng rng(7);
  EXPECT_TRUE(ReservoirSampleIndices(100, 0, rng).empty());
}

TEST(ReservoirSampleIndicesDeathTest, OversampleAborts) {
  Rng rng(8);
  EXPECT_DEATH(ReservoirSampleIndices(5, 6, rng), "cannot sample");
}

TEST(ReservoirSampleIndices, TailPositionsAreReachable) {
  // Algorithm L must not systematically ignore the end of the stream.
  Rng rng(9);
  int tail_hits = 0;
  for (int t = 0; t < 200; ++t) {
    Rng local(t * 31 + 7);
    auto sample = ReservoirSampleIndices(1000, 10, local);
    for (uint64_t idx : sample) {
      if (idx >= 900) ++tail_hits;
    }
  }
  // Expected: 200 trials * 10 samples * 10% ≈ 200 hits.
  EXPECT_GT(tail_hits, 100);
  EXPECT_LT(tail_hits, 350);
}

}  // namespace
}  // namespace streamlink

#include "stream/parallel_ingest.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/predictor_factory.h"
#include "core/tombstone_predictor.h"
#include "gen/churn.h"
#include "stream/op_stream.h"
#include "util/random.h"

namespace streamlink {
namespace {

constexpr VertexId kNumVertices = 60;

/// A random churn stream: random edges threaded with live-set deletes.
TurnstileWorkload MakeEvents(uint64_t seed, size_t num_edges) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    edges.emplace_back(static_cast<VertexId>(rng.NextBounded(kNumVertices)),
                       static_cast<VertexId>(rng.NextBounded(kNumVertices)));
  }
  return MakeChurnFromEdges(edges, kNumVertices, /*delete_fraction=*/0.35,
                            seed ^ 0xc0ffee, "ingest_churn");
}

void ExpectIdentical(const LinkPredictor& a, const LinkPredictor& b,
                     VertexId max_vertex) {
  for (VertexId u = 0; u < max_vertex; u += 2) {
    for (VertexId v = 0; v < max_vertex; ++v) {
      OverlapEstimate ea = a.EstimateOverlap(u, v);
      OverlapEstimate eb = b.EstimateOverlap(u, v);
      EXPECT_EQ(ea.jaccard, eb.jaccard) << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.intersection, eb.intersection)
          << "(" << u << "," << v << ")";
      EXPECT_EQ(ea.degree_u, eb.degree_u) << "(" << u << "," << v << ")";
    }
  }
}

PredictorConfig TcmConfig() {
  PredictorConfig config;
  config.kind = "tcm";
  config.sketch_size = 32;
  config.tcm_depth = 3;
  config.seed = 13;
  return config;
}

TEST(TurnstileIngest, SequentialMatchesManualReplay) {
  const TurnstileWorkload w = MakeEvents(/*seed=*/11, /*num_edges=*/500);
  ASSERT_GT(w.deletes, 0u);

  PredictorConfig config = TcmConfig();
  ParallelIngestEngine engine(config);
  VectorOpStream stream(w.events);
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok()) << built.status().message();
  EXPECT_EQ(engine.edges_ingested(), w.events.size());
  EXPECT_EQ(engine.deletes_ingested(), w.deletes);

  auto manual = MakePredictor(config);
  ASSERT_TRUE(manual.ok());
  for (const EdgeEvent& ev : w.events) {
    if (ev.op == EdgeOp::kInsert) {
      (*manual)->OnEdge(ev.edge);
    } else {
      (*manual)->DeleteEdge(ev.edge);
    }
  }
  EXPECT_EQ((*built)->edges_processed(), (*manual)->edges_processed());
  EXPECT_EQ((*built)->deletes_processed(), (*manual)->deletes_processed());
  ExpectIdentical(**manual, **built, kNumVertices);
}

// The turnstile analogue of the ordered metamorphic cross product: thread
// count, batch size, and ring capacity must never change an output bit,
// deletes included.
TEST(TurnstileIngest, OrderedBitIdenticalAcrossThreadsAndBatchSizes) {
  const TurnstileWorkload w = MakeEvents(/*seed=*/29, /*num_edges=*/400);
  for (const char* kind : {"tcm", "exact"}) {
    PredictorConfig config = TcmConfig();
    config.kind = kind;
    VectorOpStream reference_stream(w.events);
    auto reference = IngestEngineBuilder(config).Ingest(reference_stream);
    ASSERT_TRUE(reference.ok()) << kind;

    for (uint32_t threads : {2u, 3u}) {
      for (uint32_t batch_edges : {1u, 7u, 256u}) {
        VectorOpStream stream(w.events);
        uint64_t ingested = 0;
        auto built = IngestEngineBuilder(config)
                         .Threads(threads)
                         .BatchEdges(batch_edges)
                         .RingBatches(batch_edges == 1 ? 1 : 64)
                         .Ingest(stream, &ingested);
        ASSERT_TRUE(built.ok())
            << kind << " threads=" << threads << " batch=" << batch_edges;
        EXPECT_EQ(ingested, w.events.size());
        EXPECT_EQ((*built)->edges_processed(),
                  (*reference)->edges_processed())
            << kind << " threads=" << threads << " batch=" << batch_edges;
        EXPECT_EQ((*built)->deletes_processed(),
                  (*reference)->deletes_processed())
            << kind << " threads=" << threads << " batch=" << batch_edges;
        ExpectIdentical(**reference, **built, kNumVertices);
      }
    }
  }
}

// Relaxed replicas see deletes before the matching insert (another replica
// owns it): cells dip negative and heal at fold time. tcm is the only kind
// whose merge is lossless under deletions, so the comparison is exact.
TEST(TurnstileIngest, RelaxedFoldMatchesSequential) {
  const TurnstileWorkload w = MakeEvents(/*seed=*/41, /*num_edges=*/600);
  PredictorConfig config = TcmConfig();
  VectorOpStream sequential_stream(w.events);
  auto sequential = IngestEngineBuilder(config).Ingest(sequential_stream);
  ASSERT_TRUE(sequential.ok());

  for (uint32_t threads : {2u, 3u}) {
    VectorOpStream stream(w.events);
    auto relaxed = IngestEngineBuilder(config)
                       .Threads(threads)
                       .Ordering(IngestOrdering::kRelaxed)
                       .BatchEdges(32)
                       .Ingest(stream);
    ASSERT_TRUE(relaxed.ok()) << "threads=" << threads;
    EXPECT_EQ((*relaxed)->edges_processed(),
              (*sequential)->edges_processed());
    EXPECT_EQ((*relaxed)->deletes_processed(),
              (*sequential)->deletes_processed());
    ExpectIdentical(**sequential, **relaxed, kNumVertices);
  }
}

// Tombstone-window fallback rides the sequential op path; the engine
// flushes the window at end-of-stream. Every delete in a live-set churn
// stream targets a live edge, so with a window as large as the stream the
// final state equals an insert-only build of the surviving edges.
TEST(TurnstileIngest, TombstoneSequentialBuildFlushesAtEndOfStream) {
  const TurnstileWorkload w = MakeEvents(/*seed=*/53, /*num_edges=*/300);
  ASSERT_GT(w.deletes, 0u);
  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 16;
  config.seed = 7;
  config.tombstone_window = w.events.size();

  ParallelIngestEngine engine(config);
  VectorOpStream stream(w.events);
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok()) << built.status().message();
  auto* tomb = dynamic_cast<TombstoneWindowPredictor*>(built->get());
  ASSERT_NE(tomb, nullptr);
  EXPECT_EQ(tomb->pending_inserts(), 0u);  // flushed
  EXPECT_EQ(tomb->unretractable_deletes(), 0u);

  PredictorConfig plain = config;
  plain.tombstone_window = 0;
  auto reference = MakePredictor(plain);
  ASSERT_TRUE(reference.ok());
  for (const Edge& e : w.net_edges) (*reference)->OnEdge(e);
  for (VertexId u = 0; u < kNumVertices; u += 3) {
    for (VertexId v = u + 1; v < kNumVertices; v += 2) {
      OverlapEstimate a = tomb->EstimateOverlap(u, v);
      OverlapEstimate b = (*reference)->EstimateOverlap(u, v);
      EXPECT_EQ(a.jaccard, b.jaccard) << "(" << u << "," << v << ")";
      EXPECT_EQ(a.intersection, b.intersection)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(TurnstileIngest, EmptyOpStream) {
  PredictorConfig config = TcmConfig();
  config.threads = 2;
  ParallelIngestEngine engine(config);
  VectorOpStream stream(EdgeEventList{});
  auto built = engine.Build(stream);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(engine.edges_ingested(), 0u);
  EXPECT_EQ(engine.deletes_ingested(), 0u);
}

TEST(TurnstileIngest, RejectsNonDeletableKindWithoutTombstone) {
  PredictorConfig config;
  config.kind = "minhash";
  ParallelIngestEngine engine(config);
  VectorOpStream stream(EdgeEventList{{Edge(0, 1), EdgeOp::kInsert}});
  auto built = engine.Build(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(TurnstileIngest, RejectsTombstoneWithThreads) {
  PredictorConfig config;
  config.kind = "minhash";
  config.tombstone_window = 64;
  config.threads = 2;
  ParallelIngestEngine engine(config);
  VectorOpStream stream(EdgeEventList{{Edge(0, 1), EdgeOp::kInsert}});
  auto built = engine.Build(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(TurnstileIngest, RelaxedRejectsNonDeletableKind) {
  PredictorConfig config;
  config.kind = "minhash";  // mergeable, but cannot retract
  config.threads = 2;
  VectorOpStream stream(EdgeEventList{{Edge(0, 1), EdgeOp::kInsert}});
  auto built = IngestEngineBuilder(config)
                   .Ordering(IngestOrdering::kRelaxed)
                   .Ingest(stream);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

// Sharded DeleteEdge routes retractions to both owners (the synchronous
// path the engine's workers also use).
TEST(TurnstileIngest, ShardedDeleteMatchesSequential) {
  const TurnstileWorkload w = MakeEvents(/*seed=*/61, /*num_edges=*/300);
  PredictorConfig config = TcmConfig();
  auto sequential = MakePredictor(config);
  ASSERT_TRUE(sequential.ok());
  config.threads = 2;
  auto sharded = MakePredictor(config);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE((*sharded)->SupportsDeletions());
  for (const EdgeEvent& ev : w.events) {
    if (ev.op == EdgeOp::kInsert) {
      (*sequential)->OnEdge(ev.edge);
      (*sharded)->OnEdge(ev.edge);
    } else {
      (*sequential)->DeleteEdge(ev.edge);
      (*sharded)->DeleteEdge(ev.edge);
    }
  }
  EXPECT_EQ((*sharded)->deletes_processed(),
            (*sequential)->deletes_processed());
  ExpectIdentical(**sequential, **sharded, kNumVertices);
}

}  // namespace
}  // namespace streamlink

#include "core/sketch_store.h"

#include <gtest/gtest.h>

#include "core/minhash_predictor.h"
#include "eval/experiment.h"
#include "sketch/minhash.h"
#include "util/hashing.h"

namespace streamlink {
namespace {

TEST(SketchStore, StartsEmpty) {
  SketchStore<MinHashSketch> store([] { return MinHashSketch(4); });
  EXPECT_EQ(store.num_vertices(), 0u);
  EXPECT_EQ(store.Get(0), nullptr);
  EXPECT_EQ(store.Get(100), nullptr);
}

TEST(SketchStore, EnsureVertexGrowsLazily) {
  SketchStore<MinHashSketch> store([] { return MinHashSketch(4); });
  store.EnsureVertex(5);
  EXPECT_EQ(store.num_vertices(), 6u);
  ASSERT_NE(store.Get(3), nullptr);
  EXPECT_TRUE(store.Get(3)->IsEmpty());
  // Does not shrink.
  store.EnsureVertex(2);
  EXPECT_EQ(store.num_vertices(), 6u);
}

TEST(SketchStore, MutableCreatesAndPersists) {
  HashFamily family(1, 4);
  SketchStore<MinHashSketch> store([] { return MinHashSketch(4); });
  store.Mutable(2).Update(42, family);
  ASSERT_NE(store.Get(2), nullptr);
  EXPECT_FALSE(store.Get(2)->IsEmpty());
  EXPECT_TRUE(store.Get(0)->IsEmpty());
}

TEST(SketchStore, MergeFromGrowsAndApplies) {
  HashFamily family(2, 4);
  SketchStore<MinHashSketch> a([] { return MinHashSketch(4); });
  SketchStore<MinHashSketch> b([] { return MinHashSketch(4); });
  a.Mutable(0).Update(1, family);
  b.Mutable(3).Update(9, family);
  a.MergeFrom(b, [](MinHashSketch& mine, const MinHashSketch& theirs) {
    mine.MergeUnion(theirs);
  });
  EXPECT_EQ(a.num_vertices(), 4u);
  EXPECT_FALSE(a.Get(0)->IsEmpty());
  EXPECT_FALSE(a.Get(3)->IsEmpty());
}

// Regression: EnsureVertex used to resize to exactly max(id)+1 on every
// growth, so an ascending-id ingest reallocated (and copied every sketch)
// per new vertex — quadratic in vertices. With geometric reserve this
// builds a million-vertex store in linear time; the assertions pin the
// behavior (correct size, default-constructed tail) rather than wall
// clock, which would flake under sanitizers.
TEST(SketchStore, EnsureVertexAscendingMillionVertices) {
  constexpr VertexId kVertices = 1u << 20;
  SketchStore<MinHashSketch> store([] { return MinHashSketch(1); });
  for (VertexId u = 0; u < kVertices; u += 1) {
    store.EnsureVertex(u);
  }
  EXPECT_EQ(store.num_vertices(), kVertices);
  ASSERT_NE(store.Get(0), nullptr);
  ASSERT_NE(store.Get(kVertices - 1), nullptr);
  EXPECT_TRUE(store.Get(kVertices - 1)->IsEmpty());
  EXPECT_EQ(store.Get(kVertices), nullptr);
}

TEST(SketchStore, MemoryAccountsAllSketches) {
  SketchStore<MinHashSketch> store([] { return MinHashSketch(64); });
  uint64_t empty_bytes = store.MemoryBytes();
  store.EnsureVertex(99);
  EXPECT_GT(store.MemoryBytes(), empty_bytes + 100 * 64);
}

TEST(DegreeTable, IncrementAndQuery) {
  DegreeTable table;
  EXPECT_EQ(table.Degree(7), 0u);
  table.Increment(7);
  table.Increment(7);
  table.Increment(2);
  EXPECT_EQ(table.Degree(7), 2u);
  EXPECT_EQ(table.Degree(2), 1u);
  EXPECT_EQ(table.Degree(100), 0u);
  EXPECT_EQ(table.num_vertices(), 8u);
}

TEST(DegreeTable, MergeFromAddsElementwise) {
  DegreeTable a, b;
  a.Increment(0);
  a.Increment(0);
  b.Increment(0);
  b.Increment(5);
  a.MergeFrom(b);
  EXPECT_EQ(a.Degree(0), 3u);
  EXPECT_EQ(a.Degree(5), 1u);
  EXPECT_EQ(a.num_vertices(), 6u);
}

TEST(DegreeTable, RawRoundTrip) {
  DegreeTable table;
  table.Increment(1);
  table.Increment(1);
  DegreeTable copy;
  copy.SetRaw(table.raw());
  EXPECT_EQ(copy.Degree(1), 2u);
}

TEST(ObserveNeighbor, TwoHalfEdgesEqualOneEdge) {
  MinHashPredictorOptions options{32, 4};
  MinHashPredictor whole(options), halves(options);
  whole.OnEdge(Edge(0, 1));
  halves.ObserveNeighbor(0, 1);
  halves.ObserveNeighbor(1, 0);
  OverlapEstimate a = whole.EstimateOverlap(0, 1);
  OverlapEstimate b = halves.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
  EXPECT_DOUBLE_EQ(a.degree_u, b.degree_u);
  EXPECT_DOUBLE_EQ(a.degree_v, b.degree_v);
  // Edge accounting differs by design: half-edges do not count.
  EXPECT_EQ(whole.edges_processed(), 1u);
  EXPECT_EQ(halves.edges_processed(), 0u);
}

TEST(ObserveNeighbor, VertexPartitionedShardsMergeToWholeStream) {
  MinHashPredictorOptions options{32, 9};
  MinHashPredictor whole(options);
  MinHashPredictor even(options), odd(options);
  EdgeList edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}};
  for (const Edge& e : edges) {
    whole.OnEdge(e);
    (e.u % 2 == 0 ? even : odd).ObserveNeighbor(e.u, e.v);
    (e.v % 2 == 0 ? even : odd).ObserveNeighbor(e.v, e.u);
  }
  even.MergeFrom(odd);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) {
      EXPECT_DOUBLE_EQ(even.EstimateOverlap(u, v).jaccard,
                       whole.EstimateOverlap(u, v).jaccard)
          << u << "," << v;
      EXPECT_DOUBLE_EQ(even.EstimateOverlap(u, v).adamic_adar,
                       whole.EstimateOverlap(u, v).adamic_adar);
    }
  }
}

}  // namespace
}  // namespace streamlink

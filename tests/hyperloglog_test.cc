#include "sketch/hyperloglog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "util/hashing.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(HyperLogLog, RegisterCountMatchesPrecision) {
  HyperLogLog h(10);
  EXPECT_EQ(h.num_registers(), 1024u);
  EXPECT_EQ(h.precision(), 10u);
}

TEST(HyperLogLogDeathTest, PrecisionOutOfRangeAborts) {
  EXPECT_DEATH(HyperLogLog(3), "precision");
  EXPECT_DEATH(HyperLogLog(19), "precision");
}

TEST(HyperLogLog, EmptyEstimatesZero) {
  HyperLogLog h(8);
  EXPECT_NEAR(h.Estimate(), 0.0, 1e-9);
}

TEST(HyperLogLog, UpdateIsIdempotent) {
  HyperLogLog a(8), b(8);
  for (int rep = 0; rep < 5; ++rep) {
    for (uint64_t i = 0; i < 100; ++i) a.Update(Mix64(i));
  }
  for (uint64_t i = 0; i < 100; ++i) b.Update(Mix64(i));
  EXPECT_EQ(a.registers(), b.registers());
}

TEST(HyperLogLog, SmallCountsUseLinearCounting) {
  HyperLogLog h(12);
  for (uint64_t i = 0; i < 50; ++i) h.Update(Mix64(i));
  EXPECT_NEAR(h.Estimate(), 50.0, 3.0);
}

TEST(HyperLogLog, LargeCountsWithinStandardError) {
  Rng rng(42);
  for (uint32_t precision : {8u, 12u, 14u}) {
    HyperLogLog h(precision);
    const int n = 200000;
    for (int i = 0; i < n; ++i) h.Update(rng.Next());
    double rel_err = std::abs(h.Estimate() - n) / n;
    EXPECT_LT(rel_err, 5.0 * h.StandardError()) << "p=" << precision;
  }
}

TEST(HyperLogLog, StandardErrorFormula) {
  HyperLogLog h(10);
  EXPECT_NEAR(h.StandardError(), 1.04 / 32.0, 1e-9);
}

TEST(HyperLogLog, MergeEqualsUnionSketch) {
  HyperLogLog a(10), b(10), expected(10);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    uint64_t x = rng.Next();
    a.Update(x);
    expected.Update(x);
  }
  for (int i = 0; i < 5000; ++i) {
    uint64_t x = rng.Next();
    b.Update(x);
    expected.Update(x);
  }
  a.MergeUnion(b);
  EXPECT_EQ(a.registers(), expected.registers());
}

TEST(HyperLogLogDeathTest, MergeDifferentPrecisionAborts) {
  HyperLogLog a(8), b(10);
  EXPECT_DEATH(a.MergeUnion(b), "different precision");
}

TEST(HyperLogLog, MemoryMatchesRegisters) {
  HyperLogLog h(12);
  EXPECT_GE(h.MemoryBytes(), 4096u);
  EXPECT_LT(h.MemoryBytes(), 4096u + 256u);
}

}  // namespace
}  // namespace streamlink

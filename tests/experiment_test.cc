#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_predictor.h"
#include "gen/workloads.h"
#include "graph/csr_graph.h"
#include "util/random.h"

namespace streamlink {
namespace {

TEST(FeedStreamTest, DeliversEveryEdgeInOrder) {
  ExactPredictor exact;
  EdgeList edges = {{0, 1}, {1, 2}, {0, 2}, {2, 2}, {0, 1}};
  FeedStream(exact, edges);
  // Duplicates count as processed; self-loops are dropped before the
  // counter (LinkPredictor::OnEdge), so 4 of the 5 arrivals register.
  EXPECT_EQ(exact.edges_processed(), 4u);
  // Triangle 0-1-2: N(0)={1,2}, N(1)={0,2} => |∩|=1, |∪|=3.
  OverlapEstimate est = exact.EstimateOverlap(0, 1);
  EXPECT_DOUBLE_EQ(est.jaccard, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(est.intersection, 1.0);
}

TEST(MeasureAccuracyAgainstTest, ExactVsExactIsZeroError) {
  ExactPredictor a;
  ExactPredictor b;
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.02, 5});
  FeedStream(a, g.edges);
  FeedStream(b, g.edges);
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(42);
  std::vector<QueryPair> pairs = SampleOverlappingPairs(csr, 64, rng);
  AccuracyReport report = MeasureAccuracyAgainst(a, b, pairs);
  EXPECT_EQ(report.query_pairs, pairs.size());
  EXPECT_EQ(report.jaccard.count(), pairs.size());
  EXPECT_EQ(report.jaccard.MaxRelativeError(), 0.0);
  EXPECT_EQ(report.common_neighbors.MeanAbsoluteError(), 0.0);
  EXPECT_EQ(report.adamic_adar.MeanAbsoluteError(), 0.0);
  EXPECT_EQ(report.jaccard.MeanSignedError(), 0.0);
}

TEST(MeasureAccuracyTest, PopulatesReportAndStaysAccurate) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 9});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(7);
  std::vector<QueryPair> pairs = SampleOverlappingPairs(csr, 128, rng);

  PredictorConfig config;
  config.kind = "minhash";
  config.sketch_size = 128;
  config.seed = 3;
  AccuracyReport report = MeasureAccuracy(g, config, pairs);

  EXPECT_FALSE(report.predictor.empty());
  EXPECT_EQ(report.sketch_size, config.sketch_size);
  EXPECT_EQ(report.query_pairs, pairs.size());
  EXPECT_EQ(report.jaccard.count(), pairs.size());
  // Overlapping pairs have nonzero truth, so relative error is defined
  // for every query; at k=128 it must stay clearly sub-trivial.
  EXPECT_EQ(report.jaccard.nonzero_count(), pairs.size());
  EXPECT_LT(report.jaccard.MeanRelativeError(), 0.5);
  EXPECT_LT(report.common_neighbors.MeanRelativeError(), 1.0);
  EXPECT_TRUE(std::isfinite(report.adamic_adar.MeanAbsoluteError()));
}

TEST(MeasureAccuracyTest, LargerSketchesReduceJaccardError) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"ba", 0.03, 9});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(7);
  std::vector<QueryPair> pairs = SampleOverlappingPairs(csr, 192, rng);

  PredictorConfig small;
  small.kind = "minhash";
  small.sketch_size = 16;
  small.seed = 3;
  PredictorConfig large = small;
  large.sketch_size = 256;
  AccuracyReport small_report = MeasureAccuracy(g, small, pairs);
  AccuracyReport large_report = MeasureAccuracy(g, large, pairs);
  EXPECT_LT(large_report.jaccard.MeanRelativeError(),
            small_report.jaccard.MeanRelativeError());
}

TEST(MeasureAccuracyTest, IsDeterministic) {
  GeneratedGraph g = MakeWorkload(WorkloadSpec{"er", 0.02, 11});
  CsrGraph csr = CsrGraph::FromEdges(g.edges, g.num_vertices);
  Rng rng(19);
  std::vector<QueryPair> pairs = SampleMixedPairs(csr, 64, 0.7, rng);

  PredictorConfig config;
  config.kind = "bottomk";
  config.sketch_size = 32;
  config.seed = 5;
  AccuracyReport first = MeasureAccuracy(g, config, pairs);
  AccuracyReport second = MeasureAccuracy(g, config, pairs);
  EXPECT_EQ(first.jaccard.MeanRelativeError(),
            second.jaccard.MeanRelativeError());
  EXPECT_EQ(first.common_neighbors.MeanAbsoluteError(),
            second.common_neighbors.MeanAbsoluteError());
  EXPECT_EQ(first.adamic_adar.MeanSignedError(),
            second.adamic_adar.MeanSignedError());
}

}  // namespace
}  // namespace streamlink
